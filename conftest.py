"""Repo-root pytest bootstrap: make ``repro`` importable everywhere.

Two jobs, both about path hygiene rather than fixtures:

- Put the absolute ``src/`` directory on ``sys.path`` so the suite works
  no matter how pytest was invoked (``pytest``, ``python -m pytest``,
  from an IDE, with or without ``PYTHONPATH=src``).
- Export the same absolute path through ``os.environ["PYTHONPATH"]`` so
  every subprocess the suite launches — example scripts, CLI smoke runs,
  and ``ProcessPoolExecutor`` sweep workers under spawn-style start
  methods — can also import ``repro`` regardless of its working
  directory. A relative ``PYTHONPATH=src`` breaks as soon as a child
  runs with ``cwd`` somewhere else (e.g. a tmp_path).
"""

from __future__ import annotations

import os
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent
SRC = str(ROOT / "src")

if SRC not in sys.path:
    sys.path.insert(0, SRC)

_paths = [p for p in os.environ.get("PYTHONPATH", "").split(os.pathsep) if p]
if SRC not in (str(pathlib.Path(p).resolve()) for p in _paths):
    os.environ["PYTHONPATH"] = os.pathsep.join([SRC] + _paths)
