"""The public API surface: everything in __all__ imports and works."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_set(self):
        assert repro.__version__

    def test_subpackages_importable(self):
        for module in (
            "repro.sim",
            "repro.cellular",
            "repro.d2d",
            "repro.energy",
            "repro.mobility",
            "repro.workload",
            "repro.core",
            "repro.baseline",
            "repro.scenarios",
            "repro.metrics",
            "repro.analysis",
            "repro.reporting",
            "repro.cli",
            "repro.device",
        ):
            importlib.import_module(module)

    def test_readme_quickstart_snippet_works(self):
        """The exact snippet in README.md must keep working."""
        from repro import run_relay_scenario, saved_percent

        d2d = run_relay_scenario(n_ues=1, distance_m=1.0, periods=2, mode="d2d")
        base = run_relay_scenario(
            n_ues=1, distance_m=1.0, periods=2, mode="original"
        )
        assert saved_percent(base.system_energy_uah(), d2d.system_energy_uah()) > 0
        assert saved_percent(base.total_l3(), d2d.total_l3()) == pytest.approx(50.0)
        assert d2d.on_time_fraction() == 1.0

    def test_public_docstrings_exist(self):
        """Every public item carries documentation."""
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__"
            and getattr(getattr(repro, name), "__doc__", None) in (None, "")
        ]
        assert undocumented == []
