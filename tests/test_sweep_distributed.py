"""Fault-tolerant and multi-host sweep dispatch.

The contract under test (see ``repro/sweep/``):

1. **Claim protocol** — at most one dispatcher computes any given point:
   claims are atomic (``O_CREAT|O_EXCL``), released after the result is
   published, and stealable only once stale.
2. **Fault tolerance** — a raising runner never aborts the dispatch
   loop: with ``on_error="keep-going"`` the surviving points come back
   with a structured error list, with the default strict mode a
   :class:`SweepFailure` is raised *after* the whole grid was driven and
   completed points stay in the cache, so a re-run resumes.
3. **Multi-dispatcher equivalence** — N concurrent dispatchers over one
   shared cache directory each return the byte-identical point list a
   serial run produces, with zero duplicate computations between them.
"""

import multiprocessing
import os
import time

import pytest

from repro.sim.rng import make_rng
from repro.sweep import (
    ClaimStore,
    RetryPolicy,
    SweepCache,
    SweepFailure,
    grid_sweep,
    sweep_status,
)
from repro.sweep.claims import grid_fingerprint, publish_manifest

GRID = {"a": [1, 2], "b": [10, 20, 30]}
DIST_GRID = {"x": [1, 2, 3], "y": [10, 20, 30]}


def product_runner(a, b):
    return {"product": float(a * b)}


def failing_runner(a, b):
    if a == 2 and b == 20:
        raise RuntimeError("synthetic point failure")
    return {"product": float(a * b)}


def dist_runner(x, y, seed):
    """Seed-sensitive and slow enough that two dispatchers overlap."""
    time.sleep(0.02)
    rng = make_rng(seed, "sweep-distributed-test")
    return {"value": rng.random() + 10.0 * x + y}


# ----------------------------------------------------------------------
# claim protocol
# ----------------------------------------------------------------------
class TestClaimStore:
    def test_first_acquire_wins_second_loses(self, tmp_path):
        ours = ClaimStore(str(tmp_path), host_id="host-a")
        theirs = ClaimStore(str(tmp_path), host_id="host-b")
        assert ours.acquire("deadbeef") == "fresh"
        assert theirs.acquire("deadbeef") is None
        assert theirs.is_claimed("deadbeef")
        assert ours.holder("deadbeef")["host"] == "host-a"

    def test_release_reopens_the_point(self, tmp_path):
        store = ClaimStore(str(tmp_path))
        assert store.acquire("deadbeef") == "fresh"
        store.release("deadbeef")
        assert not store.is_claimed("deadbeef")
        assert store.acquire("deadbeef") == "fresh"

    def test_release_is_idempotent(self, tmp_path):
        store = ClaimStore(str(tmp_path))
        store.release("neverclaimed")  # no-op, no raise

    def test_stale_claim_is_stolen(self, tmp_path):
        dead = ClaimStore(str(tmp_path), ttl_s=1.0, host_id="dead-host")
        thief = ClaimStore(str(tmp_path), ttl_s=1.0, host_id="thief")
        assert dead.acquire("deadbeef") == "fresh"
        # backdate the claim past the TTL, as if dead-host crashed mid-point
        path = dead.claim_path("deadbeef")
        os.utime(path, (time.time() - 10.0, time.time() - 10.0))
        assert thief.is_stale("deadbeef")
        assert thief.acquire("deadbeef") == "stolen"
        assert thief.holder("deadbeef")["host"] == "thief"

    def test_fresh_claim_is_not_stealable(self, tmp_path):
        store = ClaimStore(str(tmp_path), ttl_s=120.0)
        store.acquire("deadbeef")
        assert not store.is_stale("deadbeef")
        assert store.acquire("deadbeef") is None

    def test_error_markers_round_trip(self, tmp_path):
        store = ClaimStore(str(tmp_path), host_id="host-a")
        store.publish_error("deadbeef", "boom", traceback="tb", attempts=3)
        marker = store.read_error("deadbeef")
        assert marker["error"] == "boom"
        assert marker["attempts"] == 3
        assert marker["host"] == "host-a"
        store.clear_error("deadbeef")
        assert store.read_error("deadbeef") is None
        store.clear_error("deadbeef")  # idempotent

    def test_invalid_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ClaimStore(str(tmp_path), ttl_s=0.0)


class TestManifest:
    def test_fingerprint_is_stable_and_shape_sensitive(self):
        base = grid_fingerprint(["a", "b"], 6, "tag-v1", 7)
        assert grid_fingerprint(["a", "b"], 6, "tag-v1", 7) == base
        assert grid_fingerprint(["a", "b"], 9, "tag-v1", 7) != base
        assert grid_fingerprint(["a", "b"], 6, "tag-v2", 7) != base
        assert grid_fingerprint(["a", "b"], 6, "tag-v1", None) != base

    def test_first_dispatcher_wins_the_manifest(self, tmp_path):
        first = publish_manifest(str(tmp_path), ["a"], 3, "tag", None,
                                 host_id="host-a")
        second = publish_manifest(str(tmp_path), ["a"], 3, "tag", None,
                                  host_id="host-b")
        assert first == second
        status = sweep_status(str(tmp_path))
        assert len(status.manifests) == 1
        assert status.manifests[0]["host"] == "host-a"


class TestSweepStatus:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            sweep_status(str(tmp_path / "nope"))

    def test_counts_results_claims_and_errors(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cache.put({"a": 1}, None, {"m": 1.0})
        cache.put({"a": 2}, None, {"m": 2.0})
        store = ClaimStore(str(tmp_path), ttl_s=60.0, host_id="host-a")
        store.acquire(cache.key_for({"a": 3}, None))
        stale_key = cache.key_for({"a": 4}, None)
        store.acquire(stale_key)
        os.utime(store.claim_path(stale_key),
                 (time.time() - 600.0, time.time() - 600.0))
        store.publish_error(cache.key_for({"a": 5}, None), "boom")
        publish_manifest(str(tmp_path), ["a"], 5, cache.version_tag, None)

        status = sweep_status(str(tmp_path), ttl_s=60.0)
        assert status.results == 2
        assert len(status.active_claims) == 1
        assert len(status.stale_claims) == 1
        assert len(status.errors) == 1 and status.errors[0].error == "boom"
        assert status.total == 5
        assert status.summary() == (
            "status: 2/5 points done, 1 in flight, 1 stale claims, 1 failed"
        )

    def test_tmp_files_are_not_counted_as_results(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        path = cache.put({"a": 1}, None, {"m": 1.0})
        with open(f"{path}.tmp.123", "w") as handle:
            handle.write("{}")
        assert sweep_status(str(tmp_path)).results == 1


# ----------------------------------------------------------------------
# fault tolerance
# ----------------------------------------------------------------------
class FlakyRunner:
    """Fails each point ``failures`` times before succeeding (serial only)."""

    def __init__(self, failures):
        self.failures = failures
        self.attempts = {}

    def __call__(self, a, b):
        key = (a, b)
        self.attempts[key] = self.attempts.get(key, 0) + 1
        if self.attempts[key] <= self.failures:
            raise RuntimeError(f"transient failure #{self.attempts[key]}")
        return product_runner(a, b)


class TestRetry:
    def test_bounded_retry_recovers_transient_failures(self):
        runner = FlakyRunner(failures=2)
        sweep = grid_sweep(GRID, runner, max_retries=2)
        assert sweep.ok
        assert len(sweep) == 6
        assert sweep.telemetry.retries == 12  # 2 extra attempts per point
        assert all(t.attempts == 3 for t in sweep.telemetry.timings)

    def test_retry_budget_exhausted_is_a_failure(self):
        runner = FlakyRunner(failures=5)
        with pytest.raises(SweepFailure) as excinfo:
            grid_sweep(GRID, runner, max_retries=1)
        assert all(e.attempts == 2 for e in excinfo.value.errors)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-0.5)


class TestKeepGoing:
    def test_surviving_points_come_back_with_the_error_list(self):
        sweep = grid_sweep(GRID, failing_runner, on_error="keep-going")
        assert not sweep.ok
        assert len(sweep) == 5  # 6 points, 1 failed
        assert len(sweep.errors) == 1
        error = sweep.errors[0]
        assert error.params == {"a": 2, "b": 20}
        assert "synthetic point failure" in error.error
        assert "RuntimeError" in error.traceback
        assert sweep.telemetry.errors == 1
        assert sweep.telemetry.pending == 0
        assert "errors 1" in sweep.telemetry.summary()

    def test_strict_mode_raises_after_driving_the_whole_grid(self):
        with pytest.raises(SweepFailure) as excinfo:
            grid_sweep(GRID, failing_runner)
        failure = excinfo.value
        assert failure.total == 6
        assert len(failure.errors) == 1
        assert failure.telemetry.completed == 5  # the rest still ran
        assert "1 of 6 sweep points failed" in str(failure)
        assert "re-run to resume" in str(failure)

    def test_parallel_worker_crash_is_contained(self):
        """One raising point in a process pool must not abort the loop."""
        sweep = grid_sweep(GRID, failing_runner, workers=2,
                           on_error="keep-going")
        assert len(sweep) == 5
        assert len(sweep.errors) == 1
        assert sweep.errors[0].params == {"a": 2, "b": 20}

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep(GRID, product_runner, on_error="ignore")


class TestResume:
    def test_interrupted_sweep_resumes_from_the_cache(self, tmp_path):
        """Strict failure, then a re-run: completed points are served from
        the cache and only the failed point is recomputed."""
        with pytest.raises(SweepFailure):
            grid_sweep(GRID, failing_runner, cache_dir=str(tmp_path))
        assert sweep_status(str(tmp_path)).results == 5

        sweep = grid_sweep(GRID, product_runner, cache_dir=str(tmp_path))
        assert sweep.ok and len(sweep) == 6
        assert sweep.telemetry.cache_hits == 5
        assert sweep.telemetry.cache_misses == 1

    def test_shared_dir_failure_marker_cleared_on_rerun(self, tmp_path):
        """A failed shared-dir sweep leaves an ``.error`` marker; the next
        run treats it as a previous-run leftover and retries the point."""
        failed = grid_sweep(GRID, failing_runner, cache_dir=str(tmp_path),
                            backend="shared-dir", on_error="keep-going")
        assert len(failed.errors) == 1
        assert len(sweep_status(str(tmp_path)).errors) == 1

        sweep = grid_sweep(GRID, product_runner, cache_dir=str(tmp_path),
                           backend="shared-dir")
        assert sweep.ok and len(sweep) == 6
        assert len(sweep_status(str(tmp_path)).errors) == 0


# ----------------------------------------------------------------------
# shared-dir dispatch
# ----------------------------------------------------------------------
class TestSharedDirSingle:
    def test_matches_serial_and_leaves_a_clean_directory(self, tmp_path):
        serial = grid_sweep(GRID, product_runner, base_seed=None)
        shared = grid_sweep(GRID, product_runner, cache_dir=str(tmp_path),
                            backend="shared-dir", host_id="host-a")
        assert shared.points == serial.points
        assert shared.telemetry.mode == "shared-dir"
        assert shared.telemetry.host == "host-a"
        status = sweep_status(str(tmp_path))
        assert status.results == 6
        assert status.claims == []  # every claim was released
        assert status.total == 6  # the manifest was published

    def test_requires_a_cache(self):
        with pytest.raises(ValueError):
            grid_sweep(GRID, product_runner, backend="shared-dir")

    def test_second_dispatch_is_served_entirely_from_cache(self, tmp_path):
        grid_sweep(GRID, product_runner, cache_dir=str(tmp_path),
                   backend="shared-dir")
        runner = FlakyRunner(failures=99)  # would fail if ever invoked
        sweep = grid_sweep(GRID, runner, cache_dir=str(tmp_path),
                           backend="shared-dir")
        assert sweep.ok
        assert runner.attempts == {}
        assert sweep.telemetry.cache_hits == 6


def _dispatch(cache_dir, queue):
    """One dispatcher process of the two-host equivalence test."""
    result = grid_sweep(DIST_GRID, dist_runner, base_seed=7,
                        cache_dir=cache_dir, backend="shared-dir")
    queue.put({
        "points": [(tuple(sorted(p.params.items())),
                    tuple(sorted(p.metrics.items())))
                   for p in result.points],
        "computed": result.telemetry.cache_misses,
        "served": result.telemetry.cache_hits,
        "errors": len(result.errors or []),
    })


class TestTwoDispatchers:
    def test_concurrent_dispatchers_split_the_grid_without_duplicates(
        self, tmp_path
    ):
        """Two dispatcher processes over one cache dir: both return the
        full serial-identical grid, and every point was computed exactly
        once between them."""
        serial = grid_sweep(DIST_GRID, dist_runner, base_seed=7)
        expected = [(tuple(sorted(p.params.items())),
                     tuple(sorted(p.metrics.items())))
                    for p in serial.points]

        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_dispatch, args=(str(tmp_path), queue))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        reports = [queue.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0

        total = len(serial)
        for report in reports:
            assert report["errors"] == 0
            assert report["points"] == expected
            assert report["computed"] + report["served"] == total
        # zero duplicate computations across the fleet
        assert sum(r["computed"] for r in reports) == total
        status = sweep_status(str(tmp_path))
        assert status.results == total
        assert status.claims == [] and status.errors == []
