"""Property-based tests for chaos replay and delivery safety.

Two claims get the Hypothesis treatment:

1. **replay determinism** — a chaos run is a pure function of
   ``(scenario, profile, chaos seed)``: repeating it yields the identical
   event log, audit report, and fault metrics;
2. **strict safety** — under every built-in profile and arbitrary seed
   pairs, the audited run stays 100% deadline-safe with zero violations
   (the paper's claim that D2D forwarding never regresses delivery).

``derandomize=True`` keeps the explored seed set fixed, so these are
deterministic in CI while still sweeping far beyond the hand-picked
acceptance seeds.
"""

from hypothesis import given, settings, strategies as st

from repro.faults.chaos import CHAOS_PROFILES
from repro.scenarios import run_relay_scenario

profile_names = st.sampled_from(sorted(CHAOS_PROFILES))
seeds = st.integers(min_value=0, max_value=2 ** 32 - 1)


def run(profile, scenario_seed, chaos_seed, n_ues=1, periods=2):
    return run_relay_scenario(
        n_ues=n_ues, periods=periods, seed=scenario_seed,
        chaos=profile, chaos_seed=chaos_seed,
    )


def event_tuples(report):
    return [(e.time_s, e.kind, e.target, e.detail) for e in report.events]


@given(profile_names, seeds)
@settings(max_examples=8, deadline=None, derandomize=True)
def test_chaos_replay_is_deterministic(profile, chaos_seed):
    first = run(profile, scenario_seed=3, chaos_seed=chaos_seed)
    second = run(profile, scenario_seed=3, chaos_seed=chaos_seed)
    assert event_tuples(first.chaos_report) == \
        event_tuples(second.chaos_report)
    assert first.chaos_report.to_dict() == second.chaos_report.to_dict()
    assert first.audit_report.to_dict() == second.audit_report.to_dict()
    assert first.metrics.faults.to_dict() == second.metrics.faults.to_dict()


@given(profile_names, seeds, seeds)
@settings(max_examples=12, deadline=None, derandomize=True)
def test_every_profile_stays_deadline_safe_across_seeds(
    profile, scenario_seed, chaos_seed
):
    result = run(
        profile,
        scenario_seed=scenario_seed % 10_000,
        chaos_seed=chaos_seed,
        n_ues=2,
        periods=3,
    )
    assert result.audit_ok(), result.audit_report.summary()
    assert result.deadline_safe_fraction() == 1.0
