"""Unit tests for the original-system baseline and its closed forms."""

import pytest

from repro.baseline.original import (
    OriginalSystem,
    expected_beats_in,
    expected_energy_uah,
    expected_l3_messages,
)
from repro.cellular.basestation import BaseStation
from repro.device import Smartphone
from repro.energy.profiles import DEFAULT_PROFILE
from repro.workload.apps import STANDARD_APP, QQ

T = STANDARD_APP.heartbeat_period_s


@pytest.fixture
def rig(sim, ledger):
    basestation = BaseStation(sim, ledger=ledger)
    phones = [
        Smartphone(sim, f"dev-{i}", ledger=ledger, basestation=basestation)
        for i in range(2)
    ]
    return sim, ledger, basestation, phones


class TestSimulatedBaseline:
    def test_every_beat_is_a_standalone_send(self, rig):
        sim, ledger, basestation, phones = rig
        system = OriginalSystem(phones, phase_fraction=0.0)
        sim.run_until(3 * T - 1)
        system.shutdown()
        sim.run_until(3 * T + 30)
        assert system.total_sends == 6
        assert basestation.uplinks == 6

    def test_energy_matches_closed_form(self, rig):
        sim, ledger, __, phones = rig
        system = OriginalSystem(phones, phase_fraction=0.0)
        sim.run_until(3 * T - 1)
        system.shutdown()
        sim.run_until(3 * T + 30)
        expected = expected_energy_uah(3, STANDARD_APP.heartbeat_bytes)
        for phone in phones:
            assert phone.energy.total_uah == pytest.approx(expected, rel=1e-6)
        assert system.total_energy_uah() == pytest.approx(2 * expected, rel=1e-6)

    def test_signaling_matches_closed_form(self, rig):
        sim, ledger, __, phones = rig
        system = OriginalSystem(phones, phase_fraction=0.0)
        sim.run_until(3 * T - 1)
        system.shutdown()
        sim.run_until(3 * T + 30)
        expected = expected_l3_messages(3, STANDARD_APP.heartbeat_bytes)
        for phone in phones:
            assert ledger.count_for(phone.device_id) == expected

    def test_dead_phone_stops_sending(self, rig):
        sim, ledger, __, phones = rig
        system = OriginalSystem(phones, phase_fraction=0.0)
        sim.run_until(1.0)
        phones[0].power_off()
        sim.run_until(3 * T - 1)
        system.shutdown()
        sim.run_until(3 * T + 30)
        assert system.sends_by_device["dev-0"] == 1
        assert system.sends_by_device["dev-1"] == 3

    def test_duplicate_device_rejected(self, rig):
        sim, __, __, phones = rig
        system = OriginalSystem(phones)
        with pytest.raises(ValueError):
            system.add_device(phones[0])


class TestClosedForms:
    def test_expected_energy_is_linear(self):
        one = expected_energy_uah(1, 54)
        assert expected_energy_uah(7, 54) == pytest.approx(7 * one)
        assert one == pytest.approx(DEFAULT_PROFILE.cellular_heartbeat_uah(54))

    def test_expected_energy_validation(self):
        with pytest.raises(ValueError):
            expected_energy_uah(-1, 54)

    def test_expected_l3_small_beat_is_8_per_cycle(self):
        assert expected_l3_messages(10, 54) == 80

    def test_expected_l3_includes_reconfig_for_big_beats(self):
        """QQ's 378 B beats trigger bearer reconfigurations."""
        assert expected_l3_messages(1, QQ.heartbeat_bytes) == 8 + 2

    def test_expected_beats_in_window(self):
        assert expected_beats_in(3 * T, STANDARD_APP, phase_fraction=0.0) == 3
        assert expected_beats_in(3 * T + 1, STANDARD_APP, phase_fraction=0.0) == 4
        assert expected_beats_in(100.0, STANDARD_APP, phase_fraction=0.9) == 0
        assert expected_beats_in(0.0, STANDARD_APP) == 0
