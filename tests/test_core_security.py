"""Unit tests for end-to-end sealing (the paper's Sec. III-A property)."""

import pytest

from repro.core.security import (
    IntegrityError,
    SealedBeat,
    SecureChannel,
    ServerKeyRing,
)

KEY = b"0123456789abcdef0123456789abcdef"


class TestSealOpen:
    def test_roundtrip(self):
        channel = SecureChannel("ue-0", KEY)
        sealed = channel.seal(7, b"heartbeat payload")
        assert channel.open(sealed) == b"heartbeat payload"

    def test_ciphertext_differs_from_plaintext(self):
        channel = SecureChannel("ue-0", KEY)
        body = b"heartbeat payload"
        sealed = channel.seal(7, body)
        assert sealed.ciphertext != body

    def test_same_body_different_seq_different_ciphertext(self):
        channel = SecureChannel("ue-0", KEY)
        a = channel.seal(1, b"same body")
        b = channel.seal(2, b"same body")
        assert a.ciphertext != b.ciphertext

    def test_empty_body(self):
        channel = SecureChannel("ue-0", KEY)
        sealed = channel.seal(1, b"")
        assert channel.open(sealed) == b""

    def test_long_body_spans_keystream_blocks(self):
        channel = SecureChannel("ue-0", KEY)
        body = bytes(range(256)) * 3  # 768 B > one BLAKE2b block
        assert channel.open(channel.seal(9, body)) == body

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            SecureChannel("ue-0", b"short")


class TestRelayOpacityAndTampering:
    def test_relay_without_key_cannot_open(self):
        """The paper's claim: a malicious relay learns nothing."""
        ue_channel = SecureChannel("ue-0", KEY)
        sealed = ue_channel.seal(3, b"secret presence token")
        relay_guess = SecureChannel("ue-0", b"wrong-key-wrong-key-wrong-key!!!")
        with pytest.raises(IntegrityError):
            relay_guess.open(sealed)

    def test_tampered_ciphertext_detected(self):
        channel = SecureChannel("ue-0", KEY)
        sealed = channel.seal(3, b"secret")
        flipped = bytes([sealed.ciphertext[0] ^ 0xFF]) + sealed.ciphertext[1:]
        with pytest.raises(IntegrityError):
            channel.open(sealed.tampered(flipped))

    def test_replay_under_wrong_origin_detected(self):
        channel_a = SecureChannel("ue-a", KEY)
        sealed = channel_a.seal(3, b"secret")
        import dataclasses

        forged = dataclasses.replace(sealed, origin_device="ue-b")
        channel_b = SecureChannel("ue-b", KEY)
        with pytest.raises(IntegrityError):
            channel_b.open(forged)

    def test_tag_is_over_sequence_number(self):
        channel = SecureChannel("ue-0", KEY)
        sealed = channel.seal(3, b"secret")
        import dataclasses

        replayed = dataclasses.replace(sealed, seq=4)
        with pytest.raises(IntegrityError):
            channel.open(replayed)


class TestServerKeyRing:
    def test_provision_and_open(self):
        ring = ServerKeyRing()
        device_side, __ = ring.provision("ue-0", KEY)
        sealed = device_side.seal(1, b"hello server")
        assert ring.open(sealed) == b"hello server"
        assert "ue-0" in ring

    def test_duplicate_provision_rejected(self):
        ring = ServerKeyRing()
        ring.provision("ue-0", KEY)
        with pytest.raises(ValueError):
            ring.provision("ue-0", KEY)

    def test_unknown_device_rejected(self):
        ring = ServerKeyRing()
        stray = SecureChannel("ghost", KEY).seal(1, b"x")
        with pytest.raises(IntegrityError):
            ring.open(stray)

    def test_wire_bytes_accounts_overhead(self):
        sealed = SecureChannel("ue-0", KEY).seal(1, b"x" * 54)
        assert sealed.wire_bytes > 54
