"""Unit tests for the radio link model."""

import random

import pytest

from repro.d2d.link import LinkModel, distance_from_rssi, rssi_at


class TestPathLoss:
    def test_rssi_decreases_with_distance(self):
        values = [rssi_at(d) for d in (1.0, 5.0, 10.0, 50.0)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_rssi_at_reference_distance(self):
        # at d0 = 1 m: RSSI = tx_power - PL0
        assert rssi_at(1.0, tx_power_dbm=15.0, path_loss_at_ref_db=40.0) == pytest.approx(
            -25.0
        )

    def test_ten_x_distance_costs_10n_db(self):
        # with exponent 3: 10x distance → 30 dB
        assert rssi_at(1.0) - rssi_at(10.0) == pytest.approx(30.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            rssi_at(-1.0)

    def test_zero_distance_is_finite(self):
        assert rssi_at(0.0) > rssi_at(1.0)

    def test_inverse_roundtrip(self):
        for d in (0.5, 1.0, 3.0, 12.0, 40.0):
            assert distance_from_rssi(rssi_at(d)) == pytest.approx(d, rel=1e-9)


class TestLinkModel:
    def test_estimate_distance_inverts_clean_rssi(self):
        link = LinkModel()
        clean = link.rssi(7.0, rng=None)
        assert link.estimate_distance(clean) == pytest.approx(7.0, rel=1e-9)

    def test_shadowing_noise_applied_with_rng(self):
        link = LinkModel(shadowing_sigma_db=3.0)
        rng = random.Random(1)
        noisy = {link.rssi(5.0, rng) for _ in range(10)}
        assert len(noisy) == 10  # all different draws

    def test_noisy_estimates_center_on_truth(self):
        link = LinkModel(shadowing_sigma_db=2.0)
        rng = random.Random(7)
        estimates = [link.estimate_distance(link.rssi(5.0, rng)) for _ in range(500)]
        assert sum(estimates) / len(estimates) == pytest.approx(5.0, rel=0.15)

    def test_max_range_consistent_with_in_range(self):
        link = LinkModel()
        edge = link.max_range_m()
        assert link.in_range(edge * 0.99)
        assert not link.in_range(edge * 1.01)

    def test_per_zero_in_close_range(self):
        assert LinkModel().packet_error_rate(1.0) == 0.0

    def test_per_one_beyond_range(self):
        link = LinkModel()
        assert link.packet_error_rate(link.max_range_m() * 2) == 1.0

    def test_per_monotone_near_edge(self):
        link = LinkModel()
        edge = link.max_range_m()
        pers = [link.packet_error_rate(edge * f) for f in (0.5, 0.8, 0.95, 1.5)]
        assert all(b >= a for a, b in zip(pers, pers[1:]))
