"""Tests for the relay owner's dashboard read-model (paper Fig. 4)."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.dashboard import RelayDashboard
from repro.core.framework import HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.energy.battery import Battery
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP

T = STANDARD_APP.heartbeat_period_s


@pytest.fixture
def rig():
    sim = Simulator(seed=2)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework([], app=STANDARD_APP)
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium, battery=Battery())
    framework.add_device(relay, phase_fraction=0.0)
    for i in range(2):
        ue = Smartphone(sim, f"ue-{i}",
                        mobility=StaticMobility((1.0, float(i))),
                        role=Role.UE, ledger=ledger, basestation=basestation,
                        d2d_medium=medium)
        framework.add_device(ue, phase_fraction=0.4 + 0.2 * i)
    return sim, framework


class TestSnapshot:
    def test_reflects_live_state(self, rig):
        sim, framework = rig
        dashboard = RelayDashboard(framework.relays["relay-0"])
        sim.run_until(T + 30.0)
        snap = dashboard.snapshot()
        assert snap.device_id == "relay-0"
        assert snap.connected_ues == 2
        assert snap.beats_collected_total == 2
        assert snap.aggregated_uplinks == 1
        assert snap.free_data_mb_earned == pytest.approx(2.0)
        assert snap.battery_level is not None and snap.battery_level < 1.0
        assert snap.advertising and not snap.resigned

    def test_summary_lines_render(self, rig):
        sim, framework = rig
        dashboard = RelayDashboard(framework.relays["relay-0"])
        sim.run_until(T + 30.0)
        lines = dashboard.snapshot().summary_lines()
        assert any("collecting" in line for line in lines)
        assert any("2 MB free data" in line.replace("  ", " ") or
                   "2 MB" in line for line in lines)
        assert any("battery" in line for line in lines)

    def test_resigned_status_shown(self, rig):
        sim, framework = rig
        agent = framework.relays["relay-0"]
        dashboard = RelayDashboard(agent)
        sim.run_until(10.0)
        agent.resign()
        snap = dashboard.snapshot()
        assert snap.resigned
        assert not snap.advertising
        assert any("resigned" in line for line in snap.summary_lines())


class TestHistory:
    def test_watch_accumulates_snapshots(self, rig):
        sim, framework = rig
        dashboard = RelayDashboard(framework.relays["relay-0"])
        dashboard.watch(period_s=T / 2)
        sim.run_until(3 * T)
        assert len(dashboard.history) == 6
        series = dashboard.collected_series()
        assert series == sorted(series)  # collected total never decreases
        assert series[-1] >= 4  # 2 UEs × ≥2 periods

    def test_no_rewards_ledger_is_safe(self, rig):
        sim, framework = rig
        from repro.core.relay import RelayAgent
        from repro.device import Smartphone as Phone

        agent = framework.relays["relay-0"]
        agent.rewards = None
        dashboard = RelayDashboard(agent, rewards=None)
        snap = dashboard.snapshot()
        assert snap.credits_earned == 0.0
