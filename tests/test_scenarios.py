"""Tests for the canned scenarios (the bench workhorses)."""

import pytest

from repro.scenarios import build_network, run_crowd_scenario, run_relay_scenario
from repro.workload.apps import STANDARD_APP

T = STANDARD_APP.heartbeat_period_s


class TestBuildNetwork:
    def test_wiring_complete(self):
        context = build_network(seed=1)
        assert context.medium is not None
        assert context.basestation.ledger is context.ledger

    def test_no_d2d_for_baseline(self):
        context = build_network(technology=None)
        assert context.medium is None


class TestRelayScenario:
    def test_d2d_mode_aggregates(self):
        result = run_relay_scenario(n_ues=1, periods=3, mode="d2d")
        assert result.framework is not None
        assert result.framework.total_aggregated_uplinks() == 3
        assert result.on_time_fraction() == 1.0
        assert len(result.context.server.records) == 6  # 3 own + 3 forwarded

    def test_original_mode_sends_individually(self):
        result = run_relay_scenario(n_ues=1, periods=3, mode="original")
        assert result.original is not None
        assert result.original.total_sends == 6
        assert result.on_time_fraction() == 1.0

    def test_equal_beat_counts_across_modes(self):
        """Both modes must deliver the same workload — else comparisons lie."""
        d2d = run_relay_scenario(n_ues=2, periods=4, mode="d2d")
        base = run_relay_scenario(n_ues=2, periods=4, mode="original")
        assert len(d2d.context.server.records) == len(base.context.server.records)

    def test_signaling_halved_with_one_ue(self):
        """The paper's headline: >50% signaling reduction (Fig. 15)."""
        d2d = run_relay_scenario(n_ues=1, periods=5, mode="d2d")
        base = run_relay_scenario(n_ues=1, periods=5, mode="original")
        assert d2d.total_l3() <= base.total_l3() * 0.5

    def test_ue_energy_saving_massive(self):
        d2d = run_relay_scenario(n_ues=1, periods=7, mode="d2d")
        base = run_relay_scenario(n_ues=1, periods=7, mode="original")
        assert d2d.ue_energy_uah() < base.ue_energy_uah() * 0.5

    def test_system_energy_saving_grows_with_periods(self):
        savings = []
        for periods in (1, 4, 7):
            d2d = run_relay_scenario(n_ues=1, periods=periods, mode="d2d")
            base = run_relay_scenario(n_ues=1, periods=periods, mode="original")
            savings.append(1 - d2d.system_energy_uah() / base.system_energy_uah())
        assert savings[0] < savings[1] < savings[2]
        assert abs(savings[0]) < 0.1  # ≈ break-even at one transmission

    def test_heartbeat_bytes_override(self):
        result = run_relay_scenario(n_ues=1, periods=2, heartbeat_bytes=108)
        assert result.app.heartbeat_bytes == 108

    def test_deterministic_under_seed(self):
        a = run_relay_scenario(n_ues=2, periods=3, seed=5)
        b = run_relay_scenario(n_ues=2, periods=3, seed=5)
        assert a.system_energy_uah() == b.system_energy_uah()
        assert a.total_l3() == b.total_l3()

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            run_relay_scenario(n_ues=-1)
        with pytest.raises(ValueError):
            run_relay_scenario(periods=0)
        with pytest.raises(ValueError):
            run_relay_scenario(mode="hybrid")

    def test_custom_ue_phases(self):
        result = run_relay_scenario(
            n_ues=2, periods=2, ue_phases=[0.4, 0.6], mode="d2d"
        )
        assert result.framework.total_beats_forwarded() == 4

    def test_zero_ues_relay_only(self):
        result = run_relay_scenario(n_ues=0, periods=2, mode="d2d")
        assert result.framework.total_aggregated_uplinks() == 2
        assert result.ue_energy_uah() == 0.0


class TestCrowdScenario:
    def test_crowd_runs_and_delivers(self):
        result = run_crowd_scenario(
            n_devices=12, relay_fraction=0.25, duration_s=600.0, seed=3
        )
        assert result.metrics.delivery.received > 0
        assert result.on_time_fraction() == 1.0
        assert len(result.relay_ids) == 3
        assert len(result.ue_ids) == 9

    def test_original_crowd(self):
        result = run_crowd_scenario(
            n_devices=12, relay_fraction=0.25, duration_s=600.0, mode="original",
            seed=3,
        )
        assert result.original is not None
        assert result.relay_ids == []

    def test_crowd_cuts_signaling(self):
        d2d = run_crowd_scenario(n_devices=16, relay_fraction=0.25,
                                 duration_s=600.0, seed=4)
        base = run_crowd_scenario(n_devices=16, relay_fraction=0.25,
                                  duration_s=600.0, mode="original", seed=4)
        assert d2d.total_l3() < base.total_l3()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            run_crowd_scenario(relay_fraction=1.5)
        with pytest.raises(ValueError):
            run_crowd_scenario(mode="x")
