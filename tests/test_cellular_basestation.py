"""Unit tests for the base station and storm metrics."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import Direction, L3MessageType, SignalingLedger


@pytest.fixture
def basestation(sim, ledger):
    return BaseStation(sim, ledger=ledger, control_channel_capacity_msgs_per_s=2.0)


def _flood(ledger: SignalingLedger, start: float, count: int, spacing: float) -> None:
    for i in range(count):
        ledger.record(
            start + i * spacing,
            "dev",
            L3MessageType.RRC_CONNECTION_REQUEST,
            Direction.UPLINK,
        )


class TestDelivery:
    def test_sink_receives_payload_after_core_latency(self, sim, basestation):
        seen = []
        basestation.attach_sink(lambda t, d, b, p: seen.append((t, d, b, p)))
        basestation.deliver_uplink("dev", 54, "payload")
        sim.run_until(1.0)
        assert seen == [(basestation.core_latency_s, "dev", 54, "payload")]

    def test_multiple_sinks_all_fire(self, sim, basestation):
        a, b = [], []
        basestation.attach_sink(lambda *args: a.append(args))
        basestation.attach_sink(lambda *args: b.append(args))
        basestation.deliver_uplink("dev", 54, None)
        sim.run_until(1.0)
        assert len(a) == 1 and len(b) == 1

    def test_uplink_statistics(self, sim, basestation):
        basestation.deliver_uplink("a", 54, None)
        basestation.deliver_uplink("a", 100, None)
        basestation.deliver_uplink("b", 10, None)
        assert basestation.uplinks == 3
        assert basestation.bytes_received == 164
        assert basestation.uplinks_by_device == {"a": 2, "b": 1}

    def test_inter_uplink_times(self, sim, basestation):
        basestation.deliver_uplink("a", 1, None)
        sim.run_until(5.0)
        basestation.deliver_uplink("a", 1, None)
        sim.run_until(7.0)
        basestation.deliver_uplink("a", 1, None)
        assert basestation.inter_uplink_times() == [5.0, 2.0]


class TestStormMetrics:
    def test_peak_rate_over_windows(self, basestation, ledger):
        _flood(ledger, 0.0, 30, 0.1)  # 30 messages in 3 s
        assert basestation.peak_signaling_rate(window_s=10.0) == pytest.approx(3.0)

    def test_is_storming_when_capacity_exceeded(self, basestation, ledger):
        _flood(ledger, 0.0, 30, 0.1)
        assert basestation.is_storming(window_s=10.0)

    def test_not_storming_under_capacity(self, basestation, ledger):
        _flood(ledger, 0.0, 5, 10.0)  # sparse
        assert not basestation.is_storming(window_s=10.0)

    def test_headroom_sign(self, basestation, ledger):
        _flood(ledger, 0.0, 30, 0.1)
        assert basestation.storm_headroom(window_s=10.0) < 0
        ledger2 = SignalingLedger()
        bs2 = BaseStation(basestation.sim, ledger=ledger2,
                          control_channel_capacity_msgs_per_s=100.0)
        _flood(ledger2, 0.0, 3, 1.0)
        assert bs2.storm_headroom(window_s=10.0) > 0.9

    def test_peak_rate_empty_ledger_is_zero(self, basestation):
        assert basestation.peak_signaling_rate() == 0.0

    def test_invalid_window_rejected(self, basestation):
        with pytest.raises(ValueError):
            basestation.peak_signaling_rate(window_s=0.0)

    def test_signaling_total_mirrors_ledger(self, basestation, ledger):
        _flood(ledger, 0.0, 4, 1.0)
        assert basestation.signaling_total() == 4

    def test_signaling_rate_window(self, basestation, ledger):
        _flood(ledger, 0.0, 10, 1.0)
        assert basestation.signaling_rate(0.0, 10.0) == pytest.approx(1.0)
