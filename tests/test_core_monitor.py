"""Unit tests for the Message Monitor component."""

import pytest

from repro.core.monitor import MessageMonitor
from repro.workload.apps import STANDARD_APP, WECHAT
from repro.workload.messages import MessageKind, PeriodicMessage


def make_message(**overrides):
    defaults = dict(
        app="standard",
        origin_device="dev",
        size_bytes=54,
        created_at_s=0.0,
        period_s=270.0,
        expiry_s=270.0,
    )
    defaults.update(overrides)
    return PeriodicMessage(**defaults)


class TestAppRegistration:
    def test_registered_app_beats_reach_handler(self, sim):
        seen = []
        monitor = MessageMonitor(sim, "dev", handler=seen.append)
        monitor.register_app(STANDARD_APP, phase_fraction=0.0)
        sim.run_until(270.0 + 1)
        assert len(seen) == 2
        assert all(m.app == "standard" for m in seen)

    def test_duplicate_app_rejected(self, sim):
        monitor = MessageMonitor(sim, "dev")
        monitor.register_app(STANDARD_APP)
        with pytest.raises(ValueError):
            monitor.register_app(STANDARD_APP)

    def test_multiple_apps_coexist(self, sim):
        seen = []
        monitor = MessageMonitor(sim, "dev", handler=seen.append)
        monitor.register_app(STANDARD_APP, phase_fraction=0.0)
        monitor.register_app(WECHAT, phase_fraction=0.1)
        sim.run_until(300.0)
        assert {m.app for m in seen} == {"standard", "wechat"}

    def test_unstarted_generator(self, sim):
        seen = []
        monitor = MessageMonitor(sim, "dev", handler=seen.append)
        generator = monitor.register_app(STANDARD_APP, start=False)
        sim.run_until(300.0)
        assert seen == []
        generator.start()
        sim.run_until(600.0)
        assert seen

    def test_stop_halts_all_generators(self, sim):
        seen = []
        monitor = MessageMonitor(sim, "dev", handler=seen.append)
        monitor.register_app(STANDARD_APP, phase_fraction=0.0)
        sim.run_until(1.0)
        monitor.stop()
        sim.run_until(1000.0)
        assert len(seen) == 1


class TestInterception:
    def test_relayable_message_forwarded(self, sim):
        seen = []
        monitor = MessageMonitor(sim, "dev", handler=seen.append)
        monitor.submit(make_message())
        assert len(seen) == 1
        assert monitor.intercepted == 1

    def test_not_relayable_message_filtered(self, sim):
        seen = []
        monitor = MessageMonitor(sim, "dev", handler=seen.append)
        monitor.submit(make_message(requires_reply=True))
        assert seen == []
        assert monitor.rejected_not_relayable == 1
        assert len(monitor.not_relayable()) == 1

    def test_extension_messages_supported(self, sim):
        """Paper conclusion: ads and diagnostics can ride the framework."""
        seen = []
        monitor = MessageMonitor(sim, "dev", handler=seen.append)
        monitor.submit(make_message(kind=MessageKind.ADVERTISEMENT))
        monitor.submit(make_message(kind=MessageKind.DIAGNOSTIC))
        assert [m.kind for m in seen] == [
            MessageKind.ADVERTISEMENT,
            MessageKind.DIAGNOSTIC,
        ]

    def test_bytes_counted_even_for_filtered(self, sim):
        monitor = MessageMonitor(sim, "dev")
        monitor.submit(make_message(size_bytes=100))
        monitor.submit(make_message(size_bytes=50, requires_reply=True))
        assert monitor.bytes_seen == 150

    def test_no_handler_is_safe(self, sim):
        monitor = MessageMonitor(sim, "dev")
        monitor.submit(make_message())
        assert monitor.intercepted == 1
