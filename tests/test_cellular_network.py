"""Tests for the multi-cell network."""

import pytest

from repro.cellular.network import CellularNetwork, CombinedLedger
from repro.cellular.signaling import Direction, L3MessageType, SignalingLedger
from repro.core.framework import HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s


class TestAttachment:
    def test_nearest_cell_wins(self, sim):
        network = CellularNetwork(sim, [(0.0, 0.0), (100.0, 0.0)])
        assert network.attach("a", (10.0, 0.0)).cell_id == "cell-0"
        assert network.attach("b", (90.0, 0.0)).cell_id == "cell-1"
        assert network.cell_of("a").cell_id == "cell-0"

    def test_unattached_lookup_raises(self, sim):
        network = CellularNetwork(sim, [(0.0, 0.0)])
        with pytest.raises(KeyError):
            network.cell_of("ghost")

    def test_empty_network_rejected(self, sim):
        with pytest.raises(ValueError):
            CellularNetwork(sim, [])

    def test_attached_by_cell(self, sim):
        network = CellularNetwork(sim, [(0.0, 0.0), (100.0, 0.0)])
        network.attach("a", (1.0, 0.0))
        network.attach("b", (2.0, 0.0))
        network.attach("c", (99.0, 0.0))
        assert network.attached_by_cell() == {"cell-0": 2, "cell-1": 1}


class TestCombinedLedger:
    def test_aggregates_counts(self):
        a, b = SignalingLedger(), SignalingLedger()
        a.record(1.0, "dev", L3MessageType.RRC_CONNECTION_REQUEST,
                 Direction.UPLINK)
        b.record(2.0, "dev", L3MessageType.RRC_CONNECTION_REQUEST,
                 Direction.UPLINK)
        b.record_cycle("dev")
        combined = CombinedLedger([a, b])
        assert combined.total == 2
        assert len(combined) == 2
        assert combined.count_for("dev") == 2
        assert combined.cycles_for("dev") == 1
        assert combined.total_cycles == 1

    def test_messages_merged_in_time_order(self):
        a, b = SignalingLedger(), SignalingLedger()
        b.record(1.0, "x", L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK)
        a.record(2.0, "y", L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK)
        combined = CombinedLedger([a, b])
        assert [m.time_s for m in combined.messages()] == [1.0, 2.0]
        assert [m.device_id for m in combined.messages("x")] == ["x"]


class TestMultiCellEndToEnd:
    def _build(self, mode="d2d", seed=0):
        sim = Simulator(seed=seed)
        network = CellularNetwork(sim, [(0.0, 0.0), (300.0, 0.0)])
        server = IMServer(sim)
        network.attach_sink_everywhere(server.uplink_sink)
        medium = D2DMedium(sim, WIFI_DIRECT)
        framework = HeartbeatRelayFramework([], app=STANDARD_APP)
        # a 5-phone cluster near each cell; first phone of each is a relay
        for c, center in enumerate((0.0, 300.0)):
            for i in range(5):
                device_id = f"c{c}-dev{i}"
                position = (center + float(i), 1.0)
                cell = network.attach(device_id, position)
                is_relay = i == 0 and mode == "d2d"
                phone = Smartphone(
                    sim, device_id, mobility=StaticMobility(position),
                    role=(Role.RELAY if is_relay
                          else (Role.UE if mode == "d2d" else Role.STANDALONE)),
                    ledger=cell.ledger, basestation=cell.basestation,
                    d2d_medium=medium,
                )
                framework.add_device(
                    phone, phase_fraction=0.0 if is_relay else 0.3 + 0.1 * i
                )
        sim.run_until(3 * T + 30.0)
        return network, server, framework

    def test_load_lands_in_the_right_cells(self):
        network, server, framework = self._build(mode="original")
        load = network.load_by_cell()
        assert load["cell-0"] > 0 and load["cell-1"] > 0
        # symmetric clusters → symmetric load
        assert load["cell-0"] == load["cell-1"]

    def test_framework_relieves_each_cell(self):
        base_net, __, __ = self._build(mode="original")
        d2d_net, server, framework = self._build(mode="d2d")
        for cell_id in ("cell-0", "cell-1"):
            assert d2d_net.load_by_cell()[cell_id] < (
                0.6 * base_net.load_by_cell()[cell_id]
            )
        assert framework.total_beats_forwarded() >= 8 * 3  # 8 UEs × 3 periods

    def test_combined_ledger_feeds_metrics(self):
        network, server, framework = self._build(mode="d2d")
        from repro.metrics import collect_metrics

        metrics = collect_metrics(
            framework.devices.values(), network.combined_ledger, server
        )
        assert metrics.total_l3_messages == sum(
            network.load_by_cell().values()
        )
        # UEs added no signaling in either cell
        for device_id, device in metrics.devices.items():
            if device.role == "ue":
                assert device.l3_messages == 0

    def test_hottest_cell_and_storm_flags(self):
        network, server, framework = self._build(mode="original")
        hottest_id, hottest_load = network.hottest_cell()
        assert hottest_id in ("cell-0", "cell-1")
        assert hottest_load == max(network.load_by_cell().values())
        assert isinstance(network.storming_cells(), list)
