"""Tests for metric export (JSON / CSV)."""

import csv
import json

import pytest

from repro.scenarios import run_relay_scenario


@pytest.fixture(scope="module")
def metrics():
    return run_relay_scenario(n_ues=1, periods=2).metrics


class TestJsonExport:
    def test_roundtrips_through_json(self, metrics):
        data = json.loads(metrics.to_json())
        assert data["total_l3_messages"] == metrics.total_l3_messages
        assert set(data["devices"]) == set(metrics.devices)

    def test_delivery_block_present(self, metrics):
        data = metrics.to_dict()
        assert data["delivery"]["on_time_fraction"] == 1.0
        assert data["delivery"]["received"] == 4  # 2 own + 2 forwarded

    def test_device_fields_complete(self, metrics):
        data = metrics.to_dict()
        ue = data["devices"]["ue-0"]
        assert ue["role"] == "ue"
        assert ue["energy_uah"] > 0
        assert "energy_breakdown" in ue

    def test_json_is_deterministic(self, metrics):
        assert metrics.to_json() == metrics.to_json()


class TestCsvExport:
    def test_rows_have_header_and_devices(self, metrics):
        rows = metrics.to_csv_rows()
        assert rows[0][0] == "device_id"
        assert len(rows) == 1 + len(metrics.devices)

    def test_write_csv(self, metrics, tmp_path):
        path = tmp_path / "run.csv"
        metrics.write_csv(str(path))
        with open(path) as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0][0] == "device_id"
        device_ids = {row[0] for row in parsed[1:]}
        assert device_ids == set(metrics.devices)

    def test_rows_sorted_by_device(self, metrics):
        rows = metrics.to_csv_rows()[1:]
        ids = [row[0] for row in rows]
        assert ids == sorted(ids)
