"""Hypothesis stateful tests: protocol machines under arbitrary op orders.

Rule-based state machines drive the RRC machine and the feedback tracker
through random interleavings of their operations and check the invariants
after every step — the class of bugs (timer races, double-counting,
stuck states) that example-based tests rarely reach.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
import hypothesis.strategies as st

from repro.cellular.rrc import RrcState, RrcStateMachine, WCDMA_PROFILE
from repro.cellular.signaling import SignalingLedger
from repro.core.feedback import FeedbackTracker
from repro.sim.engine import Simulator
from repro.workload.messages import PeriodicMessage


class RrcMachine(RuleBasedStateMachine):
    """Random sends / waits / force-releases against the RRC machine."""

    @initialize()
    def setup(self):
        self.sim = Simulator(seed=0)
        self.ledger = SignalingLedger()
        self.machine = RrcStateMachine(
            self.sim, "dev", profile=WCDMA_PROFILE, ledger=self.ledger
        )
        self.requests = 0

    @rule(payload=st.integers(min_value=1, max_value=500))
    def send(self, payload):
        self.machine.request_transmission(payload, lambda ready: None)
        self.requests += 1

    @rule(dt=st.floats(min_value=0.01, max_value=30.0))
    def wait(self, dt):
        self.sim.run_until(self.sim.now + dt)

    @rule()
    def force_release(self):
        self.machine.force_release()

    @invariant()
    def promotions_bound_demotions(self):
        # a demotion needs a matching promotion; force_release may strand
        # a promotion without a demotion, never the reverse
        assert self.machine.demotions <= self.machine.promotions

    @invariant()
    def cycles_bound_by_requests(self):
        assert self.ledger.cycles_for("dev") <= self.requests

    @invariant()
    def state_is_legal(self):
        assert self.machine.state in (
            RrcState.IDLE, RrcState.CONNECTING, RrcState.CONNECTED,
        )

    @invariant()
    def connected_time_nonnegative(self):
        assert self.machine.connected_time_s >= 0.0

    def teardown(self):
        # drain: the machine must always come back to rest
        self.sim.run_until(self.sim.now + 100.0)
        assert self.machine.state == RrcState.IDLE


TestRrcStateMachine = RrcMachine.TestCase
TestRrcStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


class FeedbackMachine(RuleBasedStateMachine):
    """Random track / ack / fail / wait against the feedback tracker."""

    @initialize()
    def setup(self):
        self.sim = Simulator(seed=0)
        self.fallbacks = []
        self.tracker = FeedbackTracker(
            self.sim, on_fallback=self.fallbacks.append
        )
        self.tracked = []

    @rule(expiry=st.floats(min_value=5.0, max_value=200.0))
    def track(self, expiry):
        message = PeriodicMessage(
            app="standard", origin_device="ue", size_bytes=54,
            created_at_s=self.sim.now, period_s=270.0, expiry_s=expiry,
        )
        self.tracker.track(message)
        self.tracked.append(message)

    @rule(index=st.integers(min_value=0, max_value=200))
    def ack_some(self, index):
        if self.tracked:
            message = self.tracked[index % len(self.tracked)]
            self.tracker.ack([message.seq])

    @rule(index=st.integers(min_value=0, max_value=200))
    def fail_some(self, index):
        if self.tracked:
            message = self.tracked[index % len(self.tracked)]
            self.tracker.fail_now(message.seq)

    @rule(dt=st.floats(min_value=0.1, max_value=120.0))
    def wait(self, dt):
        self.sim.run_until(self.sim.now + dt)

    @invariant()
    def accounting_conserves(self):
        settled = self.tracker.acks_received + self.tracker.fallbacks_fired
        assert settled + self.tracker.pending_count == len(self.tracked)

    @invariant()
    def no_double_fallback(self):
        seqs = [m.seq for m in self.fallbacks]
        assert len(seqs) == len(set(seqs))

    def teardown(self):
        # after enough time every beat is settled exactly once
        self.sim.run_until(self.sim.now + 1000.0)
        settled = self.tracker.acks_received + self.tracker.fallbacks_fired
        assert settled == len(self.tracked)
        assert self.tracker.pending_count == 0


TestFeedbackStateMachine = FeedbackMachine.TestCase
TestFeedbackStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
