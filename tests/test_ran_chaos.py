"""The cellular fault domain: RAN state machine, rejection paths, replay.

Pins the tentpole contracts end to end:

- the :class:`BaseStation` RAN health machine (outage / brown-out /
  restore) and its admission control;
- the modem's two rejection paths — synchronous admission rejection
  (no RRC, no energy) and mid-flight loss when the cell dies during
  promotion/transmit;
- :class:`ChaosEvent` tie-order: events at identical timestamps keep
  their injection order via the explicit ``seq`` key (regression for
  the time_s-only sort ambiguity);
- the differential gate: seeded ``ran-outage`` and ``paging-storm``
  runs audit clean and replay byte-identically.
"""

import random

import pytest

from repro.cellular.basestation import BaseStation, RanState
from repro.cellular.modem import CellularModem
from repro.faults.chaos import ChaosEngine, ChaosEvent
from repro.faults.harness import run_ran_differential
from repro.scenarios import run_relay_scenario
from repro.sim.engine import Simulator


class TestRanStateMachine:
    def test_outage_restore_cycle_records_interval(self, sim, ledger):
        basestation = BaseStation(sim, ledger=ledger)
        assert basestation.ran_state is RanState.UP
        assert basestation.accepts_signaling()
        sim.schedule(10.0, basestation.outage)
        sim.schedule(25.0, basestation.restore)
        sim.run_until(30.0)
        assert basestation.ran_state is RanState.UP
        assert basestation.outage_intervals == [[10.0, 25.0]]
        assert basestation.outage_time_s == pytest.approx(15.0)
        assert basestation.outage_count == 1

    def test_brownout_degrades_but_stays_attachable(self, sim, ledger):
        basestation = BaseStation(sim, ledger=ledger)
        basestation.brownout(capacity_factor=0.5, extra_setup_s=2.0)
        assert basestation.ran_state is RanState.BROWNOUT
        assert basestation.accepts_signaling()
        assert basestation.extra_setup_delay_s() == 2.0
        basestation.restore()
        assert basestation.extra_setup_delay_s() == 0.0
        assert basestation.brownout_capacity_factor == 1.0

    def test_brownout_never_preempts_outage(self, sim, ledger):
        basestation = BaseStation(sim, ledger=ledger)
        basestation.outage()
        basestation.brownout(capacity_factor=0.5)
        assert basestation.ran_state is RanState.DOWN
        assert not basestation.accepts_signaling()

    def test_listeners_see_old_and_new_state(self, sim, ledger):
        basestation = BaseStation(sim, ledger=ledger)
        seen = []
        basestation.subscribe_ran(
            lambda time_s, old, new: seen.append((time_s, old, new))
        )
        sim.schedule(5.0, basestation.outage)
        sim.schedule(8.0, basestation.restore)
        sim.run_until(10.0)
        assert seen == [
            (5.0, RanState.UP, RanState.DOWN),
            (8.0, RanState.DOWN, RanState.UP),
        ]


class TestAdmissionControl:
    def test_up_always_admits(self, sim, ledger):
        basestation = BaseStation(sim, ledger=ledger)
        assert basestation.admit_uplink("dev") is None
        assert basestation.uplinks_rejected == 0

    def test_down_rejects_every_uplink(self, sim, ledger):
        basestation = BaseStation(sim, ledger=ledger)
        basestation.outage()
        assert basestation.admit_uplink("dev") == "ran-down"
        assert basestation.uplinks_rejected == 1
        assert basestation.rejections_by_cause == {"ran-down": 1}

    def test_brownout_rrc_reject_gate(self, sim, ledger):
        basestation = BaseStation(sim, ledger=ledger)
        basestation.brownout(capacity_factor=1.0)
        basestation.rrc_reject_gate = lambda device_id: True
        assert basestation.admit_uplink("dev") == "rrc-reject"
        assert basestation.rrc_rejections == 1

    def test_brownout_windowed_congestion(self, sim, ledger):
        basestation = BaseStation(
            sim, ledger=ledger, control_channel_capacity_msgs_per_s=2.0
        )
        basestation.brownout(capacity_factor=0.5)  # cap: 1 admit per window
        assert basestation.admit_uplink("a") is None
        assert basestation.admit_uplink("b") == "ran-congested"
        sim.schedule(2.0, lambda: None)
        sim.run_until(2.0)  # the admission window has slid past
        assert basestation.admit_uplink("c") is None


class TestModemRejectionPaths:
    def test_admission_rejection_is_synchronous_and_free(self, sim, ledger):
        """A rejected uplink spends no RRC signaling and no energy."""
        basestation = BaseStation(sim, ledger=ledger)
        basestation.outage()
        modem = CellularModem(sim, "dev", ledger=ledger, basestation=basestation)
        causes = []
        result = modem.send(54, on_rejected=lambda r: causes.append(r.reject_cause))
        assert result.rejected
        assert causes == ["ran-down"]
        sim.run_until(60.0)
        assert ledger.cycles_for("dev") == 0
        assert basestation.uplinks == 0

    def test_mid_flight_outage_rejects_after_admission(self, sim, ledger):
        """The cell dying during promotion loses the payload, accounted."""
        basestation = BaseStation(sim, ledger=ledger)
        modem = CellularModem(sim, "dev", ledger=ledger, basestation=basestation)
        causes = []
        result = modem.send(54, on_rejected=lambda r: causes.append(r.reject_cause))
        assert not result.rejected  # admitted while the cell was up
        sim.schedule(1.0, basestation.outage)  # delivery would land at 2.0
        sim.run_until(60.0)
        assert result.rejected
        assert not result.delivered
        assert causes == ["ran-down"]
        assert basestation.uplinks == 0


class TestChaosEventTieOrder:
    def test_identical_timestamps_keep_injection_order(self):
        """Regression: time_s-only sorting is ambiguous at shared instants."""
        engine = ChaosEngine("ran-outage", seed=0)
        engine.sim = Simulator(seed=0)  # clock pinned at 0.0
        for i in range(5):
            engine._record("bs-outage", f"cell-{i}")
        events = engine.report.events
        assert all(e.time_s == 0.0 for e in events)
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]
        shuffled = list(events)
        random.Random(7).shuffle(shuffled)
        assert sorted(shuffled, key=lambda e: e.sort_key) == events

    def test_sort_key_orders_time_first_then_seq(self):
        early_late_seq = ChaosEvent(time_s=1.0, kind="a", target="x", seq=9)
        late_early_seq = ChaosEvent(time_s=2.0, kind="b", target="x", seq=1)
        assert early_late_seq.sort_key < late_early_seq.sort_key

    def test_ordered_events_survive_report_roundtrip(self):
        engine = ChaosEngine("ran-outage", seed=0)
        engine.sim = Simulator(seed=0)
        engine._record("bs-outage", "cell")
        engine._record("bs-restore", "cell")
        ordered = engine.report.ordered_events()
        assert [(e.kind, e.seq) for e in ordered] == [
            ("bs-outage", 1), ("bs-restore", 2),
        ]


class TestRanReplayDeterminism:
    def test_degraded_ran_replays_byte_identically(self):
        def run():
            return run_relay_scenario(
                n_ues=2, periods=4, seed=3,
                chaos="degraded-ran", chaos_seed=5,
            )

        first, second = run(), run()
        tuples = lambda r: [
            (e.time_s, e.seq, e.kind, e.target, e.detail)
            for e in r.chaos_report.events
        ]
        assert tuples(first) == tuples(second)
        assert (first.metrics.to_comparable_dict()
                == second.metrics.to_comparable_dict())
        assert (first.metrics.faults.to_dict()
                == second.metrics.faults.to_dict())


class TestRanDifferentialGate:
    @pytest.mark.parametrize("profile", ["ran-outage", "paging-storm"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_pair_scenario_passes(self, profile, seed):
        case = run_ran_differential(
            scenario="pair", profile=profile, seed=seed,
        )
        assert case.passed, case.summary()
        assert case.replay_identical
        assert case.chaos_violations == 0
        assert case.chaos_deadline_safe == 1.0

    def test_crowd_scenario_passes_under_paging_storm(self):
        case = run_ran_differential(
            scenario="crowd", profile="paging-storm", seed=1,
            n_devices=12, duration_s=900.0,
        )
        assert case.passed, case.summary()
        assert case.replay_identical
