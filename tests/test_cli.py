"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {
            name
            for action in parser._subparsers._actions  # noqa: SLF001
            if hasattr(action, "choices") and action.choices
            for name in action.choices
        }
        assert {"pair", "crowd", "sweep", "breakeven", "table1",
                "calibration"} <= actions

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestCommands:
    def test_pair(self, capsys):
        assert main(["pair", "--ues", "1", "--periods", "2"]) == 0
        out = capsys.readouterr().out
        assert "original" in out and "d2d" in out
        assert "signaling saved" in out

    def test_pair_headline_numbers_present(self, capsys):
        main(["pair", "--periods", "5"])
        out = capsys.readouterr().out
        assert "50.0%" in out  # the signaling headline

    def test_crowd(self, capsys):
        assert main(["crowd", "--devices", "10", "--duration", "600"]) == 0
        out = capsys.readouterr().out
        assert "beats via D2D" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--max-periods", "3"]) == 0
        out = capsys.readouterr().out
        assert "system saved %" in out

    def test_breakeven(self, capsys):
        assert main(["breakeven"]) == 0
        out = capsys.readouterr().out
        assert "beats/session" in out

    def test_table1(self, capsys):
        assert main(["table1", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "wechat" in out and "Paper" in out

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "Cellular tail" in out and "455.23" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "--ues", "1", "--periods", "2",
                     "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "relay-0" in out and "ue-0" in out
        assert "d2d send" in out  # the legend
