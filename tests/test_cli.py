"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {
            name
            for action in parser._subparsers._actions  # noqa: SLF001
            if hasattr(action, "choices") and action.choices
            for name in action.choices
        }
        assert {"pair", "crowd", "sweep", "grid", "chaos", "breakeven",
                "table1", "calibration"} <= actions

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestCommands:
    def test_pair(self, capsys):
        assert main(["pair", "--ues", "1", "--periods", "2"]) == 0
        out = capsys.readouterr().out
        assert "original" in out and "d2d" in out
        assert "signaling saved" in out

    def test_pair_headline_numbers_present(self, capsys):
        main(["pair", "--periods", "5"])
        out = capsys.readouterr().out
        assert "50.0%" in out  # the signaling headline

    def test_crowd(self, capsys):
        assert main(["crowd", "--devices", "10", "--duration", "600"]) == 0
        out = capsys.readouterr().out
        assert "beats via D2D" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--max-periods", "3"]) == 0
        out = capsys.readouterr().out
        assert "system saved %" in out
        assert "sweep: 3/3 points" in out  # telemetry summary line

    def test_sweep_parallel_with_cache(self, capsys, tmp_path):
        args = ["sweep", "--max-periods", "2", "--workers", "2",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "process-pool" in cold and "2 miss" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "2 hit" in warm
        # the numbers themselves are identical either way
        assert cold.split("sweep:")[0] == warm.split("sweep:")[0]

    def test_grid(self, capsys, tmp_path):
        assert main(["grid", "--distances", "1,10", "--periods", "1,2",
                     "--workers", "2", "--cache-dir", str(tmp_path),
                     "--timings"]) == 0
        out = capsys.readouterr().out
        assert "distance \\ k" in out
        assert "per-point wall-clock timings" in out
        assert "sweep: 4/4 points" in out

    def test_breakeven(self, capsys):
        assert main(["breakeven"]) == 0
        out = capsys.readouterr().out
        assert "beats/session" in out

    def test_table1(self, capsys):
        assert main(["table1", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "wechat" in out and "Paper" in out

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "Cellular tail" in out and "455.23" in out

    def test_timeline(self, capsys):
        assert main(["timeline", "--ues", "1", "--periods", "2",
                     "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "relay-0" in out and "ue-0" in out
        assert "d2d send" in out  # the legend



class TestDispatchFlags:
    def test_sweep_and_grid_accept_dispatch_flags(self):
        parser = build_parser()
        for command in ("sweep", "grid"):
            args = parser.parse_args(
                [command, "--backend", "serial", "--max-retries", "2",
                 "--keep-going"]
            )
            assert args.backend == "serial"
            assert args.max_retries == 2
            assert args.keep_going is True

    def test_grid_shared_dir_backend(self, capsys, tmp_path):
        assert main(["grid", "--distances", "1,10", "--periods", "1,2",
                     "--backend", "shared-dir",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shared-dir" in out
        assert "distance \\ k" in out

    def test_grid_status_reports_progress(self, capsys, tmp_path):
        main(["grid", "--distances", "1,10", "--periods", "1,2",
              "--backend", "shared-dir", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["grid", "--status", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "status: 4/4 points done" in out
        assert "total=4" in out  # the manifest line

    def test_grid_status_missing_dir_exits_2(self, capsys, tmp_path):
        assert main(["grid", "--status", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert "no such sweep cache directory" in err


class TestChaosFlags:
    def test_pair_with_chaos_profile_audits(self, capsys):
        assert main(["pair", "--ues", "1", "--periods", "2",
                     "--chaos-profile", "mild", "--chaos-seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "chaos[mild seed=3]" in out
        assert "audit OK" in out

    def test_chaos_subcommand_passes(self, capsys):
        assert main(["chaos", "--profiles", "mild", "--seeds", "0",
                     "--ues", "1", "--periods", "2"]) == 0
        out = capsys.readouterr().out
        assert "differential chaos harness" in out
        assert "PASS" in out
        assert "1/1 cases passed" in out

    def test_chaos_unknown_profile_errors(self):
        with pytest.raises(ValueError, match="unknown chaos profile"):
            main(["chaos", "--profiles", "nope", "--seeds", "0"])


class TestChannelFlags:
    def test_pair_with_sinr_channel_prints_summary(self, capsys):
        assert main(["pair", "--ues", "2", "--periods", "2",
                     "--channel", "sinr"]) == 0
        out = capsys.readouterr().out
        assert "channel (centralized, 6 RBs)" in out
        assert "mean SINR" in out

    def test_crowd_with_channel_knobs(self, capsys):
        assert main(["crowd", "--devices", "12", "--duration", "300",
                     "--channel", "sinr", "--allocator", "message-passing",
                     "--num-rbs", "4"]) == 0
        out = capsys.readouterr().out
        assert "channel (message-passing, 4 RBs)" in out

    def test_fixed_channel_prints_no_summary(self, capsys):
        assert main(["crowd", "--devices", "10", "--duration", "300",
                     "--channel", "fixed"]) == 0
        assert "channel (" not in capsys.readouterr().out

    def test_shadowing_sigma_flag_accepted(self, capsys):
        assert main(["pair", "--ues", "1", "--periods", "2",
                     "--shadowing-sigma", "8.0"]) == 0

    def test_runner_sweep_forwards_channel_params(self, capsys):
        assert main(["sweep", "--runner", "crowd-metrics",
                     "--param", "n_devices=10,14",
                     "--param", "duration_s=300",
                     "--channel", "sinr"]) == 0
        out = capsys.readouterr().out
        assert "channel_transfers" in out


class TestRunnerDispatch:
    def test_sweep_runner_by_name(self, capsys):
        assert main(["sweep", "--runner", "relay-savings",
                     "--param", "periods=1,2", "--param", "n_ues=1"]) == 0
        out = capsys.readouterr().out
        assert "runner 'relay-savings'" in out
        assert "system_saved" in out

    def test_grid_runner_by_name_with_chaos(self, capsys):
        assert main(["grid", "--runner", "chaos-differential",
                     "--param", "profile=mild", "--param", "seed=0,1",
                     "--param", "periods=2", "--param", "n_ues=1"]) == 0
        out = capsys.readouterr().out
        assert "runner 'chaos-differential'" in out
        assert "chaos_deadline_safe" in out

    def test_unknown_runner_exits_2(self, capsys):
        assert main(["sweep", "--runner", "nope", "--param", "x=1"]) == 2
        err = capsys.readouterr().err
        assert "unknown runner" in err
        assert "relay-savings" in err

    def test_runner_without_params_exits_2(self, capsys):
        assert main(["sweep", "--runner", "relay-savings"]) == 2
        assert "--param" in capsys.readouterr().err

    def test_runner_rejects_unknown_param(self, capsys):
        assert main(["sweep", "--runner", "relay-savings",
                     "--param", "warp=9"]) == 2
        assert "does not accept" in capsys.readouterr().err

    def test_malformed_param_exits_2(self, capsys):
        assert main(["sweep", "--runner", "relay-savings",
                     "--param", "periods"]) == 2
        assert "bad --param" in capsys.readouterr().err

    def test_param_values_coerced(self):
        from repro.cli import _parse_param_grid

        grid = _parse_param_grid(["a=1,2", "b=0.5", "c=x,y"])
        assert grid == {"a": [1, 2], "b": [0.5], "c": ["x", "y"]}
