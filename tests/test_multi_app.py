"""Tests for multi-app devices (WeChat + QQ + WhatsApp on one phone)."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import QQ, STANDARD_APP, WECHAT, WHATSAPP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s


def build_rig(extra_apps=(QQ, WHATSAPP), seed=0):
    sim = Simulator(seed=seed)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework(
        [], app=STANDARD_APP,
        config=FrameworkConfig(extra_apps=tuple(extra_apps)),
    )
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium)
    ue = Smartphone(sim, "ue-0", mobility=StaticMobility((1.0, 0.0)),
                    role=Role.UE, ledger=ledger, basestation=basestation,
                    d2d_medium=medium)
    framework.add_device(relay, phase_fraction=0.0)
    framework.add_device(ue, phase_fraction=0.5)
    return sim, ledger, server, framework, relay, ue


class TestMultiAppUE:
    def test_all_apps_beats_flow_through_one_agent(self):
        sim, __, server, framework, __, __ = build_rig()
        sim.run_until(2 * T + 60)
        apps_seen = {
            r.message.app for r in server.records
            if r.message.origin_device == "ue-0"
        }
        assert {"standard", "qq", "whatsapp"} <= apps_seen

    def test_all_apps_delivered_on_time(self):
        sim, __, server, framework, __, __ = build_rig()
        sim.run_until(3 * T + 60)
        assert all(r.on_time for r in server.records)

    def test_single_d2d_session_carries_all_apps(self):
        sim, __, __, framework, __, __ = build_rig()
        sim.run_until(3 * T)
        ue_agent = framework.ues["ue-0"]
        assert ue_agent.searches == 1  # one pairing serves every app
        assert ue_agent.beats_forwarded >= 6  # ≥ 2 periods × 3 apps


class TestMultiAppRelay:
    def test_relay_secondary_beats_ride_aggregated_uplinks(self):
        sim, __, server, framework, relay, __ = build_rig()
        sim.run_until(2 * T + 60)
        agent = framework.relays["relay-0"]
        assert agent.own_extra_beats > 0
        # relay's QQ/WhatsApp beats reached the server
        relay_apps = {
            r.message.app for r in server.records
            if r.message.origin_device == "relay-0"
        }
        assert {"standard", "qq", "whatsapp"} <= relay_apps

    def test_no_rewards_for_own_secondary_beats(self):
        sim, __, __, framework, __, __ = build_rig()
        sim.run_until(2 * T + 60)
        # rewards must equal beats collected from the UE only
        ue_beats_collected = sum(
            1 for flush in framework.relays["relay-0"].scheduler.flushes
            for __ in range(flush.collected)
        )
        assert framework.rewards.total_beats <= ue_beats_collected

    def test_signaling_still_aggregated(self):
        """3 apps × 2 devices would be ~6 cycles/period in the original
        system; the framework keeps the relay near 1-2 cycles per period."""
        sim, ledger, __, framework, __, __ = build_rig()
        sim.run_until(4 * T)
        # UE adds zero signaling; relay pays far fewer cycles than the
        # 12 beats/period the devices generate
        assert ledger.count_for("ue-0") == 0
        assert ledger.cycles_for("relay-0") <= 10


class TestMultiAppStandalone:
    def test_standalone_sends_every_apps_beats(self):
        sim = Simulator(seed=1)
        ledger = SignalingLedger()
        basestation = BaseStation(sim, ledger=ledger)
        server = IMServer(sim)
        basestation.attach_sink(server.uplink_sink)
        framework = HeartbeatRelayFramework(
            [], app=STANDARD_APP,
            config=FrameworkConfig(extra_apps=(WECHAT,), ue_phase_fraction=0.0),
        )
        phone = Smartphone(sim, "solo", ledger=ledger, basestation=basestation)
        framework.add_device(phone)
        sim.run_until(T + 30)
        apps = {r.message.app for r in server.records}
        assert apps == {"standard", "wechat"}
