"""Long-horizon integration tests: a full simulated day of real IM apps.

These tie every subsystem together — workload, D2D, scheduling, feedback,
RRC, energy, incentives, server — over timescales where small protocol
races would eventually surface, and check global conservation laws that
must hold regardless of configuration.
"""

import pytest

from repro.baseline.original import expected_beats_in
from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP, WECHAT
from repro.workload.server import IMServer


def build_star(n_ues=3, seed=0, app=WECHAT, capacity=10):
    sim = Simulator(seed=seed)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework(
        [], app=app, config=FrameworkConfig()
    )
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium)
    framework.add_device(relay, phase_fraction=0.0)
    ues = []
    for i in range(n_ues):
        ue = Smartphone(sim, f"ue-{i}",
                        mobility=StaticMobility((1.5, float(i))),
                        role=Role.UE, ledger=ledger, basestation=basestation,
                        d2d_medium=medium)
        framework.add_device(ue, phase_fraction=0.2 + 0.6 * i / max(1, n_ues))
        ues.append(ue)
    return sim, ledger, server, framework, relay, ues


DAY_S = 86_400.0


class TestFullDay:
    @pytest.fixture(scope="class")
    def day_run(self):
        sim, ledger, server, framework, relay, ues = build_star(n_ues=3)
        sim.run_until(DAY_S - 1)
        framework.shutdown()
        sim.run_until(DAY_S + 60)
        return sim, ledger, server, framework, relay, ues

    def test_every_beat_delivered_on_time(self, day_run):
        __, __, server, __, __, ues = day_run
        assert server.late_count == 0
        for ue in ues:
            expected = expected_beats_in(DAY_S - 1, WECHAT, 0.2)
            seqs = {
                r.message.seq
                for r in server.deliveries_for(ue.device_id)
                if r.on_time
            }
            # every beat emitted made it (duplicates collapse in the set)
            assert len(seqs) >= expected - 1  # the last beat may be mid-flight

    def test_clients_stay_online_all_day(self, day_run):
        sim, __, server, __, relay, ues = day_run
        for device in [relay] + ues:
            assert server.is_online(device.device_id, "wechat", now=DAY_S)

    def test_signaling_halved_at_scale(self, day_run):
        """3 UEs + relay → ≥ 70 % fewer cycles than 4 standalone phones."""
        __, ledger, __, __, __, __ = day_run
        beats_per_day = expected_beats_in(DAY_S, WECHAT, 0.0)
        original_cycles = 4 * beats_per_day
        assert ledger.total_cycles < 0.35 * original_cycles

    def test_ue_signaling_is_zero(self, day_run):
        __, ledger, __, __, __, ues = day_run
        for ue in ues:
            assert ledger.count_for(ue.device_id) == 0

    def test_daily_battery_fraction_beats_paper_claim(self, day_run):
        """The paper's intro: heartbeats cost ≥6 %/day of battery on the
        original system. Relayed UEs must land far below that."""
        from repro.energy.profiles import GALAXY_S4_BATTERY_MAH

        __, __, __, __, __, ues = day_run
        for ue in ues:
            fraction = ue.energy.total_uah / 1000.0 / GALAXY_S4_BATTERY_MAH
            assert fraction < 0.02

    def test_incentive_conservation(self, day_run):
        """Rewarded beats == beats collected from UEs (never the relay's)."""
        __, __, __, framework, __, __ = day_run
        assert framework.rewards.total_beats == framework.total_beats_collected()

    def test_energy_charge_conservation(self, day_run):
        """Every device's total equals the sum of its phase breakdown."""
        __, __, __, framework, relay, ues = day_run
        for device in [relay] + ues:
            assert device.energy.total_uah == pytest.approx(
                sum(device.energy.breakdown().values())
            )


class TestScaleSweep:
    def test_more_ues_more_system_saving(self):
        """System-level saving improves with relay utilization."""
        savings = []
        for n_ues in (1, 4, 8):
            sim, ledger, server, framework, relay, ues = build_star(
                n_ues=n_ues, app=STANDARD_APP, seed=2,
            )
            horizon = 6 * STANDARD_APP.heartbeat_period_s
            sim.run_until(horizon - 1)
            framework.shutdown()
            sim.run_until(horizon + 30)
            d2d_energy = sum(d.energy.total_uah for d in [relay] + ues)
            per_beat = 597.93
            beats = sum(
                expected_beats_in(horizon - 1, STANDARD_APP,
                                  0.2 + 0.6 * i / max(1, n_ues))
                for i in range(n_ues)
            ) + expected_beats_in(horizon - 1, STANDARD_APP, 0.0)
            original_energy = beats * per_beat
            savings.append(1.0 - d2d_energy / original_energy)
        assert savings[0] < savings[1] < savings[2]
        assert savings[2] > 0.35

    def test_determinism_at_scale(self):
        runs = []
        for __ in range(2):
            sim, ledger, server, framework, relay, ues = build_star(
                n_ues=5, seed=77
            )
            sim.run_until(3000.0)
            runs.append(
                (ledger.total, len(server.records),
                 sum(d.energy.total_uah for d in [relay] + ues))
            )
        assert runs[0] == runs[1]
