"""Unit tests for the IM server model."""

import pytest

from repro.workload.messages import PeriodicMessage
from repro.workload.server import IMServer


def beat(created=0.0, expiry=270.0, device="ue-0", app="wechat", size=74):
    return PeriodicMessage(
        app=app,
        origin_device=device,
        size_bytes=size,
        created_at_s=created,
        period_s=270.0,
        expiry_s=expiry,
    )


@pytest.fixture
def server(sim):
    return IMServer(sim)


class TestReceive:
    def test_on_time_delivery(self, sim, server):
        record = server.receive(beat(created=0.0), via_device="ue-0", time_s=100.0)
        assert record.on_time
        assert record.delay_s == pytest.approx(100.0)
        assert server.on_time_count == 1 and server.late_count == 0

    def test_late_delivery(self, sim, server):
        record = server.receive(beat(created=0.0), via_device="ue-0", time_s=271.0)
        assert not record.on_time
        assert server.late_count == 1

    def test_relayed_flag(self, sim, server):
        direct = server.receive(beat(), via_device="ue-0", time_s=1.0)
        relayed = server.receive(beat(), via_device="relay-0", time_s=1.0)
        assert not direct.relayed
        assert relayed.relayed
        assert server.relayed_count == 1

    def test_on_time_fraction(self, sim, server):
        server.receive(beat(created=0.0), via_device="x", time_s=1.0)
        server.receive(beat(created=0.0), via_device="x", time_s=999.0)
        assert server.on_time_fraction() == pytest.approx(0.5)

    def test_on_time_fraction_empty_is_one(self, server):
        assert server.on_time_fraction() == 1.0


class TestOnlineStatus:
    def test_online_after_on_time_beat(self, sim, server):
        server.receive(beat(created=0.0), via_device="ue-0", time_s=10.0)
        assert server.is_online("ue-0", "wechat", now=100.0)

    def test_offline_after_server_expiry_window(self, sim, server):
        """Server expiry is 3T = 810 s for WeChat."""
        server.receive(beat(created=0.0), via_device="ue-0", time_s=10.0)
        assert server.is_online("ue-0", "wechat", now=10.0 + 810.0)
        assert not server.is_online("ue-0", "wechat", now=10.0 + 810.1)

    def test_unknown_client_is_offline(self, server):
        assert not server.is_online("ghost", "wechat", now=0.0)

    def test_late_beat_does_not_refresh_online_status(self, sim, server):
        server.receive(beat(created=0.0), via_device="ue-0", time_s=1.0)
        server.receive(beat(created=0.0), via_device="ue-0", time_s=5000.0)  # late
        assert server.last_seen("ue-0", "wechat") == pytest.approx(1.0)

    def test_last_seen_keeps_latest(self, sim, server):
        server.receive(beat(created=0.0), via_device="ue-0", time_s=1.0)
        server.receive(beat(created=100.0), via_device="ue-0", time_s=110.0)
        assert server.last_seen("ue-0", "wechat") == pytest.approx(110.0)


class TestSinkInterface:
    def test_single_message_payload(self, sim, server):
        server.uplink_sink(5.0, "ue-0", 74, beat())
        assert len(server.records) == 1

    def test_aggregated_list_payload(self, sim, server):
        """A relay's aggregated uplink: a list of beats in one payload."""
        messages = [beat(device=f"ue-{i}") for i in range(3)]
        server.uplink_sink(5.0, "relay-0", 3 * 74, messages)
        assert len(server.records) == 3
        assert all(r.via_device == "relay-0" for r in server.records)
        assert server.relayed_count == 3

    def test_foreign_payload_ignored(self, sim, server):
        server.uplink_sink(5.0, "dev", 100, "random bytes")
        server.uplink_sink(5.0, "dev", 100, None)
        server.uplink_sink(5.0, "dev", 100, [1, 2, 3])
        assert server.records == []

    def test_deliveries_for_filters_by_origin(self, sim, server):
        server.uplink_sink(1.0, "relay", 74, [beat(device="a"), beat(device="b")])
        assert len(server.deliveries_for("a")) == 1
        assert len(server.deliveries_for("missing")) == 0

    def test_delay_statistics(self, sim, server):
        server.receive(beat(created=0.0), via_device="x", time_s=10.0)
        server.receive(beat(created=0.0), via_device="x", time_s=20.0)
        assert server.delays() == [10.0, 20.0]
        assert server.mean_delay_s() == pytest.approx(15.0)

    def test_mean_delay_empty(self, server):
        assert server.mean_delay_s() == 0.0
