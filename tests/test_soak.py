"""Soak test: three simulated days, nothing drifts and nothing leaks."""

import pytest

from repro.baseline.original import expected_beats_in
from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import WECHAT
from repro.workload.server import IMServer

DAYS = 3
HORIZON = DAYS * 86_400.0


@pytest.fixture(scope="module")
def soak_run():
    sim = Simulator(seed=123)
    ledger = SignalingLedger(keep_messages=False)  # bound memory, like prod
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework([], app=WECHAT)
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium)
    framework.add_device(relay, phase_fraction=0.0)
    for i in range(2):
        ue = Smartphone(sim, f"ue-{i}",
                        mobility=StaticMobility((1.0, float(i))),
                        role=Role.UE, ledger=ledger, basestation=basestation,
                        d2d_medium=medium)
        framework.add_device(ue, phase_fraction=0.3 + 0.3 * i)
    sim.run_until(HORIZON - 1)
    framework.shutdown()
    sim.run_until(HORIZON + 60)
    return sim, ledger, server, framework


class TestThreeDaySoak:
    def test_every_beat_on_time_for_three_days(self, soak_run):
        sim, ledger, server, framework = soak_run
        expected = 3 * expected_beats_in(HORIZON - 1, WECHAT, 0.0)
        # (phases differ per device but each emits ~960 beats over 3 days)
        assert server.late_count == 0
        assert len(server.records) >= expected - 6
        assert server.duplicate_count == 0

    def test_event_queue_fully_drains(self, soak_run):
        """No leaked timers: after shutdown + drain the queue is quiet
        apart from the periodic link monitor."""
        sim, __, __, framework = soak_run
        # only the D2D link-check monitor may still be re-arming
        assert sim.pending <= 4

    def test_steady_state_cadence(self, soak_run):
        """One aggregated uplink per relay period, all three days."""
        sim, __, __, framework = soak_run
        periods = int(HORIZON / WECHAT.heartbeat_period_s)
        uplinks = framework.total_aggregated_uplinks()
        assert abs(uplinks - periods) <= 2

    def test_signaling_is_exactly_periodic(self, soak_run):
        """Cycles == uplinks: no signaling creep over the soak."""
        __, ledger, __, framework = soak_run
        assert ledger.cycles_for("relay-0") in (
            framework.total_aggregated_uplinks(),
            framework.total_aggregated_uplinks() - 1,  # final tail may be open
        )
        assert ledger.count_for("ue-0") == 0
        assert ledger.count_for("ue-1") == 0

    def test_single_discovery_for_the_whole_soak(self, soak_run):
        """Stable pairs never rescan: discovery energy is amortized over
        three days, exactly the long-session regime the paper favours."""
        __, __, __, framework = soak_run
        for agent in framework.ue_agents():
            assert agent.searches == 1
            assert agent.cellular_sends == 0
