"""Tests for the ASCII timeline renderer."""

import pytest

from repro.energy.model import EnergyPhase
from repro.scenarios import run_relay_scenario
from repro.viz import LEGEND, activity_summary, render_lane, render_timeline


class TestRenderLane:
    def test_places_glyphs_in_time_buckets(self):
        log = [
            (0.0, EnergyPhase.CELLULAR_SETUP, 80.0),
            (50.0, EnergyPhase.D2D_FORWARD, 73.0),
            (99.0, EnergyPhase.CELLULAR_TAIL, 455.0),
        ]
        lane = render_lane(log, horizon_s=100.0, width=10)
        assert len(lane) == 10
        assert lane[0] == "S"
        assert lane[5] == "f"
        assert lane[9] == "~"

    def test_precedence_resolves_shared_buckets(self):
        log = [
            (10.0, EnergyPhase.CELLULAR_TAIL, 1.0),
            (10.5, EnergyPhase.CELLULAR_SETUP, 1.0),
        ]
        lane = render_lane(log, horizon_s=100.0, width=10)
        assert lane[1] == "S"  # setup outranks tail

    def test_out_of_range_events_ignored(self):
        log = [(200.0, EnergyPhase.D2D_FORWARD, 1.0)]
        lane = render_lane(log, horizon_s=100.0, width=10)
        assert lane == "." * 10

    def test_empty_log_is_all_idle(self):
        assert render_lane([], 10.0, width=5) == "....."

    def test_validation(self):
        with pytest.raises(ValueError):
            render_lane([], 0.0)
        with pytest.raises(ValueError):
            render_lane([], 10.0, width=0)


class TestRenderTimeline:
    def test_scenario_timeline(self):
        result = run_relay_scenario(n_ues=1, periods=2, keep_energy_log=True)
        horizon = result.metrics.horizon_s
        text = render_timeline(result.devices.values(), horizon, width=60)
        lines = text.splitlines()
        assert lines[0].startswith("relay-0")
        assert lines[1].startswith("ue-0")
        assert lines[-1] == LEGEND
        # the relay did cellular work, the UE did D2D work
        assert "S" in lines[0] or "T" in lines[0]
        assert "D" in lines[1] and "f" in lines[1]
        # the UE lane shows no cellular setup (all relayed)
        assert "S" not in lines[1].split("|")[1]

    def test_no_devices(self):
        assert render_timeline([], 100.0) == LEGEND
        assert render_timeline([], 100.0, include_legend=False) == ""

    def test_without_log_lane_is_idle(self):
        result = run_relay_scenario(n_ues=1, periods=1)  # log disabled
        text = render_timeline(result.devices.values(),
                               result.metrics.horizon_s, width=20,
                               include_legend=False)
        for line in text.splitlines():
            lane = line.split("|")[1]
            assert set(lane) == {"."}


class TestActivitySummary:
    def test_buckets_capture_energy(self):
        result = run_relay_scenario(n_ues=1, periods=2, keep_energy_log=True)
        relay = result.devices["relay-0"]
        summary = activity_summary(relay, result.metrics.horizon_s, buckets=4)
        assert len(summary) == 4
        total = sum(uah for __, uah in summary)
        assert total == pytest.approx(relay.energy.total_uah, rel=1e-6)

    def test_validation(self):
        result = run_relay_scenario(n_ues=0, periods=1, keep_energy_log=True)
        with pytest.raises(ValueError):
            activity_summary(result.devices["relay-0"], 100.0, buckets=0)
