"""Property-based tests for the Message Scheduler (Algorithm 1).

Invariants, under arbitrary admissible arrival patterns:

1. no accepted beat is ever flushed after its guarded deadline;
2. the collected count never exceeds the capacity ``M``;
3. the relay's own beat is delayed at most ``min(T, expiry - guard)``;
4. every accepted beat is flushed exactly once (none lost, none duplicated).
"""

from hypothesis import given, settings, strategies as st

from repro.core.scheduler import CollectedBeat, MessageScheduler, SchedulerConfig
from repro.sim.engine import Simulator
from repro.workload.messages import PeriodicMessage

T = 270.0
GUARD = 3.0


def _beat(created, expiry, device="ue"):
    return PeriodicMessage(
        app="standard",
        origin_device=device,
        size_bytes=54,
        created_at_s=created,
        period_s=T,
        expiry_s=expiry,
    )


arrival_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.5, max_value=T - 1.0),  # arrival offset in period
        st.floats(min_value=10.0, max_value=3 * T),  # expiry budget
    ),
    min_size=0,
    max_size=25,
)


@st.composite
def schedules(draw):
    capacity = draw(st.integers(min_value=1, max_value=8))
    arrivals = sorted(draw(arrival_lists))
    periods = draw(st.integers(min_value=1, max_value=3))
    return capacity, arrivals, periods


@given(schedules())
@settings(max_examples=120, deadline=None)
def test_scheduler_invariants(case):
    capacity, arrivals, periods = case
    sim = Simulator(seed=0)
    flushes = []
    scheduler = MessageScheduler(
        sim,
        relay_period_s=T,
        on_flush=lambda own, collected, reason: flushes.append(
            (sim.now, own, list(collected), reason)
        ),
        config=SchedulerConfig(capacity=capacity, uplink_guard_s=GUARD),
    )
    accepted_seqs = []

    def begin(period_index):
        scheduler.begin_period(_beat(sim.now, T, device="relay"))

    def offer(created, expiry):
        beat = CollectedBeat(_beat(created, expiry), sim.now, "ue")
        if scheduler.offer(beat):
            accepted_seqs.append(beat.message.seq)

    for period in range(periods):
        start = period * T
        sim.schedule_at(start, begin, period)
        for offset, expiry in arrivals:
            sim.schedule_at(start + offset, offer, start + offset, expiry)
    sim.run_until(periods * T + T)

    flushed_seqs = []
    for time, own, collected, reason in flushes:
        # (2) capacity never exceeded
        assert len(collected) <= capacity
        # (1) no collected beat past its guarded deadline
        for item in collected:
            assert time <= item.message.deadline_s - GUARD + 1e-6
            flushed_seqs.append(item.message.seq)
        # (3) own beat delayed at most min(T, expiry - guard)
        if own is not None:
            assert time - own.created_at_s <= min(T, own.expiry_s - GUARD) + 1e-6

    # (4) exactly-once flushing of accepted beats that had time to flush
    assert sorted(flushed_seqs) == sorted(accepted_seqs)
    assert len(set(flushed_seqs)) == len(flushed_seqs)


@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_capacity_binding_flushes_immediately(capacity, n_offers):
    """Once k == M the scheduler must flush without waiting for timers."""
    sim = Simulator(seed=0)
    flushes = []
    scheduler = MessageScheduler(
        sim,
        relay_period_s=T,
        on_flush=lambda own, collected, reason: flushes.append(
            (len(collected), reason)
        ),
        config=SchedulerConfig(capacity=capacity, uplink_guard_s=GUARD),
    )
    scheduler.begin_period(_beat(0.0, T, device="relay"))
    accepted = 0
    for __ in range(n_offers):
        if scheduler.offer(CollectedBeat(_beat(0.0, 3 * T), 0.0, "ue")):
            accepted += 1
    assert accepted <= capacity
    if n_offers >= capacity:
        assert flushes and flushes[0][0] == capacity
        assert flushes[0][1] == "capacity"
        # after a capacity flush nothing further is accepted this period
        assert scheduler.pending_count == 0
        assert not scheduler.accepting
    else:
        assert flushes == []
        assert scheduler.pending_count == accepted


@given(st.floats(min_value=4.0, max_value=T), st.floats(min_value=0.0, max_value=T - 1))
@settings(max_examples=60, deadline=None)
def test_own_beat_never_late(expiry, run_slack):
    sim = Simulator(seed=0)
    flush_times = []
    scheduler = MessageScheduler(
        sim,
        relay_period_s=T,
        on_flush=lambda own, collected, reason: flush_times.append(sim.now),
        config=SchedulerConfig(capacity=5, uplink_guard_s=GUARD),
    )
    scheduler.begin_period(_beat(0.0, expiry, device="relay"))
    sim.run_until(T + run_slack)
    assert flush_times
    assert flush_times[0] <= min(T, max(0.0, expiry - GUARD)) + 1e-6
