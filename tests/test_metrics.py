"""Unit tests for metric collection."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.device import Role, Smartphone
from repro.energy.battery import Battery
from repro.energy.model import EnergyPhase
from repro.metrics import collect_metrics
from repro.workload.messages import PeriodicMessage
from repro.workload.server import IMServer


@pytest.fixture
def populated(sim, ledger):
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    relay = Smartphone(sim, "relay-0", role=Role.RELAY, ledger=ledger,
                       basestation=basestation, battery=Battery())
    ue = Smartphone(sim, "ue-0", role=Role.UE, ledger=ledger,
                    basestation=basestation)
    relay.energy.charge(EnergyPhase.CELLULAR_TX, 100.0)
    relay.energy.charge(EnergyPhase.D2D_RECEIVE, 50.0)
    ue.energy.charge(EnergyPhase.D2D_FORWARD, 30.0)
    message = PeriodicMessage(
        app="standard", origin_device="ue-0", size_bytes=54,
        created_at_s=0.0, period_s=270.0, expiry_s=270.0,
    )
    server.receive(message, via_device="relay-0", time_s=5.0)
    return sim, ledger, server, [relay, ue]


class TestCollect:
    def test_per_device_metrics(self, populated):
        sim, ledger, server, devices = populated
        metrics = collect_metrics(devices, ledger, server, horizon_s=100.0)
        relay = metrics.devices["relay-0"]
        assert relay.role == "relay"
        assert relay.energy_uah == pytest.approx(150.0)
        assert relay.cellular_energy_uah == pytest.approx(100.0)
        assert relay.d2d_energy_uah == pytest.approx(50.0)
        assert relay.battery_level == pytest.approx(1.0, abs=0.01)
        assert metrics.devices["ue-0"].battery_level is None

    def test_delivery_metrics(self, populated):
        sim, ledger, server, devices = populated
        metrics = collect_metrics(devices, ledger, server)
        assert metrics.delivery.received == 1
        assert metrics.delivery.on_time == 1
        assert metrics.delivery.relayed == 1
        assert metrics.delivery.on_time_fraction == 1.0
        assert metrics.delivery.mean_delay_s == pytest.approx(5.0)

    def test_no_server_no_delivery(self, populated):
        sim, ledger, __, devices = populated
        metrics = collect_metrics(devices, ledger)
        assert metrics.delivery is None

    def test_aggregates(self, populated):
        sim, ledger, server, devices = populated
        metrics = collect_metrics(devices, ledger, server)
        assert metrics.total_energy_uah() == pytest.approx(180.0)
        assert metrics.total_energy_uah(roles=["ue"]) == pytest.approx(30.0)
        assert metrics.energy_by_role() == {
            "relay": pytest.approx(150.0),
            "ue": pytest.approx(30.0),
        }
        assert [d.device_id for d in metrics.devices_with_role("ue")] == ["ue-0"]

    def test_accessors(self, populated):
        sim, ledger, server, devices = populated
        metrics = collect_metrics(devices, ledger, server)
        assert metrics.energy_of("ue-0") == pytest.approx(30.0)
        assert metrics.l3_of("ue-0") == 0

    def test_on_time_fraction_empty_delivery(self, populated):
        from repro.metrics import DeliveryMetrics

        empty = DeliveryMetrics(0, 0, 0, 0, 0.0)
        assert empty.on_time_fraction == 1.0
