"""Unit tests for D2D-vs-cellular mode selection economics."""

import pytest

from repro.core.modes import (
    breakeven_distance_m,
    cellular_session_cost_uah,
    d2d_session_beneficial,
    d2d_session_cost_uah,
)
from repro.energy.profiles import DEFAULT_PROFILE


class TestSessionCosts:
    def test_d2d_cost_closed_form(self):
        p = DEFAULT_PROFILE
        cost = d2d_session_cost_uah(p, 3, 1.0, 54)
        expected = (
            p.ue_discovery_uah + p.ue_connection_uah + 3 * p.ue_forward_cost_uah(54, 1.0)
        )
        assert cost == pytest.approx(expected)

    def test_cellular_cost_linear_in_beats(self):
        p = DEFAULT_PROFILE
        assert cellular_session_cost_uah(p, 4, 54) == pytest.approx(
            4 * p.cellular_heartbeat_uah(54)
        )

    def test_negative_beats_rejected(self):
        with pytest.raises(ValueError):
            d2d_session_cost_uah(DEFAULT_PROFILE, -1, 1.0)
        with pytest.raises(ValueError):
            cellular_session_cost_uah(DEFAULT_PROFILE, -1)

    def test_technology_scales_applied(self):
        cheap = d2d_session_cost_uah(
            DEFAULT_PROFILE, 2, 1.0, 54, tech_tx_scale=0.4, tech_overhead_scale=0.5
        )
        full = d2d_session_cost_uah(DEFAULT_PROFILE, 2, 1.0, 54)
        assert cheap < full


class TestBenefitDecision:
    def test_single_beat_at_1m_is_beneficial(self):
        """The paper's 55% headline implies yes at the reference distance."""
        assert d2d_session_beneficial(DEFAULT_PROFILE, 1, 1.0, 54)

    def test_zero_expected_beats_never_beneficial(self):
        assert not d2d_session_beneficial(DEFAULT_PROFILE, 0, 1.0, 54)

    def test_benefit_improves_with_more_beats(self):
        """Longer sessions amortize discovery+connection (Fig. 8's trend)."""
        p = DEFAULT_PROFILE
        ratios = [
            d2d_session_cost_uah(p, n, 1.0, 54) / cellular_session_cost_uah(p, n, 54)
            for n in (1, 3, 7)
        ]
        assert ratios[0] > ratios[1] > ratios[2]

    def test_far_distance_not_beneficial(self):
        assert not d2d_session_beneficial(DEFAULT_PROFILE, 1, 60.0, 54)

    def test_margin_makes_decision_conservative(self):
        p = DEFAULT_PROFILE
        # pick a distance where plain benefit holds but a 0.5 margin fails
        distance = 10.0
        assert d2d_session_beneficial(p, 1, distance, 54, margin=1.0)
        assert not d2d_session_beneficial(p, 1, distance, 54, margin=0.5)


class TestBreakevenDistance:
    def test_breakeven_beyond_paper_sweep(self):
        """Fig. 12 sweeps 0-15 m and the UE stays below original: the
        crossover must lie beyond 15 m."""
        assert breakeven_distance_m(expected_beats=1) > 15.0

    def test_breakeven_is_finite(self):
        assert breakeven_distance_m(expected_beats=1) < 200.0

    def test_boundary_is_tight(self):
        edge = breakeven_distance_m(expected_beats=1, precision_m=0.001)
        assert d2d_session_beneficial(DEFAULT_PROFILE, 1, edge - 0.01, 54)
        assert not d2d_session_beneficial(DEFAULT_PROFILE, 1, edge + 0.01, 54)

    def test_more_beats_push_breakeven_out(self):
        assert breakeven_distance_m(expected_beats=7) > breakeven_distance_m(
            expected_beats=1
        )

    def test_never_beneficial_returns_zero(self):
        hopeless = DEFAULT_PROFILE.replace(
            ue_discovery_uah=1e6  # discovery alone dwarfs cellular
        )
        assert breakeven_distance_m(hopeless, expected_beats=1) == 0.0
