"""The prejudgment's closed-form economics must match the simulator.

The matcher decides whether to pair using `core.modes` closed forms; if
those drift from what the simulation actually charges, the prejudgment
starts making wrong calls silently. These tests pin the two together.
"""

import pytest

from repro.core.modes import cellular_session_cost_uah, d2d_session_cost_uah
from repro.core.protocol import D2D_HEADER_BYTES
from repro.energy.profiles import DEFAULT_PROFILE
from repro.scenarios import run_relay_scenario
from repro.workload.apps import STANDARD_APP


class TestClosedFormsMatchSimulation:
    @pytest.mark.parametrize("periods", [1, 3, 7])
    def test_ue_session_cost(self, periods):
        """Measured UE energy = closed-form session cost + ack overhead.

        The closed form prices discovery + connection + per-beat forwards
        of the on-the-wire size (beat + framing); the simulation adds only
        the tiny feedback-ack charges on top.
        """
        result = run_relay_scenario(n_ues=1, distance_m=1.0, periods=periods)
        measured = result.per_device_energy_uah("ue-0")
        wire_bytes = STANDARD_APP.heartbeat_bytes + D2D_HEADER_BYTES
        predicted = d2d_session_cost_uah(
            DEFAULT_PROFILE, periods, distance_m=1.0, size_bytes=wire_bytes
        )
        acks = periods * DEFAULT_PROFILE.relay_ack_uah
        assert measured == pytest.approx(predicted + acks, rel=1e-6)

    @pytest.mark.parametrize("periods", [1, 4])
    def test_cellular_session_cost(self, periods):
        """Measured original-system UE energy = closed-form cellular cost."""
        result = run_relay_scenario(n_ues=1, distance_m=1.0, periods=periods,
                                    mode="original")
        measured = result.per_device_energy_uah("ue-0")
        predicted = cellular_session_cost_uah(
            DEFAULT_PROFILE, periods, size_bytes=STANDARD_APP.heartbeat_bytes
        )
        assert measured == pytest.approx(predicted, rel=1e-6)

    @pytest.mark.parametrize("distance", [1.0, 8.0, 15.0])
    def test_distance_scaling_matches(self, distance):
        """The distance factor the prejudgment reasons with is the one the
        medium actually charges."""
        result = run_relay_scenario(n_ues=1, distance_m=distance, periods=2)
        measured = result.metrics.devices["ue-0"].energy_breakdown[
            "d2d_forward"
        ]
        wire_bytes = STANDARD_APP.heartbeat_bytes + D2D_HEADER_BYTES
        predicted = 2 * DEFAULT_PROFILE.ue_forward_cost_uah(
            wire_bytes, distance
        )
        assert measured == pytest.approx(predicted, rel=1e-6)

    def test_prejudgment_decision_boundary_is_honest(self):
        """Just inside the breakeven distance D2D really is cheaper for the
        UE; just outside it really is not (single-beat sessions)."""
        from repro.core.modes import breakeven_distance_m

        wire_bytes = STANDARD_APP.heartbeat_bytes + D2D_HEADER_BYTES
        edge = breakeven_distance_m(
            DEFAULT_PROFILE, expected_beats=1, size_bytes=wire_bytes,
            precision_m=0.001,
        )
        inside = d2d_session_cost_uah(DEFAULT_PROFILE, 1, edge - 0.05,
                                      wire_bytes)
        outside = d2d_session_cost_uah(DEFAULT_PROFILE, 1, edge + 0.05,
                                       wire_bytes)
        cellular = cellular_session_cost_uah(DEFAULT_PROFILE, 1,
                                             wire_bytes)
        assert inside < cellular < outside
