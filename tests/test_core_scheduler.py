"""Unit tests for the Message Scheduler (Algorithm 1)."""

import pytest

from repro.core.scheduler import CollectedBeat, MessageScheduler, SchedulerConfig
from repro.workload.messages import PeriodicMessage

T = 270.0


def beat(created, expiry=T, device="ue-0", size=54):
    return PeriodicMessage(
        app="standard",
        origin_device=device,
        size_bytes=size,
        created_at_s=created,
        period_s=T,
        expiry_s=expiry,
    )


class SchedulerHarness:
    """Records every flush the scheduler performs."""

    def __init__(self, sim, capacity=10, guard=3.0):
        self.flushes = []
        self.scheduler = MessageScheduler(
            sim,
            relay_period_s=T,
            on_flush=lambda own, collected, reason: self.flushes.append(
                (sim.now, own, list(collected), reason)
            ),
            config=SchedulerConfig(capacity=capacity, uplink_guard_s=guard),
        )


@pytest.fixture
def harness(sim):
    return SchedulerHarness(sim)


class TestPeriodLifecycle:
    def test_not_accepting_before_first_period(self, sim, harness):
        assert not harness.scheduler.accepting
        collected = CollectedBeat(beat(0.0), 0.0, "ue-0")
        assert harness.scheduler.offer(collected) is False
        assert harness.scheduler.beats_rejected == 1

    def test_own_beat_opens_period(self, sim, harness):
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        assert harness.scheduler.accepting
        assert harness.scheduler.capacity_remaining == 10

    def test_flush_at_period_end_minus_guard(self, sim, harness):
        """Constraint t <= T: the own beat is delayed at most one period,
        minus the uplink guard so it still lands in time."""
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        sim.run_until(1000.0)
        assert len(harness.flushes) == 1
        time, own, collected, reason = harness.flushes[0]
        assert time == pytest.approx(T - 3.0)
        assert own.origin_device == "relay"
        assert collected == []
        assert reason == "period"

    def test_not_accepting_after_flush_until_next_period(self, sim, harness):
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        sim.run_until(T - 1.0)  # flushed at T-3
        assert not harness.scheduler.accepting
        assert harness.scheduler.offer(CollectedBeat(beat(sim.now), sim.now, "u")) is False
        harness.scheduler.begin_period(beat(T, device="relay"))
        assert harness.scheduler.accepting

    def test_rollover_flushes_leftovers_defensively(self, sim, harness):
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        # begin a new period before the timer fired (should not happen in
        # normal operation, but must not lose the pending own beat)
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        assert len(harness.flushes) == 1
        assert harness.flushes[0][3] == "period rollover"


class TestCapacityConstraint:
    def test_k_equals_m_sends_now(self, sim):
        harness = SchedulerHarness(sim, capacity=3)
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        sim.run_until(10.0)
        for i in range(3):
            accepted = harness.scheduler.offer(
                CollectedBeat(beat(10.0, device=f"ue-{i}"), 10.0, f"ue-{i}")
            )
            assert accepted
        assert len(harness.flushes) == 1
        assert harness.flushes[0][3] == "capacity"
        assert len(harness.flushes[0][2]) == 3

    def test_beat_finding_full_buffer_is_rejected_and_triggers_send(self, sim):
        harness = SchedulerHarness(sim, capacity=2)
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        sim.run_until(5.0)
        assert harness.scheduler.offer(CollectedBeat(beat(5.0), 5.0, "a"))
        # capacity reached on the second offer → immediate flush
        assert harness.scheduler.offer(CollectedBeat(beat(5.0), 5.0, "b"))
        assert len(harness.flushes) == 1

    def test_capacity_remaining_decrements(self, sim):
        harness = SchedulerHarness(sim, capacity=5)
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        sim.run_until(1.0)
        harness.scheduler.offer(CollectedBeat(beat(1.0), 1.0, "a"))
        assert harness.scheduler.capacity_remaining == 4
        assert harness.scheduler.pending_count == 1


class TestExpirationConstraint:
    def test_flush_before_collected_beat_expires(self, sim, harness):
        """Constraint t - t_k < T_k: a short-expiry beat pulls the send in."""
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        sim.run_until(10.0)
        urgent = beat(10.0, expiry=30.0)  # deadline at t=40
        harness.scheduler.offer(CollectedBeat(urgent, 10.0, "ue-0"))
        sim.run_until(1000.0)
        time, __, collected, reason = harness.flushes[0]
        assert time == pytest.approx(40.0 - 3.0)  # deadline minus guard
        assert reason == "expiration"
        assert len(collected) == 1

    def test_stale_beat_rejected_outright(self, sim, harness):
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        sim.run_until(100.0)
        stale = beat(0.0, expiry=101.0)  # deadline t=101, guard makes it late
        assert harness.scheduler.offer(CollectedBeat(stale, 100.0, "u")) is False

    def test_earliest_deadline_governs(self, sim, harness):
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        sim.run_until(10.0)
        harness.scheduler.offer(CollectedBeat(beat(10.0, expiry=200.0), 10.0, "a"))
        harness.scheduler.offer(CollectedBeat(beat(10.0, expiry=50.0), 10.0, "b"))
        sim.run_until(1000.0)
        assert harness.flushes[0][0] == pytest.approx(60.0 - 3.0)

    def test_own_beat_expiry_caps_period(self, sim, harness):
        short_own = beat(0.0, expiry=100.0, device="relay")
        harness.scheduler.begin_period(short_own)
        sim.run_until(1000.0)
        assert harness.flushes[0][0] == pytest.approx(97.0)

    def test_expiry_cap_uses_absolute_deadline(self, sim, harness):
        """Regression: the cap re-anchored `expiry_s` at `sim.now`, so an
        own beat created before `begin_period` got its already-consumed
        budget back and flushed after the real deadline (created at 0 with
        100 s expiry, period opened at 50 → flush was at 147, not 97)."""
        sim.run_until(50.0)
        harness.scheduler.begin_period(beat(0.0, expiry=100.0, device="relay"))
        sim.run_until(1000.0)
        assert harness.flushes[0][0] == pytest.approx(97.0)

    def test_expiry_cap_never_schedules_in_the_past(self, sim, harness):
        """An own beat whose guarded deadline already passed flushes
        immediately rather than at a negative delay."""
        sim.run_until(99.0)
        harness.scheduler.begin_period(beat(0.0, expiry=100.0, device="relay"))
        sim.run_until(1000.0)
        assert harness.flushes[0][0] == pytest.approx(99.0)


class TestNoBeatIsEverLate:
    def test_every_flushed_beat_meets_guarded_deadline(self, sim):
        """Scheduler invariant: flush time <= deadline - guard, all beats."""
        harness = SchedulerHarness(sim, capacity=8)
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        arrivals = [(20.0, 250.0), (50.0, 90.0), (80.0, 400.0), (120.0, 60.0)]
        for arrive, expiry in arrivals:
            sim.run_until(arrive)
            harness.scheduler.offer(
                CollectedBeat(beat(arrive, expiry=expiry), arrive, "u")
            )
        sim.run_until(2000.0)
        for time, own, collected, __ in harness.flushes:
            if own is not None:
                assert time <= own.deadline_s - 3.0 + 1e-9
            for item in collected:
                assert time <= item.message.deadline_s - 3.0 + 1e-9


class TestForcedFlush:
    def test_flush_now_sends_pending(self, sim, harness):
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        sim.run_until(10.0)
        harness.scheduler.offer(CollectedBeat(beat(10.0), 10.0, "u"))
        harness.scheduler.flush_now("shutdown")
        assert len(harness.flushes) == 1
        assert harness.flushes[0][3] == "shutdown"

    def test_flush_now_with_nothing_pending_is_noop(self, sim, harness):
        harness.scheduler.flush_now()
        assert harness.flushes == []

    def test_no_double_flush_after_forced(self, sim, harness):
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        harness.scheduler.flush_now("shutdown")
        sim.run_until(1000.0)
        assert len(harness.flushes) == 1


class TestStatistics:
    def test_flush_records_and_counters(self, sim, harness):
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        sim.run_until(5.0)
        harness.scheduler.offer(CollectedBeat(beat(5.0), 5.0, "a"))
        sim.run_until(1000.0)
        assert harness.scheduler.beats_accepted == 1
        record = harness.scheduler.flushes[0]
        assert record.collected == 1
        assert record.total_bytes == 108  # own 54 + collected 54

    def test_config_validation(self, sim):
        with pytest.raises(ValueError):
            SchedulerConfig(capacity=0)
        with pytest.raises(ValueError):
            SchedulerConfig(uplink_guard_s=-1.0)
        with pytest.raises(ValueError):
            MessageScheduler(sim, 0.0, lambda *a: None)


class TestTimerCoalescing:
    """Re-arm requests with an unchanged binding deadline keep the timer."""

    def test_identical_deadline_rearm_is_skipped(self, sim, harness):
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        assert harness.scheduler.offer(CollectedBeat(beat(0.0), 0.0, "ue-1"))
        skipped = harness.scheduler.rearms_skipped
        # same expiry -> same send-by -> the armed wakeup already fits
        assert harness.scheduler.offer(CollectedBeat(beat(0.0), 0.0, "ue-2"))
        assert harness.scheduler.rearms_skipped == skipped + 1
        sim.run_until(1000.0)
        # coalescing must not change observable behavior: one flush,
        # both collected beats aboard
        assert len(harness.flushes) == 1
        assert len(harness.flushes[0][2]) == 2

    def test_tighter_deadline_still_rearms(self, sim, harness):
        harness.scheduler.begin_period(beat(0.0, device="relay"))
        harness.scheduler.offer(CollectedBeat(beat(0.0), 0.0, "ue-1"))
        skipped = harness.scheduler.rearms_skipped
        harness.scheduler.offer(
            CollectedBeat(beat(0.0, expiry=50.0), 0.0, "ue-2")
        )
        assert harness.scheduler.rearms_skipped == skipped  # real re-arm
        sim.run_until(1000.0)
        assert harness.flushes[0][0] < T - 3.0  # the tighter send-by won
