"""Unit tests for the Smartphone device model."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.energy.battery import Battery
from repro.energy.power_monitor import PowerMonitor
from repro.mobility.models import LinearMobility, StaticMobility
from repro.workload.apps import STANDARD_APP
from repro.workload.generator import HeartbeatGenerator


class TestConstruction:
    def test_defaults(self, sim):
        phone = Smartphone(sim, "dev")
        assert phone.role == Role.STANDALONE
        assert phone.alive
        assert phone.d2d is None
        assert phone.position() == (0.0, 0.0)

    def test_d2d_endpoint_registered_with_medium(self, sim):
        medium = D2DMedium(sim, WIFI_DIRECT)
        phone = Smartphone(sim, "dev", d2d_medium=medium)
        assert medium.endpoint("dev") is phone.d2d

    def test_position_follows_mobility(self, sim):
        phone = Smartphone(sim, "dev", mobility=LinearMobility((0.0, 0.0), (1.0, 0.0)))
        sim.run_until(5.0)
        assert phone.position() == (5.0, 0.0)
        assert phone.position(2.0) == (2.0, 0.0)

    def test_role_helpers(self, sim):
        assert Smartphone(sim, "r", role=Role.RELAY).is_relay
        assert Smartphone(sim, "u", role=Role.UE).is_ue
        assert not Smartphone(sim, "s").is_relay

    def test_power_monitor_wired_to_energy(self, sim):
        monitor = PowerMonitor()
        phone = Smartphone(sim, "dev", power_monitor=monitor)
        from repro.energy.model import EnergyPhase

        phone.energy.charge(EnergyPhase.OTHER, 100.0, duration_s=1.0)
        assert monitor.integral_uah() == pytest.approx(100.0)


class TestPowerOff:
    def test_power_off_stops_everything(self, sim, ledger):
        medium = D2DMedium(sim, WIFI_DIRECT)
        basestation = BaseStation(sim, ledger=ledger)
        phone = Smartphone(
            sim, "dev", ledger=ledger, basestation=basestation, d2d_medium=medium
        )
        beats = []
        generator = HeartbeatGenerator(
            sim, "dev", STANDARD_APP, beats.append, phase_fraction=0.0
        ).start()
        phone.add_generator(generator)
        sim.run_until(1.0)
        phone.power_off()
        sim.run_until(1000.0)
        assert len(beats) == 1
        assert not phone.alive
        assert not phone.modem.powered_on
        assert not medium.endpoint("dev").powered_on

    def test_power_off_idempotent(self, sim):
        phone = Smartphone(sim, "dev")
        phone.power_off()
        phone.power_off()

    def test_battery_depletion_powers_off(self, sim):
        battery = Battery(capacity_mah=0.0005)  # 0.5 µAh: dies immediately
        phone = Smartphone(sim, "dev", battery=battery)
        from repro.energy.model import EnergyPhase

        phone.energy.charge(EnergyPhase.OTHER, 10.0)
        assert battery.is_depleted
        assert not phone.alive

    def test_healthy_battery_keeps_phone_alive(self, sim):
        battery = Battery()
        phone = Smartphone(sim, "dev", battery=battery)
        from repro.energy.model import EnergyPhase

        phone.energy.charge(EnergyPhase.OTHER, 10.0)
        assert phone.alive
        assert battery.level < 1.0
