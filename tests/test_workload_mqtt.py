"""Tests for the MQTT keep-alive codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.mqtt import (
    MAX_REMAINING_LENGTH,
    MqttCodecError,
    PacketType,
    TCP_IP_OVERHEAD,
    decode_packet,
    decode_remaining_length,
    encode_connect,
    encode_pingreq,
    encode_pingresp,
    encode_remaining_length,
    estimated_wire_bytes,
)


class TestRemainingLength:
    def test_spec_examples(self):
        # MQTT 3.1.1 §2.2.3 boundary encodings
        assert encode_remaining_length(0) == b"\x00"
        assert encode_remaining_length(127) == b"\x7f"
        assert encode_remaining_length(128) == b"\x80\x01"
        assert encode_remaining_length(16_383) == b"\xff\x7f"
        assert encode_remaining_length(16_384) == b"\x80\x80\x01"

    def test_out_of_range(self):
        with pytest.raises(MqttCodecError):
            encode_remaining_length(-1)
        with pytest.raises(MqttCodecError):
            encode_remaining_length(MAX_REMAINING_LENGTH + 1)

    def test_truncated_decode(self):
        with pytest.raises(MqttCodecError):
            decode_remaining_length(b"\x80")

    @given(st.integers(min_value=0, max_value=MAX_REMAINING_LENGTH))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, value):
        encoded = encode_remaining_length(value)
        decoded, consumed = decode_remaining_length(encoded)
        assert decoded == value
        assert consumed == len(encoded)
        assert 1 <= consumed <= 4


class TestPing:
    def test_pingreq_is_two_bytes(self):
        """The whole heartbeat payload: 2 bytes on the application layer."""
        assert encode_pingreq() == b"\xc0\x00"
        assert len(encode_pingreq()) == 2

    def test_ping_roundtrip(self):
        packet = decode_packet(encode_pingreq())
        assert packet.packet_type == PacketType.PINGREQ
        assert packet.remaining_length == 0
        assert packet.total_length == 2
        assert decode_packet(encode_pingresp()).packet_type == (
            PacketType.PINGRESP
        )


class TestConnect:
    def test_keepalive_roundtrip(self):
        encoded = encode_connect("wechat-client-7", keepalive_s=270)
        packet = decode_packet(encoded)
        assert packet.packet_type == PacketType.CONNECT
        assert packet.keepalive_s == 270
        assert packet.client_id == "wechat-client-7"

    def test_keepalive_matches_app_periods(self):
        """Real IM periods fit the 16-bit keep-alive field."""
        from repro.workload.apps import APP_REGISTRY

        for app in APP_REGISTRY.values():
            encoded = encode_connect("c", int(app.heartbeat_period_s))
            assert decode_packet(encoded).keepalive_s == int(
                app.heartbeat_period_s
            )

    def test_invalid_keepalive(self):
        with pytest.raises(MqttCodecError):
            encode_connect("c", -1)
        with pytest.raises(MqttCodecError):
            encode_connect("c", 70_000)

    @given(st.text(min_size=0, max_size=40), st.integers(0, 0xFFFF))
    @settings(max_examples=100, deadline=None)
    def test_connect_roundtrip_property(self, client_id, keepalive):
        packet = decode_packet(encode_connect(client_id, keepalive))
        assert packet.client_id == client_id
        assert packet.keepalive_s == keepalive


class TestDecodeErrors:
    def test_short_buffer(self):
        with pytest.raises(MqttCodecError):
            decode_packet(b"\xc0")

    def test_unknown_type(self):
        with pytest.raises(MqttCodecError):
            decode_packet(b"\x00\x00")

    def test_truncated_body(self):
        with pytest.raises(MqttCodecError):
            decode_packet(bytes([PacketType.CONNECT << 4, 10, 0]))

    def test_malformed_connect(self):
        bad = bytes([PacketType.CONNECT << 4]) + b"\x0c" + b"\x00\x04MQTX" + bytes(8)
        with pytest.raises(MqttCodecError):
            decode_packet(bad)


class TestWireSizeReconstruction:
    def test_ping_measures_in_the_papers_range(self):
        """A TLS-framed 2-byte ping lands between WhatsApp's 66 B and
        WeChat's 74 B — the paper's measured heartbeat sizes."""
        estimate = estimated_wire_bytes(application_bytes=2)
        assert 66 <= estimate <= 74

    def test_overhead_composition(self):
        assert estimated_wire_bytes(0, 0) == TCP_IP_OVERHEAD

    def test_validation(self):
        with pytest.raises(MqttCodecError):
            estimated_wire_bytes(-1)
