"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.energy.model import EnergyModel
from repro.energy.profiles import DEFAULT_PROFILE
from repro.sim.engine import Simulator
from repro.workload.server import IMServer


@pytest.fixture
def sim() -> Simulator:
    """Fresh deterministic simulator."""
    return Simulator(seed=42)


@pytest.fixture
def ledger() -> SignalingLedger:
    return SignalingLedger()


@pytest.fixture
def profile():
    return DEFAULT_PROFILE


@pytest.fixture
def energy() -> EnergyModel:
    return EnergyModel(owner="test-device")


@pytest.fixture
def network(sim, ledger):
    """(sim, ledger, basestation, server, medium) wired together."""
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    return sim, ledger, basestation, server, medium
