"""Unit tests for the battery model."""

import pytest

from repro.energy.battery import Battery
from repro.energy.profiles import GALAXY_S4_BATTERY_MAH


class TestConstruction:
    def test_defaults_to_galaxy_s4(self):
        assert Battery().capacity_mah == GALAXY_S4_BATTERY_MAH

    def test_partial_initial_level(self):
        battery = Battery(capacity_mah=1000, level=0.25)
        assert battery.remaining_mah == pytest.approx(250.0)
        assert battery.level == pytest.approx(0.25)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0)

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            Battery(level=1.5)


class TestDrain:
    def test_drain_reduces_charge(self):
        battery = Battery(capacity_mah=1.0)
        battery.drain_uah(250.0)
        assert battery.remaining_mah == pytest.approx(0.75)

    def test_drain_clamps_at_zero(self):
        battery = Battery(capacity_mah=0.001)  # 1 µAh
        battery.drain_uah(1000.0)
        assert battery.remaining_mah == 0.0
        assert battery.is_depleted

    def test_negative_drain_rejected(self):
        with pytest.raises(ValueError):
            Battery().drain_uah(-1.0)

    def test_depletion_hook_fires_once(self):
        fired = []
        battery = Battery(capacity_mah=0.001, on_depleted=lambda: fired.append(1))
        battery.drain_uah(500.0)
        battery.drain_uah(500.0)
        assert fired == [1]

    def test_total_drained_caps_at_capacity(self):
        battery = Battery(capacity_mah=1.0)
        battery.drain_uah(2000.0)  # 2 mAh from a 1 mAh battery
        assert battery.total_drained_mah == pytest.approx(1.0)


class TestRechargeAndProjection:
    def test_recharge_restores_level(self):
        battery = Battery(capacity_mah=100)
        battery.drain_uah(50_000)
        battery.recharge()
        assert battery.level == pytest.approx(1.0)

    def test_recharge_rearms_depletion_hook(self):
        fired = []
        battery = Battery(capacity_mah=0.001, on_depleted=lambda: fired.append(1))
        battery.drain_uah(10.0)
        battery.recharge()
        battery.drain_uah(10.0)
        assert fired == [1, 1]

    def test_projected_lifetime(self):
        battery = Battery(capacity_mah=1.0)  # 1000 µAh
        assert battery.projected_lifetime_s(10.0) == pytest.approx(100.0)

    def test_projected_lifetime_infinite_at_zero_rate(self):
        assert Battery().projected_lifetime_s(0.0) == float("inf")

    def test_fraction_for_matches_paper_math(self):
        """320 WeChat beats/day × ~598 µAh ≈ 7% of a Galaxy S4 battery."""
        battery = Battery()
        daily = (86_400 / 270.0) * 597.93
        assert battery.fraction_for(daily) == pytest.approx(0.0736, abs=0.002)
