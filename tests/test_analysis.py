"""Unit tests for the derived-quantity helpers."""

import pytest

from repro.analysis import (
    crossover_index,
    cumulative,
    linear_fit,
    monotone_nondecreasing,
    saved_fraction,
    saved_percent,
    signaling_reduction,
    wasted_to_saved_ratio,
)
from repro.energy.profiles import TABLE_IV_RECEIVE_UAH


class TestSavedFraction:
    def test_half_saving(self):
        assert saved_fraction(100.0, 50.0) == pytest.approx(0.5)
        assert saved_percent(100.0, 50.0) == pytest.approx(50.0)

    def test_negative_when_worse(self):
        assert saved_fraction(100.0, 120.0) == pytest.approx(-0.2)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            saved_fraction(0.0, 1.0)


class TestWastedToSaved:
    def test_fig11_style_ratio(self):
        # relay wastes 97 units, UE saves 100 → ratio 0.97 (paper's ~97%)
        assert wasted_to_saved_ratio(197.0, 100.0, 0.0, 100.0) == pytest.approx(0.97)

    def test_no_waste_clamps_to_zero(self):
        assert wasted_to_saved_ratio(90.0, 100.0, 50.0, 100.0) == 0.0

    def test_no_saving_is_infinite(self):
        assert wasted_to_saved_ratio(150.0, 100.0, 120.0, 100.0) == float("inf")


class TestSignalingReduction:
    def test_half_reduction(self):
        assert signaling_reduction(112, 56) == pytest.approx(0.5)

    def test_zero_original_rejected(self):
        with pytest.raises(ValueError):
            signaling_reduction(0, 5)


class TestLinearFit:
    def test_exact_line(self):
        slope, intercept, r2 = linear_fit([1, 2, 3], [3.0, 5.0, 7.0])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)
        assert r2 == pytest.approx(1.0)

    def test_table_iv_is_approximately_linear(self):
        """The paper's Table IV claim: receive energy ≈ linear in #UEs."""
        slope, intercept, r2 = linear_fit(
            list(range(1, 8)), list(TABLE_IV_RECEIVE_UAH)
        )
        assert r2 > 0.999
        assert slope == pytest.approx(130.0, abs=5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])
        with pytest.raises(ValueError):
            linear_fit([2, 2], [1, 3])

    def test_flat_line_r2_is_one(self):
        __, __, r2 = linear_fit([1, 2, 3], [4.0, 4.0, 4.0])
        assert r2 == 1.0


class TestPercentile:
    def test_median_of_odd_sample(self):
        from repro.analysis import percentile

        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_interpolation(self):
        from repro.analysis import percentile

        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_extremes(self):
        from repro.analysis import percentile

        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 9.0

    def test_single_value(self):
        from repro.analysis import percentile

        assert percentile([7.0], 95.0) == 7.0

    def test_validation(self):
        from repro.analysis import percentile

        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_delivery_delay_tail(self):
        """p95 delay of a relayed run is bounded by one relay period."""
        from repro.analysis import percentile
        from repro.scenarios import run_relay_scenario

        result = run_relay_scenario(n_ues=2, periods=4)
        delays = result.context.server.delays()
        assert percentile(delays, 95.0) <= 270.0
        assert percentile(delays, 50.0) > 1.0  # aggregation really delays


class TestSeriesHelpers:
    def test_crossover_index(self):
        assert crossover_index([1, 2, 3], [2, 2, 2]) == 2
        assert crossover_index([1, 1], [2, 2]) == -1
        with pytest.raises(ValueError):
            crossover_index([1], [1, 2])

    def test_monotone_check(self):
        assert monotone_nondecreasing([1, 2, 2, 3])
        assert not monotone_nondecreasing([1, 3, 2])
        assert monotone_nondecreasing([1.0, 0.999, 2.0], tolerance=0.01)

    def test_cumulative(self):
        assert cumulative([1.0, 2.0, 3.0]) == [1.0, 3.0, 6.0]
        assert cumulative([]) == []
