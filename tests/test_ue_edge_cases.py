"""Edge-case tests for the UE agent's buffering and fallback paths."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.core.matching import MatchConfig
from repro.core.scheduler import SchedulerConfig
from repro.core.ue import UEState
from repro.d2d.base import D2DMedium, D2DTechnology
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import AppProfile
from repro.workload.server import IMServer

import dataclasses

#: an app with an aggressive period and short expiry, to stress deadlines
TIGHT_APP = AppProfile(
    name="standard",  # reuse the registered name for server windows
    heartbeat_period_s=60.0,
    heartbeat_bytes=54,
    heartbeat_share=0.5,
    expiry_s=20.0,
)

#: a Wi-Fi Direct variant whose scans take almost as long as the slack
SLOW_SCAN_TECH = dataclasses.replace(
    WIFI_DIRECT, discovery_latency_s=12.0, connection_latency_s=6.0
)


def build_rig(app=TIGHT_APP, technology=WIFI_DIRECT, with_relay=True, seed=0):
    sim = Simulator(seed=seed)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, technology)
    framework = HeartbeatRelayFramework(
        [], app=app,
        config=FrameworkConfig(
            scheduler=SchedulerConfig(capacity=10, uplink_guard_s=7.0),
        ),
    )
    if with_relay:
        relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                           role=Role.RELAY, ledger=ledger,
                           basestation=basestation, d2d_medium=medium)
        framework.add_device(relay, phase_fraction=0.0)
    ue = Smartphone(sim, "ue-0", mobility=StaticMobility((1.0, 0.0)),
                    role=Role.UE, ledger=ledger, basestation=basestation,
                    d2d_medium=medium)
    framework.add_device(ue, phase_fraction=0.5)
    return sim, server, framework, ue


class TestBufferDeadline:
    def test_slow_setup_forces_buffered_beat_to_cellular(self):
        """The buffered beat's own deadline timer fires while discovery is
        still in flight: the beat must go cellular, on time."""
        sim, server, framework, ue = build_rig(technology=SLOW_SCAN_TECH)
        sim.run_until(120.0)
        agent = framework.ues["ue-0"]
        # discovery (12 s) + connection (6 s) exceed the guarded slack
        # (20 s − 4 s); the deadline timer evicted the buffered beat
        assert agent.cellular_sends >= 1
        records = [r for r in server.records
                   if r.message.origin_device == "ue-0"]
        assert records and all(r.on_time for r in records)

    def test_connection_still_completes_for_later_beats(self):
        sim, server, framework, ue = build_rig(technology=SLOW_SCAN_TECH)
        sim.run_until(400.0)
        agent = framework.ues["ue-0"]
        # after the slow setup finally lands, subsequent beats ride D2D
        assert agent.state == UEState.CONNECTED
        assert agent.beats_forwarded >= 1


class TestTightExpiry:
    def test_short_expiry_beats_still_meet_deadlines(self):
        sim, server, framework, ue = build_rig()
        sim.run_until(10 * TIGHT_APP.heartbeat_period_s)
        records = [r for r in server.records
                   if r.message.origin_device == "ue-0"]
        assert len(records) >= 9
        assert all(r.on_time for r in records)

    def test_scheduler_flushes_on_expiration_not_period(self):
        """With 20 s expiry inside a 60 s period, flushes are pulled in by
        the collected beats' deadlines."""
        sim, server, framework, ue = build_rig()
        sim.run_until(5 * TIGHT_APP.heartbeat_period_s)
        relay_agent = framework.relays["relay-0"]
        reasons = {flush.reason for flush in relay_agent.scheduler.flushes}
        assert "expiration" in reasons or "period" in reasons
        # at least one uplink per period: the relay can't hold past expiry
        assert relay_agent.aggregated_uplinks >= 4


class TestNoRelayWorld:
    def test_ue_without_any_relay_behaves_like_original(self):
        sim, server, framework, ue = build_rig(with_relay=False)
        sim.run_until(5 * TIGHT_APP.heartbeat_period_s)
        agent = framework.ues["ue-0"]
        assert agent.beats_forwarded == 0
        assert agent.cellular_sends >= 4
        assert agent.matches == 0
        records = [r for r in server.records
                   if r.message.origin_device == "ue-0"]
        assert all(not r.relayed for r in records)
        assert all(r.on_time for r in records)

    def test_search_cooldown_limits_scan_energy(self):
        sim, server, framework, ue = build_rig(with_relay=False)
        sim.run_until(5 * TIGHT_APP.heartbeat_period_s)
        agent = framework.ues["ue-0"]
        # with a 60 s cooldown and 60 s periods, roughly one scan per beat;
        # never more scans than beats
        assert agent.searches <= agent.beats_seen


class TestScanCollision:
    def test_beat_during_foreign_scan_still_connects(self):
        """Regression: when a scan was already in flight as the beat
        arrived, `_start_search` got `False` from `discover()` and simply
        stayed SEARCHING with no callback registered — stuck forever,
        every later beat limping out via its buffer deadline timer. The
        agent must ride the in-flight scan's result instead."""
        sim, server, framework, ue = build_rig()
        agent = framework.ues["ue-0"]
        # an unrelated scan (think: periodic rescan) takes off just before
        # the first beat fires at t = 30
        sim.schedule_at(
            29.0, lambda: agent.detector.discover(lambda peers: None)
        )
        sim.run_until(10 * TIGHT_APP.heartbeat_period_s)
        assert agent.detector.scan_joins == 1
        assert agent.state == UEState.CONNECTED
        assert agent.beats_forwarded >= 1
        records = [r for r in server.records
                   if r.message.origin_device == "ue-0"]
        assert len(records) >= 9
        assert all(r.on_time for r in records)


class TestStaleLink:
    def test_silent_link_death_triggers_cleanup_and_reconnect(self):
        """A beat that finds the link dead (no disconnect callback ever
        fired) must run the full teardown and re-search — not keep
        pointing at the dead connection."""
        sim, server, framework, ue = build_rig()
        sim.run_until(100.0)  # first beat at t=30 drove the connect
        agent = framework.ues["ue-0"]
        assert agent.state == UEState.CONNECTED
        dead = agent.connection
        dead.alive = False
        matches_before = agent.matches
        sim.run_until(10 * TIGHT_APP.heartbeat_period_s)
        assert agent.connection is not dead
        assert agent.matches > matches_before  # re-paired on a fresh link
        records = [r for r in server.records
                   if r.message.origin_device == "ue-0"]
        assert len(records) >= 9
        assert all(r.on_time for r in records)

    def test_stale_link_beat_does_not_leak_state(self):
        """Right after the stale-link beat, the dead connection and any
        pending feedback timers are gone (regression: the old path left
        both in place while the next search/connect cycle ran)."""
        sim, server, framework, ue = build_rig()
        sim.run_until(100.0)
        agent = framework.ues["ue-0"]
        dead = agent.connection
        dead.alive = False
        sim.run_until(150.5)  # the t=150 beat found the dead link
        assert agent.connection is not dead
        assert agent.connection is None or agent.connection.alive
        assert agent.relay_id is None or agent.connection is not None
        assert agent.feedback.pending_count == 0 or agent.connection is not None
