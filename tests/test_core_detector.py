"""Unit tests for the D2D Detector component."""

import pytest

from repro.core.detector import D2DDetector
from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.mobility.models import StaticMobility


@pytest.fixture
def setup(sim):
    medium = D2DMedium(sim, WIFI_DIRECT)
    ue = D2DEndpoint("ue", StaticMobility((0.0, 0.0)))
    relay = D2DEndpoint(
        "relay", StaticMobility((3.0, 0.0)), advertisement={"role": "relay"}
    )
    relay.advertising = True
    medium.register(ue)
    medium.register(relay)
    detector = D2DDetector(sim, "ue", medium)
    return sim, medium, detector


class TestOneShot:
    def test_discover_returns_peers(self, setup):
        sim, __, detector = setup
        results = []
        assert detector.discover(results.extend) is True
        sim.run_until(10.0)
        assert [p.device_id for p in results] == ["relay"]
        assert detector.scans == 1

    def test_concurrent_scan_rejected(self, setup):
        sim, __, detector = setup
        detector.discover(lambda peers: None)
        assert detector.discover(lambda peers: None) is False
        sim.run_until(10.0)
        # after completion, a new scan is allowed again
        assert detector.discover(lambda peers: None) is True


class TestCache:
    def test_cache_fresh_after_scan(self, setup):
        sim, __, detector = setup
        detector.discover(lambda peers: None)
        sim.run_until(5.0)
        cached = detector.cached_peers()
        assert cached is not None and cached[0].device_id == "relay"

    def test_cache_empty_before_any_scan(self, setup):
        __, __, detector = setup
        assert detector.cached_peers() is None

    def test_cache_expires(self, setup):
        sim, __, detector = setup
        detector.discover(lambda peers: None)
        sim.run_until(5.0)
        sim.run_until(5.0 + detector.cache_ttl_s + 1.0)
        assert detector.cached_peers() is None

    def test_invalid_ttl_rejected(self, setup):
        sim, medium, __ = setup
        with pytest.raises(ValueError):
            D2DDetector(sim, "ue", medium, cache_ttl_s=0.0)


class TestPeriodic:
    def test_periodic_rescans(self, setup):
        sim, __, detector = setup
        hits = []
        detector.start_periodic(30.0, lambda peers: hits.append(sim.now))
        sim.run_until(100.0)
        assert len(hits) == 3
        assert detector.periodic_running

    def test_stop_periodic(self, setup):
        sim, __, detector = setup
        detector.start_periodic(30.0, lambda peers: None)
        sim.run_until(40.0)
        detector.stop_periodic()
        scans_before = detector.scans
        sim.run_until(400.0)
        assert detector.scans == scans_before
        assert not detector.periodic_running

    def test_double_start_rejected(self, setup):
        __, __, detector = setup
        detector.start_periodic(30.0, lambda peers: None)
        with pytest.raises(RuntimeError):
            detector.start_periodic(30.0, lambda peers: None)

    def test_stop_periodic_idempotent(self, setup):
        __, __, detector = setup
        detector.stop_periodic()
        detector.stop_periodic()


class TestJoinScan:
    def test_join_delivers_the_in_flight_scans_result(self, setup):
        """One physical scan serves every waiter (regression: a second
        caller used to get `False` from discover() and then dangled with
        no callback registered at all)."""
        sim, __, detector = setup
        first, second = [], []
        assert detector.discover(first.extend) is True
        assert detector.discover(second.extend) is False
        assert detector.join_scan(second.extend) is True
        sim.run_until(10.0)
        assert [p.device_id for p in first] == ["relay"]
        assert second == first
        assert detector.scans == 1  # the radio work was spent once
        assert detector.scan_joins == 1

    def test_join_without_scan_in_flight_returns_false(self, setup):
        sim, __, detector = setup
        assert detector.scan_in_progress is False
        assert detector.join_scan(lambda peers: None) is False
        assert detector.scan_joins == 0

    def test_waiters_cleared_between_scans(self, setup):
        """A waiter from scan #1 must not be re-invoked by scan #2."""
        sim, __, detector = setup
        calls = []
        detector.discover(lambda peers: calls.append("first"))
        detector.join_scan(lambda peers: calls.append("joined"))
        sim.run_until(10.0)
        assert calls == ["first", "joined"]
        detector.discover(lambda peers: calls.append("second"))
        sim.run_until(20.0)
        assert calls == ["first", "joined", "second"]
