"""Hypothesis stateful test for the D2D medium.

Random interleavings of register / connect / send / power-off / close /
wait must never violate the medium's structural invariants: the live
connection list only contains alive connections between powered-on
endpoints, per-endpoint energy only grows, and message counters stay
consistent.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
import hypothesis.strategies as st

from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.energy.model import EnergyModel
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator

N_ENDPOINTS = 4


class MediumMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.sim = Simulator(seed=0)
        self.medium = D2DMedium(self.sim, WIFI_DIRECT)
        self.endpoints = []
        for i in range(N_ENDPOINTS):
            endpoint = D2DEndpoint(
                f"dev-{i}", StaticMobility((float(i * 3), 0.0)),
                energy=EnergyModel(f"dev-{i}"),
            )
            endpoint.advertising = True
            self.medium.register(endpoint)
            self.endpoints.append(endpoint)
        self.connections = []
        self.last_energy = {e.device_id: 0.0 for e in self.endpoints}

    # ------------------------------------------------------------------
    @rule(a=st.integers(0, N_ENDPOINTS - 1), b=st.integers(0, N_ENDPOINTS - 1))
    def connect(self, a, b):
        if a == b:
            return
        initiator = self.endpoints[a]
        if not initiator.powered_on:
            return

        def done(connection):
            if connection is not None:
                self.connections.append(connection)

        self.medium.connect(initiator.device_id,
                            self.endpoints[b].device_id, done)

    @rule(index=st.integers(0, 50), size=st.integers(1, 300))
    def send(self, index, size):
        live = [c for c in self.connections if c.alive]
        if not live:
            return
        connection = live[index % len(live)]
        sender = connection.initiator
        if not sender.powered_on:
            sender = connection.responder
        connection.send(sender.device_id, size, "payload")

    @rule(index=st.integers(0, 50))
    def close_one(self, index):
        live = [c for c in self.connections if c.alive]
        if live:
            live[index % len(live)].close("test")

    @rule(index=st.integers(0, N_ENDPOINTS - 1))
    def power_off(self, index):
        endpoint = self.endpoints[index]
        if endpoint.powered_on:
            self.medium.power_off(endpoint.device_id)

    @rule(dt=st.floats(min_value=0.1, max_value=20.0))
    def wait(self, dt):
        self.sim.run_until(self.sim.now + dt)

    # ------------------------------------------------------------------
    @invariant()
    def live_list_only_contains_alive_connections(self):
        for connection in self.medium._connections:
            assert connection.alive
            assert connection.initiator.powered_on
            assert connection.responder.powered_on

    @invariant()
    def connections_of_is_consistent(self):
        for endpoint in self.endpoints:
            for connection in self.medium.connections_of(endpoint.device_id):
                assert endpoint in (connection.initiator, connection.responder)
                assert connection.alive

    @invariant()
    def energy_monotone(self):
        for endpoint in self.endpoints:
            total = endpoint.energy.total_uah
            assert total >= self.last_energy[endpoint.device_id] - 1e-9
            self.last_energy[endpoint.device_id] = total

    @invariant()
    def counters_consistent(self):
        for connection in self.connections:
            assert connection.messages_delivered >= 0
            assert connection.messages_lost >= 0
        assert self.medium.connections_broken <= (
            self.medium.connections_established + len(self.connections) + 10
        )

    def teardown(self):
        # let everything in flight settle; invariants must still hold
        self.sim.run_until(self.sim.now + 60.0)
        for connection in self.medium._connections:
            assert connection.alive


TestMediumStateMachine = MediumMachine.TestCase
TestMediumStateMachine.settings = settings(
    max_examples=30, stateful_step_count=25, deadline=None
)
