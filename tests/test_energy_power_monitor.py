"""Unit tests for the Monsoon-style power monitor emulation."""

import pytest

from repro.energy.model import EnergyModel, EnergyPhase
from repro.energy.power_monitor import PowerMonitor
from repro.energy.profiles import DEFAULT_PROFILE


@pytest.fixture
def monitor():
    return PowerMonitor(sample_period_s=0.1)


class TestPulseDeposition:
    def test_trace_integral_equals_charged_energy(self, monitor):
        monitor.on_charge(0.0, EnergyPhase.CELLULAR_TAIL, 455.23, 7.5)
        assert monitor.integral_uah() == pytest.approx(455.23, rel=1e-9)

    def test_multiple_events_sum(self, monitor):
        monitor.on_charge(0.0, EnergyPhase.D2D_FORWARD, 73.09, 0.4)
        monitor.on_charge(5.0, EnergyPhase.D2D_RECEIVE, 130.17, 0.4)
        assert monitor.integral_uah() == pytest.approx(203.26, rel=1e-9)

    def test_zero_charge_ignored(self, monitor):
        monitor.on_charge(0.0, EnergyPhase.D2D_FORWARD, 0.0, 1.0)
        assert monitor.integral_uah() == 0.0

    def test_default_duration_used_when_missing(self, monitor):
        monitor.on_charge(0.0, EnergyPhase.CELLULAR_TAIL, 455.23)
        # spreads over the profile's full tail window
        expected_samples = int(DEFAULT_PROFILE.cellular_tail_s / 0.1)
        assert len(monitor.currents_ma()) == expected_samples

    def test_idle_baseline_present_everywhere(self, monitor):
        monitor.on_charge(0.0, EnergyPhase.D2D_FORWARD, 10.0, 0.5)
        trace = monitor.currents_ma(until_s=2.0)
        assert all(c >= monitor.idle_current_ma for c in trace)

    def test_sample_timestamps(self, monitor):
        monitor.on_charge(0.0, EnergyPhase.D2D_FORWARD, 10.0, 0.3)
        samples = monitor.trace()
        assert [round(s.time_s, 3) for s in samples] == [0.0, 0.1, 0.2]

    def test_invalid_sample_period_rejected(self):
        with pytest.raises(ValueError):
            PowerMonitor(sample_period_s=0.0)

    def test_reset_clears_trace(self, monitor):
        monitor.on_charge(0.0, EnergyPhase.D2D_FORWARD, 10.0, 0.3)
        monitor.reset()
        assert monitor.integral_uah() == 0.0


class TestFig6Fig7Shapes:
    """The qualitative difference between the paper's Figs. 6 and 7."""

    def _d2d_trace(self):
        monitor = PowerMonitor()
        p = DEFAULT_PROFILE
        monitor.on_charge(0.0, EnergyPhase.D2D_FORWARD,
                          p.ue_forward_cost_uah(54), p.d2d_transfer_s)
        return monitor

    def _cellular_trace(self):
        monitor = PowerMonitor()
        p = DEFAULT_PROFILE
        monitor.on_charge(0.0, EnergyPhase.CELLULAR_SETUP,
                          p.cellular_setup_uah, p.cellular_setup_s)
        monitor.on_charge(p.cellular_setup_s, EnergyPhase.CELLULAR_TX,
                          p.cellular_send_cost_uah(54, setup_needed=False),
                          p.cellular_tx_s)
        monitor.on_charge(p.cellular_setup_s + p.cellular_tx_s,
                          EnergyPhase.CELLULAR_TAIL,
                          p.cellular_tail_uah, p.cellular_tail_s)
        return monitor

    def test_cellular_stays_elevated_much_longer_than_d2d(self):
        d2d = self._d2d_trace().elevated_duration_s(threshold_ma=50.0)
        cellular = self._cellular_trace().elevated_duration_s(threshold_ma=50.0)
        assert cellular > 5.0  # multi-second tail (Fig. 7)
        assert d2d < 1.0  # sub-second spike (Fig. 6)
        assert cellular / d2d > 5.0

    def test_cellular_total_energy_exceeds_d2d(self):
        assert (
            self._cellular_trace().integral_uah()
            > 5 * self._d2d_trace().integral_uah()
        )

    def test_peaks_are_realistic_phone_currents(self):
        # both figures peak in the hundreds of mA on a real phone
        assert 300.0 < self._d2d_trace().peak_ma() < 1500.0
        assert 300.0 < self._cellular_trace().peak_ma() < 1500.0


class TestIntegrationWithEnergyModel:
    def test_model_hook_feeds_monitor(self):
        monitor = PowerMonitor()
        model = EnergyModel(on_charge=monitor.on_charge)
        model.charge(EnergyPhase.D2D_FORWARD, 50.0, time_s=1.0, duration_s=0.4)
        assert monitor.integral_uah() == pytest.approx(50.0)
        assert model.total_uah == pytest.approx(50.0)
