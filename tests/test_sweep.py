"""Tests for the grid-sweep utility."""

import pytest

from repro.sweep import SweepPoint, grid_sweep


def toy_runner(a, b):
    return {"sum": float(a + b), "product": float(a * b)}


@pytest.fixture
def sweep():
    return grid_sweep({"a": [1, 2, 3], "b": [10, 20]}, toy_runner)


class TestGridSweep:
    def test_covers_full_cartesian_product(self, sweep):
        assert len(sweep) == 6
        combos = {(p.params["a"], p.params["b"]) for p in sweep.points}
        assert combos == {(a, b) for a in (1, 2, 3) for b in (10, 20)}

    def test_metric_names(self, sweep):
        assert sweep.metric_names() == ["product", "sum"]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep({}, toy_runner)
        with pytest.raises(ValueError):
            grid_sweep({"a": []}, toy_runner)

    def test_inconsistent_metrics_rejected(self):
        calls = []

        def flaky(a):
            calls.append(a)
            return {"x": 1.0} if len(calls) == 1 else {"y": 1.0}

        with pytest.raises(ValueError):
            grid_sweep({"a": [1, 2]}, flaky)


class TestQueries:
    def test_where_filters(self, sweep):
        points = sweep.where(a=2)
        assert len(points) == 2
        assert all(p.params["a"] == 2 for p in points)

    def test_series_sorted_by_x(self, sweep):
        series = sweep.series("a", "sum", b=10)
        assert series == [(1, 11.0), (2, 12.0), (3, 13.0)]

    def test_series_unknown_param(self, sweep):
        with pytest.raises(KeyError):
            sweep.series("z", "sum")

    def test_pivot(self, sweep):
        table = sweep.pivot("a", "b", "product")
        assert table[2][20] == 40.0
        assert set(table) == {1, 2, 3}

    def test_best(self, sweep):
        assert sweep.best("product").params == {"a": 3, "b": 20}
        assert sweep.best("sum", maximize=False).params == {"a": 1, "b": 10}

    def test_best_empty_rejected(self):
        from repro.sweep import SweepResult

        with pytest.raises(ValueError):
            SweepResult(["a"], []).best("x")

    def test_rows_for_tabulation(self, sweep):
        rows = sweep.rows()
        assert rows[0] == ["a", "b", "product", "sum"]
        assert len(rows) == 7

    def test_integrates_with_format_table(self, sweep):
        from repro.reporting import format_table

        rows = sweep.rows()
        text = format_table(rows[0], rows[1:])
        assert "product" in text


class TestWithScenarios:
    def test_small_real_sweep(self):
        """A 2×2 sweep over the actual simulator stays consistent."""
        from repro.analysis import saved_fraction
        from repro.scenarios import run_relay_scenario

        def runner(distance_m, periods):
            d2d = run_relay_scenario(n_ues=1, distance_m=distance_m,
                                     periods=periods)
            base = run_relay_scenario(n_ues=1, distance_m=distance_m,
                                      periods=periods, mode="original")
            return {
                "saved": saved_fraction(base.system_energy_uah(),
                                        d2d.system_energy_uah()),
            }

        sweep = grid_sweep(
            {"distance_m": [1.0, 10.0], "periods": [1, 5]}, runner
        )
        # saving improves with periods at both distances
        for distance in (1.0, 10.0):
            series = sweep.series("periods", "saved", distance_m=distance)
            assert series[1][1] > series[0][1]
        # and the near pair saves more than the far pair at 5 periods
        pivot = sweep.pivot("distance_m", "periods", "saved")
        assert pivot[1.0][5] > pivot[10.0][5]
