"""Unit tests for the feedback/fallback tracker."""

import pytest

from repro.core.feedback import FeedbackTracker
from repro.workload.messages import PeriodicMessage


def beat(created=0.0, expiry=270.0, seq=None):
    kwargs = dict(
        app="standard",
        origin_device="ue-0",
        size_bytes=54,
        created_at_s=created,
        period_s=270.0,
        expiry_s=expiry,
    )
    if seq is not None:
        kwargs["seq"] = seq
    return PeriodicMessage(**kwargs)


@pytest.fixture
def tracker(sim):
    fallbacks = []
    tracker = FeedbackTracker(sim, on_fallback=fallbacks.append,
                              cellular_resend_guard_s=4.0)
    tracker.test_fallbacks = fallbacks  # type: ignore[attr-defined]
    return tracker


class TestAckPath:
    def test_ack_cancels_fallback(self, sim, tracker):
        message = beat()
        tracker.track(message)
        tracker.ack([message.seq])
        sim.run_until(1000.0)
        assert tracker.test_fallbacks == []
        assert tracker.acks_received == 1
        assert tracker.pending_count == 0

    def test_partial_ack(self, sim, tracker):
        a, b = beat(), beat()
        tracker.track(a)
        tracker.track(b)
        assert tracker.ack([a.seq]) == 1
        assert tracker.pending_count == 1
        assert tracker.is_pending(b.seq)
        assert not tracker.is_pending(a.seq)

    def test_unknown_ack_counted_as_duplicate(self, tracker):
        assert tracker.ack([999999]) == 0
        assert tracker.duplicate_acks == 1

    def test_double_track_rejected(self, tracker):
        message = beat()
        tracker.track(message)
        with pytest.raises(ValueError):
            tracker.track(message)


class TestFallbackPath:
    def test_fallback_fires_at_guarded_deadline(self, sim, tracker):
        message = beat(created=0.0, expiry=100.0)
        tracker.track(message)
        sim.run_until(1000.0)
        assert tracker.test_fallbacks == [message]
        assert tracker.fallbacks_fired == 1
        # fallback fired with enough guard to re-send via cellular in time
        # (deadline 100 - guard 4 = 96)

    def test_fallback_timing_exact(self, sim, tracker):
        message = beat(created=0.0, expiry=100.0)
        pending = tracker.track(message)
        assert pending.fallback_at_s == pytest.approx(96.0)

    def test_minimum_wait_respected_for_tight_deadlines(self, sim):
        fallbacks = []
        tracker = FeedbackTracker(
            sim, on_fallback=fallbacks.append, cellular_resend_guard_s=4.0,
            min_wait_s=1.0,
        )
        message = beat(created=0.0, expiry=2.0)  # guarded deadline in the past
        pending = tracker.track(message)
        assert pending.fallback_at_s == pytest.approx(1.0)

    def test_fail_now_triggers_immediately(self, sim, tracker):
        message = beat()
        tracker.track(message)
        assert tracker.fail_now(message.seq) is True
        assert tracker.test_fallbacks == [message]
        assert tracker.pending_count == 0

    def test_fail_now_unknown_returns_false(self, tracker):
        assert tracker.fail_now(12345) is False

    def test_fail_all_now(self, sim, tracker):
        messages = [beat() for _ in range(3)]
        for message in messages:
            tracker.track(message)
        assert tracker.fail_all_now() == 3
        assert set(tracker.test_fallbacks) == set(messages)

    def test_ack_after_fallback_is_late_not_duplicate(self, sim, tracker):
        message = beat(created=0.0, expiry=50.0)
        tracker.track(message)
        sim.run_until(100.0)  # fallback fired
        assert tracker.ack([message.seq]) == 0
        assert tracker.late_acks == 1
        assert tracker.duplicate_acks == 0

    def test_late_ack_only_counted_once(self, sim, tracker):
        message = beat(created=0.0, expiry=50.0)
        tracker.track(message)
        sim.run_until(100.0)  # fallback fired
        tracker.ack([message.seq])
        tracker.ack([message.seq])  # second ack has no pending, no fallback
        assert tracker.late_acks == 1
        assert tracker.duplicate_acks == 1

    def test_no_double_fallback(self, sim, tracker):
        message = beat(created=0.0, expiry=50.0)
        tracker.track(message)
        tracker.fail_now(message.seq)
        sim.run_until(1000.0)
        assert tracker.fallbacks_fired == 1


class TestQueriesAndValidation:
    def test_pending_messages(self, tracker):
        a, b = beat(), beat()
        tracker.track(a)
        tracker.track(b)
        assert set(tracker.pending_messages()) == {a, b}

    def test_invalid_guards_rejected(self, sim):
        with pytest.raises(ValueError):
            FeedbackTracker(sim, lambda m: None, cellular_resend_guard_s=-1.0)
        with pytest.raises(ValueError):
            FeedbackTracker(sim, lambda m: None, min_wait_s=-1.0)

    def test_forwards_tracked_counter(self, tracker):
        tracker.track(beat())
        tracker.track(beat())
        assert tracker.forwards_tracked == 2
