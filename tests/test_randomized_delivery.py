"""Randomized end-to-end delivery-safety: the grand invariant under chaos.

Hypothesis draws a topology (UE count, phases, distances), a fault script
(relay death / link breaks / ack loss at random times), runs the full
framework, and asserts the one property the paper's design promises:
**every heartbeat emitted by a living device reaches the IM server before
its expiration deadline** — via the relay or via fallback, duplicates
allowed, losses never.
"""

from hypothesis import given, settings, strategies as st

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.faults import FaultPlan
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s
PERIODS = 4


@st.composite
def chaos_cases(draw):
    n_ues = draw(st.integers(min_value=1, max_value=3))
    phases = [
        draw(st.floats(min_value=0.05, max_value=0.85)) for __ in range(n_ues)
    ]
    distances = [
        draw(st.floats(min_value=0.5, max_value=15.0)) for __ in range(n_ues)
    ]
    # up to two faults, each at a random time in the run
    faults = draw(st.lists(
        st.tuples(
            st.sampled_from(["kill-relay", "break-links", "drop-acks"]),
            st.floats(min_value=30.0, max_value=PERIODS * T - 60.0),
        ),
        min_size=0,
        max_size=2,
    ))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return n_ues, phases, distances, faults, seed


@given(chaos_cases())
@settings(max_examples=40, deadline=None)
def test_no_living_devices_beat_is_ever_lost(case):
    n_ues, phases, distances, faults, seed = case
    sim = Simulator(seed=seed)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework([], app=STANDARD_APP)
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium)
    framework.add_device(relay, phase_fraction=0.0)
    ues = []
    for i in range(n_ues):
        ue = Smartphone(sim, f"ue-{i}",
                        mobility=StaticMobility((distances[i], float(i))),
                        role=Role.UE, ledger=ledger, basestation=basestation,
                        d2d_medium=medium)
        framework.add_device(ue, phase_fraction=phases[i])
        ues.append(ue)

    plan = FaultPlan(sim)
    relay_killed_at = None
    for kind, at in faults:
        if kind == "kill-relay":
            if relay_killed_at is None or at < relay_killed_at:
                relay_killed_at = at
            plan.kill_device_at(at, relay)
        elif kind == "break-links":
            plan.break_links_at(at, medium, "relay-0")
        else:
            plan.drop_acks_between(at, at + 60.0,
                                   framework.ues["ue-0"])

    horizon = PERIODS * T
    sim.run_until(horizon - 1)
    framework.shutdown()
    sim.run_until(horizon + 60)

    on_time = {
        (r.message.origin_device, r.message.seq)
        for r in server.records
        if r.on_time
    }
    # every UE beat emitted must have arrived on time (UEs never die here)
    for i, ue in enumerate(ues):
        agent = framework.ues[ue.device_id]
        emitted = agent.monitor.generators[STANDARD_APP.name].beats_emitted
        delivered = sum(1 for d, __ in on_time if d == ue.device_id)
        assert delivered == emitted, (
            f"{ue.device_id} emitted {emitted} but only {delivered} on time "
            f"(faults={faults}, phases={phases}, distances={distances})"
        )
    # relay beats emitted while alive must also land (those emitted at or
    # after its death never existed)
    if relay_killed_at is None:
        relay_emitted = framework.relays["relay-0"].monitor.generators[
            STANDARD_APP.name
        ].beats_emitted
        relay_delivered = sum(1 for d, __ in on_time if d == "relay-0")
        assert relay_delivered == relay_emitted
