"""Tests for the downlink push-notification service."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.modem import CellularModem
from repro.cellular.paging import PagingChannel, PagingConfig
from repro.cellular.signaling import Direction, L3MessageType, SignalingLedger
from repro.energy.model import EnergyModel
from repro.workload.messages import PeriodicMessage
from repro.workload.push import PushNotificationService, PushResult
from repro.workload.server import IMServer


@pytest.fixture
def rig(sim):
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    paging = PagingChannel(sim, ledger, PagingConfig(slots_per_second=4.0))
    service = PushNotificationService(sim, paging, server=server)
    energy = EnergyModel("phone")
    modem = CellularModem(sim, "phone", energy=energy, ledger=ledger,
                          basestation=basestation)
    service.register_client("phone", modem)
    return sim, ledger, server, paging, service, modem, energy


def mark_online(server, device="phone", app="standard"):
    beat = PeriodicMessage(
        app=app, origin_device=device, size_bytes=54,
        created_at_s=0.0, period_s=270.0, expiry_s=270.0,
    )
    server.receive(beat, via_device=device, time_s=server.sim.now)


class TestDelivery:
    def test_push_to_online_client_delivers(self, rig):
        sim, ledger, server, paging, service, modem, energy = rig
        mark_online(server)
        results = []
        service.push("phone", {"msg": "hello"}, results.append)
        sim.run_until(30.0)
        assert results[0].delivered
        assert service.inbox("phone") == [{"msg": "hello"}]
        assert service.delivered_count == 1

    def test_delivery_latency_includes_wake(self, rig):
        sim, ledger, server, paging, service, modem, energy = rig
        mark_online(server)
        result = service.push("phone", "x")
        sim.run_until(30.0)
        # page (instant on quiet channel) + RRC promotion 1.5 + tx 0.5 +
        # downlink 0.3
        assert result.latency_s == pytest.approx(2.3, abs=0.1)
        assert service.mean_latency_s() == pytest.approx(result.latency_s)

    def test_wake_costs_real_energy_and_signaling(self, rig):
        sim, ledger, server, paging, service, modem, energy = rig
        mark_online(server)
        service.push("phone", "x")
        sim.run_until(60.0)
        assert energy.total_uah > 100.0  # full RRC wake + tail
        assert ledger.count_for("phone") >= 5  # setup sequence at least

    def test_multiple_pushes_ordered_inbox(self, rig):
        sim, ledger, server, paging, service, modem, energy = rig
        mark_online(server)
        service.push("phone", 1)
        sim.run_until(5.0)
        service.push("phone", 2)
        sim.run_until(30.0)
        assert service.inbox("phone") == [1, 2]


class TestFailures:
    def test_offline_client_fails_immediately(self, rig):
        sim, ledger, server, paging, service, modem, energy = rig
        # no heartbeat ever arrived → server considers the phone offline
        result = service.push("phone", "x")
        assert result.failure == "offline"
        assert not result.delivered
        assert service.failure_breakdown() == {"offline": 1}

    def test_expired_heartbeats_make_client_unreachable(self, rig):
        """The motivating chain: no beats → timer lapses → pushes fail."""
        sim, ledger, server, paging, service, modem, energy = rig
        mark_online(server)
        sim.run_until(3 * 270.0 + 1.0)  # past the 3T server window
        result = service.push("phone", "x")
        assert result.failure == "offline"

    def test_unregistered_client(self, rig):
        sim, __, __, __, service, __, __ = rig
        result = service.push("ghost", "x")
        assert result.failure == "unregistered"

    def test_storm_blocks_the_page(self, rig):
        sim, ledger, server, paging, service, modem, energy = rig
        mark_online(server)
        sim.run_until(10.0)
        # flood the trailing control-channel window past paging capacity,
        # and keep flooding through the retry window
        for i in range(800):
            ledger.record(sim.now - 5.0 + i * 0.01, "storm",
                          L3MessageType.RRC_CONNECTION_REQUEST,
                          Direction.UPLINK)
        results = []
        service.push("phone", "x", results.append)
        sim.run_until(14.0)  # retry (after 2 s) also blocked
        assert results and results[0].failure == "paging"

    def test_powered_off_phone_fails_after_page(self, rig):
        sim, ledger, server, paging, service, modem, energy = rig
        mark_online(server)
        modem.power_off()
        result = service.push("phone", "x")
        sim.run_until(10.0)
        assert result.failure == "offline"

    def test_duplicate_registration_rejected(self, rig):
        sim, __, __, __, service, modem, __ = rig
        with pytest.raises(ValueError):
            service.register_client("phone", modem)


class TestServiceWithoutPresence:
    def test_no_server_skips_online_check(self, sim):
        ledger = SignalingLedger()
        basestation = BaseStation(sim, ledger=ledger)
        paging = PagingChannel(sim, ledger)
        service = PushNotificationService(sim, paging, server=None)
        modem = CellularModem(sim, "phone", ledger=ledger,
                              basestation=basestation)
        service.register_client("phone", modem)
        result = service.push("phone", "x")
        sim.run_until(30.0)
        assert result.delivered
