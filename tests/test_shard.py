"""Unit tests for the cell-sharded kernel (repro.shard)."""

import pytest

from repro.cellular.network import CellularNetwork, grid_cell_positions
from repro.mobility.space import Arena
from repro.shard import (
    CrowdShardParams,
    GhostMobility,
    ShardPlan,
    _route_reports,
    run_crowd_scenario_sharded,
)
from repro.sim.engine import Simulator


class TestGridCellPositions:
    def test_row_major_x_fastest(self):
        positions = grid_cell_positions(100.0, 40.0, 2, 2)
        assert positions == [
            (25.0, 10.0), (75.0, 10.0),
            (25.0, 30.0), (75.0, 30.0),
        ]

    def test_rejects_degenerate_grid(self):
        with pytest.raises(ValueError):
            grid_cell_positions(100.0, 40.0, 0, 2)


class TestShardPlan:
    def test_column_band_partition(self):
        plan = ShardPlan(2, 4, 2, 400.0, 100.0)
        # columns 0-1 -> shard 0, columns 2-3 -> shard 1, on both rows
        assert plan.cell_shards == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_home_shard_by_position(self):
        plan = ShardPlan(2, 4, 2, 400.0, 100.0)
        assert plan.shard_of_position((10.0, 50.0)) == 0
        assert plan.shard_of_position((390.0, 50.0)) == 1

    def test_border_shards_near_and_far(self):
        plan = ShardPlan(2, 4, 2, 400.0, 100.0)
        # standing right on the column boundary: both shards' nearest
        # cells are equidistant, so the foreign shard is within margin
        assert plan.border_shards((200.0, 50.0), 0, 50.0) == [1]
        # deep inside shard 0's territory: no foreign shard in reach
        assert plan.border_shards((50.0, 50.0), 0, 50.0) == []

    def test_requires_a_column_per_shard(self):
        with pytest.raises(ValueError):
            ShardPlan(4, 2, 2, 400.0, 100.0)


class TestGhostMobility:
    def test_ghosts_are_unindexable(self):
        # max speed None -> the spatial index must exact-check ghosts;
        # this is the unindexed churn path the discovery caches handle
        ghost = GhostMobility((3.0, 4.0))
        assert ghost.max_speed_m_s() is None
        assert ghost.position(123.0) == (3.0, 4.0)
        assert ghost.velocity(0.0) == (0.0, 0.0)


class TestReattach:
    def test_reattach_reports_cell_change(self):
        sim = Simulator(seed=0)
        network = CellularNetwork(
            sim, grid_cell_positions(400.0, 100.0, 2, 1)
        )
        cell, changed = network.reattach("dev-0", (10.0, 50.0))
        assert changed and cell.cell_id == "cell-0"
        cell, changed = network.reattach("dev-0", (20.0, 50.0))
        assert not changed and cell.cell_id == "cell-0"
        cell, changed = network.reattach("dev-0", (390.0, 50.0))
        assert changed and cell.cell_id == "cell-1"
        assert network.cell_of("dev-0") is cell


class TestRouteReports:
    def test_routes_sorted_by_device_id(self):
        reports = [
            [("dev-9", 1.0, 2.0, "ue", [1]), ("dev-1", 3.0, 4.0, "relay", [1])],
            [("dev-5", 5.0, 6.0, "ue", [0])],
        ]
        routed = _route_reports(reports, 2)
        assert routed[0] == [("dev-5", 5.0, 6.0, "ue")]
        assert routed[1] == [
            ("dev-1", 3.0, 4.0, "relay"),
            ("dev-9", 1.0, 2.0, "ue"),
        ]


class TestUnsupportedCombinations:
    def test_rejects_global_state_features(self):
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(mode="original")
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(channel="sinr")
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(chaos="mild")
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(audit=True)
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(backend="threads")
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(shards=0)


class TestSmallShardedRun:
    def test_merged_metrics_cover_every_device(self):
        result = run_crowd_scenario_sharded(
            n_devices=20, relay_fraction=0.25, duration_s=60.0,
            arena=Arena(200.0, 80.0), hotspots=4, seed=1, shards=2,
        )
        assert len(result.metrics.devices) == 20
        assert sum(result.devices_per_shard) == 20
        assert result.windows == 12  # 59 s horizon / 5 s windows, ceil
        assert result.metrics.total_l3_messages > 0

    def test_params_round_trip(self):
        params = CrowdShardParams(n_shards=3, cells_x=6)
        plan = params.plan()
        assert plan.n_shards == 3
        assert {shard for shard in plan.cell_shards} == {0, 1, 2}
