"""Unit tests for the cell-sharded kernel (repro.shard)."""

import pytest

from repro.cellular.network import CellularNetwork, grid_cell_positions
from repro.mobility.models import place_crowd
from repro.mobility.space import Arena
from repro.shard import (
    CrowdShardParams,
    GhostMobility,
    ShardPlan,
    _route_reports,
    _tile_partition,
    cell_occupancy,
    run_crowd_scenario_sharded,
)
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng


class TestGridCellPositions:
    def test_row_major_x_fastest(self):
        positions = grid_cell_positions(100.0, 40.0, 2, 2)
        assert positions == [
            (25.0, 10.0), (75.0, 10.0),
            (25.0, 30.0), (75.0, 30.0),
        ]

    def test_rejects_degenerate_grid(self):
        with pytest.raises(ValueError):
            grid_cell_positions(100.0, 40.0, 0, 2)


class TestShardPlan:
    def test_column_band_partition(self):
        plan = ShardPlan(2, 4, 2, 400.0, 100.0)
        # columns 0-1 -> shard 0, columns 2-3 -> shard 1, on both rows
        assert plan.cell_shards == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_home_shard_by_position(self):
        plan = ShardPlan(2, 4, 2, 400.0, 100.0)
        assert plan.shard_of_position((10.0, 50.0)) == 0
        assert plan.shard_of_position((390.0, 50.0)) == 1

    def test_border_shards_near_and_far(self):
        plan = ShardPlan(2, 4, 2, 400.0, 100.0)
        # standing right on the column boundary: both shards' nearest
        # cells are equidistant, so the foreign shard is within margin
        assert plan.border_shards((200.0, 50.0), 0, 50.0) == [1]
        # deep inside shard 0's territory: no foreign shard in reach
        assert plan.border_shards((50.0, 50.0), 0, 50.0) == []

    def test_requires_a_column_per_shard(self):
        with pytest.raises(ValueError):
            ShardPlan(4, 2, 2, 400.0, 100.0)

    def test_band_error_names_the_tiles_escape_hatch(self):
        with pytest.raises(ValueError, match="--shard-plan tiles"):
            ShardPlan(4, 2, 2, 400.0, 100.0)

    def test_rejects_unknown_plan_name(self):
        with pytest.raises(ValueError, match="bands.*tiles"):
            ShardPlan(2, 4, 2, 400.0, 100.0, plan="hexagons")

    def test_tiles_need_a_cell_per_shard(self):
        with pytest.raises(ValueError):
            ShardPlan(5, 2, 2, 400.0, 100.0, plan="tiles")

    def test_rejects_mismatched_cell_weights(self):
        with pytest.raises(ValueError, match="one entry per cell"):
            ShardPlan(
                2, 4, 2, 400.0, 100.0, plan="tiles", cell_weights=[1.0] * 3
            )


class TestCellOccupancy:
    def test_counts_nearest_cell_first_wins_ties(self):
        cells = [(25.0, 10.0), (75.0, 10.0)]
        points = [
            (10.0, 10.0),   # nearest cell 0
            (80.0, 10.0),   # nearest cell 1
            (50.0, 10.0),   # equidistant -> first cell wins
        ]
        assert cell_occupancy(cells, points) == [2, 1]

    def test_empty_crowd_gives_zero_weights(self):
        assert cell_occupancy([(1.0, 1.0), (2.0, 2.0)], []) == [0, 0]


def _shards_are_rectangles(cell_shards, cells_x, cells_y):
    """Each shard's cells must form one axis-aligned grid rectangle."""
    by_shard = {}
    for c, shard in enumerate(cell_shards):
        by_shard.setdefault(shard, set()).add((c % cells_x, c // cells_x))
    for cells in by_shard.values():
        xs = [x for x, _ in cells]
        ys = [y for _, y in cells]
        rect = {
            (x, y)
            for x in range(min(xs), max(xs) + 1)
            for y in range(min(ys), max(ys) + 1)
        }
        if cells != rect:
            return False
    return True


class TestTilePartition:
    def test_lifts_the_column_band_limit(self):
        # 4 shards on a 2x2 grid: impossible as column bands, one cell
        # per shard as tiles
        plan = ShardPlan(4, 2, 2, 400.0, 100.0, plan="tiles")
        assert sorted(plan.cell_shards) == [0, 1, 2, 3]

    def test_every_shard_is_a_rectangle(self):
        for n_shards, cells_x, cells_y in [(3, 4, 4), (5, 6, 3), (7, 4, 5)]:
            assignment = _tile_partition(
                n_shards, cells_x, cells_y, [1.0] * (cells_x * cells_y)
            )
            assert set(assignment) == set(range(n_shards))
            assert _shards_are_rectangles(assignment, cells_x, cells_y)

    def test_cut_follows_the_weight(self):
        # weight concentrated left: the lone heavy column becomes its own
        # shard; spread evenly, the cut lands in the middle
        assert _tile_partition(2, 4, 1, [10.0, 1.0, 1.0, 1.0]) == [0, 1, 1, 1]
        assert _tile_partition(2, 4, 1, [1.0, 1.0, 1.0, 1.0]) == [0, 0, 1, 1]

    def test_partition_is_deterministic(self):
        weights = [float((7 * c) % 5 + 1) for c in range(24)]
        first = _tile_partition(5, 6, 4, weights)
        second = _tile_partition(5, 6, 4, weights)
        assert first == second


class TestGhostMobility:
    def test_ghosts_are_indexable_statics(self):
        # max speed 0.0 -> the spatial index may home a ghost in one cell
        # for its whole registration: apply_ghosts re-registers a moved
        # device's ghost, so the frozen position really is constant. The
        # old None (exact-check every scan) made every border device a
        # per-scan tax on the receiving shard.
        ghost = GhostMobility((3.0, 4.0))
        assert ghost.max_speed_m_s() == 0.0
        assert ghost.position(123.0) == (3.0, 4.0)
        assert ghost.velocity(0.0) == (0.0, 0.0)


class TestReattach:
    def test_reattach_reports_cell_change(self):
        sim = Simulator(seed=0)
        network = CellularNetwork(
            sim, grid_cell_positions(400.0, 100.0, 2, 1)
        )
        cell, changed = network.reattach("dev-0", (10.0, 50.0))
        assert changed and cell.cell_id == "cell-0"
        cell, changed = network.reattach("dev-0", (20.0, 50.0))
        assert not changed and cell.cell_id == "cell-0"
        cell, changed = network.reattach("dev-0", (390.0, 50.0))
        assert changed and cell.cell_id == "cell-1"
        assert network.cell_of("dev-0") is cell


class TestRouteReports:
    def test_routes_sorted_by_device_id(self):
        reports = [
            [("dev-9", 1.0, 2.0, "ue", [1]), ("dev-1", 3.0, 4.0, "relay", [1])],
            [("dev-5", 5.0, 6.0, "ue", [0])],
        ]
        routed = _route_reports(reports, 2)
        assert routed[0] == [("dev-5", 5.0, 6.0, "ue")]
        assert routed[1] == [
            ("dev-1", 3.0, 4.0, "relay"),
            ("dev-9", 1.0, 2.0, "ue"),
        ]


class TestUnsupportedCombinations:
    def test_rejects_global_state_features(self):
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(mode="original")
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(channel="sinr")
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(chaos="mild")
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(audit=True)
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(backend="threads")
        with pytest.raises(ValueError):
            run_crowd_scenario_sharded(shards=0)

    def test_error_lists_every_blocker_at_once(self):
        # a config with four bad knobs needs one round trip to fix, not four
        with pytest.raises(ValueError) as err:
            run_crowd_scenario_sharded(
                mode="original", channel="sinr", chaos="mild", audit=True
            )
        message = str(err.value)
        for blocker in (
            "mode='original'", "channel='sinr'", "chaos='mild'", "audit=True"
        ):
            assert blocker in message


class TestSmallShardedRun:
    def test_merged_metrics_cover_every_device(self):
        result = run_crowd_scenario_sharded(
            n_devices=20, relay_fraction=0.25, duration_s=60.0,
            arena=Arena(200.0, 80.0), hotspots=4, seed=1, shards=2,
        )
        assert len(result.metrics.devices) == 20
        assert sum(result.devices_per_shard) == 20
        assert result.windows == 12  # 59 s horizon / 5 s windows, ceil
        assert result.metrics.total_l3_messages > 0

    def test_params_round_trip(self):
        params = CrowdShardParams(n_shards=3, cells_x=6)
        plan = params.plan()
        assert plan.n_shards == 3
        assert {shard for shard in plan.cell_shards} == {0, 1, 2}

    def test_tiles_params_round_trip_beyond_the_band_limit(self):
        params = CrowdShardParams(
            n_shards=3, cells_x=2, cells_y=2, shard_plan="tiles"
        )
        plan = params.plan()
        assert plan.plan_kind == "tiles"
        assert {shard for shard in plan.cell_shards} == {0, 1, 2}


class TestHotspotCrowdBalance:
    """The tile planner's reason to exist: hotspot crowds skew bands.

    Uses the crowd-20000-balanced bench geometry. The comparison is
    planner-level (device counts per shard from the t=0 placements, the
    planner's own cost model) — no simulation needed to show the column
    bands concentrate hotspot load while the weighted tiles spread it.
    """

    GEOMETRY = dict(
        n_devices=20_000, arena_w=2400.0, arena_h=2400.0,
        hotspots=12, hotspot_spread_m=60.0, mobile_fraction=0.1,
        seed=2, n_shards=4, cells_x=10, cells_y=4,
    )

    def _device_skew(self, shard_plan):
        params = CrowdShardParams(shard_plan=shard_plan, **self.GEOMETRY)
        plan = params.plan()
        weights = cell_occupancy(
            plan.cell_positions,
            [
                m.position(0.0)
                for m in place_crowd(
                    params.n_devices,
                    Arena(params.arena_w, params.arena_h),
                    make_rng(params.seed, "crowd-placement"),
                    hotspots=params.hotspots,
                    spread_m=params.hotspot_spread_m,
                    mobile_fraction=params.mobile_fraction,
                )
            ],
        )
        per_shard = [0.0] * plan.n_shards
        for cell, shard in enumerate(plan.cell_shards):
            per_shard[shard] += weights[cell]
        mean = sum(per_shard) / len(per_shard)
        return max(per_shard) / mean

    def test_tiles_meet_the_skew_bound_where_bands_do_not(self):
        # 1.25 is the documented max/mean bound the bench gate enforces
        assert self._device_skew("tiles") <= 1.25
        assert self._device_skew("bands") > 1.25
