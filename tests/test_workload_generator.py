"""Unit tests for per-device heartbeat generation."""

import random

import pytest

from repro.workload.apps import STANDARD_APP, WECHAT
from repro.workload.generator import HeartbeatGenerator


class TestGeneration:
    def test_beats_at_every_period_with_zero_phase(self, sim):
        beats = []
        HeartbeatGenerator(
            sim, "dev", STANDARD_APP, beats.append, phase_fraction=0.0
        ).start()
        sim.run_until(3 * 270.0 - 1)
        assert [b.created_at_s for b in beats] == [0.0, 270.0, 540.0]

    def test_phase_offsets_first_beat(self, sim):
        beats = []
        HeartbeatGenerator(
            sim, "dev", STANDARD_APP, beats.append, phase_fraction=0.5
        ).start()
        sim.run_until(300.0)
        assert [b.created_at_s for b in beats] == [135.0]

    def test_message_fields_match_app(self, sim):
        beats = []
        HeartbeatGenerator(
            sim, "dev", WECHAT, beats.append, phase_fraction=0.0
        ).start()
        sim.run_until(1.0)
        beat = beats[0]
        assert beat.app == "wechat"
        assert beat.origin_device == "dev"
        assert beat.size_bytes == 74
        assert beat.period_s == 270.0
        assert beat.expiry_s == 270.0

    def test_random_phase_with_rng(self, sim):
        beats = []
        HeartbeatGenerator(
            sim, "dev", STANDARD_APP, beats.append, rng=random.Random(1)
        ).start()
        sim.run_until(270.0)
        assert len(beats) == 1
        assert 0.0 <= beats[0].created_at_s < 270.0

    def test_jitter_delays_within_bound(self, sim):
        beats = []
        HeartbeatGenerator(
            sim,
            "dev",
            STANDARD_APP,
            beats.append,
            rng=random.Random(2),
            phase_fraction=0.0,
            jitter_s=5.0,
        ).start()
        sim.run_until(3 * 270.0)
        for i, beat in enumerate(beats):
            assert 0.0 <= beat.created_at_s - i * 270.0 <= 5.0

    def test_stop_halts_emission(self, sim):
        beats = []
        generator = HeartbeatGenerator(
            sim, "dev", STANDARD_APP, beats.append, phase_fraction=0.0
        ).start()
        sim.run_until(1.0)
        generator.stop()
        sim.run_until(1000.0)
        assert len(beats) == 1

    def test_double_start_rejected(self, sim):
        generator = HeartbeatGenerator(
            sim, "dev", STANDARD_APP, lambda b: None, phase_fraction=0.0
        ).start()
        with pytest.raises(RuntimeError):
            generator.start()

    def test_beats_emitted_counter(self, sim):
        generator = HeartbeatGenerator(
            sim, "dev", STANDARD_APP, lambda b: None, phase_fraction=0.0
        ).start()
        sim.run_until(270.0 * 2)
        assert generator.beats_emitted == 3  # t = 0, 270, 540

    def test_invalid_args_rejected(self, sim):
        with pytest.raises(ValueError):
            HeartbeatGenerator(sim, "d", STANDARD_APP, lambda b: None, jitter_s=-1)
        with pytest.raises(ValueError):
            HeartbeatGenerator(
                sim, "d", STANDARD_APP, lambda b: None, phase_fraction=1.0
            )
