"""Tests for the SVG figure renderer.

Layout is checked structurally (no browser offline): every mark lands
inside the viewBox, the mark specs hold (2 px lines, 8 px markers with a
surface ring), text wears ink colors, series colors follow the fixed
validated slot order, a legend exists for ≥ 2 series, and native
per-point tooltips are present.
"""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.plotting import (
    LineChart,
    MAX_SERIES,
    SERIES_COLORS,
    SURFACE,
    TEXT_PRIMARY,
    line_chart,
)

NS = {"svg": "http://www.w3.org/2000/svg"}


def two_series_chart():
    return line_chart(
        "Test figure", "k", "µAh", [1, 2, 3, 4],
        {"UE": [10.0, 20.0, 30.0, 40.0], "Relay": [40.0, 60.0, 80.0, 100.0]},
    )


def parsed(chart):
    return ET.fromstring(chart.to_svg())


class TestStructure:
    def test_valid_xml_with_surface(self):
        root = parsed(two_series_chart())
        rect = root.find("svg:rect", NS)
        assert rect.get("fill") == SURFACE

    def test_every_mark_inside_viewbox(self):
        chart = two_series_chart()
        root = parsed(chart)
        for circle in root.findall("svg:circle", NS):
            cx, cy = float(circle.get("cx")), float(circle.get("cy"))
            assert 0 <= cx <= chart.width
            assert 0 <= cy <= chart.height
        for poly in root.findall("svg:polyline", NS):
            for pair in poly.get("points").split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= chart.width
                assert 0 <= y <= chart.height

    def test_direct_labels_do_not_overflow(self):
        chart = two_series_chart()
        root = parsed(chart)
        for text in root.findall("svg:text", NS):
            assert float(text.get("x")) <= chart.width - 4

    def test_mark_specs(self):
        root = parsed(two_series_chart())
        for poly in root.findall("svg:polyline", NS):
            assert poly.get("stroke-width") == "2"
        circles = root.findall("svg:circle", NS)
        assert circles
        for circle in circles:
            assert float(circle.get("r")) >= 4.0  # ≥ 8 px marker
            assert circle.get("stroke") == SURFACE  # surface ring

    def test_tooltips_on_every_marker(self):
        root = parsed(two_series_chart())
        for circle in root.findall("svg:circle", NS):
            title = circle.find("svg:title", NS)
            assert title is not None and title.text


class TestColorDiscipline:
    def test_fixed_slot_order_never_cycled(self):
        chart = two_series_chart()
        svg = chart.to_svg()
        first = svg.index(SERIES_COLORS[0])
        second = svg.index(SERIES_COLORS[1])
        assert first < second
        assert SERIES_COLORS[2] not in svg  # unused slots stay unused

    def test_text_wears_ink_not_series_color(self):
        root = parsed(two_series_chart())
        for text in root.findall("svg:text", NS):
            assert text.get("fill") not in SERIES_COLORS

    def test_series_cap_enforced(self):
        chart = LineChart("t", "x", "y")
        for i in range(MAX_SERIES):
            chart.add_series(f"s{i}", [1, 2], [1, 2])
        with pytest.raises(ValueError):
            chart.add_series("one too many", [1, 2], [1, 2])

    def test_single_y_axis(self):
        """One baseline axis line; no second scale anywhere."""
        root = parsed(two_series_chart())
        axis_lines = [
            line for line in root.findall("svg:line", NS)
            if line.get("stroke") == "#b5b4ae"
        ]
        assert len(axis_lines) == 1


class TestLegendRules:
    def test_legend_present_for_two_series(self):
        svg = two_series_chart().to_svg()
        assert svg.count('rx="2"') >= 2  # two legend swatches

    def test_no_legend_for_single_series(self):
        chart = line_chart("solo", "x", "y", [1, 2], {"only": [1.0, 2.0]})
        svg = chart.to_svg()
        assert 'rx="2"' not in svg  # the title names the single series

    def test_direct_label_per_series(self):
        svg = two_series_chart().to_svg()
        assert svg.count(f'fill="{TEXT_PRIMARY}">UE<') == 1
        assert svg.count(f'fill="{TEXT_PRIMARY}">Relay<') == 1


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        chart = LineChart("t", "x", "y")
        with pytest.raises(ValueError):
            chart.add_series("bad", [1, 2], [1.0])

    def test_empty_series_rejected(self):
        chart = LineChart("t", "x", "y")
        with pytest.raises(ValueError):
            chart.add_series("empty", [], [])

    def test_chart_without_series_rejected(self):
        with pytest.raises(ValueError):
            LineChart("t", "x", "y").to_svg()

    def test_save_roundtrip(self, tmp_path):
        path = tmp_path / "chart.svg"
        two_series_chart().save(str(path))
        ET.parse(path)  # parses cleanly

    def test_escapes_markup_in_labels(self):
        chart = line_chart("a <b> & c", "x<", "y&", [1, 2],
                           {"s<1>": [1.0, 2.0]})
        ET.fromstring(chart.to_svg())  # would raise on bad escaping


class TestRealFigures:
    def test_render_figures_example(self, tmp_path, capsys):
        import importlib.util
        import pathlib

        script = (pathlib.Path(__file__).resolve().parent.parent
                  / "examples" / "render_figures.py")
        spec = importlib.util.spec_from_file_location("render_figures", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main(str(tmp_path))
        rendered = sorted(p.name for p in tmp_path.glob("*.svg"))
        assert rendered == [
            "fig10.svg", "fig11.svg", "fig12.svg", "fig13.svg",
            "fig15.svg", "fig8.svg", "fig9.svg",
        ]
        for path in tmp_path.glob("*.svg"):
            ET.parse(path)
