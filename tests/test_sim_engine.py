"""Unit tests for the discrete-event simulator driver."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_schedule_fires_at_relative_delay(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [5.0]

    def test_schedule_at_fires_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(7.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [7.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_cancel_prevents_firing(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run_until(5.0)
        assert fired == []

    def test_cancel_none_is_safe(self, sim):
        sim.cancel(None)

    def test_events_fire_in_order_with_nested_scheduling(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, outer)
        sim.schedule(3.0, lambda: order.append("later"))
        sim.run_until(10.0)
        assert order == ["outer", "nested", "later"]

    def test_args_passed_to_callback(self, sim):
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, 2)
        sim.run_until(2.0)
        assert got == [(1, 2)]


class TestRunUntil:
    def test_clock_lands_exactly_on_horizon(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_until(100.0)
        assert sim.now == 100.0

    def test_event_at_horizon_fires(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.run_until(10.0)
        assert fired == [1]

    def test_event_beyond_horizon_does_not_fire(self, sim):
        fired = []
        sim.schedule(10.1, lambda: fired.append(1))
        sim.run_until(10.0)
        assert fired == []
        assert sim.pending == 1

    def test_resume_after_horizon(self, sim):
        fired = []
        sim.schedule(10.1, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        sim.run_until(20.0)
        assert fired == [10.1]

    def test_horizon_before_now_rejected(self, sim):
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_returns_events_fired(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run_until(3.0) == 3
        assert sim.run_until(10.0) == 2

    def test_max_events_guard(self, sim):
        def rearm():
            sim.schedule(0.0, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            sim.run_until(1.0, max_events=100)

    def test_reentrancy_rejected(self, sim):
        def nested():
            sim.run_until(10.0)

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_until(10.0)
        assert fired == [1]
        # a stopped run leaves the clock at the stop point, not the horizon
        assert sim.now == 1.0


class TestRunAll:
    def test_drains_entire_queue_past_any_horizon(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.schedule(5000.0, lambda: fired.append(sim.now))
        count = sim.run_all()
        assert count == 2
        assert fired == [5.0, 5000.0]
        assert sim.pending == 0

    def test_follows_nested_scheduling(self, sim):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(100.0, chain, depth + 1)

        sim.schedule(1.0, chain, 0)
        sim.run_all()
        assert fired == [0, 1, 2, 3]

    def test_max_events_guard(self, sim):
        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        import pytest as _pytest

        with _pytest.raises(SimulationError):
            sim.run_all(max_events=50)

    def test_empty_queue_returns_zero(self, sim):
        assert sim.run_all() == 0


class TestTrace:
    def test_event_log_populated_when_tracing(self):
        sim = Simulator(seed=1, trace=True)
        sim.schedule(1.0, lambda: None, name="hello")
        sim.run_until(2.0)
        assert sim.event_log == [(1.0, "hello")]

    def test_event_log_empty_without_tracing(self, sim):
        sim.schedule(1.0, lambda: None, name="hello")
        sim.run_until(2.0)
        assert sim.event_log == []


class TestPeriodicProcess:
    def test_fires_every_period(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now))
        sim.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_custom_start_after(self, sim):
        times = []
        sim.every(10.0, lambda: times.append(sim.now), start_after=0.0)
        sim.run_until(25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_stop_halts_future_firings(self, sim):
        times = []
        process = sim.every(10.0, lambda: times.append(sim.now))
        sim.run_until(15.0)
        process.stop()
        sim.run_until(50.0)
        assert times == [10.0]
        assert process.stopped

    def test_stop_is_idempotent(self, sim):
        process = sim.every(10.0, lambda: None)
        process.stop()
        process.stop()

    def test_nonpositive_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_stop_from_inside_callback(self, sim):
        times = []

        def tick():
            times.append(sim.now)
            if len(times) == 2:
                process.stop()

        process = sim.every(5.0, tick)
        sim.run_until(100.0)
        assert times == [5.0, 10.0]


class TestDeterminism:
    def test_same_seed_same_stream(self):
        def draws(seed):
            sim = Simulator(seed=seed)
            rng = sim.rng.get("test")
            return [rng.random() for _ in range(10)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
