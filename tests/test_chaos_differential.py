"""The differential chaos acceptance gate.

Every built-in chaos profile, over the default acceptance seed set, must
keep the audited pair scenario 100% deadline-safe with zero auditor
violations — chaos never costs delivery safety.
"""

import pytest

from repro.faults.chaos import CHAOS_PROFILES
from repro.faults.harness import (
    DEFAULT_SEEDS,
    run_channel_differential,
    run_differential,
    run_differential_suite,
)
from repro.scenarios import RUNNER_REGISTRY, chaos_differential_runner


@pytest.mark.parametrize("profile", sorted(CHAOS_PROFILES))
def test_acceptance_gate_profile_over_default_seeds(profile):
    assert len(DEFAULT_SEEDS) >= 5
    suite = run_differential_suite(
        profiles=[profile], seeds=DEFAULT_SEEDS, scenarios=("pair",)
    )
    assert len(suite.cases) == len(DEFAULT_SEEDS)
    assert suite.passed, suite.summary()
    for case in suite.cases:
        assert case.chaos_deadline_safe == 1.0
        assert case.audit_violations == 0
        assert case.baseline_violations == 0


def test_crowd_differential_smoke():
    case = run_differential(
        scenario="crowd", profile="mild", seed=0,
        n_devices=10, duration_s=600.0,
    )
    assert case.passed, case.summary()
    assert case.scenario == "crowd"


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_differential(scenario="galaxy")


def test_case_serialization_and_summary():
    case = run_differential(scenario="pair", profile="mild", seed=0,
                            n_ues=1, periods=2)
    data = case.to_dict()
    assert data["passed"] is True
    assert data["profile"] == "mild"
    assert "PASS" in case.summary()


def test_empty_suite_does_not_pass():
    from repro.faults.harness import DifferentialSuite

    assert not DifferentialSuite().passed


def test_registered_runner_reports_pass():
    assert RUNNER_REGISTRY["chaos-differential"] is chaos_differential_runner
    out = chaos_differential_runner(
        scenario="pair", profile="mild", seed=0, n_ues=1, periods=2
    )
    assert out["passed"] == 1.0
    assert out["chaos_deadline_safe"] == 1.0
    assert out["audit_violations"] == 0.0


class TestChannelDifferential:
    """The channel layer joins the safety contract.

    Fixed-vs-sinr: capacity-derived transfer durations must keep the
    invariant auditor clean and audited deadline safety at 1.0 — with
    and without a chaos profile layered on top.
    """

    def test_fixed_vs_channel_crowd_stays_safe(self):
        case = run_channel_differential(
            scenario="crowd", seed=0, n_devices=14, duration_s=600.0
        )
        assert case.passed, case.summary()
        assert case.fixed_violations == 0
        assert case.channel_violations == 0
        assert case.channel_deadline_safe == 1.0
        assert case.channel_transfers > 0

    def test_fixed_vs_channel_pair_stays_safe(self):
        case = run_channel_differential(
            scenario="pair", seed=1, n_ues=2, periods=3
        )
        assert case.passed, case.summary()
        data = case.to_dict()
        assert data["passed"] is True
        assert "PASS" in case.summary()

    def test_chaos_under_channel_mode_stays_safe(self):
        # The composition case: stochastic faults on top of RB
        # contention, both legs of the chaos differential in sinr mode.
        case = run_differential(
            scenario="crowd", profile="mild", seed=0,
            n_devices=12, duration_s=600.0, channel="sinr",
        )
        assert case.passed, case.summary()
        assert case.chaos_deadline_safe == 1.0
        assert case.audit_violations == 0

    def test_chaos_layered_on_channel_differential(self):
        case = run_channel_differential(
            scenario="crowd", seed=2, n_devices=12, duration_s=600.0,
            chaos="mild",
        )
        assert case.passed, case.summary()


class TestSelectionPolicyDifferential:
    """Channel-aware relay selection joins the safety contract: ranking
    by predicted rate (or hybrid) must keep the invariant auditor clean
    and audited deadline safety at 1.0 in every leg — fixed-cost,
    sinr, and sinr-under-chaos."""

    def test_fixed_vs_channel_with_rate_selection_stays_safe(self):
        case = run_channel_differential(
            scenario="crowd", seed=0, n_devices=14, duration_s=600.0,
            selection_policy="rate",
        )
        assert case.passed, case.summary()
        assert case.fixed_violations == 0
        assert case.channel_violations == 0
        assert case.channel_deadline_safe == 1.0
        assert case.channel_transfers > 0

    def test_chaos_under_hybrid_selection_stays_safe(self):
        case = run_differential(
            scenario="crowd", profile="mild", seed=1,
            n_devices=12, duration_s=600.0, channel="sinr",
            selection_policy="hybrid",
        )
        assert case.passed, case.summary()
        assert case.chaos_deadline_safe == 1.0
        assert case.audit_violations == 0
