"""Unit tests for events and the event queue."""

from repro.sim.events import Event, EventQueue


def _noop() -> None:
    pass


class TestEventOrdering:
    def test_earlier_time_sorts_first(self):
        a = Event(1.0, 0, _noop, ())
        b = Event(2.0, 1, _noop, ())
        assert a < b and not b < a

    def test_equal_time_breaks_by_sequence(self):
        a = Event(1.0, 0, _noop, ())
        b = Event(1.0, 1, _noop, ())
        assert a < b

    def test_cancel_is_idempotent(self):
        event = Event(1.0, 0, _noop, ())
        event.cancel()
        event.cancel()
        assert event.cancelled


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, _noop, name="c")
        queue.push(1.0, _noop, name="a")
        queue.push(2.0, _noop, name="b")
        names = [queue.pop().name for _ in range(3)]
        assert names == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        queue = EventQueue()
        queue.push(1.0, _noop, name="first")
        queue.push(1.0, _noop, name="second")
        queue.push(1.0, _noop, name="third")
        names = [queue.pop().name for _ in range(3)]
        assert names == ["first", "second", "third"]

    def test_pop_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, _noop, name="cancelled")
        queue.push(2.0, _noop, name="live")
        event.cancel()
        queue.note_cancelled()
        assert queue.pop().name == "live"

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(5.0, _noop)
        queue.push(2.0, _noop)
        assert queue.peek_time() == 2.0

    def test_peek_time_skips_cancelled_head(self):
        queue = EventQueue()
        head = queue.push(1.0, _noop)
        queue.push(4.0, _noop)
        head.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 4.0

    def test_len_tracks_live_events(self):
        queue = EventQueue()
        assert len(queue) == 0 and not queue
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        assert len(queue) == 2 and queue
        event.cancel()
        queue.note_cancelled()
        assert len(queue) == 1

    def test_args_are_passed_through(self):
        queue = EventQueue()
        collected = []
        queue.push(1.0, collected.append, args=(99,))
        event = queue.pop()
        event.callback(*event.args)
        assert collected == [99]


class TestLiveCountBookkeeping:
    """Regression tests: the live count must survive every cancel path.

    Bookkeeping lives in ``Event.cancel`` itself (the event knows its
    owning queue), so user code holding a handle can cancel directly —
    without ``Simulator.cancel`` or the old ``note_cancelled`` protocol —
    and ``len(queue)`` stays truthful.
    """

    def test_direct_cancel_decrements_live_count(self):
        queue = EventQueue()
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        event.cancel()  # no note_cancelled() — the old API's drift bug
        assert len(queue) == 1

    def test_double_cancel_decrements_once(self):
        queue = EventQueue()
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_cancel_then_note_cancelled_does_not_double_count(self):
        queue = EventQueue()
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        event.cancel()
        queue.note_cancelled()  # legacy callers still do this; now a no-op
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_touch_live_count(self):
        """Cancelling an already-fired event must not drift the count."""
        queue = EventQueue()
        event = queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        assert queue.pop() is event
        assert len(queue) == 1
        event.cancel()  # fired already — a late cancel is a no-op
        assert len(queue) == 1

    def test_pop_until_respects_horizon_and_live_count(self):
        queue = EventQueue()
        queue.push(1.0, _noop, name="early")
        queue.push(5.0, _noop, name="late")
        assert queue.pop_until(2.0).name == "early"
        assert queue.pop_until(2.0) is None  # "late" stays queued
        assert len(queue) == 1
        assert queue.pop_until(10.0).name == "late"
        assert len(queue) == 0

    def test_pop_until_skips_cancelled_head(self):
        queue = EventQueue()
        head = queue.push(1.0, _noop)
        queue.push(1.5, _noop, name="live")
        head.cancel()
        assert queue.pop_until(2.0).name == "live"
        assert queue.pop_until(2.0) is None


class TestTimestampBuckets:
    """Same-deadline cohorts share one heap entry (the wakeup batching)."""

    def test_coalesced_counters_track_shared_deadlines(self):
        queue = EventQueue()
        queue.push(1.0, _noop)
        assert queue.coalesced_pushes == 0  # first at its timestamp: a sift
        queue.push(1.0, _noop)
        queue.push(1.0, _noop)
        queue.push(2.0, _noop)
        assert queue.coalesced_pushes == 2
        for _ in range(4):
            queue.pop()
        # every pop but a bucket's last is served without a heap traversal
        assert queue.coalesced_pops == 2

    def test_one_heap_entry_per_distinct_timestamp(self):
        queue = EventQueue()
        for _ in range(5):
            queue.push(1.0, _noop)
        for _ in range(3):
            queue.push(2.0, _noop)
        assert len(queue._heap) == 2
        assert len(queue) == 8

    def test_bucket_fifo_interleaves_with_unique_times(self):
        queue = EventQueue()
        queue.push(2.0, _noop, name="b1")
        queue.push(1.0, _noop, name="a")
        queue.push(2.0, _noop, name="b2")
        queue.push(3.0, _noop, name="c")
        queue.push(2.0, _noop, name="b3")
        names = [queue.pop().name for _ in range(5)]
        assert names == ["a", "b1", "b2", "b3", "c"]

    def test_cancelled_members_anywhere_in_a_bucket_are_skipped(self):
        queue = EventQueue()
        queue.push(1.0, _noop, name="a")
        middle = queue.push(1.0, _noop, name="b")
        queue.push(1.0, _noop, name="c")
        middle.cancel()
        assert [queue.pop().name for _ in range(2)] == ["a", "c"]
        assert queue.pop() is None
