"""Property-based tests: RRC machine, feedback tracker, server accounting."""

from hypothesis import given, settings, strategies as st

from repro.cellular.rrc import RrcState, RrcStateMachine, WCDMA_PROFILE
from repro.cellular.signaling import SignalingLedger
from repro.core.feedback import FeedbackTracker
from repro.sim.engine import Simulator
from repro.workload.messages import PeriodicMessage
from repro.workload.server import IMServer


# ----------------------------------------------------------------------
# RRC machine under arbitrary transmission schedules
# ----------------------------------------------------------------------
transmission_gaps = st.lists(
    st.floats(min_value=0.1, max_value=30.0), min_size=1, max_size=20
)


@given(transmission_gaps)
@settings(max_examples=80, deadline=None)
def test_rrc_invariants_under_any_schedule(gaps):
    sim = Simulator(seed=0)
    ledger = SignalingLedger()
    machine = RrcStateMachine(sim, "dev", profile=WCDMA_PROFILE, ledger=ledger)
    t = 0.0
    for gap in gaps:
        t += gap
        sim.schedule_at(t, machine.request_transmission, 54, lambda ready: None)
    sim.run_until(t + 60.0)

    # ends demoted, with promotions == demotions (all sessions closed)
    assert machine.state == RrcState.IDLE
    assert machine.promotions == machine.demotions
    assert machine.promotions >= 1
    # cycles never exceed transmissions (aggregation can only reduce them)
    assert ledger.cycles_for("dev") <= len(gaps)
    # every cycle contributes exactly one setup + one release sequence
    expected = ledger.cycles_for("dev") * WCDMA_PROFILE.messages_per_cycle
    assert ledger.count_for("dev") == expected
    # connected time is bounded: at most (span + one tail), at least one tail
    span = sum(gaps)
    assert WCDMA_PROFILE.tail_s <= machine.connected_time_s + 1e-6
    assert machine.connected_time_s <= span + WCDMA_PROFILE.tail_s + 1e-6


@given(st.floats(min_value=0.1, max_value=7.4))
@settings(max_examples=40, deadline=None)
def test_rrc_send_within_tail_never_costs_a_cycle(gap):
    """Any second send inside the tail window joins the first cycle."""
    sim = Simulator(seed=0)
    ledger = SignalingLedger()
    machine = RrcStateMachine(sim, "dev", ledger=ledger)
    machine.request_transmission(54, lambda ready: None)
    sim.run_until(WCDMA_PROFILE.setup_latency_s + gap * 0.999)
    machine.request_transmission(54, lambda ready: None)
    sim.run_until(1000.0)
    assert ledger.cycles_for("dev") == 1


# ----------------------------------------------------------------------
# feedback tracker: acks and fallbacks partition the tracked set
# ----------------------------------------------------------------------
@st.composite
def feedback_cases(draw):
    n = draw(st.integers(min_value=1, max_value=15))
    acked = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    ack_delay = draw(st.floats(min_value=0.1, max_value=50.0))
    return n, acked, ack_delay


@given(feedback_cases())
@settings(max_examples=80, deadline=None)
def test_feedback_exactly_once(case):
    """Every tracked beat is either acked or falls back — exactly once."""
    n, acked_indices, ack_delay = case
    sim = Simulator(seed=0)
    fallbacks = []
    tracker = FeedbackTracker(sim, on_fallback=fallbacks.append)
    messages = [
        PeriodicMessage(
            app="standard", origin_device="ue", size_bytes=54,
            created_at_s=0.0, period_s=270.0, expiry_s=100.0,
        )
        for __ in range(n)
    ]
    for message in messages:
        tracker.track(message)
    acked_seqs = [messages[i].seq for i in sorted(acked_indices)]
    sim.schedule(ack_delay, tracker.ack, acked_seqs)
    sim.run_until(500.0)

    fallback_seqs = {m.seq for m in fallbacks}
    acked_in_time = set(acked_seqs) if ack_delay < 96.0 else set()
    # partition: acked-in-time beats never fall back, all others do
    assert fallback_seqs == {m.seq for m in messages} - acked_in_time
    assert tracker.pending_count == 0
    assert tracker.fallbacks_fired == len(fallback_seqs)
    # exactly-once: no seq appears twice in the fallback list
    assert len(fallbacks) == len(fallback_seqs)


# ----------------------------------------------------------------------
# IM server: counters always consistent with records
# ----------------------------------------------------------------------
deliveries = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0),  # delivery time
        st.booleans(),  # relayed?
    ),
    min_size=0,
    max_size=30,
)


@given(deliveries)
@settings(max_examples=80, deadline=None)
def test_server_counters_consistent(events):
    sim = Simulator(seed=0)
    server = IMServer(sim)
    for time_s, relayed in events:
        message = PeriodicMessage(
            app="wechat", origin_device="ue-0", size_bytes=74,
            created_at_s=0.0, period_s=270.0, expiry_s=270.0,
        )
        server.receive(message, via_device="relay-0" if relayed else "ue-0",
                       time_s=time_s)
    assert server.on_time_count + server.late_count == len(server.records)
    assert server.on_time_count == sum(1 for r in server.records if r.on_time)
    assert server.relayed_count == sum(1 for r in server.records if r.relayed)
    assert 0.0 <= server.on_time_fraction() <= 1.0
    if server.records:
        assert server.mean_delay_s() == sum(
            r.delay_s for r in server.records
        ) / len(server.records)
