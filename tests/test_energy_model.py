"""Unit tests for per-device energy accounting."""

import pytest

from repro.energy.battery import Battery
from repro.energy.model import CELLULAR_PHASES, D2D_PHASES, EnergyModel, EnergyPhase


class TestCharging:
    def test_total_accumulates(self, energy):
        energy.charge(EnergyPhase.CELLULAR_TX, 10.0)
        energy.charge(EnergyPhase.CELLULAR_TX, 5.0)
        assert energy.total_uah == pytest.approx(15.0)

    def test_phase_breakdown(self, energy):
        energy.charge(EnergyPhase.D2D_FORWARD, 7.0)
        energy.charge(EnergyPhase.CELLULAR_TAIL, 3.0)
        assert energy.phase_uah(EnergyPhase.D2D_FORWARD) == pytest.approx(7.0)
        assert energy.phase_uah(EnergyPhase.CELLULAR_TAIL) == pytest.approx(3.0)
        assert energy.phase_uah(EnergyPhase.IDLE) == 0.0

    def test_negative_charge_rejected(self, energy):
        with pytest.raises(ValueError):
            energy.charge(EnergyPhase.OTHER, -1.0)

    def test_zero_charge_is_noop(self, energy):
        energy.charge(EnergyPhase.OTHER, 0.0)
        assert energy.total_uah == 0.0

    def test_d2d_and_cellular_aggregates(self, energy):
        energy.charge(EnergyPhase.D2D_DISCOVERY, 1.0)
        energy.charge(EnergyPhase.D2D_FORWARD, 2.0)
        energy.charge(EnergyPhase.CELLULAR_SETUP, 4.0)
        energy.charge(EnergyPhase.IDLE, 8.0)
        assert energy.d2d_uah == pytest.approx(3.0)
        assert energy.cellular_uah == pytest.approx(4.0)
        assert energy.total_uah == pytest.approx(15.0)

    def test_phase_partitions_are_disjoint(self):
        assert not (D2D_PHASES & CELLULAR_PHASES)

    def test_breakdown_contains_every_phase(self, energy):
        breakdown = energy.breakdown()
        assert set(breakdown) == {phase.value for phase in EnergyPhase}

    def test_reset_zeroes_counters(self, energy):
        energy.charge(EnergyPhase.OTHER, 5.0)
        energy.reset()
        assert energy.total_uah == 0.0


class TestHooksAndBattery:
    def test_on_charge_hook_receives_event(self):
        seen = []
        model = EnergyModel(on_charge=lambda t, p, u, d: seen.append((t, p, u, d)))
        model.charge(EnergyPhase.D2D_FORWARD, 2.5, time_s=10.0, duration_s=0.4)
        assert seen == [(10.0, EnergyPhase.D2D_FORWARD, 2.5, 0.4)]

    def test_battery_is_drained(self):
        battery = Battery(capacity_mah=1.0)
        model = EnergyModel(battery=battery)
        model.charge(EnergyPhase.OTHER, 500.0)  # 0.5 mAh
        assert battery.remaining_mah == pytest.approx(0.5)

    def test_log_kept_only_when_enabled(self, energy):
        energy.charge(EnergyPhase.OTHER, 1.0, time_s=1.0)
        assert energy.log() == []
        energy.keep_log = True
        energy.charge(EnergyPhase.OTHER, 2.0, time_s=2.0)
        assert energy.log() == [(2.0, EnergyPhase.OTHER, 2.0)]

    def test_snapshot_is_a_copy(self, energy):
        energy.charge(EnergyPhase.OTHER, 1.0)
        snap = energy.snapshot()
        snap[EnergyPhase.OTHER] = 999.0
        assert energy.phase_uah(EnergyPhase.OTHER) == pytest.approx(1.0)


class TestBoundedLog:
    """The ring-buffer mode that keeps soak-run traces from growing."""

    def test_ring_buffer_evicts_oldest_and_counts_drops(self):
        model = EnergyModel(log_maxlen=2)
        model.keep_log = True
        model.charge(EnergyPhase.OTHER, 1.0, time_s=1.0)
        model.charge(EnergyPhase.OTHER, 2.0, time_s=2.0)
        model.charge(EnergyPhase.OTHER, 3.0, time_s=3.0)
        assert model.log() == [
            (2.0, EnergyPhase.OTHER, 2.0),
            (3.0, EnergyPhase.OTHER, 3.0),
        ]
        assert model.log_dropped == 1
        # aggregates never go through the log: exact despite eviction
        assert model.total_uah == pytest.approx(6.0)

    def test_shrinking_maxlen_trims_oldest_and_counts(self):
        model = EnergyModel()
        model.keep_log = True
        for t in range(4):
            model.charge(EnergyPhase.OTHER, 1.0, time_s=float(t))
        model.log_maxlen = 2
        assert model.log_dropped == 2
        assert [record[0] for record in model.log()] == [2.0, 3.0]

    def test_maxlen_must_be_positive_or_none(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.log_maxlen = 0

    def test_reset_clears_the_drop_counter(self):
        model = EnergyModel(log_maxlen=1)
        model.keep_log = True
        model.charge(EnergyPhase.OTHER, 1.0)
        model.charge(EnergyPhase.OTHER, 1.0)
        assert model.log_dropped == 1
        model.reset()
        assert model.log_dropped == 0
        assert model.log() == []
