"""Seed-robustness: the headline conclusions hold across random seeds."""

import pytest

from repro.analysis import mean_confidence_interval, replicate, saved_fraction
from repro.scenarios import run_crowd_scenario


class TestReplicationHelpers:
    def test_replicate_collects_per_seed(self):
        values = replicate(lambda seed: seed * 2.0, [1, 2, 3])
        assert values == [2.0, 4.0, 6.0]

    def test_replicate_needs_seeds(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: 0.0, [])

    def test_ci_single_value(self):
        mean, half = mean_confidence_interval([5.0])
        assert mean == 5.0 and half == 0.0

    def test_ci_exact_for_known_sample(self):
        # mean 10, sample sd 1, n=4 → se 0.5, t(3, 97.5%) ≈ 3.182
        values = [9.0, 9.666666, 10.333333, 11.0]
        mean, half = mean_confidence_interval(values)
        assert mean == pytest.approx(10.0, abs=1e-3)
        assert half == pytest.approx(3.182 * 0.430, rel=0.05)

    def test_ci_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=1.5)

    def test_wider_spread_wider_interval(self):
        __, narrow = mean_confidence_interval([10.0, 10.1, 9.9])
        __, wide = mean_confidence_interval([5.0, 15.0, 10.0])
        assert wide > narrow


class TestCrowdRobustness:
    @pytest.fixture(scope="class")
    def signaling_savings(self):
        def experiment(seed):
            d2d = run_crowd_scenario(
                n_devices=16, relay_fraction=0.25, duration_s=800.0, seed=seed
            )
            base = run_crowd_scenario(
                n_devices=16, relay_fraction=0.25, duration_s=800.0, seed=seed,
                mode="original",
            )
            return saved_fraction(base.total_l3(), d2d.total_l3())

        return replicate(experiment, [11, 22, 33, 44])

    def test_saving_positive_on_every_seed(self, signaling_savings):
        assert all(s > 0.2 for s in signaling_savings)

    def test_mean_saving_with_ci_excludes_zero(self, signaling_savings):
        mean, half = mean_confidence_interval(signaling_savings)
        assert mean - half > 0.2
        assert mean > 0.4
