"""Unit tests for the simulated clock."""

import pytest

from repro.sim.clock import Clock, ClockError


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now == 0.0

    def test_starts_at_custom_time(self):
        assert Clock(start=5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ClockError):
            Clock(start=-1.0)

    def test_advance_to_moves_forward(self):
        clock = Clock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_is_noop(self):
        clock = Clock()
        clock.advance_to(3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_past_raises(self):
        clock = Clock()
        clock.advance_to(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.0)

    def test_advance_by_accumulates(self):
        clock = Clock()
        clock.advance_by(1.5)
        clock.advance_by(2.5)
        assert clock.now == 4.0

    def test_advance_by_zero_is_allowed(self):
        clock = Clock()
        clock.advance_by(0.0)
        assert clock.now == 0.0

    def test_advance_by_negative_raises(self):
        with pytest.raises(ClockError):
            Clock().advance_by(-0.1)
