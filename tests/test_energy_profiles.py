"""Unit tests for the energy calibration profile.

These tests pin the constants to the paper's published measurements — if a
refactor drifts the calibration, the headline reproductions drift with it,
so the numbers are asserted tightly here and nowhere else.
"""

import pytest

from repro.energy.profiles import (
    DEFAULT_PROFILE,
    GALAXY_S4_BATTERY_MAH,
    PROFILE_VARIANTS,
    STANDARD_HEARTBEAT_BYTES,
    TABLE_IV_RECEIVE_UAH,
    microamp_hours_to_milliamps,
)


class TestCalibrationConstants:
    def test_table_iii_ue_row(self):
        p = DEFAULT_PROFILE
        assert p.ue_discovery_uah == pytest.approx(132.24)
        assert p.ue_connection_uah == pytest.approx(63.74)
        assert p.ue_forward_uah == pytest.approx(73.09)

    def test_table_iii_relay_row(self):
        p = DEFAULT_PROFILE
        assert p.relay_discovery_uah == pytest.approx(122.50)
        assert p.relay_connection_uah == pytest.approx(60.29)

    def test_table_iv_slope_matches_constant(self):
        # 911.196 µAh over 7 beats → 130.17 µAh per beat
        assert DEFAULT_PROFILE.relay_receive_uah == pytest.approx(
            TABLE_IV_RECEIVE_UAH[-1] / 7, abs=0.01
        )

    def test_cellular_heartbeat_yields_55_percent_ue_saving(self):
        """The paper's headline: one-shot D2D session saves the UE 55%."""
        p = DEFAULT_PROFILE
        session = p.ue_discovery_uah + p.ue_connection_uah + p.ue_forward_uah
        cellular = p.cellular_heartbeat_uah(STANDARD_HEARTBEAT_BYTES)
        saving = 1.0 - session / cellular
        assert saving == pytest.approx(0.55, abs=0.005)

    def test_wechat_daily_heartbeat_drain_matches_intro_claim(self):
        """Paper intro: ≥6% of battery per day with one IM app (WeChat)."""
        beats_per_day = 86_400 / 270.0
        daily_uah = beats_per_day * DEFAULT_PROFILE.cellular_heartbeat_uah(74)
        fraction = daily_uah / 1000.0 / GALAXY_S4_BATTERY_MAH
        assert 0.06 <= fraction <= 0.09


class TestDistanceFactor:
    def test_unity_at_reference_distance(self):
        assert DEFAULT_PROFILE.d2d_distance_factor(1.0) == pytest.approx(1.0)

    def test_monotone_increasing(self):
        factors = [DEFAULT_PROFILE.d2d_distance_factor(d) for d in range(0, 20)]
        assert all(b > a for a, b in zip(factors, factors[1:]))

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PROFILE.d2d_distance_factor(-1.0)

    def test_fig12_range_stays_below_cellular_at_15m(self):
        """Fig. 12: at 15 m the UE is still (just) cheaper than cellular."""
        p = DEFAULT_PROFILE
        per_beat_at_15m = p.ue_forward_cost_uah(STANDARD_HEARTBEAT_BYTES, 15.0)
        assert per_beat_at_15m < p.cellular_heartbeat_uah()

    def test_crossover_exists_beyond_sweep(self):
        """...but a crossover does exist at some larger distance."""
        p = DEFAULT_PROFILE
        per_beat_at_40m = p.ue_forward_cost_uah(STANDARD_HEARTBEAT_BYTES, 40.0)
        assert per_beat_at_40m > p.cellular_heartbeat_uah()


class TestCostFunctions:
    def test_forward_cost_grows_with_size(self):
        small = DEFAULT_PROFILE.ue_forward_cost_uah(54)
        large = DEFAULT_PROFILE.ue_forward_cost_uah(270)
        assert large > small
        # Fig. 13: ~flat across the realistic size range (1x-5x of 54 B)
        assert (large - small) / small < 0.15

    def test_receive_cost_flat_in_distance(self):
        # receive cost has no distance argument by design (RX side)
        assert DEFAULT_PROFILE.relay_receive_cost_uah(54) == pytest.approx(
            DEFAULT_PROFILE.relay_receive_uah + 0.04 * 54
        )

    def test_cellular_cost_without_setup_is_much_cheaper(self):
        with_setup = DEFAULT_PROFILE.cellular_send_cost_uah(54, setup_needed=True)
        without = DEFAULT_PROFILE.cellular_send_cost_uah(54, setup_needed=False)
        assert without < with_setup / 5

    def test_cellular_tail_fraction_scales(self):
        full = DEFAULT_PROFILE.cellular_send_cost_uah(54, tail_fraction=1.0)
        half = DEFAULT_PROFILE.cellular_send_cost_uah(54, tail_fraction=0.5)
        assert full - half == pytest.approx(DEFAULT_PROFILE.cellular_tail_uah / 2)

    def test_tail_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PROFILE.cellular_send_cost_uah(54, tail_fraction=1.5)

    def test_ue_session_cost_closed_form(self):
        p = DEFAULT_PROFILE
        cost = p.ue_session_cost_uah(3, 54, distance_m=1.0)
        expected = (
            p.ue_discovery_uah
            + p.ue_connection_uah
            + 3 * p.ue_forward_cost_uah(54, 1.0)
        )
        assert cost == pytest.approx(expected)

    def test_ue_session_cost_negative_beats_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PROFILE.ue_session_cost_uah(-1)


class TestProfileValidation:
    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PROFILE.replace(ue_forward_uah=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PROFILE.replace(cellular_tail_s=0.0)

    def test_bad_reference_distance_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PROFILE.replace(d2d_reference_distance_m=0.0)

    def test_bad_fach_fraction_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_PROFILE.replace(fach_power_fraction=1.5)


class TestVariantsAndHelpers:
    def test_replace_creates_modified_copy(self):
        variant = DEFAULT_PROFILE.replace(cellular_setup_uah=999.0)
        assert variant.cellular_setup_uah == 999.0
        assert DEFAULT_PROFILE.cellular_setup_uah == 80.0

    def test_named_variants_exist(self):
        assert {"default", "lte", "expensive-d2d"} <= set(PROFILE_VARIANTS)

    def test_expensive_d2d_doubles_overheads(self):
        expensive = PROFILE_VARIANTS["expensive-d2d"]
        assert expensive.ue_discovery_uah == pytest.approx(
            2 * DEFAULT_PROFILE.ue_discovery_uah
        )

    def test_uah_to_ma_conversion(self):
        # 100 µAh over one hour is 0.1 mA
        assert microamp_hours_to_milliamps(100.0, 3600.0) == pytest.approx(0.1)

    def test_uah_to_ma_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            microamp_hours_to_milliamps(100.0, 0.0)

    def test_tail_current_is_plausible(self):
        # elevated tail current should be in the hundreds of mA
        assert 100.0 < DEFAULT_PROFILE.tail_current_ma() < 500.0
