"""Integration-grade unit tests for the relay and UE role agents."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.core.incentives import RewardLedger
from repro.core.matching import MatchConfig
from repro.core.relay import RelayAgent
from repro.core.scheduler import SchedulerConfig
from repro.core.ue import UEAgent, UEState
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s


class Rig:
    """One relay + n UEs wired onto real substrates."""

    def __init__(self, n_ues=1, distance=1.0, capacity=10, seed=0):
        self.sim = Simulator(seed=seed)
        self.ledger = SignalingLedger()
        self.basestation = BaseStation(self.sim, ledger=self.ledger)
        self.server = IMServer(self.sim)
        self.basestation.attach_sink(self.server.uplink_sink)
        self.medium = D2DMedium(self.sim, WIFI_DIRECT)
        self.relay_device = self._phone("relay-0", (0.0, 0.0), Role.RELAY)
        self.rewards = RewardLedger()
        self.relay = RelayAgent(
            self.relay_device,
            STANDARD_APP,
            scheduler_config=SchedulerConfig(capacity=capacity),
            rewards=self.rewards,
            start_phase_fraction=0.0,
        )
        self.ue_devices = []
        self.ues = []
        for i in range(n_ues):
            device = self._phone(f"ue-{i}", (distance, float(i)), Role.UE)
            agent = UEAgent(
                device, STANDARD_APP, start_phase_fraction=0.5,
                match_config=MatchConfig(),
            )
            self.ue_devices.append(device)
            self.ues.append(agent)

    def _phone(self, device_id, position, role):
        return Smartphone(
            self.sim,
            device_id,
            mobility=StaticMobility(position),
            role=role,
            ledger=self.ledger,
            basestation=self.basestation,
            d2d_medium=self.medium,
        )


class TestRelayAgent:
    def test_advertises_as_relay(self):
        rig = Rig()
        advertisement = rig.relay_device.d2d.advertisement
        assert advertisement["role"] == "relay"
        assert advertisement["capacity_remaining"] == 10

    def test_own_beats_flushed_every_period(self):
        rig = Rig(n_ues=0)
        rig.sim.run_until(3 * T)
        assert rig.relay.aggregated_uplinks == 3
        assert rig.relay_device.modem.sends == 3

    def test_go_intent_starts_max(self):
        rig = Rig()
        assert rig.relay.go_intent == 15

    def test_collects_and_acks(self):
        rig = Rig(n_ues=1)
        rig.sim.run_until(T + 10.0)
        assert rig.relay.beats_collected == 1
        assert rig.relay.acks_sent == 1
        assert rig.ues[0].feedback.acks_received == 1

    def test_rewards_credited_per_collection(self):
        rig = Rig(n_ues=2)
        rig.sim.run_until(2 * T + 10.0)
        account = rig.rewards.account("relay-0")
        assert account.beats_collected == rig.relay.beats_collected
        assert account.beats_collected >= 2
        assert rig.rewards.l3_messages_avoided == account.beats_collected * 8

    def test_go_intent_decays_with_collection(self):
        rig = Rig(n_ues=3, capacity=6)
        rig.sim.run_until(T - 10.0)  # beats collected, not yet flushed
        assert rig.relay.go_intent < 15

    def test_shutdown_stops_advertising_and_flushes(self):
        rig = Rig(n_ues=0)
        rig.sim.run_until(10.0)
        rig.relay.shutdown()
        assert rig.relay_device.d2d.advertising is False
        assert rig.relay.aggregated_uplinks == 1  # forced flush of own beat
        rig.sim.run_until(5 * T)
        # no further uplinks after shutdown: one send total
        assert rig.relay_device.modem.sends == 1
        assert rig.relay.aggregated_uplinks == 1

    def test_requires_d2d_endpoint(self):
        sim = Simulator()
        phone = Smartphone(sim, "x", role=Role.RELAY)
        with pytest.raises(ValueError):
            RelayAgent(phone, STANDARD_APP)


class TestUEAgent:
    def test_full_pipeline_discovers_matches_forwards(self):
        rig = Rig(n_ues=1)
        rig.sim.run_until(T)
        ue = rig.ues[0]
        assert ue.state == UEState.CONNECTED
        assert ue.relay_id == "relay-0"
        assert ue.beats_forwarded == 1
        assert ue.cellular_sends == 0
        assert ue.searches == 1

    def test_connection_reused_across_periods(self):
        rig = Rig(n_ues=1)
        rig.sim.run_until(4 * T)
        ue = rig.ues[0]
        assert ue.searches == 1  # one discovery for the whole session
        assert ue.beats_forwarded == 4

    def test_no_relay_falls_back_to_cellular(self):
        rig = Rig(n_ues=1)
        rig.relay_device.d2d.advertising = False  # relay hides
        rig.sim.run_until(T)
        ue = rig.ues[0]
        assert ue.state == UEState.IDLE
        assert ue.cellular_sends == 1
        assert ue.beats_forwarded == 0

    def test_search_cooldown_avoids_rescanning_every_beat(self):
        rig = Rig(n_ues=1)
        rig.relay_device.d2d.advertising = False
        # cooldown (60 s) is shorter than the period (270 s), so each beat
        # still searches once — shrink the period effect by checking counts
        rig.sim.run_until(3 * T)
        ue = rig.ues[0]
        assert ue.searches == 3
        assert ue.cellular_sends == 3

    def test_all_beats_reach_server_either_way(self):
        rig = Rig(n_ues=1)
        rig.sim.run_until(2 * T + 30.0)
        origins = [r.message.origin_device for r in rig.server.records]
        assert origins.count("ue-0") == 2
        assert all(r.on_time for r in rig.server.records)

    def test_relayed_beats_attributed_to_relay_uplink(self):
        rig = Rig(n_ues=1)
        rig.sim.run_until(T + 30.0)
        ue_records = [
            r for r in rig.server.records if r.message.origin_device == "ue-0"
        ]
        assert all(r.via_device == "relay-0" for r in ue_records)
        assert all(r.relayed for r in ue_records)

    def test_ue_adds_zero_cellular_signaling_when_relayed(self):
        rig = Rig(n_ues=1)
        rig.sim.run_until(3 * T)
        assert rig.ledger.count_for("ue-0") == 0

    def test_requires_d2d_endpoint(self):
        sim = Simulator()
        phone = Smartphone(sim, "x", role=Role.UE)
        with pytest.raises(ValueError):
            UEAgent(phone, STANDARD_APP)


class TestRelayRejection:
    def test_capacity_overflow_falls_back(self):
        rig = Rig(n_ues=3, capacity=2)
        rig.sim.run_until(T + 30.0)
        forwarded = sum(u.beats_forwarded for u in rig.ues)
        fallbacks = sum(u.cellular_sends for u in rig.ues)
        assert rig.relay.beats_collected == 2
        # the third beat was rejected and re-sent via cellular
        assert fallbacks >= 1
        origins = {r.message.origin_device for r in rig.server.records}
        assert {"ue-0", "ue-1", "ue-2"} <= origins

    def test_rejected_beats_still_on_time(self):
        rig = Rig(n_ues=3, capacity=2)
        rig.sim.run_until(T + 60.0)
        assert all(r.on_time for r in rig.server.records)


class TestMultiUE:
    def test_relay_serves_multiple_ues(self):
        rig = Rig(n_ues=5)
        rig.sim.run_until(T + 10.0)
        assert rig.relay.beats_collected == 5
        assert rig.relay.connected_ue_count() == 5
        assert rig.relay.aggregated_uplinks == 1

    def test_one_uplink_carries_all_beats(self):
        rig = Rig(n_ues=4)
        rig.sim.run_until(T + 30.0)
        # 4 UE beats + 1 own beat in a single cellular transmission
        assert rig.relay_device.modem.sends == 1
        assert len(rig.server.records) == 5


class CoMovingRig(Rig):
    """Relay + UE walking together at ``speed`` m/s, ``distance`` m apart."""

    def __init__(self, speed=1.4, distance=15.0, seed=0):
        self.speed = speed
        super().__init__(n_ues=1, distance=distance, seed=seed)

    def _phone(self, device_id, position, role):
        from repro.mobility.models import LinearMobility

        return Smartphone(
            self.sim,
            device_id,
            mobility=LinearMobility(position, (self.speed, 0.0)),
            role=role,
            ledger=self.ledger,
            basestation=self.basestation,
            d2d_medium=self.medium,
        )


class TestCoMovingPair:
    """Regression for the relative-speed call-site bug: the UE passed its
    own absolute speed as the matcher's *relative* speed, so a pair
    walking together — zero actual drift — looked like it was separating
    at walking pace and the prejudgment rejected the relay."""

    def test_co_moving_ue_pairs_and_forwards(self):
        rig = CoMovingRig(speed=1.4, distance=15.0)
        rig.sim.run_until(T)
        ue = rig.ues[0]
        assert ue.state == UEState.CONNECTED
        assert ue.relay_id == "relay-0"
        assert ue.beats_forwarded == 1
        assert ue.cellular_sends == 0

    def test_old_scalar_behaviour_rejects_the_same_geometry(self):
        # Pin that the fixture is a real discriminator: the same distance
        # with the same *scalar* speed fed to the matcher (the pre-fix
        # behaviour) fails prejudgment.
        rig = CoMovingRig(speed=1.4, distance=15.0)
        peers_seen = {}

        def probe(peers):
            peers_seen["peers"] = list(peers)

        ue = rig.ues[0]
        rig.sim.schedule_at(1.0, lambda: ue.detector.discover(probe))
        rig.sim.run_until(30.0)
        [relay_peer] = [
            p for p in peers_seen["peers"] if p.device_id == "relay-0"
        ]
        assert ue.matcher.evaluate(
            relay_peer, T, STANDARD_APP.heartbeat_bytes,
            relative_speed_m_per_s=rig.speed,
        ) is None
