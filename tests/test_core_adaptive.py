"""Unit tests for battery-adaptive relay capacity."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.adaptive import AdaptiveCapacityConfig, AdaptiveCapacityPolicy
from repro.core.relay import RelayAgent
from repro.core.scheduler import SchedulerConfig
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.energy.battery import Battery
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP

T = STANDARD_APP.heartbeat_period_s


def build_relay(battery=None, seed=0):
    sim = Simulator(seed=seed)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    medium = D2DMedium(sim, WIFI_DIRECT)
    device = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                        role=Role.RELAY, ledger=ledger, basestation=basestation,
                        d2d_medium=medium, battery=battery)
    agent = RelayAgent(device, STANDARD_APP,
                       scheduler_config=SchedulerConfig(capacity=10))
    return sim, device, agent


class TestSchedule:
    def test_full_battery_full_capacity(self):
        config = AdaptiveCapacityConfig(max_capacity=10)
        assert config.capacity_for(1.0) == 10
        assert config.capacity_for(0.8) == 10

    def test_resigns_below_floor(self):
        config = AdaptiveCapacityConfig()
        assert config.capacity_for(0.14) == 0

    def test_interpolates_between(self):
        config = AdaptiveCapacityConfig(max_capacity=10, resign_level=0.2,
                                        full_level=0.8)
        mid = config.capacity_for(0.5)
        assert 1 <= mid < 10

    def test_monotone_in_battery(self):
        config = AdaptiveCapacityConfig()
        levels = [i / 100 for i in range(0, 101, 5)]
        capacities = [config.capacity_for(level) for level in levels]
        assert all(b >= a for a, b in zip(capacities, capacities[1:]))

    def test_never_zero_above_floor(self):
        config = AdaptiveCapacityConfig(resign_level=0.2, full_level=0.9)
        assert config.capacity_for(0.2) >= 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveCapacityConfig(max_capacity=0)
        with pytest.raises(ValueError):
            AdaptiveCapacityConfig(resign_level=0.9, full_level=0.5)


class TestPolicy:
    def test_requires_battery(self):
        sim, device, agent = build_relay(battery=None)
        with pytest.raises(ValueError):
            AdaptiveCapacityPolicy(agent)

    def test_capacity_tracks_battery(self):
        battery = Battery(capacity_mah=100.0, level=1.0)
        sim, device, agent = build_relay(battery=battery)
        policy = AdaptiveCapacityPolicy(agent).start()
        sim.run_until(1.0)
        assert agent.scheduler.config.capacity == 10
        battery.remaining_mah = battery.capacity_mah * 0.5
        sim.run_until(T + 1.0)
        assert 1 <= agent.scheduler.config.capacity < 10
        assert policy.adjustments >= 1

    def test_advertisement_reflects_new_capacity(self):
        battery = Battery(capacity_mah=100.0, level=0.5)
        sim, device, agent = build_relay(battery=battery)
        AdaptiveCapacityPolicy(agent).start()
        sim.run_until(1.0)
        assert device.d2d.advertisement["capacity_remaining"] < 10

    def test_resignation_stops_advertising(self):
        battery = Battery(capacity_mah=100.0, level=1.0)
        sim, device, agent = build_relay(battery=battery)
        policy = AdaptiveCapacityPolicy(agent).start()
        sim.run_until(1.0)
        battery.remaining_mah = battery.capacity_mah * 0.1
        sim.run_until(T + 1.0)
        assert policy.resigned
        assert device.d2d.advertising is False

    def test_double_start_rejected(self):
        battery = Battery()
        sim, device, agent = build_relay(battery=battery)
        policy = AdaptiveCapacityPolicy(agent).start()
        with pytest.raises(RuntimeError):
            policy.start()

    def test_stop_halts_evaluation(self):
        battery = Battery(capacity_mah=100.0, level=1.0)
        sim, device, agent = build_relay(battery=battery)
        policy = AdaptiveCapacityPolicy(agent).start()
        sim.run_until(1.0)
        policy.stop()
        battery.remaining_mah = battery.capacity_mah * 0.05
        sim.run_until(3 * T)
        assert not policy.resigned  # no longer evaluating
