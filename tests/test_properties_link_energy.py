"""Property-based tests for the link model and energy calibration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import saved_fraction, wasted_to_saved_ratio
from repro.core.modes import (
    cellular_session_cost_uah,
    d2d_session_beneficial,
    d2d_session_cost_uah,
)
from repro.d2d.link import LinkModel, distance_from_rssi, rssi_at
from repro.energy.profiles import DEFAULT_PROFILE

distances = st.floats(min_value=0.0, max_value=400.0)
positive_distances = st.floats(min_value=0.05, max_value=400.0)


class TestLinkProperties:
    @given(positive_distances, positive_distances)
    @settings(max_examples=100, deadline=None)
    def test_rssi_strictly_monotone_decreasing(self, a, b):
        if a == b:
            return
        near, far = min(a, b), max(a, b)
        assert rssi_at(near) > rssi_at(far)

    @given(positive_distances)
    @settings(max_examples=100, deadline=None)
    def test_rssi_distance_roundtrip(self, d):
        assert distance_from_rssi(rssi_at(d)) == pytest.approx(d, rel=1e-6)

    @given(positive_distances)
    @settings(max_examples=100, deadline=None)
    def test_per_bounded(self, d):
        per = LinkModel().packet_error_rate(d)
        assert 0.0 <= per <= 1.0

    @given(st.floats(min_value=1.5, max_value=3.8))
    @settings(max_examples=50, deadline=None)
    def test_higher_exponent_shrinks_range(self, exponent):
        base = LinkModel(path_loss_exponent=exponent)
        harsher = LinkModel(path_loss_exponent=exponent + 0.2)
        assert harsher.max_range_m() < base.max_range_m()


class TestEnergyProperties:
    @given(distances)
    @settings(max_examples=100, deadline=None)
    def test_distance_factor_at_least_reference(self, d):
        factor = DEFAULT_PROFILE.d2d_distance_factor(d)
        if d >= DEFAULT_PROFILE.d2d_reference_distance_m:
            assert factor >= 1.0 - 1e-9

    @given(st.integers(min_value=1, max_value=1000), positive_distances)
    @settings(max_examples=100, deadline=None)
    def test_ue_session_cost_monotone_in_beats(self, n, d):
        p = DEFAULT_PROFILE
        assert p.ue_session_cost_uah(n + 1, 54, d) > p.ue_session_cost_uah(n, 54, d)

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_benefit_monotone_in_session_length(self, n):
        """If n beats at distance d are beneficial, n+1 beats are too."""
        p = DEFAULT_PROFILE
        for d in (1.0, 8.0, 15.0):
            if d2d_session_beneficial(p, n, d, 54):
                assert d2d_session_beneficial(p, n + 1, d, 54)

    @given(st.integers(min_value=1, max_value=20), positive_distances)
    @settings(max_examples=100, deadline=None)
    def test_costs_positive(self, n, d):
        assert d2d_session_cost_uah(DEFAULT_PROFILE, n, d, 54) > 0
        assert cellular_session_cost_uah(DEFAULT_PROFILE, n, 54) > 0

    @given(st.integers(min_value=54, max_value=1024))
    @settings(max_examples=50, deadline=None)
    def test_cost_monotone_in_size(self, size):
        p = DEFAULT_PROFILE
        assert p.ue_forward_cost_uah(size + 1) > p.ue_forward_cost_uah(size)
        assert p.cellular_send_cost_uah(size + 1) > p.cellular_send_cost_uah(size)


class TestAnalysisProperties:
    @given(st.floats(min_value=0.1, max_value=1e6),
           st.floats(min_value=0.0, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_saved_fraction_bounds(self, baseline, actual):
        s = saved_fraction(baseline, actual)
        assert s <= 1.0
        if actual <= baseline:
            assert s >= 0.0

    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.1, max_value=1e4),
    )
    @settings(max_examples=100, deadline=None)
    def test_wasted_saved_ratio_nonnegative(self, r_d2d, r_base, u_d2d, u_base):
        ratio = wasted_to_saved_ratio(r_d2d, r_base, u_d2d, u_base)
        assert ratio >= 0.0
