"""Unit tests for the paging channel and storm-induced failures."""

import pytest

from repro.cellular.paging import PagingChannel, PagingConfig
from repro.cellular.signaling import Direction, L3MessageType, SignalingLedger


def flood_ledger(ledger, start, count, spacing=0.1):
    for i in range(count):
        ledger.record(
            start + i * spacing,
            "storm",
            L3MessageType.RRC_CONNECTION_REQUEST,
            Direction.UPLINK,
        )


@pytest.fixture
def channel(sim, ledger):
    return PagingChannel(sim, ledger, PagingConfig(slots_per_second=2.0,
                                                   window_s=5.0))


class TestConfig:
    def test_slots_per_window(self):
        config = PagingConfig(slots_per_second=8.0, window_s=5.0)
        assert config.slots_per_window == 40.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PagingConfig(slots_per_second=0.0)
        with pytest.raises(ValueError):
            PagingConfig(window_s=0.0)


class TestQuietChannel:
    def test_page_succeeds_immediately(self, sim, channel):
        results = []
        attempt = channel.page("ue-0", results.append)
        assert attempt.succeeded
        assert attempt.delivered_at_s == sim.now
        assert results == [attempt]
        assert channel.failure_rate == 0.0

    def test_occupancy_counts_pages(self, sim, channel):
        channel.page("a")
        channel.page("b")
        assert channel.occupancy() == 2

    def test_mean_delay_zero_when_unblocked(self, sim, channel):
        channel.page("a")
        assert channel.mean_paging_delay_s() == 0.0


class TestStormedChannel:
    def test_page_blocked_then_retried(self, sim, ledger, channel):
        flood_ledger(ledger, 0.0, 20)  # 20 L3 in window, capacity 10
        sim.run_until(1.0)
        results = []
        attempt = channel.page("ue-0", results.append)
        assert not attempt.succeeded
        assert attempt.retried
        # still stormy at retry time → failure
        sim.run_until(5.0)
        assert results and not results[0].succeeded
        assert channel.pages_failed == 1
        assert channel.failure_rate == 1.0

    def test_retry_succeeds_when_storm_passes(self, sim, ledger, channel):
        flood_ledger(ledger, 0.0, 20, spacing=0.01)  # burst ends at t=0.2
        sim.run_until(3.5)
        # occupancy window [..8.5] still holds the burst → blocked now,
        # but the retry at +2 s lands after the burst leaves the window
        results = []
        channel.page("ue-0", results.append)
        sim.run_until(10.0)
        assert results and results[0].succeeded
        assert channel.pages_retried == 1
        assert channel.pages_failed == 0
        assert channel.mean_paging_delay_s() > 0.0

    def test_failure_rate_tracks_mixed_outcomes(self, sim, ledger, channel):
        channel.page("early")  # succeeds on the quiet channel
        flood_ledger(ledger, 1.0, 40, spacing=0.05)
        sim.run_until(2.0)
        channel.page("blocked")
        sim.run_until(20.0)
        assert channel.pages_delivered >= 1
        assert 0.0 < channel.failure_rate < 1.0


class TestStormReliefEndToEnd:
    def test_d2d_framework_reduces_paging_failures(self):
        """Paging failure in a crowd: original vs. D2D framework."""
        from repro.scenarios import run_crowd_scenario

        def failure_rate(mode):
            result = run_crowd_scenario(
                n_devices=30, relay_fraction=0.2, duration_s=900.0,
                seed=13, mode=mode,
            )
            channel = PagingChannel(
                result.context.sim,
                result.context.ledger,
                PagingConfig(slots_per_second=1.2, window_s=10.0),
            )
            # replay pages against the recorded signaling timeline
            sim = result.context.sim
            for t in range(50, 850, 40):
                blocked_now = channel.occupancy(float(t)) >= (
                    channel.config.slots_per_window
                )
                if blocked_now:
                    retry_busy = channel.occupancy(
                        float(t) + channel.config.retry_after_s
                    ) >= channel.config.slots_per_window
                    if retry_busy:
                        channel.pages_failed += 1
                    else:
                        channel.pages_delivered += 1
                else:
                    channel.pages_delivered += 1
            return channel.failure_rate

        assert failure_rate("d2d") < failure_rate("original")
