"""Tests for the runtime delivery-safety auditor.

Two families:

- clean runs are audited OK (the auditor never cries wolf);
- rigged protocol bugs are each caught as the right violation kind — the
  auditor actually detects sabotage, it is not a rubber stamp.

Also carries the pre-fix regression for the mid-drain link-death crash in
``UEAgent._forward`` that the chaos engine's link gate uncovered.
"""

import types

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import HeartbeatRelayFramework
from repro.core.scheduler import CollectedBeat
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.faults.auditor import InvariantAuditor
from repro.mobility.models import StaticMobility
from repro.scenarios import run_relay_scenario
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.messages import PeriodicMessage
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s


def build_rig(n_ues=1, seed=0):
    sim = Simulator(seed=seed)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework([], app=STANDARD_APP)
    devices = {}
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium)
    devices[relay.device_id] = relay
    framework.add_device(relay, phase_fraction=0.0)
    for i in range(n_ues):
        ue = Smartphone(sim, f"ue-{i}", mobility=StaticMobility((1.0, i)),
                        role=Role.UE, ledger=ledger, basestation=basestation,
                        d2d_medium=medium)
        devices[ue.device_id] = ue
        framework.add_device(ue, phase_fraction=0.5)
    return sim, medium, server, framework, devices


def make_beat(created=0.0, expiry=270.0, origin="ue-0"):
    return PeriodicMessage(
        app="standard", origin_device=origin, size_bytes=54,
        created_at_s=created, period_s=270.0, expiry_s=expiry,
    )


class TestCleanRuns:
    def test_baseline_pair_audits_ok(self):
        result = run_relay_scenario(n_ues=2, periods=3, seed=0, audit=True)
        report = result.audit_report
        assert report.ok, report.summary()
        assert report.beats_adjudicated > 0
        assert report.beats_on_time == report.beats_adjudicated
        assert result.deadline_safe_fraction() == 1.0

    def test_original_mode_audits_ok(self):
        result = run_relay_scenario(
            n_ues=2, periods=3, seed=0, mode="original", audit=True
        )
        assert result.audit_report.ok, result.audit_report.summary()

    def test_finalize_is_idempotent(self):
        result = run_relay_scenario(n_ues=1, periods=2, seed=0, audit=True)
        report = result.audit_report
        adjudicated = report.beats_adjudicated
        # _fault_metrics already finalized; a second finalize must not
        # double-count or re-adjudicate
        sim_horizon = report.horizon_s
        assert report.finalized
        assert report.beats_adjudicated == adjudicated
        assert report.horizon_s == sim_horizon


class TestRiggedViolations:
    def test_undelivered_beat_detected(self):
        # sabotage: the relay silently drops every aggregated uplink and
        # the UE's cellular fallback is disabled — beats vanish.
        sim, medium, server, framework, devices = build_rig()
        auditor = InvariantAuditor(sim, server=server,
                                   rewards=framework.rewards)
        auditor.attach_framework(framework, devices)
        scheduler = framework.relays["relay-0"].scheduler
        scheduler.on_flush = lambda own, collected, reason: None
        agent = framework.ues["ue-0"]
        agent.feedback.on_fallback = lambda message: None
        sim.run_until(T + 60.0)
        report = auditor.finalize(T + 60.0)
        assert not report.ok
        assert report.violations_of("undelivered")

    def test_phantom_credit_detected(self):
        # sabotage: the relay books credit for beats the server never saw
        sim, medium, server, framework, devices = build_rig()
        auditor = InvariantAuditor(sim, server=server,
                                   rewards=framework.rewards)
        auditor.attach_framework(framework, devices)
        framework.rewards.credit_collection(0.0, "relay-0", beats=3)
        sim.run_until(5.0)
        assert auditor.report.violations_of("phantom-credit")

    def test_phantom_credit_settles_after_transport_slack(self):
        # honest credit: the uplink clears the air interface first, the
        # server sink runs a core latency later — no false positive.
        result = run_relay_scenario(n_ues=2, periods=3, seed=0, audit=True)
        assert not result.audit_report.violations_of("phantom-credit")

    def test_capacity_breach_detected(self):
        # sabotage: an admission path that ignores the capacity bound
        sim, medium, server, framework, devices = build_rig()
        scheduler = framework.relays["relay-0"].scheduler
        capacity = scheduler.config.capacity

        def leaky_offer(beat):
            scheduler._collected.append(beat)
            scheduler.beats_accepted += 1
            return True

        scheduler.offer = leaky_offer
        auditor = InvariantAuditor(sim, server=server)
        auditor.attach_framework(framework, devices)
        for i in range(capacity + 1):
            scheduler.offer(CollectedBeat(
                message=make_beat(expiry=10_000.0), arrived_at_s=0.0,
                from_device="ue-0",
            ))
        breaches = auditor.report.violations_of("capacity-exceeded")
        assert len(breaches) == 1
        assert f"M={capacity}" in breaches[0].detail

    def test_ack_and_fallback_needs_two_deliveries(self):
        sim = Simulator(seed=0)
        auditor = InvariantAuditor(sim)
        message = make_beat(expiry=100.0)
        auditor._observe_beat(message)
        record = auditor._beats[message.seq]
        record.acked = True
        record.fallback_fired = True
        record.on_time_deliveries = 1  # duplicate was silently collapsed
        report = auditor.finalize(1000.0)
        assert report.violations_of("ack-and-fallback")
        assert report.ack_and_fallback_beats == 1

    def test_deadline_miss_detected(self):
        sim = Simulator(seed=0)
        server = IMServer(sim)
        auditor = InvariantAuditor(sim, server=server)
        auditor.attach_server(server)
        message = make_beat(expiry=50.0)
        auditor._observe_beat(message)
        server.receive(message, via_device="ue-0", time_s=60.0)
        misses = auditor.report.violations_of("deadline-missed")
        assert len(misses) == 1
        assert misses[0].trace  # carries the event trace

    def test_deadline_miss_exempt_when_origin_was_down(self):
        sim, medium, server, framework, devices = build_rig()
        auditor = InvariantAuditor(sim, server=server)
        auditor.attach_framework(framework, devices)
        message = make_beat(expiry=50.0)
        auditor._observe_beat(message)
        devices["ue-0"].power_off()  # downtime overlaps the beat's window
        server.receive(message, via_device="ue-0", time_s=60.0)
        assert not auditor.report.violations_of("deadline-missed")

    def test_negative_energy_detected(self):
        sim, medium, server, framework, devices = build_rig()
        auditor = InvariantAuditor(sim, server=server)
        auditor.attach_framework(framework, devices)
        relay = devices["relay-0"]
        relay.battery = types.SimpleNamespace(remaining_mah=-0.5)
        relay.power_off()  # any audited transition re-checks the battery
        assert auditor.report.violations_of("negative-energy")


class TestForwardLinkDeathRegression:
    """Pre-fix failing case the chaos link gate uncovered.

    Draining a buffer of 2+ beats when the first send kills the link used
    to crash on ``assert self.connection is not None`` — the first send's
    synchronous link-loss cleanup nulled the connection before the second
    ``_forward`` ran. Post-fix, later beats go out via cellular.
    """

    def test_mid_drain_link_death_falls_back_to_cellular(self):
        sim, medium, server, framework, devices = build_rig()
        agent = framework.ues["ue-0"]
        sim.run_until(0.6 * T)  # first UE beat → search → connect
        assert agent.state.value == "connected"
        medium.link_gate = lambda a, b: False  # chaos-style link down
        now = sim.now
        first = make_beat(created=now, expiry=270.0)
        second = make_beat(created=now, expiry=270.0)
        agent._buffer_beat(first)
        agent._buffer_beat(second)
        before = agent.cellular_sends
        agent._drain_buffer()  # pre-fix: AssertionError on `second`
        # both drained beats went cellular (the link-loss cleanup may
        # also fall back earlier unacked forwards, hence >=)
        assert agent.cellular_sends >= before + 2
        assert agent.connection is None
