"""Determinism guard: indexed discovery must be byte-identical to brute force.

The spatial index is an acceleration structure only — for any seed it must
produce the same peers, the same RSSI draws (RNG consumed in the same
order), and the same result ordering as the O(N) brute-force scan. These
tests pin that contract at two levels: raw `D2DMedium.discover` output and
full crowd-scenario `RunMetrics`.
"""

from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.energy.model import EnergyModel
from repro.mobility.models import LinearMobility, StaticMobility
from repro.mobility.space import Arena
from repro.scenarios import run_crowd_scenario
from repro.shard import run_crowd_scenario_sharded
from repro.sim.engine import Simulator

SEEDS = (0, 1, 2)


def _run_discovery_rounds(seed, brute_force, tweak=None):
    """Scatter endpoints (static + mobile), run repeated interleaved scans,
    and return every (scan, peer, rssi, distance) observation in order."""
    sim = Simulator(seed=seed)
    medium = D2DMedium(sim, WIFI_DIRECT, brute_force=brute_force)
    for i in range(30):
        pos = (float((i * 37) % 240), float((i * 59) % 240))
        if i % 5 == 0:
            mobility = LinearMobility(pos, (2.0, -1.5))
        else:
            mobility = StaticMobility(pos)
        endpoint = D2DEndpoint(
            f"d{i}",
            mobility,
            energy=EnergyModel(owner=f"d{i}"),
            advertisement={"n": i},
        )
        endpoint.advertising = i % 2 == 0
        medium.register(endpoint)
    if tweak is not None:
        tweak(medium)

    observations = []

    def scan(requester_id, tag):
        def record(peers):
            for peer in peers:
                observations.append(
                    (tag, peer.device_id, peer.rssi_dbm, peer.estimated_distance_m)
                )

        medium.discover(requester_id, record)

    for round_no in range(6):
        start = round_no * 10.0
        sim.schedule_at(start, scan, f"d{round_no * 3 % 30}", f"r{round_no}-a")
        sim.schedule_at(start + 2.5, scan, f"d{(round_no * 7 + 1) % 30}", f"r{round_no}-b")
    sim.run_until(70.0)
    return observations, sim.events_fired


class TestDiscoveryIdentity:
    def test_indexed_scan_matches_brute_force_exactly(self):
        for seed in SEEDS:
            indexed, indexed_events = _run_discovery_rounds(seed, brute_force=False)
            brute, brute_events = _run_discovery_rounds(seed, brute_force=True)
            # Same peers, same RSSI draws, same ordering — not just same sets.
            assert indexed == brute, f"discovery diverged for seed {seed}"
            assert indexed_events == brute_events
            assert indexed, f"seed {seed} produced no observations (vacuous)"


class TestCrowdMetricsIdentity:
    def test_crowd_metrics_identical_across_seeds(self):
        for seed in SEEDS:
            kwargs = dict(
                n_devices=40,
                relay_fraction=0.25,
                duration_s=120.0,
                hotspots=4,
                mobile_fraction=0.3,
                seed=seed,
            )
            indexed = run_crowd_scenario(brute_force=False, **kwargs)
            brute = run_crowd_scenario(brute_force=True, **kwargs)
            assert (
                indexed.metrics.to_comparable_dict()
                == brute.metrics.to_comparable_dict()
            ), f"crowd metrics diverged for seed {seed}"

    def test_perf_counters_reflect_the_chosen_path(self):
        """Sanity: the two paths really did take different code routes."""
        indexed = run_crowd_scenario(
            n_devices=20, duration_s=60.0, seed=0, brute_force=False
        )
        brute = run_crowd_scenario(
            n_devices=20, duration_s=60.0, seed=0, brute_force=True
        )
        assert indexed.metrics.perf["index_queries"] > 0
        assert indexed.metrics.perf["brute_force_scans"] == 0
        assert brute.metrics.perf["brute_force_scans"] > 0
        assert brute.metrics.perf["index_queries"] == 0


class TestScanFastPathIdentity:
    """The discovery fast paths are accelerations, never behaviour.

    Static-position memoisation and the sorted-candidate cache each have
    a kill switch; with either (or both) off, every scan must produce
    the identical observation stream — same peers, same RSSI draws, same
    ordering.
    """

    @staticmethod
    def _no_memo(medium):
        medium._static_pos.clear()

    @staticmethod
    def _no_sorted_cache(medium):
        medium._sorted_cache.enabled = False

    def test_static_position_memo_is_pure_acceleration(self):
        for seed in SEEDS:
            fast, fast_events = _run_discovery_rounds(seed, brute_force=False)
            slow, slow_events = _run_discovery_rounds(
                seed, brute_force=False, tweak=self._no_memo
            )
            assert fast == slow, f"memoised scan diverged for seed {seed}"
            assert fast_events == slow_events
            assert fast, f"seed {seed} produced no observations (vacuous)"

    def test_sorted_candidate_cache_is_pure_acceleration(self):
        for seed in SEEDS:
            fast, fast_events = _run_discovery_rounds(seed, brute_force=False)
            slow, slow_events = _run_discovery_rounds(
                seed, brute_force=False, tweak=self._no_sorted_cache
            )
            assert fast == slow, f"cached re-sort diverged for seed {seed}"
            assert fast_events == slow_events

    def test_fast_paths_actually_fire_in_static_crowds(self):
        result = run_crowd_scenario(
            n_devices=30, duration_s=120.0, seed=0, mobile_fraction=0.0
        )
        assert result.metrics.perf["static_position_hits"] > 0

    def test_repeat_scans_hit_the_sorted_cache(self):
        sim = Simulator(seed=0)
        medium = D2DMedium(sim, WIFI_DIRECT)
        for i in range(12):
            endpoint = D2DEndpoint(
                f"s{i}",
                StaticMobility((float(i * 13 % 60), float(i * 7 % 60))),
                energy=EnergyModel(owner=f"s{i}"),
            )
            endpoint.advertising = True
            medium.register(endpoint)
        for start in (0.0, 10.0, 20.0):
            sim.schedule_at(start, medium.discover, "s0", lambda peers: None)
        sim.run_until(30.0)
        # First scan populates the cache; the static crowd never
        # invalidates it, so the two repeats must be served from it.
        assert medium.perf.sorted_cache_hits == 2

    def test_memo_stays_off_for_mobile_endpoints(self):
        sim = Simulator(seed=0)
        medium = D2DMedium(sim, WIFI_DIRECT)
        medium.register(
            D2DEndpoint(
                "mover",
                LinearMobility((0.0, 0.0), (1.0, 0.0)),
                energy=EnergyModel(owner="mover"),
            )
        )
        medium.register(
            D2DEndpoint(
                "rock",
                StaticMobility((5.0, 0.0)),
                energy=EnergyModel(owner="rock"),
            )
        )
        assert "rock" in medium._static_pos
        assert "mover" not in medium._static_pos


class TestVectorizedScanIdentity:
    """The numpy block-scan path is an acceleration, never behaviour.

    ``medium.vectorized = False`` is the kill switch: with it off, every
    scan takes the scalar per-peer loop. Both paths must produce
    byte-identical run metrics — same survivors, same RSSI draws in the
    same registration order.
    """

    @staticmethod
    def _no_vector(context, devices):
        context.medium.vectorized = False

    def test_vectorized_scan_is_pure_acceleration(self):
        for seed in SEEDS:
            kwargs = dict(
                n_devices=120, relay_fraction=0.2, duration_s=240.0,
                hotspots=4, mobile_fraction=0.2, seed=seed,
            )
            fast = run_crowd_scenario(**kwargs)
            slow = run_crowd_scenario(pre_run=self._no_vector, **kwargs)
            assert (
                fast.metrics.to_comparable_dict()
                == slow.metrics.to_comparable_dict()
            ), f"vectorized scan diverged for seed {seed}"
            # sanity: the two runs really took different code routes
            assert fast.metrics.perf["vectorized_scans"] > 0
            assert slow.metrics.perf["vectorized_scans"] == 0

    def test_vectorized_matches_brute_force(self):
        kwargs = dict(
            n_devices=120, relay_fraction=0.2, duration_s=240.0,
            hotspots=4, mobile_fraction=0.2, seed=0,
        )
        vectorized = run_crowd_scenario(brute_force=False, **kwargs)
        brute = run_crowd_scenario(brute_force=True, **kwargs)
        assert (
            vectorized.metrics.to_comparable_dict()
            == brute.metrics.to_comparable_dict()
        )


class TestShardedKernelIdentity:
    """The cell-sharded kernel's determinism contract.

    Sharded runs are a documented equivalence class of their own (per-
    shard RNG streams, frozen border ghosts), so the guard pins what the
    design promises: the serial and process backends are byte-identical,
    replay is byte-identical, and delivery is complete — every beat the
    unsharded kernel delivers, the sharded kernel delivers too, even
    with movers crossing shard borders (handovers observed > 0).
    """

    KWARGS = dict(
        n_devices=60, relay_fraction=0.25, duration_s=120.0,
        arena=Arena(400.0, 120.0), hotspots=6, mobile_fraction=0.3,
        storm_scan_period_s=10.0, shards=2, sync_window_s=5.0, seed=3,
    )

    def test_serial_and_process_backends_identical(self):
        serial = run_crowd_scenario_sharded(backend="serial", **self.KWARGS)
        process = run_crowd_scenario_sharded(backend="process", **self.KWARGS)
        assert (
            serial.metrics.to_comparable_dict()
            == process.metrics.to_comparable_dict()
        ), "serial and process shard backends diverged"
        assert serial.handovers == process.handovers
        assert serial.ghost_registrations == process.ghost_registrations
        assert serial.devices_per_shard == process.devices_per_shard
        # the run must actually exercise the cross-shard machinery
        assert serial.handovers > 0, "no handover crossed a cell border"
        assert serial.ghost_registrations > 0, "no border ghost exchanged"
        assert all(n > 0 for n in serial.devices_per_shard)

    def test_sharded_replay_is_byte_identical(self):
        first = run_crowd_scenario_sharded(backend="serial", **self.KWARGS)
        second = run_crowd_scenario_sharded(backend="serial", **self.KWARGS)
        assert (
            first.metrics.to_comparable_dict()
            == second.metrics.to_comparable_dict()
        )

    def test_sharded_delivery_matches_unsharded(self):
        # Same crowd, sharded vs single-kernel: the device population is
        # identical and no beat is lost to the partition — received and
        # on-time counts match exactly (energy/RNG details legitimately
        # differ; that's the documented equivalence class).
        kwargs = dict(
            n_devices=60, relay_fraction=0.25, duration_s=120.0,
            hotspots=6, mobile_fraction=0.3, seed=3,
        )
        unsharded = run_crowd_scenario(arena=Arena(400.0, 120.0), **kwargs)
        sharded = run_crowd_scenario_sharded(
            arena=Arena(400.0, 120.0), shards=2, **kwargs
        )
        assert set(sharded.metrics.devices) == set(unsharded.metrics.devices)
        assert (
            sharded.metrics.delivery.received
            == unsharded.metrics.delivery.received
        )
        assert (
            sharded.metrics.delivery.on_time
            == unsharded.metrics.delivery.on_time
        )


class TestTilePlanIdentity:
    """The tile shard plan obeys the same determinism contract as bands.

    The geometry exercises the part bands cannot reach: three shards on a
    2x2 cell grid (shards > cells_x), so the weighted-bisection planner
    must cut along both axes and every worker must re-derive the same
    weighted partition from the master seed before any of the byte-level
    identities below can hold.
    """

    KWARGS = dict(
        n_devices=60, relay_fraction=0.25, duration_s=120.0,
        arena=Arena(400.0, 120.0), hotspots=6, mobile_fraction=0.3,
        storm_scan_period_s=10.0, shards=3, cells_x=2, cells_y=2,
        sync_window_s=5.0, seed=3, shard_plan="tiles",
    )

    def test_tile_serial_and_process_backends_identical(self):
        serial = run_crowd_scenario_sharded(backend="serial", **self.KWARGS)
        process = run_crowd_scenario_sharded(backend="process", **self.KWARGS)
        assert (
            serial.metrics.to_comparable_dict()
            == process.metrics.to_comparable_dict()
        ), "serial and process tile-plan backends diverged"
        assert serial.handovers == process.handovers
        assert serial.ghost_registrations == process.ghost_registrations
        assert serial.devices_per_shard == process.devices_per_shard
        assert serial.ghost_registrations > 0, "no border ghost exchanged"
        assert all(n > 0 for n in serial.devices_per_shard)

    def test_tile_replay_is_byte_identical(self):
        first = run_crowd_scenario_sharded(backend="serial", **self.KWARGS)
        second = run_crowd_scenario_sharded(backend="serial", **self.KWARGS)
        assert (
            first.metrics.to_comparable_dict()
            == second.metrics.to_comparable_dict()
        )

    def test_tile_delivery_matches_unsharded(self):
        # Same completeness promise as the band plan: the partition shape
        # must not cost a single heartbeat vs the unsharded kernel.
        kwargs = dict(
            n_devices=60, relay_fraction=0.25, duration_s=120.0,
            hotspots=6, mobile_fraction=0.3, seed=3,
        )
        unsharded = run_crowd_scenario(arena=Arena(400.0, 120.0), **kwargs)
        tiled = run_crowd_scenario_sharded(
            arena=Arena(400.0, 120.0), shards=3, cells_x=2, cells_y=2,
            shard_plan="tiles", **kwargs
        )
        assert set(tiled.metrics.devices) == set(unsharded.metrics.devices)
        assert (
            tiled.metrics.delivery.received
            == unsharded.metrics.delivery.received
        )
        assert (
            tiled.metrics.delivery.on_time
            == unsharded.metrics.delivery.on_time
        )


class TestChannelModeIdentity:
    """Channel-mode runs obey the same replay and index contracts."""

    def test_channel_run_replays_byte_identically(self):
        for seed in SEEDS:
            kwargs = dict(
                n_devices=25, duration_s=120.0, hotspots=4,
                mobile_fraction=0.2, seed=seed, channel="sinr",
            )
            first = run_crowd_scenario(**kwargs)
            second = run_crowd_scenario(**kwargs)
            assert (
                first.metrics.to_comparable_dict()
                == second.metrics.to_comparable_dict()
            ), f"channel replay diverged for seed {seed}"
            assert first.metrics.channel["transfers"] > 0

    def test_channel_indexed_scan_matches_brute_force(self):
        for seed in SEEDS:
            kwargs = dict(
                n_devices=25, duration_s=120.0, hotspots=4,
                mobile_fraction=0.2, seed=seed, channel="sinr",
            )
            indexed = run_crowd_scenario(brute_force=False, **kwargs)
            brute = run_crowd_scenario(brute_force=True, **kwargs)
            assert (
                indexed.metrics.to_comparable_dict()
                == brute.metrics.to_comparable_dict()
            ), f"channel crowd metrics diverged for seed {seed}"


class TestChannelAwareSelectionIdentity:
    """Channel-aware selection policies keep every replay contract: the
    pure `estimate_link` queries consume no RNG, so a `rate`/`hybrid` run
    replays byte-identically, survives the indexed-vs-brute-force swap,
    and the distance policy stays byte-identical to a run that never
    computed an estimate at all."""

    KWARGS = dict(
        n_devices=25, duration_s=120.0, hotspots=4,
        mobile_fraction=0.2, channel="sinr",
    )

    def test_rate_policy_replays_byte_identically(self):
        for seed in SEEDS:
            kwargs = dict(self.KWARGS, seed=seed, selection_policy="rate")
            first = run_crowd_scenario(**kwargs)
            second = run_crowd_scenario(**kwargs)
            assert (
                first.metrics.to_comparable_dict()
                == second.metrics.to_comparable_dict()
            ), f"rate-policy replay diverged for seed {seed}"
            assert first.metrics.channel["transfers"] > 0

    def test_hybrid_policy_indexed_scan_matches_brute_force(self):
        for seed in SEEDS:
            kwargs = dict(self.KWARGS, seed=seed, selection_policy="hybrid")
            indexed = run_crowd_scenario(brute_force=False, **kwargs)
            brute = run_crowd_scenario(brute_force=True, **kwargs)
            assert (
                indexed.metrics.to_comparable_dict()
                == brute.metrics.to_comparable_dict()
            ), f"hybrid-policy metrics diverged for seed {seed}"

    def test_explicit_distance_policy_is_the_default(self):
        # selection_policy="distance" must be a pure spelling of the
        # default — same RNG draws, same metrics, byte for byte.
        kwargs = dict(self.KWARGS, seed=0)
        implicit = run_crowd_scenario(**kwargs)
        explicit = run_crowd_scenario(selection_policy="distance", **kwargs)
        assert (
            implicit.metrics.to_comparable_dict()
            == explicit.metrics.to_comparable_dict()
        )
