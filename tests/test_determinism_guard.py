"""Determinism guard: indexed discovery must be byte-identical to brute force.

The spatial index is an acceleration structure only — for any seed it must
produce the same peers, the same RSSI draws (RNG consumed in the same
order), and the same result ordering as the O(N) brute-force scan. These
tests pin that contract at two levels: raw `D2DMedium.discover` output and
full crowd-scenario `RunMetrics`.
"""

from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.energy.model import EnergyModel
from repro.mobility.models import LinearMobility, StaticMobility
from repro.scenarios import run_crowd_scenario
from repro.sim.engine import Simulator

SEEDS = (0, 1, 2)


def _run_discovery_rounds(seed, brute_force):
    """Scatter endpoints (static + mobile), run repeated interleaved scans,
    and return every (scan, peer, rssi, distance) observation in order."""
    sim = Simulator(seed=seed)
    medium = D2DMedium(sim, WIFI_DIRECT, brute_force=brute_force)
    for i in range(30):
        pos = (float((i * 37) % 240), float((i * 59) % 240))
        if i % 5 == 0:
            mobility = LinearMobility(pos, (2.0, -1.5))
        else:
            mobility = StaticMobility(pos)
        endpoint = D2DEndpoint(
            f"d{i}",
            mobility,
            energy=EnergyModel(owner=f"d{i}"),
            advertisement={"n": i},
        )
        endpoint.advertising = i % 2 == 0
        medium.register(endpoint)

    observations = []

    def scan(requester_id, tag):
        def record(peers):
            for peer in peers:
                observations.append(
                    (tag, peer.device_id, peer.rssi_dbm, peer.estimated_distance_m)
                )

        medium.discover(requester_id, record)

    for round_no in range(6):
        start = round_no * 10.0
        sim.schedule_at(start, scan, f"d{round_no * 3 % 30}", f"r{round_no}-a")
        sim.schedule_at(start + 2.5, scan, f"d{(round_no * 7 + 1) % 30}", f"r{round_no}-b")
    sim.run_until(70.0)
    return observations, sim.events_fired


class TestDiscoveryIdentity:
    def test_indexed_scan_matches_brute_force_exactly(self):
        for seed in SEEDS:
            indexed, indexed_events = _run_discovery_rounds(seed, brute_force=False)
            brute, brute_events = _run_discovery_rounds(seed, brute_force=True)
            # Same peers, same RSSI draws, same ordering — not just same sets.
            assert indexed == brute, f"discovery diverged for seed {seed}"
            assert indexed_events == brute_events
            assert indexed, f"seed {seed} produced no observations (vacuous)"


class TestCrowdMetricsIdentity:
    def test_crowd_metrics_identical_across_seeds(self):
        for seed in SEEDS:
            kwargs = dict(
                n_devices=40,
                relay_fraction=0.25,
                duration_s=120.0,
                hotspots=4,
                mobile_fraction=0.3,
                seed=seed,
            )
            indexed = run_crowd_scenario(brute_force=False, **kwargs)
            brute = run_crowd_scenario(brute_force=True, **kwargs)
            assert (
                indexed.metrics.to_comparable_dict()
                == brute.metrics.to_comparable_dict()
            ), f"crowd metrics diverged for seed {seed}"

    def test_perf_counters_reflect_the_chosen_path(self):
        """Sanity: the two paths really did take different code routes."""
        indexed = run_crowd_scenario(
            n_devices=20, duration_s=60.0, seed=0, brute_force=False
        )
        brute = run_crowd_scenario(
            n_devices=20, duration_s=60.0, seed=0, brute_force=True
        )
        assert indexed.metrics.perf["index_queries"] > 0
        assert indexed.metrics.perf["brute_force_scans"] == 0
        assert brute.metrics.perf["brute_force_scans"] > 0
        assert brute.metrics.perf["index_queries"] == 0
