"""Cross-module integration: MQTT pings, sealed end-to-end, relayed.

The paper's security story in one test: the heartbeat body is a real MQTT
PINGREQ, sealed under the device↔server key before it enters the
framework; the relay carries ciphertext it cannot read; the server opens,
decodes, and confirms the keep-alive.
"""

import pytest

from repro.core.security import IntegrityError, SecureChannel, ServerKeyRing
from repro.workload.mqtt import (
    PacketType,
    decode_packet,
    encode_connect,
    encode_pingreq,
)

KEY = b"a-thirty-two-byte-shared-secret!"


class TestSealedPingPipeline:
    def test_end_to_end(self):
        ring = ServerKeyRing()
        device_channel, __ = ring.provision("ue-0", KEY)

        # device side: build and seal the actual keep-alive bytes
        ping = encode_pingreq()
        sealed = device_channel.seal(seq=1, body=ping)

        # relay side: sees only the envelope; the ciphertext is not a
        # parseable MQTT packet (the relay learns nothing)
        assert sealed.ciphertext != ping
        from repro.workload.mqtt import MqttCodecError

        with pytest.raises(MqttCodecError):
            decode_packet(sealed.ciphertext)

        # server side: open + decode
        body = ring.open(sealed)
        packet = decode_packet(body)
        assert packet.packet_type == PacketType.PINGREQ

    def test_sealed_connect_carries_keepalive_contract(self):
        channel = SecureChannel("ue-0", KEY)
        connect = encode_connect("wechat-android", keepalive_s=270)
        sealed = channel.seal(seq=0, body=connect)
        packet = decode_packet(channel.open(sealed))
        assert packet.keepalive_s == 270
        assert packet.client_id == "wechat-android"

    def test_relay_tampering_is_caught_before_decode(self):
        channel = SecureChannel("ue-0", KEY)
        sealed = channel.seal(seq=5, body=encode_pingreq())
        flipped = bytes([sealed.ciphertext[0] ^ 0x01]) + sealed.ciphertext[1:]
        with pytest.raises(IntegrityError):
            channel.open(sealed.tampered(flipped))

    def test_sealed_size_is_realistic(self):
        """Sealing a 2-byte ping yields an envelope in the same ballpark
        as the paper's measured heartbeat sizes."""
        channel = SecureChannel("ue-0", KEY)
        sealed = channel.seal(seq=1, body=encode_pingreq())
        assert 40 <= sealed.wire_bytes <= 80
