"""Tests for group-aware joins (second UE joins an existing group)."""

import pytest

from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.energy.model import EnergyModel, EnergyPhase
from repro.energy.profiles import DEFAULT_PROFILE
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator


def build_medium(group_aware):
    sim = Simulator(seed=0)
    medium = D2DMedium(sim, WIFI_DIRECT, group_aware=group_aware)
    relay = D2DEndpoint("relay", StaticMobility((0.0, 0.0)),
                        energy=EnergyModel("relay"))
    relay.advertising = True
    medium.register(relay)
    ues = []
    for i in range(2):
        ue = D2DEndpoint(f"ue-{i}", StaticMobility((1.0, float(i))),
                         energy=EnergyModel(f"ue-{i}"))
        medium.register(ue)
        ues.append(ue)
    return sim, medium, relay, ues


def connect_both(sim, medium):
    results = []
    medium.connect("ue-0", "relay", results.append)
    sim.run_until(5.0)
    medium.connect("ue-1", "relay", results.append)
    sim.run_until(10.0)
    return results


class TestGroupAwareJoins:
    def test_second_connection_counts_as_join(self):
        sim, medium, relay, ues = build_medium(group_aware=True)
        results = connect_both(sim, medium)
        assert all(c is not None for c in results)
        assert medium.group_joins == 1

    def test_join_is_cheaper_for_the_relay(self):
        sim, medium, relay, ues = build_medium(group_aware=True)
        connect_both(sim, medium)
        full = DEFAULT_PROFILE.relay_connection_uah
        # first connection full price, second at the 0.5 discount
        assert relay.energy.phase_uah(EnergyPhase.D2D_CONNECTION) == (
            pytest.approx(full * 1.5)
        )

    def test_join_is_cheaper_for_the_joining_ue(self):
        sim, medium, relay, ues = build_medium(group_aware=True)
        connect_both(sim, medium)
        first = ues[0].energy.phase_uah(EnergyPhase.D2D_CONNECTION)
        second = ues[1].energy.phase_uah(EnergyPhase.D2D_CONNECTION)
        assert second == pytest.approx(first * 0.5)

    def test_default_medium_preserves_calibration(self):
        """group_aware defaults OFF: both UEs pay the full Table III cost."""
        sim, medium, relay, ues = build_medium(group_aware=False)
        connect_both(sim, medium)
        assert medium.group_joins == 0
        full = DEFAULT_PROFILE.relay_connection_uah
        assert relay.energy.phase_uah(EnergyPhase.D2D_CONNECTION) == (
            pytest.approx(full * 2.0)
        )

    def test_join_completes_faster(self):
        sim, medium, relay, ues = build_medium(group_aware=True)
        done = []
        medium.connect("ue-0", "relay", lambda c: done.append(sim.now))
        sim.run_until(5.0)
        medium.connect("ue-1", "relay", lambda c: done.append(sim.now))
        sim.run_until(10.0)
        first_latency = done[0]
        second_latency = done[1] - 5.0
        assert second_latency == pytest.approx(first_latency * 0.5)

    def test_invalid_discount_rejected(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            D2DMedium(sim, WIFI_DIRECT, group_aware=True,
                      group_join_discount=0.0)

    def test_group_dissolves_when_all_leave(self):
        """After the group empties, the next connect is a full formation."""
        sim, medium, relay, ues = build_medium(group_aware=True)
        holder = []
        medium.connect("ue-0", "relay", holder.append)
        sim.run_until(5.0)
        holder[0].close()
        medium.connect("ue-1", "relay", holder.append)
        sim.run_until(10.0)
        assert medium.group_joins == 0
