"""Unit tests for the Table I mixed-traffic model."""

import random

import pytest

from repro.workload.apps import APP_REGISTRY, WECHAT, WHATSAPP
from repro.workload.traffic import (
    TrafficMix,
    _poisson,
    heartbeat_share_table,
    simulate_traffic_counts,
)


class TestTrafficMix:
    def test_share_computation(self):
        mix = TrafficMix("x", 100.0, heartbeat_count=60, other_count=40,
                         heartbeat_bytes=60 * 54, other_bytes=40 * 600)
        assert mix.total_count == 100
        assert mix.heartbeat_share == pytest.approx(0.6)

    def test_empty_mix(self):
        mix = TrafficMix("x", 100.0, 0, 0, 0, 0)
        assert mix.heartbeat_share == 0.0
        assert mix.heartbeat_byte_share == 0.0

    def test_byte_share_is_small_despite_message_share(self):
        """The paper's motivation: half the messages, a sliver of the bytes."""
        mix = simulate_traffic_counts(WECHAT, 86_400.0, random.Random(0))
        assert mix.heartbeat_share > 0.4
        assert mix.heartbeat_byte_share < 0.15


class TestPoisson:
    def test_zero_mean(self):
        assert _poisson(random.Random(0), 0.0) == 0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            _poisson(random.Random(0), -1.0)

    def test_mean_is_recovered(self):
        rng = random.Random(42)
        samples = [_poisson(rng, 10.0) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(10.0, rel=0.1)

    def test_large_mean_normal_approximation(self):
        rng = random.Random(42)
        samples = [_poisson(rng, 1000.0) for _ in range(200)]
        assert sum(samples) / len(samples) == pytest.approx(1000.0, rel=0.05)


class TestSimulateCounts:
    def test_heartbeat_count_is_deterministic(self):
        mix = simulate_traffic_counts(WECHAT, 2700.0, random.Random(0))
        assert mix.heartbeat_count == 10

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            simulate_traffic_counts(WECHAT, 0.0, random.Random(0))

    def test_measured_share_converges_to_table_i(self):
        """Table I regeneration: a day of traffic recovers the share."""
        for app_name in ("wechat", "qq", "whatsapp", "facebook"):
            app = APP_REGISTRY[app_name]
            mix = simulate_traffic_counts(app, 7 * 86_400.0, random.Random(7))
            assert mix.heartbeat_share == pytest.approx(
                app.heartbeat_share, abs=0.03
            ), app_name


class TestShareTable:
    def test_table_covers_requested_apps(self):
        table = heartbeat_share_table(
            ["wechat", "whatsapp"], 86_400.0, random.Random(0), repeats=3
        )
        assert set(table) == {"wechat", "whatsapp"}

    def test_whatsapp_has_highest_share_as_in_paper(self):
        """Table I ordering: WhatsApp (61.9%) > QQ (52.6%) > WeChat (50%) >
        Facebook (48.4%)."""
        table = heartbeat_share_table(
            ["wechat", "qq", "whatsapp", "facebook"],
            7 * 86_400.0,
            random.Random(1),
            repeats=3,
        )
        assert table["whatsapp"] > table["qq"] > table["facebook"]
        assert abs(table["wechat"] - 0.50) < 0.03

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError):
            heartbeat_share_table(["wechat"], 100.0, random.Random(0), repeats=0)
