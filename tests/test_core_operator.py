"""Unit tests for operator-side relay selection."""

import random

import pytest

from repro.core.operator import (
    Participant,
    coverage,
    greedy_relay_selection,
    proximity_graph,
    random_relay_selection,
    selection_report,
)


def grid_participants(rows=3, cols=3, spacing=10.0, battery=1.0):
    return [
        Participant(f"p-{r}-{c}", (c * spacing, r * spacing), battery)
        for r in range(rows)
        for c in range(cols)
    ]


class TestProximityGraph:
    def test_symmetric_adjacency(self):
        participants = grid_participants(spacing=10.0)
        graph = proximity_graph(participants, range_m=10.0)
        for node, neighbours in graph.items():
            for other in neighbours:
                assert node in graph[other]

    def test_range_controls_edges(self):
        participants = [
            Participant("a", (0.0, 0.0)),
            Participant("b", (5.0, 0.0)),
            Participant("c", (100.0, 0.0)),
        ]
        graph = proximity_graph(participants, range_m=10.0)
        assert graph["a"] == {"b"}
        assert graph["c"] == set()

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            proximity_graph([], range_m=0.0)

    def test_invalid_battery_rejected(self):
        with pytest.raises(ValueError):
            Participant("x", (0.0, 0.0), battery_level=1.5)


class TestCoverage:
    def test_full_coverage_of_clique(self):
        participants = grid_participants(rows=1, cols=3, spacing=1.0)
        graph = proximity_graph(participants, range_m=5.0)
        assert coverage(["p-0-0"], graph) == 1.0

    def test_partial_coverage(self):
        participants = [
            Participant("a", (0.0, 0.0)),
            Participant("b", (5.0, 0.0)),
            Participant("c", (100.0, 0.0)),
        ]
        graph = proximity_graph(participants, range_m=10.0)
        assert coverage(["a"], graph) == pytest.approx(2 / 3)

    def test_empty_population(self):
        assert coverage([], {}) == 1.0


class TestGreedySelection:
    def test_covers_everyone_on_a_grid(self):
        participants = grid_participants(rows=4, cols=4, spacing=10.0)
        relays = greedy_relay_selection(participants, range_m=15.0)
        graph = proximity_graph(participants, range_m=15.0)
        assert coverage(relays, graph) == 1.0
        # far fewer relays than participants
        assert len(relays) < len(participants) / 2

    def test_respects_max_relays(self):
        participants = grid_participants(rows=4, cols=4, spacing=30.0)
        relays = greedy_relay_selection(participants, range_m=10.0, max_relays=3)
        assert len(relays) <= 3

    def test_low_battery_participants_never_appointed(self):
        participants = [
            Participant("healthy", (0.0, 0.0), battery_level=0.9),
            Participant("dying", (1.0, 0.0), battery_level=0.05),
            Participant("ue", (2.0, 0.0), battery_level=0.5),
        ]
        relays = greedy_relay_selection(participants, range_m=10.0)
        assert "dying" not in relays

    def test_battery_breaks_near_ties(self):
        # two central candidates with identical coverage; healthier wins
        participants = [
            Participant("weak-center", (0.0, 0.0), battery_level=0.3),
            Participant("strong-center", (0.0, 0.1), battery_level=1.0),
            Participant("ue-1", (3.0, 0.0)),
            Participant("ue-2", (-3.0, 0.0)),
        ]
        relays = greedy_relay_selection(participants, range_m=5.0)
        assert relays[0] == "strong-center"

    def test_isolated_node_becomes_its_own_relay_or_uncovered(self):
        participants = [
            Participant("a", (0.0, 0.0)),
            Participant("hermit", (500.0, 500.0)),
        ]
        relays = greedy_relay_selection(participants, range_m=10.0)
        # greedy still appoints the hermit to cover itself
        assert set(relays) == {"a", "hermit"}

    def test_deterministic(self):
        participants = grid_participants(rows=5, cols=5, spacing=12.0)
        assert greedy_relay_selection(participants, 20.0) == greedy_relay_selection(
            participants, 20.0
        )


class TestRandomSelection:
    def test_sample_size(self):
        participants = grid_participants()
        rng = random.Random(0)
        assert len(random_relay_selection(participants, 4, rng)) == 4

    def test_caps_at_population(self):
        participants = grid_participants(rows=1, cols=2)
        assert len(random_relay_selection(participants, 10, random.Random(0))) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            random_relay_selection([], -1, random.Random(0))

    def test_greedy_beats_random_on_clustered_population(self):
        """The planning value: same relay budget, more coverage."""
        rng = random.Random(7)
        clusters = []
        for cluster in range(4):
            cx, cy = rng.uniform(0, 200), rng.uniform(0, 200)
            for i in range(8):
                clusters.append(
                    Participant(
                        f"c{cluster}-{i}",
                        (cx + rng.gauss(0, 4), cy + rng.gauss(0, 4)),
                    )
                )
        graph = proximity_graph(clusters, range_m=20.0)
        greedy = greedy_relay_selection(clusters, 20.0, max_relays=4)
        greedy_cov = coverage(greedy, graph)
        random_covs = [
            coverage(random_relay_selection(clusters, 4, random.Random(s)), graph)
            for s in range(20)
        ]
        mean_random = sum(random_covs) / len(random_covs)
        assert greedy_cov > mean_random
        assert greedy_cov == 1.0


class TestSelectionReport:
    def test_report_fields(self):
        participants = grid_participants(rows=1, cols=5, spacing=5.0)
        relays = greedy_relay_selection(participants, range_m=6.0)
        cov, ues_per_relay = selection_report(relays, participants, 6.0)
        assert cov == 1.0
        assert ues_per_relay > 0

    def test_empty_selection(self):
        participants = grid_participants(rows=1, cols=2)
        cov, load = selection_report([], participants, 10.0)
        assert cov == 0.0
        assert load == 0.0
