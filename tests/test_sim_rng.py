"""Unit tests for named random streams."""

from repro.sim.rng import RngStreams, make_rng


class TestMakeRng:
    def test_deterministic_across_calls(self):
        a = make_rng(1, "x").random()
        b = make_rng(1, "x").random()
        assert a == b

    def test_streams_are_independent(self):
        assert make_rng(1, "x").random() != make_rng(1, "y").random()

    def test_seeds_are_independent(self):
        assert make_rng(1, "x").random() != make_rng(2, "x").random()


class TestRngStreams:
    def test_get_is_cached(self):
        streams = RngStreams(seed=3)
        assert streams.get("a") is streams.get("a")

    def test_different_names_different_generators(self):
        streams = RngStreams(seed=3)
        assert streams.get("a") is not streams.get("b")

    def test_fork_restarts_stream(self):
        streams = RngStreams(seed=3)
        first = streams.fork("a").random()
        second = streams.fork("a").random()
        assert first == second

    def test_fork_does_not_disturb_registered_stream(self):
        streams = RngStreams(seed=3)
        registered = streams.get("a")
        value_before = registered.random()
        streams.fork("a")
        # re-create from scratch and advance one draw: should match
        fresh = RngStreams(seed=3).get("a")
        assert fresh.random() == value_before

    def test_adding_stream_does_not_shift_existing(self):
        only = RngStreams(seed=9)
        seq_alone = [only.get("m").random() for _ in range(5)]
        both = RngStreams(seed=9)
        both.get("other")  # register an extra stream first
        seq_with_other = [both.get("m").random() for _ in range(5)]
        assert seq_alone == seq_with_other
