"""Unit tests for the IM app profiles (the paper's Sec. II-A numbers)."""

import pytest

from repro.workload.apps import (
    APP_REGISTRY,
    AppProfile,
    FACEBOOK,
    QQ,
    SERVER_EXPIRY_FACTOR,
    STANDARD_APP,
    WECHAT,
    WHATSAPP,
    get_app,
)


class TestPaperNumbers:
    def test_wechat_period_and_size(self):
        assert WECHAT.heartbeat_period_s == 270.0
        assert WECHAT.heartbeat_bytes == 74

    def test_qq_period_and_size(self):
        assert QQ.heartbeat_period_s == 300.0
        assert QQ.heartbeat_bytes == 378

    def test_whatsapp_period_and_size(self):
        assert WHATSAPP.heartbeat_period_s == 240.0
        assert WHATSAPP.heartbeat_bytes == 66

    def test_table_i_shares(self):
        assert WECHAT.heartbeat_share == pytest.approx(0.50)
        assert WHATSAPP.heartbeat_share == pytest.approx(0.619)
        assert QQ.heartbeat_share == pytest.approx(0.526)
        assert FACEBOOK.heartbeat_share == pytest.approx(0.484)

    def test_standard_app_uses_54_byte_beats(self):
        assert STANDARD_APP.heartbeat_bytes == 54

    def test_server_expiry_is_3t(self):
        """Sec. III-C: commercial apps tolerate up to 3T (e.g. WeChat)."""
        assert SERVER_EXPIRY_FACTOR == 3.0
        assert WECHAT.server_expiry_s == pytest.approx(810.0)


class TestDerivedQuantities:
    def test_expiry_defaults_to_one_period(self):
        assert WECHAT.expiry_s == WECHAT.heartbeat_period_s

    def test_heartbeats_per_day(self):
        assert WECHAT.heartbeats_per_day() == pytest.approx(320.0)

    def test_other_message_rate_consistent_with_share(self):
        """With share s, heartbeats / (heartbeats + others) == s."""
        hb_rate = 1.0 / WHATSAPP.heartbeat_period_s
        other = WHATSAPP.other_message_rate_per_s()
        assert hb_rate / (hb_rate + other) == pytest.approx(
            WHATSAPP.heartbeat_share
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            AppProfile(name="x", heartbeat_period_s=0, heartbeat_bytes=1,
                       heartbeat_share=0.5)
        with pytest.raises(ValueError):
            AppProfile(name="x", heartbeat_period_s=60, heartbeat_bytes=0,
                       heartbeat_share=0.5)
        with pytest.raises(ValueError):
            AppProfile(name="x", heartbeat_period_s=60, heartbeat_bytes=1,
                       heartbeat_share=1.0)


class TestRegistry:
    def test_all_apps_registered(self):
        assert {"wechat", "qq", "whatsapp", "facebook", "standard"} <= set(
            APP_REGISTRY
        )

    def test_get_app(self):
        assert get_app("wechat") is WECHAT

    def test_get_unknown_app_raises(self):
        with pytest.raises(KeyError):
            get_app("telegram")
