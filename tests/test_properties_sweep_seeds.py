"""Property-based tests for per-point sweep seed derivation.

`repro.sim.rng.spawn(base_seed, point_index)` is the determinism anchor
of the parallel sweep executor, so its invariants get the Hypothesis
treatment:

1. the same (base_seed, point_index) always yields the same seed;
2. distinct points of one sweep get distinct seeds (no stream sharing);
3. the derivation depends only on the pair — never on worker count,
   submission order, or any interpreter state;
4. results are valid 64-bit seeds.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.sim.rng import spawn
from repro.sweep import grid_sweep

import pytest

base_seeds = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
indices = st.integers(min_value=0, max_value=10 ** 6)


@given(base_seeds, indices)
def test_same_point_always_gets_the_same_seed(base_seed, index):
    assert spawn(base_seed, index) == spawn(base_seed, index)


@given(base_seeds, indices, indices)
def test_distinct_points_get_distinct_seeds(base_seed, i, j):
    if i == j:
        assert spawn(base_seed, i) == spawn(base_seed, j)
    else:
        assert spawn(base_seed, i) != spawn(base_seed, j)


@given(base_seeds, base_seeds, indices)
def test_distinct_base_seeds_decorrelate(seed_a, seed_b, index):
    if seed_a != seed_b:
        assert spawn(seed_a, index) != spawn(seed_b, index)


@given(base_seeds, indices)
def test_seed_is_a_valid_64_bit_integer(base_seed, index):
    seed = spawn(base_seed, index)
    assert 0 <= seed < 2 ** 64


@given(
    base_seeds,
    st.lists(indices, min_size=2, max_size=20, unique=True),
    st.randoms(use_true_random=False),
)
def test_independent_of_submission_order(base_seed, point_indices, shuffler):
    """Deriving seeds in any order yields the same index→seed mapping."""
    in_order = {i: spawn(base_seed, i) for i in point_indices}
    shuffled = list(point_indices)
    shuffler.shuffle(shuffled)
    out_of_order = {i: spawn(base_seed, i) for i in shuffled}
    assert in_order == out_of_order


@given(base_seeds, st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_grid_sweep_seeds_independent_of_worker_count(base_seed, grid_width):
    """The executor hands point i the same seed at every worker count.

    Runs serially at both "worker counts" (spawning real process pools
    per Hypothesis example would be slow and adds nothing: the seed list
    is computed before execution and indexed by grid position).
    """
    grid = {"x": list(range(grid_width)), "y": [0, 1]}
    first = grid_sweep(grid, _seed_echo_runner, base_seed=base_seed)
    second = grid_sweep(grid, _seed_echo_runner, base_seed=base_seed, workers=1)
    assert first.points == second.points
    echoed = [p.metrics["seed"] for p in first.points]
    assert echoed == [float(spawn(base_seed, i) % 2 ** 50)
                      for i in range(len(echoed))]


def _seed_echo_runner(x, y, seed):
    return {"seed": float(seed % 2 ** 50)}


def test_spawn_rejects_negative_indices():
    with pytest.raises(ValueError):
        spawn(0, -1)


def test_spawn_feeds_pythons_rng_distinctly():
    """Neighbouring points produce visibly different random streams."""
    draws = {
        random.Random(spawn(0, index)).random() for index in range(100)
    }
    assert len(draws) == 100
