"""Property-based tests for the degraded-RAN protocol machinery.

Three invariant families get the Hypothesis treatment:

1. **backoff shape** — for any valid config, the pre-jitter base delays
   within one retry episode are non-decreasing and capped at
   ``max_backoff_s``, and every jittered delay stays within the declared
   multiplicative bound of its base;
2. **replay determinism** — the jittered delay sequence is a pure
   function of ``(master seed, device id)``: two senders on same-seeded
   simulators produce identical sequences;
3. **paging occupancy accounting** — every page attempt resolves to
   exactly one of delivered/failed/pending, the retry queue drains to
   zero once the run completes, and the peak queue depth bounds the
   final depth.

``derandomize=True`` keeps the explored space fixed, so these are
deterministic in CI.
"""

from hypothesis import given, settings, strategies as st

from repro.cellular.paging import PagingChannel, PagingConfig
from repro.cellular.signaling import SignalingLedger
from repro.core.fallback import CellularFallbackSender, FallbackConfig
from repro.sim.engine import Simulator


class _StubDevice:
    """Just enough device for the sender's backoff machinery."""

    def __init__(self, sim, device_id="dev"):
        self.sim = sim
        self.device_id = device_id
        self.alive = True
        self.modem = None  # never reached by the backoff-only paths


def _delays(sender, kind, key, base_s, attempts):
    """Drive ``_backoff_delay`` directly; returns [(base, actual), ...]."""
    seen = []
    sender.on_backoff = (
        lambda k, ky, base, actual: seen.append((base, actual))
    )
    for attempt in range(1, attempts + 1):
        sender._backoff_delay(kind, key, base_s, attempt)
    return seen


configs = st.builds(
    FallbackConfig,
    base_backoff_s=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    backoff_factor=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    max_backoff_s=st.floats(min_value=10.0, max_value=300.0, allow_nan=False),
    jitter_fraction=st.floats(min_value=0.0, max_value=0.5,
                              allow_nan=False, exclude_max=True),
)


@given(configs,
       st.integers(min_value=1, max_value=12),
       st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_backoff_bases_nondecreasing_capped_and_jitter_bounded(
    config, attempts, seed
):
    sender = CellularFallbackSender(_StubDevice(Simulator(seed=seed)), config)
    seen = _delays(sender, "retry", 1, config.base_backoff_s, attempts)
    bases = [base for base, _ in seen]
    assert bases == sorted(bases)  # monotone until the episode resets
    for base, actual in seen:
        assert base <= config.max_backoff_s + 1e-9
        assert base >= config.base_backoff_s - 1e-9
        assert abs(actual - base) <= base * config.jitter_fraction + 1e-9


@given(st.integers(min_value=0, max_value=2 ** 32 - 1),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=40, deadline=None, derandomize=True)
def test_jittered_delays_replay_from_seed(seed, attempts):
    def sequence():
        sender = CellularFallbackSender(_StubDevice(Simulator(seed=seed)))
        return _delays(sender, "retry", 1, 2.0, attempts)

    assert sequence() == sequence()


@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
@settings(max_examples=20, deadline=None, derandomize=True)
def test_distinct_devices_draw_independent_jitter_streams(seed):
    sim = Simulator(seed=seed)
    first = CellularFallbackSender(_StubDevice(sim, "dev-a"))
    second = CellularFallbackSender(_StubDevice(sim, "dev-b"))
    a = [actual for _, actual in _delays(first, "retry", 1, 2.0, 6)]
    b = [actual for _, actual in _delays(second, "retry", 1, 2.0, 6)]
    # both within bounds; the streams are keyed by device id so one
    # sender's draws never perturb another's
    rerun = CellularFallbackSender(_StubDevice(Simulator(seed=seed), "dev-a"))
    assert [actual for _, actual in _delays(rerun, "retry", 1, 2.0, 6)] == a
    assert len(a) == len(b) == 6


paging_configs = st.builds(
    PagingConfig,
    slots_per_second=st.floats(min_value=0.2, max_value=4.0, allow_nan=False),
    window_s=st.floats(min_value=1.0, max_value=10.0, allow_nan=False),
    retry_after_s=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    max_retries=st.integers(min_value=0, max_value=3),
)


@given(paging_configs,
       st.integers(min_value=1, max_value=40),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None, derandomize=True)
def test_paging_occupancy_accounting_is_exhaustive(config, pages, devices):
    sim = Simulator(seed=1)
    channel = PagingChannel(sim, SignalingLedger(), config)
    for i in range(pages):
        channel.page(f"dev-{i % devices}")
    # mid-run: every attempt is in exactly one bucket
    assert (channel.pages_delivered + channel.pages_failed
            + channel.pages_pending) == channel.pages_requested
    assert channel.retry_queue_depth == channel.pages_pending
    sim.run_until(1000.0)  # let every retry resolve
    assert channel.pages_pending == 0
    assert channel.retry_queue_depth == 0
    assert channel.pages_delivered + channel.pages_failed == pages
    assert channel.peak_retry_queue >= 0
    assert 0.0 <= channel.failure_rate <= 1.0
    # a failed page burned through every granted retry
    for attempt in channel.attempts:
        if attempt.failed_at_s is not None:
            assert attempt.retries == config.max_retries
