"""Every example script must run clean — they are living documentation.

Each example's ``main()`` runs inside a temporary working directory so
scripts that write artifacts (figures, reports, CSVs) cannot touch the
repository; they must also never consume ``sys.argv`` inside ``main()``
(argv parsing belongs in the ``__main__`` block).
"""

import importlib.util
import os
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))
SRC_DIR = EXAMPLES_DIR.parent / "src"


def subprocess_env() -> dict:
    """Environment for launching scripts: absolute ``src/`` on PYTHONPATH.

    Children run with ``cwd`` outside the repo (tmp dirs), so a relative
    ``PYTHONPATH=src`` from the parent invocation would not resolve
    ``repro`` for them.
    """
    env = {**os.environ}
    existing = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join([str(SRC_DIR)] + existing)
    return env


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[s.stem for s in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script, capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr("sys.argv", [script.name])
    module = load_module(script)
    assert hasattr(module, "main"), f"{script.name} must expose main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLE_SCRIPTS) >= 3
    names = {s.stem for s in EXAMPLE_SCRIPTS}
    assert "quickstart" in names


def test_no_example_writes_into_the_repo(tmp_path):
    """Artifact-writing examples default to the working directory."""
    import subprocess
    import sys

    repo = EXAMPLES_DIR.parent

    def snapshot():
        return {
            p for p in repo.rglob("*")
            if p.is_file()
            and ".git" not in p.parts
            and "__pycache__" not in p.parts
            and ".pytest_cache" not in p.parts
            and ".hypothesis" not in p.parts
        }

    before = snapshot()
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "build_report.py")],
        cwd=tmp_path, env=subprocess_env(), capture_output=True, text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert snapshot() == before
    assert (tmp_path / "report.html").is_file()
