"""Unit tests for the RRC state machine."""

import pytest

from repro.cellular.rrc import (
    LTE_PROFILE,
    RrcState,
    RrcStateMachine,
    WCDMA_PROFILE,
)
from repro.cellular.signaling import SignalingLedger


@pytest.fixture
def machine(sim, ledger):
    return RrcStateMachine(sim, "dev", profile=WCDMA_PROFILE, ledger=ledger)


class TestPromotion:
    def test_starts_idle(self, machine):
        assert machine.state == RrcState.IDLE

    def test_first_transmission_promotes(self, sim, machine):
        ready = []
        machine.request_transmission(54, ready.append)
        assert machine.state == RrcState.CONNECTING
        sim.run_until(WCDMA_PROFILE.setup_latency_s + 0.1)
        assert machine.state == RrcState.CONNECTED
        assert ready == [True]

    def test_promotion_takes_setup_latency(self, sim, machine):
        times = []
        machine.request_transmission(54, lambda _: times.append(sim.now))
        sim.run_until(100.0)
        assert times == [WCDMA_PROFILE.setup_latency_s]

    def test_request_returns_true_only_when_promotion_started(self, sim, machine):
        assert machine.request_transmission(54, lambda _: None) is True
        # second request while CONNECTING joins the pending list
        assert machine.request_transmission(54, lambda _: None) is False
        sim.run_until(5.0)
        # now CONNECTED: no promotion either
        assert machine.request_transmission(54, lambda _: None) is False

    def test_pending_requests_fire_after_promotion(self, sim, machine):
        ready = []
        machine.request_transmission(54, lambda s: ready.append(("a", s)))
        machine.request_transmission(54, lambda s: ready.append(("b", s)))
        sim.run_until(5.0)
        assert ready == [("a", True), ("b", True)]

    def test_setup_sequence_recorded_once_per_promotion(self, sim, machine, ledger):
        machine.request_transmission(54, lambda _: None)
        machine.request_transmission(54, lambda _: None)
        sim.run_until(5.0)
        assert ledger.count_for("dev") == len(WCDMA_PROFILE.setup_sequence)


class TestTailAndDemotion:
    def test_demotes_after_tail(self, sim, machine):
        machine.request_transmission(54, lambda _: None)
        sim.run_until(WCDMA_PROFILE.setup_latency_s + WCDMA_PROFILE.tail_s + 0.1)
        assert machine.state == RrcState.IDLE
        assert machine.demotions == 1

    def test_release_sequence_recorded_on_demotion(self, sim, machine, ledger):
        machine.request_transmission(54, lambda _: None)
        sim.run_until(60.0)
        expected = len(WCDMA_PROFILE.setup_sequence) + len(WCDMA_PROFILE.release_sequence)
        assert ledger.count_for("dev") == expected
        assert ledger.cycles_for("dev") == 1

    def test_send_within_tail_skips_setup(self, sim, machine, ledger):
        ready = []
        machine.request_transmission(54, ready.append)
        sim.run_until(3.0)  # connected now
        machine.request_transmission(54, ready.append)
        assert ready == [True, False]
        sim.run_until(60.0)
        # only ONE setup and ONE release despite two transmissions
        assert ledger.cycles_for("dev") == 1
        assert ledger.count_for("dev") == 8

    def test_send_within_tail_extends_tail(self, sim, machine):
        machine.request_transmission(54, lambda _: None)
        sim.run_until(3.0)
        machine.request_transmission(54, lambda _: None)
        # tail restarts at t=3: demotion at 3 + tail, not 1.5 + tail
        sim.run_until(3.0 + WCDMA_PROFILE.tail_s - 0.1)
        assert machine.state == RrcState.CONNECTED
        sim.run_until(3.0 + WCDMA_PROFILE.tail_s + 0.1)
        assert machine.state == RrcState.IDLE

    def test_connected_time_accumulates(self, sim, machine):
        machine.request_transmission(54, lambda _: None)
        sim.run_until(60.0)
        assert machine.connected_time_s == pytest.approx(WCDMA_PROFILE.tail_s)

    def test_tail_hook_reports_elapsed_high_power_time(self, sim, ledger):
        reports = []
        machine = RrcStateMachine(
            sim,
            "dev",
            ledger=ledger,
            on_tail_elapsed=lambda start, dur, full: reports.append((start, dur, full)),
        )
        machine.request_transmission(54, lambda _: None)
        sim.run_until(60.0)
        assert len(reports) == 1
        start, duration, full = reports[0]
        assert duration == pytest.approx(WCDMA_PROFILE.tail_s)
        assert full is True

    def test_partial_tail_reported_on_mid_tail_send(self, sim, ledger):
        reports = []
        machine = RrcStateMachine(
            sim,
            "dev",
            ledger=ledger,
            on_tail_elapsed=lambda start, dur, full: reports.append((dur, full)),
        )
        machine.request_transmission(54, lambda _: None)
        sim.run_until(4.5)  # 3 s into the tail (promotion took 1.5 s)
        machine.request_transmission(54, lambda _: None)
        assert reports[0][0] == pytest.approx(3.0)
        assert reports[0][1] is False


class TestForceRelease:
    def test_force_release_from_connected(self, sim, machine):
        machine.request_transmission(54, lambda _: None)
        sim.run_until(3.0)
        machine.force_release()
        assert machine.state == RrcState.IDLE

    def test_force_release_cancels_pending_promotion(self, sim, machine):
        fired = []
        machine.request_transmission(54, fired.append)
        machine.force_release()
        sim.run_until(10.0)
        assert fired == []
        assert machine.state == RrcState.IDLE

    def test_force_release_when_idle_is_noop(self, machine):
        machine.force_release()
        assert machine.state == RrcState.IDLE


class TestReconfigurations:
    def test_large_payload_emits_reconfigurations(self, sim, machine, ledger):
        machine.request_transmission(400, lambda _: None)
        from repro.cellular.signaling import L3MessageType

        assert (
            ledger.count_for_type(L3MessageType.RADIO_BEARER_RECONFIGURATION) == 2
        )


class TestProfiles:
    def test_lte_promotes_faster_than_wcdma(self):
        assert LTE_PROFILE.setup_latency_s < WCDMA_PROFILE.setup_latency_s

    def test_messages_per_cycle(self):
        assert WCDMA_PROFILE.messages_per_cycle == 8
