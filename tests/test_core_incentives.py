"""Unit tests for the incentive / reward ledger."""

import pytest

from repro.core.incentives import RewardLedger, RewardPolicy


class TestPolicy:
    def test_defaults_are_positive(self):
        policy = RewardPolicy()
        assert policy.credits_per_beat > 0
        assert policy.free_data_mb_per_beat > 0

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            RewardPolicy(credits_per_beat=-0.1)


class TestAccrual:
    def test_credits_accrue_per_beat(self):
        ledger = RewardLedger(RewardPolicy(credits_per_beat=0.01,
                                           free_data_mb_per_beat=1.0))
        account = ledger.credit_collection(10.0, "relay-0", 5)
        assert account.beats_collected == 5
        assert account.credits == pytest.approx(0.05)
        assert account.free_data_mb == pytest.approx(5.0)

    def test_accounts_accumulate_across_flushes(self):
        ledger = RewardLedger()
        ledger.credit_collection(1.0, "relay-0", 2)
        ledger.credit_collection(2.0, "relay-0", 3)
        assert ledger.account("relay-0").beats_collected == 5

    def test_unknown_relay_account_is_zero(self):
        ledger = RewardLedger()
        assert ledger.account("ghost").credits == 0.0

    def test_negative_beats_rejected(self):
        with pytest.raises(ValueError):
            RewardLedger().credit_collection(0.0, "r", -1)

    def test_zero_beat_collection_records_no_event(self):
        ledger = RewardLedger()
        ledger.credit_collection(0.0, "r", 0)
        assert ledger.events() == []

    def test_events_ordered(self):
        ledger = RewardLedger()
        ledger.credit_collection(1.0, "a", 1)
        ledger.credit_collection(2.0, "b", 2)
        assert ledger.events() == [(1.0, "a", 1), (2.0, "b", 2)]

    def test_totals_across_relays(self):
        ledger = RewardLedger()
        ledger.credit_collection(0.0, "a", 3)
        ledger.credit_collection(0.0, "b", 7)
        assert ledger.total_beats == 10
        assert len(ledger.accounts()) == 2


class TestOperatorEconomics:
    def test_signaling_avoided_tracked(self):
        ledger = RewardLedger()
        ledger.note_signaling_avoided(16)
        ledger.note_signaling_avoided(8)
        assert ledger.l3_messages_avoided == 24

    def test_negative_avoided_rejected(self):
        with pytest.raises(ValueError):
            RewardLedger().note_signaling_avoided(-1)

    def test_win_win_with_default_policy(self):
        """Paper Sec. III-A: the scheme is 'win-win' — at the default rates,
        the operator's avoided-signaling value exceeds the payout."""
        ledger = RewardLedger()
        # each collected beat avoids an 8-message RRC cycle
        ledger.credit_collection(0.0, "relay-0", 100)
        ledger.note_signaling_avoided(100 * 8)
        assert ledger.operator_net_value() > 0

    def test_overpaying_policy_goes_negative(self):
        ledger = RewardLedger(RewardPolicy(credits_per_beat=10.0))
        ledger.credit_collection(0.0, "relay-0", 10)
        ledger.note_signaling_avoided(80)
        assert ledger.operator_net_value() < 0
