"""Smoke tests for the benchmark harness and its regression gate."""

import json

from repro import bench


def _report(gate_speedup, schema=bench.BENCH_SCHEMA, identical=True):
    return {
        "schema": schema,
        "rev": "deadbee",
        "cases": {
            bench.GATE_CASE: {
                "wall_s": 1.0,
                "speedup": gate_speedup,
                "identical_metrics": identical,
            }
        },
    }


class TestCases:
    def test_kernel_case_fires_the_expected_events(self):
        case = bench.bench_kernel(events=3_000)
        # A third of the handles are cancelled before the drain.
        assert case.detail["events_fired"] == 3_000 - len(range(0, 3_000, 3))
        assert case.detail["events_per_s"] > 0
        assert case.wall_s > 0

    def test_pair_case_runs_the_relay_rig(self):
        case = bench.bench_pair(repeats=1)
        assert case.detail["events_fired"] > 0
        assert case.wall_s > 0

    def test_crowd_storm_case_keeps_identity(self):
        case = bench.bench_crowd_storm(
            "tiny-storm",
            n_devices=20,
            arena_m=400.0,
            hotspots=4,
            duration_s=30.0,
            scan_period_s=10.0,
            repeats=1,
        )
        assert case.detail["identical_metrics"] is True
        assert case.detail["scans"] > 0
        assert case.detail["speedup"] > 0

    def test_channel_crowd_case_shows_contention_and_replays(self):
        case = bench.bench_channel_crowd(
            "tiny-channel", n_devices=60, duration_s=120.0, repeats=1
        )
        assert case.detail["identical_metrics"] is True
        assert case.detail["transfers"] > 0
        assert case.detail["rb_utilization"] > 0.0
        assert case.detail["rate_degrades_with_density"] is True

    def test_run_suite_only_selects_one_case(self):
        report = bench.run_suite(quick=True, repeats=1, only="kernel")
        assert list(report["cases"]) == ["kernel"]

    def test_run_suite_only_unknown_case_raises(self):
        import pytest

        with pytest.raises(ValueError, match="unknown bench case"):
            bench.run_suite(quick=True, repeats=1, only="warp-drive")


class TestReport:
    def test_write_report_uses_rev_in_filename(self, tmp_path):
        report = _report(3.0)
        path = bench.write_report(report, out_dir=str(tmp_path))
        assert path.endswith("BENCH_deadbee.json")
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == report

    def test_case_result_to_dict_flattens_detail(self):
        case = bench.CaseResult("x", 0.5, {"speedup": 2.0})
        assert case.to_dict() == {"wall_s": 0.5, "speedup": 2.0}


class TestCompareReports:
    def test_equal_reports_pass(self):
        assert bench.compare_reports(_report(3.0), _report(3.0)) == []

    def test_small_dip_within_tolerance_passes(self):
        assert bench.compare_reports(_report(2.5), _report(3.0), tolerance=0.25) == []

    def test_large_regression_fails(self):
        failures = bench.compare_reports(_report(1.5), _report(3.0), tolerance=0.25)
        assert failures and "regressed" in failures[0]

    def test_speedup_improvements_always_pass(self):
        assert bench.compare_reports(_report(9.0), _report(3.0)) == []

    def test_schema_mismatch_asks_for_regeneration(self):
        failures = bench.compare_reports(_report(3.0), _report(3.0, schema=0))
        assert failures and "schema mismatch" in failures[0]

    def test_identity_divergence_fails_regardless_of_speedup(self):
        failures = bench.compare_reports(_report(9.0, identical=False), _report(3.0))
        assert failures and "diverged" in failures[0]

    def test_missing_gate_case_fails(self):
        current = _report(3.0)
        del current["cases"][bench.GATE_CASE]
        failures = bench.compare_reports(current, _report(3.0))
        assert failures and "missing" in failures[0]


class TestCompareReportsMultiCase:
    """The gate generalizes: per-case ratios, partial runs, delivery."""

    @staticmethod
    def _balanced_report(speedup_critical, delivery=True, only=None):
        report = {
            "schema": bench.BENCH_SCHEMA,
            "rev": "deadbee",
            "cases": {
                "crowd-20000-balanced": {
                    "wall_s": 1.0,
                    "speedup_tiles_critical": speedup_critical,
                    "delivery_close": delivery,
                }
            },
        }
        if only is not None:
            report["only"] = only
        return report

    def test_partial_only_run_may_omit_the_gate_case(self):
        current = self._balanced_report(1.7, only="crowd-20000-balanced")
        baseline = self._balanced_report(1.7)
        assert bench.compare_reports(current, baseline) == []

    def test_full_report_still_requires_the_gate_case(self):
        failures = bench.compare_reports(
            self._balanced_report(1.7), self._balanced_report(1.7)
        )
        assert failures and "missing" in failures[0]

    def test_delivery_divergence_fails(self):
        current = self._balanced_report(
            1.7, delivery=False, only="crowd-20000-balanced"
        )
        failures = bench.compare_reports(current, self._balanced_report(1.7))
        assert failures and "delivered different" in failures[0]

    def test_per_case_ratio_regression_fails(self):
        current = self._balanced_report(1.0, only="crowd-20000-balanced")
        failures = bench.compare_reports(current, self._balanced_report(1.7))
        assert failures and "speedup_tiles_critical regressed" in failures[0]

    def test_cases_absent_from_the_baseline_are_not_gated(self):
        # a baseline predating a new case must not block it
        current = self._balanced_report(1.7, only="crowd-20000-balanced")
        baseline = _report(3.0)
        assert bench.compare_reports(current, baseline) == []


class TestCommaSeparatedOnly:
    def test_run_suite_selects_multiple_cases(self):
        report = bench.run_suite(quick=True, repeats=1, only="kernel,pair")
        assert list(report["cases"]) == ["kernel", "pair"]
        assert report["only"] == "kernel,pair"

    def test_unknown_member_of_a_list_raises(self):
        import pytest

        with pytest.raises(ValueError, match="unknown bench case"):
            bench.run_suite(quick=True, repeats=1, only="kernel,warp-drive")
