"""Unit tests for relay matching and the prejudgment mechanism."""

import pytest

from repro.core.matching import MatchConfig, RelayMatcher, relative_speed
from repro.d2d.base import PeerInfo
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.energy.profiles import DEFAULT_PROFILE


def peer(device_id="relay-0", distance=2.0, capacity=10, role="relay", **extra):
    advertisement = {"role": role, "capacity_remaining": capacity}
    advertisement.update(extra)
    return PeerInfo(
        device_id=device_id,
        rssi_dbm=-40.0,
        estimated_distance_m=distance,
        advertisement=advertisement,
    )


@pytest.fixture
def matcher():
    return RelayMatcher(WIFI_DIRECT, DEFAULT_PROFILE, MatchConfig())


class TestFiltering:
    def test_accepts_good_relay(self, matcher):
        candidate = matcher.evaluate(peer(), beat_period_s=270.0, beat_bytes=54,
                                     relative_speed_m_per_s=0.0)
        assert candidate is not None
        assert candidate.distance_m == pytest.approx(2.0)

    def test_rejects_non_relay_role(self, matcher):
        assert matcher.evaluate(peer(role="ue"), 270.0, 54) is None
        assert matcher.rejected_role == 1

    def test_rejects_missing_role(self, matcher):
        info = PeerInfo("x", -40.0, 2.0, {})
        assert matcher.evaluate(info, 270.0, 54) is None

    def test_rejects_zero_capacity(self, matcher):
        assert matcher.evaluate(peer(capacity=0), 270.0, 54) is None
        assert matcher.rejected_capacity == 1

    def test_rejects_beyond_max_pair_distance(self, matcher):
        assert matcher.evaluate(peer(distance=25.0), 270.0, 54) is None
        assert matcher.rejected_distance == 1


class TestPrejudgment:
    def test_static_pair_passes(self, matcher):
        candidate = matcher.evaluate(peer(), 270.0, 54, relative_speed_m_per_s=0.0)
        assert candidate is not None
        assert candidate.predicted_beats >= 1

    def test_fast_moving_pair_rejected(self, matcher):
        """A pair drifting apart fast yields a short session: the D2D
        overhead can't amortize — the paper's short-duration-connection
        inefficiency."""
        candidate = matcher.evaluate(
            peer(distance=15.0), 270.0, 54, relative_speed_m_per_s=5.0
        )
        assert candidate is None
        assert matcher.rejected_prejudgment == 1

    def test_prejudgment_can_be_disabled_for_ablation(self):
        config = MatchConfig(prejudgment_enabled=False)
        matcher = RelayMatcher(WIFI_DIRECT, DEFAULT_PROFILE, config)
        candidate = matcher.evaluate(
            peer(distance=15.0), 270.0, 54, relative_speed_m_per_s=5.0
        )
        assert candidate is not None

    def test_default_speed_used_when_unknown(self, matcher):
        # with the default pedestrian drift, a close pair still passes
        assert matcher.evaluate(peer(distance=1.0), 270.0, 54) is not None

    def test_session_prediction_monotone_in_distance(self, matcher):
        near = matcher.predict_session_s(1.0, 1.0)
        far = matcher.predict_session_s(18.0, 1.0)
        assert near > far

    def test_session_prediction_capped(self, matcher):
        assert (
            matcher.predict_session_s(1.0, 0.0)
            == MatchConfig().max_predicted_session_s
        )

    def test_predicted_beats_capped_by_capacity(self, matcher):
        candidate = matcher.evaluate(
            peer(capacity=2), 270.0, 54, relative_speed_m_per_s=0.0
        )
        assert candidate is not None
        assert candidate.predicted_beats <= 2


class TestSelection:
    def test_nearest_relay_wins(self, matcher):
        """Sec. III-C: 'match the available relay with the shortest
        distance'."""
        peers = [
            peer("far", distance=10.0),
            peer("near", distance=1.0),
            peer("mid", distance=5.0),
        ]
        best = matcher.select(peers, 270.0, 54, relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "near"

    def test_nearest_full_relay_skipped(self, matcher):
        peers = [peer("near-full", distance=1.0, capacity=0), peer("far", distance=8.0)]
        best = matcher.select(peers, 270.0, 54, relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "far"

    def test_no_candidates_returns_none(self, matcher):
        assert matcher.select([], 270.0, 54) is None
        assert matcher.select([peer(role="ue")], 270.0, 54) is None

    def test_distance_tie_broken_by_device_id(self, matcher):
        peers = [peer("bbb", distance=2.0), peer("aaa", distance=2.0)]
        best = matcher.select(peers, 270.0, 54, relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "aaa"


class TestRelativeSpeed:
    def test_opposite_motion(self):
        assert relative_speed((1.0, 0.0), (-1.0, 0.0)) == pytest.approx(2.0)

    def test_parallel_motion_is_zero(self):
        assert relative_speed((1.0, 1.0), (1.0, 1.0)) == 0.0
