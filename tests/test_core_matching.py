"""Unit tests for relay matching and the prejudgment mechanism."""

import pytest

from repro.core.matching import MatchConfig, RelayMatcher, relative_speed
from repro.d2d.base import PeerInfo
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.energy.profiles import DEFAULT_PROFILE


def peer(device_id="relay-0", distance=2.0, capacity=10, role="relay", **extra):
    advertisement = {"role": role, "capacity_remaining": capacity}
    advertisement.update(extra)
    return PeerInfo(
        device_id=device_id,
        rssi_dbm=-40.0,
        estimated_distance_m=distance,
        advertisement=advertisement,
    )


@pytest.fixture
def matcher():
    return RelayMatcher(WIFI_DIRECT, DEFAULT_PROFILE, MatchConfig())


class TestFiltering:
    def test_accepts_good_relay(self, matcher):
        candidate = matcher.evaluate(peer(), beat_period_s=270.0, beat_bytes=54,
                                     relative_speed_m_per_s=0.0)
        assert candidate is not None
        assert candidate.distance_m == pytest.approx(2.0)

    def test_rejects_non_relay_role(self, matcher):
        assert matcher.evaluate(peer(role="ue"), 270.0, 54) is None
        assert matcher.rejected_role == 1

    def test_rejects_missing_role(self, matcher):
        info = PeerInfo("x", -40.0, 2.0, {})
        assert matcher.evaluate(info, 270.0, 54) is None

    def test_rejects_zero_capacity(self, matcher):
        assert matcher.evaluate(peer(capacity=0), 270.0, 54) is None
        assert matcher.rejected_capacity == 1

    def test_rejects_beyond_max_pair_distance(self, matcher):
        assert matcher.evaluate(peer(distance=25.0), 270.0, 54) is None
        assert matcher.rejected_distance == 1


class TestPrejudgment:
    def test_static_pair_passes(self, matcher):
        candidate = matcher.evaluate(peer(), 270.0, 54, relative_speed_m_per_s=0.0)
        assert candidate is not None
        assert candidate.predicted_beats >= 1

    def test_fast_moving_pair_rejected(self, matcher):
        """A pair drifting apart fast yields a short session: the D2D
        overhead can't amortize — the paper's short-duration-connection
        inefficiency."""
        candidate = matcher.evaluate(
            peer(distance=15.0), 270.0, 54, relative_speed_m_per_s=5.0
        )
        assert candidate is None
        assert matcher.rejected_prejudgment == 1

    def test_prejudgment_can_be_disabled_for_ablation(self):
        config = MatchConfig(prejudgment_enabled=False)
        matcher = RelayMatcher(WIFI_DIRECT, DEFAULT_PROFILE, config)
        candidate = matcher.evaluate(
            peer(distance=15.0), 270.0, 54, relative_speed_m_per_s=5.0
        )
        assert candidate is not None

    def test_default_speed_used_when_unknown(self, matcher):
        # with the default pedestrian drift, a close pair still passes
        assert matcher.evaluate(peer(distance=1.0), 270.0, 54) is not None

    def test_session_prediction_monotone_in_distance(self, matcher):
        near = matcher.predict_session_s(1.0, 1.0)
        far = matcher.predict_session_s(18.0, 1.0)
        assert near > far

    def test_session_prediction_capped(self, matcher):
        assert (
            matcher.predict_session_s(1.0, 0.0)
            == MatchConfig().max_predicted_session_s
        )

    def test_predicted_beats_capped_by_capacity(self, matcher):
        candidate = matcher.evaluate(
            peer(capacity=2), 270.0, 54, relative_speed_m_per_s=0.0
        )
        assert candidate is not None
        assert candidate.predicted_beats <= 2


class TestSelection:
    def test_nearest_relay_wins(self, matcher):
        """Sec. III-C: 'match the available relay with the shortest
        distance'."""
        peers = [
            peer("far", distance=10.0),
            peer("near", distance=1.0),
            peer("mid", distance=5.0),
        ]
        best = matcher.select(peers, 270.0, 54, relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "near"

    def test_nearest_full_relay_skipped(self, matcher):
        peers = [peer("near-full", distance=1.0, capacity=0), peer("far", distance=8.0)]
        best = matcher.select(peers, 270.0, 54, relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "far"

    def test_no_candidates_returns_none(self, matcher):
        assert matcher.select([], 270.0, 54) is None
        assert matcher.select([peer(role="ue")], 270.0, 54) is None

    def test_distance_tie_broken_by_device_id(self, matcher):
        peers = [peer("bbb", distance=2.0), peer("aaa", distance=2.0)]
        best = matcher.select(peers, 270.0, 54, relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "aaa"


class TestRelativeSpeed:
    def test_opposite_motion(self):
        assert relative_speed((1.0, 0.0), (-1.0, 0.0)) == pytest.approx(2.0)

    def test_parallel_motion_is_zero(self):
        assert relative_speed((1.0, 1.0), (1.0, 1.0)) == 0.0


class TestDistanceTieSemantics:
    """Regression: tie groups are anchored at the *minimum* distance.

    The old implementation bucketed ``round(distance / distance_tie_m)``,
    so two candidates 0.02 m apart could land in different buckets (1.49
    rounds to 1, 1.51 to 2) and never tie — and banker's rounding made
    group membership parity-dependent. The documented semantics is
    "within ``distance_tie_m`` of each other": a candidate ties iff its
    distance is within ``distance_tie_m`` of the closest one.
    """

    def test_near_equal_distances_tie_across_old_bucket_boundary(self, matcher):
        # 1.49 vs 1.51 with tie=1.0: old round() buckets 1 vs 2 → no tie,
        # "worse" (slightly nearer, low-intent) candidate won.
        peers = [
            peer("low-intent", distance=1.49, go_intent=1),
            peer("high-intent", distance=1.51, go_intent=14),
        ]
        best = matcher.select(peers, 270.0, 54, relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "high-intent"

    def test_candidate_beyond_tie_window_never_ties(self, matcher):
        # 2.5 is more than distance_tie_m=1.0 from the 1.0 minimum: no
        # amount of GO intent may override the shortest-distance rule.
        peers = [
            peer("near", distance=1.0, go_intent=0),
            peer("far-fresh", distance=2.5, go_intent=15),
        ]
        best = matcher.select(peers, 270.0, 54, relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "near"

    def test_tie_window_is_anchored_at_minimum_not_chained(self, matcher):
        # 1.0/1.9/2.8: each neighbour pair is within 1.0 m but 2.8 is not
        # within 1.0 m of the minimum — only {1.0, 1.9} form the group.
        peers = [
            peer("a", distance=1.0, go_intent=0),
            peer("b", distance=1.9, go_intent=5),
            peer("c", distance=2.8, go_intent=15),
        ]
        best = matcher.select(peers, 270.0, 54, relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "b"


class TestSelectionPolicyConfig:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="selection_policy"):
            MatchConfig(selection_policy="fastest")

    def test_rate_tie_fraction_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="rate_tie_fraction"):
            MatchConfig(rate_tie_fraction=1.0)
        with pytest.raises(ValueError, match="rate_tie_fraction"):
            MatchConfig(rate_tie_fraction=-0.1)

    def test_channel_policies_without_channel_fall_back_to_distance(self):
        # no medium → no channel → rate policy degrades to nearest-wins
        matcher = RelayMatcher(
            WIFI_DIRECT, DEFAULT_PROFILE, MatchConfig(selection_policy="rate")
        )
        peers = [peer("far", distance=8.0), peer("near", distance=1.0)]
        best = matcher.select(peers, 270.0, 54, relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "near"
        assert best.predicted_rate_bps is None


class _StubEndpoint:
    def __init__(self, mobility):
        self.mobility = mobility

    def position(self, t):
        return self.mobility.position(t)


class _StubMedium:
    """Just enough of the D2DMedium surface for the matcher: endpoint
    lookup plus an (absent) channel handle."""

    channel = None

    def __init__(self, endpoints):
        self._endpoints = endpoints

    def endpoint(self, device_id):
        return self._endpoints[device_id]


class TestRelativeSpeedWiring:
    """Regression: the UE used to pass its own absolute speed as the
    *relative* speed — a co-moving pair (same velocity, near-zero drift)
    looked like it was separating at walking pace and was rejected."""

    BEAT_PERIOD = 270.0

    def _matcher_with(self, relay_velocity):
        from repro.mobility.models import LinearMobility

        medium = _StubMedium({
            "relay-0": _StubEndpoint(LinearMobility((16.0, 0.0), relay_velocity)),
        })
        return RelayMatcher(WIFI_DIRECT, DEFAULT_PROFILE, MatchConfig(),
                            medium=medium)

    def test_co_moving_pair_accepted_despite_high_own_speed(self):
        # Both walk at 1.4 m/s in the same direction, 15 m apart. The old
        # call sites passed speed(now)=1.4 as relative speed → rejected
        # (see test_fast_moving_pair_rejected at 5 m/s; 1.4 m/s at 15 m
        # predicts too few beats to amortize the D2D overhead too).
        matcher = self._matcher_with((1.4, 0.0))
        candidate = matcher.select(
            [peer(distance=15.0)], self.BEAT_PERIOD, 54,
            now=0.0, own_position=(1.0, 0.0), own_velocity=(1.4, 0.0),
        )
        assert candidate is not None
        assert candidate.predicted_session_s == pytest.approx(3600.0)

    def test_scalar_speed_of_same_magnitude_rejects(self):
        # The pre-fix behaviour, reproduced explicitly: a scalar relative
        # speed equal to the own walking speed kills the same candidate.
        matcher = self._matcher_with((1.4, 0.0))
        candidate = matcher.select(
            [peer(distance=15.0)], self.BEAT_PERIOD, 54,
            relative_speed_m_per_s=1.4,
        )
        assert candidate is None

    def test_opposing_motion_still_rejected_with_velocities(self):
        # The fix must not blunt the prejudgment: genuinely separating
        # pairs (opposite velocities → 2.8 m/s relative) stay rejected.
        matcher = self._matcher_with((-1.4, 0.0))
        candidate = matcher.select(
            [peer(distance=15.0)], self.BEAT_PERIOD, 54,
            now=0.0, own_position=(1.0, 0.0), own_velocity=(1.4, 0.0),
        )
        assert candidate is None
