"""Regression tests for two latent discovery-cache bugs.

Both caches sit on the scan hot path and both had stamps that missed a
class of invalidating change:

1. ``D2DMedium``'s sorted-candidate cache stamped entries with
   ``(index version, endpoint count)`` — blind to *unindexed-set churn*.
   Unregistering one unindexable device and registering another in the
   same window leaves both components unchanged, so scans served a stale
   id list (omitting the newcomer, and KeyError-ing on the departed id).
2. ``SpatialIndex._block_cache`` never evicted stale-version entries, so
   a mobile crowd querying from ever-new cells grew the cache without
   bound over a long run.
"""

from __future__ import annotations

import pytest

from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.mobility.index import SpatialIndex
from repro.mobility.models import MobilityModel, StaticMobility
from repro.sim.engine import Simulator


class UnboundedMobility(MobilityModel):
    """Fixed position but no speed bound — unindexable on purpose.

    ``max_speed_m_s`` inherits the base class ``None``, which routes the
    endpoint into the medium's always-checked unindexed side set.
    """

    def __init__(self, position):
        self._position = position

    def position(self, t):
        return self._position

    def velocity(self, t):
        return (0.0, 0.0)


def _scan(medium, sim, requester_id, horizon):
    results = []
    medium.discover(requester_id, results.append)
    sim.run_until(horizon)
    assert results, "scan never completed"
    return results[-1]


class TestSortedCandidateStamp:
    def test_swapping_unindexable_endpoints_is_visible_to_scans(self):
        """Unregister one unindexable peer, register another: the next
        scan must discover the newcomer, not serve the stale id list
        (index version and endpoint count are both unchanged by the swap,
        so only the unindexed-membership stamp component catches it)."""
        sim = Simulator(seed=1)
        medium = D2DMedium(sim, WIFI_DIRECT)
        scanner = D2DEndpoint("scanner", StaticMobility((0.0, 0.0)))
        medium.register(scanner)
        first = D2DEndpoint("peer-a", UnboundedMobility((5.0, 0.0)))
        first.advertising = True
        medium.register(first)

        found = _scan(medium, sim, "scanner", 3.0)
        assert [p.device_id for p in found] == ["peer-a"]

        medium.unregister("peer-a")
        second = D2DEndpoint("peer-b", UnboundedMobility((5.0, 0.0)))
        second.advertising = True
        medium.register(second)

        found = _scan(medium, sim, "scanner", 6.0)
        assert [p.device_id for p in found] == ["peer-b"]

    def test_sorted_cache_still_hits_when_membership_is_stable(self):
        """The widened stamp must not break the cache's happy path."""
        sim = Simulator(seed=1)
        medium = D2DMedium(sim, WIFI_DIRECT)
        scanner = D2DEndpoint("scanner", StaticMobility((0.0, 0.0)))
        medium.register(scanner)
        peer = D2DEndpoint("peer", UnboundedMobility((5.0, 0.0)))
        peer.advertising = True
        medium.register(peer)

        _scan(medium, sim, "scanner", 3.0)
        _scan(medium, sim, "scanner", 6.0)
        assert medium.perf.sorted_cache_hits == 1

    def test_unregister_breaks_connections_and_forgets_the_endpoint(self):
        sim = Simulator(seed=1)
        medium = D2DMedium(sim, WIFI_DIRECT)
        a = D2DEndpoint("a", StaticMobility((0.0, 0.0)))
        b = D2DEndpoint("b", StaticMobility((3.0, 0.0)))
        medium.register(a)
        medium.register(b)
        connections = []
        medium.connect("a", "b", connections.append)
        sim.run_until(2.0)
        assert connections and connections[0] is not None

        medium.unregister("b")
        assert not connections[0].alive
        assert medium.live_connections() == []
        with pytest.raises(KeyError):
            medium.endpoint("b")
        # the id is reusable afterwards, with a fresh sequence number
        medium.register(D2DEndpoint("b", StaticMobility((4.0, 0.0))))

    def test_unregister_indexed_mobile_endpoint_drops_it_from_the_index(self):
        from repro.mobility.models import LinearMobility

        sim = Simulator(seed=1)
        medium = D2DMedium(sim, WIFI_DIRECT)
        medium.register(D2DEndpoint("scanner", StaticMobility((0.0, 0.0))))
        mover = D2DEndpoint("mover", LinearMobility((5.0, 0.0), (1.0, 0.0)))
        mover.advertising = True
        medium.register(mover)
        assert "mover" in medium._index
        medium.unregister("mover")
        assert "mover" not in medium._index
        assert [p.device_id for p in _scan(medium, sim, "scanner", 3.0)] == []


class TestBlockCacheBound:
    def test_block_cache_stays_bounded_under_sustained_movement(self):
        """A mover querying from ever-new cells must not accumulate one
        cache entry per cell it ever visited."""
        index = SpatialIndex(50.0)
        index.insert("walker", (0.0, 0.0))
        pos = (0.0, 0.0)
        for step in range(1, 201):
            pos = (step * 75.0, 0.0)  # crosses a cell boundary every step
            index.update("walker", pos)
            index.query_block(pos, 50.0)
        assert len(index._block_cache) <= 4

    def test_block_cache_still_serves_repeat_queries(self):
        """Eviction on version bump must not cost the static-crowd win."""
        index = SpatialIndex(50.0)
        index.insert("a", (10.0, 10.0))
        index.insert("b", (20.0, 10.0))
        first = index.query_block((12.0, 12.0), 50.0)
        again = index.query_block((12.0, 12.0), 50.0)
        assert again is first
        assert index.block_cache_hits == 1
