"""Unit tests for the degraded-mode cellular fallback sender.

Covers the three legs of the survival protocol — bounded retry with
exponential backoff, the attach/reattach state machine, and the bounded
store-and-forward buffer with explicit drop accounting — plus the
zero-overhead passthrough contract on a healthy RAN.
"""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.modem import CellularModem
from repro.core.fallback import (
    DROP_BUFFER_OVERFLOW,
    DROP_RETRIES_EXHAUSTED,
    DROP_STALE,
    AttachState,
    CellularFallbackSender,
    FallbackConfig,
)
from repro.workload.messages import PeriodicMessage


class _StubDevice:
    """Minimal device: sim + modem + liveness, nothing else."""

    def __init__(self, sim, ledger, basestation, device_id="dev"):
        self.sim = sim
        self.device_id = device_id
        self.alive = True
        self.modem = CellularModem(
            sim, device_id, ledger=ledger, basestation=basestation
        )


def _beat(sim, seq_hint=None, expiry_s=30.0):
    return PeriodicMessage(
        app="im",
        origin_device="dev",
        size_bytes=54,
        created_at_s=sim.now,
        period_s=600.0,
        expiry_s=expiry_s,
    )


@pytest.fixture
def rig(sim, ledger):
    basestation = BaseStation(sim, ledger=ledger)
    device = _StubDevice(sim, ledger, basestation)
    return sim, basestation, device


class TestHealthyPassthrough:
    def test_send_delivers_without_touching_rng(self, rig):
        """A healthy RAN means no jitter draws — the byte-identity contract."""
        sim, basestation, device = rig
        sender = CellularFallbackSender(device)
        sender.send(_beat(sim))
        sim.run_until(60.0)
        assert basestation.uplinks == 1
        assert sender.sends_ok == 1
        assert sender.rejections == 0
        assert sender._rng is None
        assert sender.pending_seqs() == []

    def test_in_flight_beat_is_pending_until_confirmed(self, rig):
        """An admitted-but-undelivered beat is still owned by the sender."""
        sim, _, device = rig
        sender = CellularFallbackSender(device)
        beat = _beat(sim)
        sender.send(beat)
        sim.run_until(1.0)  # mid-promotion: admitted, not yet delivered
        assert sender.pending_seqs() == [beat.seq]
        sim.run_until(60.0)
        assert sender.pending_seqs() == []

    def test_dead_device_send_is_noop(self, rig):
        sim, basestation, device = rig
        sender = CellularFallbackSender(device)
        device.alive = False
        sender.send(_beat(sim))
        sim.run_until(60.0)
        assert basestation.uplinks == 0
        assert sender.pending_seqs() == []


class TestTransientRetry:
    def test_rejections_retry_then_drop_accounted(self, rig):
        """Persistent transient rejects exhaust retries, never vanish."""
        sim, basestation, device = rig
        basestation.brownout(capacity_factor=1.0)
        basestation.rrc_reject_gate = lambda device_id: True
        sender = CellularFallbackSender(device)
        drops = []
        sender.on_drop = lambda message, cause: drops.append((message.seq, cause))
        beat = _beat(sim)
        sender.send(beat)
        sim.run_until(200.0)
        config = sender.config
        assert sender.rejections == config.max_attempts
        assert sender.retries == config.max_attempts - 1
        assert sender.dropped_retries == 1
        assert drops == [(beat.seq, DROP_RETRIES_EXHAUSTED)]
        assert sender.pending_seqs() == []

    def test_backoff_bases_double_and_cap(self, rig):
        sim, basestation, device = rig
        basestation.brownout(capacity_factor=1.0)
        basestation.rrc_reject_gate = lambda device_id: True
        config = FallbackConfig(
            base_backoff_s=2.0, backoff_factor=2.0, max_backoff_s=10.0,
            max_attempts=6,
        )
        sender = CellularFallbackSender(device, config)
        bases = []
        sender.on_backoff = (
            lambda kind, key, base, actual: bases.append((kind, base, actual))
        )
        sender.send(_beat(sim))
        sim.run_until(200.0)
        retry_bases = [base for kind, base, _ in bases if kind == "retry"]
        assert retry_bases == [2.0, 4.0, 8.0, 10.0, 10.0]  # doubled, capped
        for kind, base, actual in bases:
            assert abs(actual / base - 1.0) <= config.jitter_fraction + 1e-9

    def test_success_after_retries_resets_backoff(self, rig):
        sim, basestation, device = rig
        basestation.brownout(capacity_factor=1.0)
        rejected = [0]

        def gate(device_id):
            rejected[0] += 1
            return rejected[0] <= 2  # first two attempts bounce

        basestation.rrc_reject_gate = gate
        sender = CellularFallbackSender(device)
        resets = []
        sender.on_backoff_reset = lambda kind, key: resets.append((kind, key))
        beat = _beat(sim)
        sender.send(beat)
        sim.run_until(60.0)
        assert sender.sends_ok == 1
        assert basestation.uplinks == 1
        assert ("retry", beat.seq) in resets


class TestDetachReattach:
    def test_ran_down_detaches_buffers_and_reattaches_on_restore(self, rig):
        sim, basestation, device = rig
        basestation.outage()
        sender = CellularFallbackSender(device)
        beat = _beat(sim, expiry_s=600.0)
        sender.send(beat)
        assert sender.state is AttachState.DETACHED
        assert sender.buffered_seqs() == [beat.seq]
        assert sender.detaches == 1
        sim.schedule(12.0, basestation.restore)
        sim.run_until(120.0)
        assert sender.attached
        assert sender.reattaches == 1
        assert sender.episodes[-1].reattached_at_s is not None
        assert basestation.uplinks == 1  # the drain delivered the beat
        assert sender.pending_seqs() == []

    def test_send_while_detached_buffers_without_modem_call(self, rig):
        sim, basestation, device = rig
        basestation.outage()
        sender = CellularFallbackSender(device)
        sender.send(_beat(sim))  # detaches
        sender.send(_beat(sim))  # parked straight into the buffer
        assert sender.buffered_count == 2
        assert basestation.uplinks_rejected == 1  # only the first hit the cell

    def test_probe_backoff_is_episode_keyed(self, rig):
        sim, basestation, device = rig
        basestation.outage()
        sender = CellularFallbackSender(device)
        bases = []
        sender.on_backoff = (
            lambda kind, key, base, actual: bases.append((kind, key, base))
        )
        sender.send(_beat(sim, expiry_s=600.0))
        sim.run_until(40.0)  # cell stays down: probes keep backing off
        probe = [(key, base) for kind, key, base in bases if kind == "probe"]
        assert len(probe) >= 2
        assert all(key == 1 for key, _ in probe)  # first episode
        probe_bases = [base for _, base in probe]
        assert probe_bases == sorted(probe_bases)


class TestBufferAccounting:
    def test_overflow_drops_oldest_with_cause(self, rig):
        sim, basestation, device = rig
        basestation.outage()
        config = FallbackConfig(buffer_capacity=2)
        sender = CellularFallbackSender(device, config)
        beats = [_beat(sim) for _ in range(3)]
        for beat in beats:
            sender.send(beat)
        assert sender.buffered_count == 2
        assert sender.dropped_overflow == 1
        assert sender.dropped[0].seq == beats[0].seq
        assert sender.dropped[0].cause == DROP_BUFFER_OVERFLOW
        assert sender.buffered_peak == 2

    def test_stale_beats_drop_at_drain_not_sent_late(self, rig):
        sim, basestation, device = rig
        basestation.outage()
        config = FallbackConfig(stale_grace_s=5.0)
        sender = CellularFallbackSender(device, config)
        beat = _beat(sim, expiry_s=30.0)  # deadline 30, stale past 35
        sender.send(beat)
        sim.schedule(70.0, basestation.restore)
        sim.run_until(200.0)
        assert sender.attached
        assert sender.dropped_stale == 1
        assert sender.dropped[0].cause == DROP_STALE
        assert basestation.uplinks == 0  # never sent pointlessly late


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"base_backoff_s": 0.0},
        {"backoff_factor": 0.5},
        {"max_backoff_s": 1.0},  # below base_backoff_s default of 2
        {"jitter_fraction": 1.0},
        {"max_attempts": 0},
        {"buffer_capacity": 0},
        {"stale_grace_s": -1.0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FallbackConfig(**kwargs)
