"""Unit tests for framework wiring."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s


def build(sim, device_id, role, position=(0.0, 0.0), medium=None, ledger=None,
          basestation=None):
    return Smartphone(
        sim,
        device_id,
        mobility=StaticMobility(position),
        role=role,
        ledger=ledger,
        basestation=basestation,
        d2d_medium=medium,
    )


@pytest.fixture
def wiring(sim, ledger):
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    return sim, ledger, basestation, server, medium


class TestWiring:
    def test_role_appropriate_agents(self, wiring):
        sim, ledger, basestation, server, medium = wiring
        relay = build(sim, "r", Role.RELAY, medium=medium, ledger=ledger,
                      basestation=basestation)
        ue = build(sim, "u", Role.UE, (1.0, 0.0), medium=medium, ledger=ledger,
                   basestation=basestation)
        standalone = build(sim, "s", Role.STANDALONE, ledger=ledger,
                           basestation=basestation)
        framework = HeartbeatRelayFramework([relay, ue, standalone])
        assert set(framework.relays) == {"r"}
        assert set(framework.ues) == {"u"}
        assert set(framework.standalones) == {"s"}

    def test_duplicate_device_rejected(self, wiring):
        sim, ledger, basestation, __, medium = wiring
        relay = build(sim, "r", Role.RELAY, medium=medium)
        framework = HeartbeatRelayFramework([relay])
        with pytest.raises(ValueError):
            framework.add_device(relay)

    def test_standalone_sends_direct_cellular(self, wiring):
        sim, ledger, basestation, server, __ = wiring
        standalone = build(sim, "s", Role.STANDALONE, ledger=ledger,
                           basestation=basestation)
        framework = HeartbeatRelayFramework(
            [], config=FrameworkConfig(ue_phase_fraction=0.0)
        )
        framework.add_device(standalone)
        sim.run_until(T + 30.0)
        assert framework.standalones["s"].cellular_sends == 2
        assert len(server.records) == 2

    def test_aggregate_statistics(self, wiring):
        sim, ledger, basestation, server, medium = wiring
        relay = build(sim, "r", Role.RELAY, medium=medium, ledger=ledger,
                      basestation=basestation)
        ues = [
            build(sim, f"u{i}", Role.UE, (1.0, float(i)), medium=medium,
                  ledger=ledger, basestation=basestation)
            for i in range(3)
        ]
        framework = HeartbeatRelayFramework([])
        framework.add_device(relay, phase_fraction=0.0)
        for i, ue in enumerate(ues):
            framework.add_device(ue, phase_fraction=0.4 + 0.1 * i)
        sim.run_until(T + 30.0)
        assert framework.total_beats_forwarded() == 3
        assert framework.total_beats_collected() == 3
        assert framework.total_aggregated_uplinks() == 1
        assert framework.forwarding_ratio() == 1.0
        assert len(framework.ue_agents()) == 3
        assert len(framework.relay_agents()) == 1

    def test_forwarding_ratio_zero_when_no_traffic(self):
        framework = HeartbeatRelayFramework([])
        assert framework.forwarding_ratio() == 0.0

    def test_shutdown_stops_all_agents(self, wiring):
        sim, ledger, basestation, server, medium = wiring
        relay = build(sim, "r", Role.RELAY, medium=medium, ledger=ledger,
                      basestation=basestation)
        ue = build(sim, "u", Role.UE, (1.0, 0.0), medium=medium, ledger=ledger,
                   basestation=basestation)
        framework = HeartbeatRelayFramework([])
        framework.add_device(relay, phase_fraction=0.0)
        framework.add_device(ue, phase_fraction=0.5)
        sim.run_until(10.0)
        framework.shutdown()
        records_now = len(server.records)
        sim.run_until(10 * T)
        # only the already-flushed shutdown uplink arrives afterwards
        assert framework.total_beats_forwarded() == 0
        assert len(server.records) <= records_now + 1

    def test_rewards_shared_across_relays(self, wiring):
        sim, ledger, basestation, server, medium = wiring
        relay = build(sim, "r", Role.RELAY, medium=medium, ledger=ledger,
                      basestation=basestation)
        ue = build(sim, "u", Role.UE, (1.0, 0.0), medium=medium, ledger=ledger,
                   basestation=basestation)
        framework = HeartbeatRelayFramework([])
        framework.add_device(relay, phase_fraction=0.0)
        framework.add_device(ue, phase_fraction=0.5)
        sim.run_until(T + 30.0)
        assert framework.rewards.total_beats == 1
