"""Property-based physics suite for the channel layer.

Hypothesis pins the claims that make the SINR/resource-block model
trustworthy as *physics* rather than arbitrary arithmetic:

1. **SINR monotonicity in interferer count** — adding a co-channel
   transmitter never improves any receiver's SINR;
2. **SINR monotonicity in interferer distance** — pushing an interferer
   farther away never hurts;
3. **Shannon bound** — no granted transfer rate exceeds the
   interference-free Shannon capacity of the same geometry (modulo the
   explicit termination floor);
4. **no double-booking** — under arbitrary grant/release/reap sequences
   the pool's books stay consistent and re-granting a live lease always
   raises;
5. **allocator equivalence** — on instances small enough to enumerate,
   the distributed message-passing allocator lands on assignments with
   the same total-interference objective as the exhaustive centralized
   one.

The ``ci`` settings profile (selected via ``HYPOTHESIS_PROFILE=ci``)
caps example counts so the suite stays inside a smoke-job budget;
``derandomize=True`` keeps both profiles deterministic.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.allocator import (
    CentralizedAllocator,
    LinkRequest,
    MessagePassingAllocator,
    total_penalty_mw,
)
from repro.channel.model import ChannelConfig, ChannelModel
from repro.channel.phy import shannon_capacity_bps, sinr_db, thermal_noise_dbm
from repro.channel.rb import RBLease, ResourceBlockPool
from repro.d2d.link import LinkModel

settings.register_profile("default", settings(deadline=None, derandomize=True))
settings.register_profile(
    "ci", settings(deadline=None, derandomize=True, max_examples=25)
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

LINK = LinkModel()
NOISE_DBM = thermal_noise_dbm(180_000.0, noise_figure_db=7.0)

power_dbm = st.floats(min_value=-120.0, max_value=0.0)
interferer_lists = st.lists(power_dbm, max_size=6)
distances = st.floats(min_value=0.5, max_value=200.0)
coords = st.floats(min_value=0.0, max_value=300.0)
positions = st.tuples(coords, coords)


class TestSinrMonotonicity:
    @given(power_dbm, interferer_lists, power_dbm)
    def test_adding_an_interferer_never_raises_sinr(
        self, signal, interferers, extra
    ):
        without = sinr_db(signal, interferers, NOISE_DBM)
        with_extra = sinr_db(signal, interferers + [extra], NOISE_DBM)
        assert with_extra <= without

    @given(distances, distances, distances)
    def test_pushing_an_interferer_away_never_hurts(
        self, signal_distance, near, far
    ):
        near, far = sorted((near, far))
        signal = LINK.rssi(signal_distance)
        closer = sinr_db(signal, [LINK.rssi(near)], NOISE_DBM)
        farther = sinr_db(signal, [LINK.rssi(far)], NOISE_DBM)
        assert farther >= closer

    @given(power_dbm, interferer_lists)
    def test_interference_free_is_the_ceiling(self, signal, interferers):
        assert sinr_db(signal, interferers, NOISE_DBM) <= sinr_db(
            signal, (), NOISE_DBM
        )


class TestShannonBound:
    @given(
        distances,
        st.lists(st.tuples(positions, positions), max_size=5),
        st.integers(min_value=1, max_value=512),
    )
    def test_granted_rate_never_beats_the_solo_bound(
        self, distance, interferer_links, payload
    ):
        model = ChannelModel(ChannelConfig(num_rbs=1))
        for i, (tx, rx) in enumerate(interferer_links):
            model.begin_transfer(f"i{i}", f"j{i}", tx, rx, payload, 0.0)
        grant = model.begin_transfer(
            "a", "b", (0.0, 0.0), (distance, 0.0), payload, 0.1
        )
        ceiling = max(model.solo_rate_bps(distance), model.config.min_rate_bps)
        assert grant.rate_bps <= ceiling * (1 + 1e-12)
        assert grant.airtime_s > 0.0

    @given(st.floats(min_value=-40.0, max_value=60.0))
    def test_capacity_monotone_in_sinr(self, sinr):
        lower = shannon_capacity_bps(180_000.0, sinr - 1.0)
        upper = shannon_capacity_bps(180_000.0, sinr)
        assert upper >= lower >= 0.0


pool_ops = st.lists(
    st.tuples(
        st.sampled_from(["grant", "release", "reap"]),
        st.integers(min_value=0, max_value=7),  # lease slot
        st.integers(min_value=0, max_value=3),  # rb
    ),
    max_size=40,
)


class TestPoolBookkeeping:
    @given(pool_ops)
    def test_no_double_booking_under_arbitrary_op_sequences(self, ops):
        pool = ResourceBlockPool(4)
        now = 0.0
        for op, slot, rb in ops:
            now += 0.5
            lease_id = f"lease-{slot}"
            if op == "grant":
                lease = RBLease(
                    lease_id=lease_id, rb=rb, tx_id="t", rx_id="r",
                    tx_pos=(0.0, 0.0), rx_pos=(1.0, 0.0),
                    created_s=now, busy_until_s=now + 1.0,
                )
                if lease_id in pool:
                    with pytest.raises(ValueError):
                        pool.grant(lease, now)
                else:
                    pool.grant(lease, now)
            elif op == "release":
                pool.release(lease_id, now)
            else:
                pool.reap_idle(now, idle_timeout_s=3.0)
            ok, reason = pool.audit()
            assert ok, reason
            assert sum(pool.occupancy()) == len(pool)
        assert pool.grants - pool.releases == len(pool)


small_instances = st.tuples(
    st.lists(st.tuples(positions, positions), min_size=1, max_size=3),
    st.integers(min_value=2, max_value=3),
)


class TestAllocatorEquivalence:
    @given(small_instances)
    def test_distributed_matches_exhaustive_objective(self, instance):
        links, num_rbs = instance
        requests = [
            LinkRequest(f"l{i}", tx, rx) for i, (tx, rx) in enumerate(links)
        ]
        exact = CentralizedAllocator().allocate(requests, num_rbs, LINK)
        distributed = MessagePassingAllocator().allocate(
            requests, num_rbs, LINK
        )
        assert set(exact) == set(distributed) == {r.link_id for r in requests}
        assert all(0 <= rb < num_rbs for rb in distributed.values())
        exact_cost = total_penalty_mw(exact, requests, LINK)
        distributed_cost = total_penalty_mw(distributed, requests, LINK)
        assert distributed_cost == pytest.approx(
            exact_cost, rel=1e-9, abs=1e-15
        )


class TestEstimateBound:
    """`estimate_link` honours the same physics as granted transfers:
    the predicted (contended) rate never beats the interference-free
    Shannon bound for its geometry, so channel-aware relay selection can
    never be lured by an impossible rate."""

    @given(
        distances,
        st.lists(st.tuples(positions, positions), max_size=5),
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=1, max_value=6),
    )
    def test_estimated_rate_never_beats_the_solo_bound(
        self, distance, interferer_links, payload, num_rbs
    ):
        model = ChannelModel(ChannelConfig(num_rbs=num_rbs))
        for i, (tx, rx) in enumerate(interferer_links):
            model.begin_transfer(f"i{i}", f"j{i}", tx, rx, payload, 0.0)
        est = model.estimate_link((0.0, 0.0), (distance, 0.0), payload, now=0.1)
        ceiling = max(model.solo_rate_bps(distance), model.config.min_rate_bps)
        assert est.rate_bps <= ceiling * (1 + 1e-12)
        assert est.rate_bps <= max(est.solo_rate_bps, model.config.min_rate_bps) * (
            1 + 1e-12
        )
        assert est.sinr_db <= est.solo_sinr_db + 1e-9
        assert est.airtime_s > 0.0
        assert est.duration_s >= est.airtime_s

    @given(
        distances,
        st.lists(st.tuples(positions, positions), min_size=1, max_size=5),
        st.integers(min_value=1, max_value=512),
    )
    def test_estimate_agrees_with_an_immediate_grant_on_one_block(
        self, distance, interferer_links, payload
    ):
        # On a single block the best-RB search degenerates to "the" block,
        # so the pure estimate must predict exactly what an immediate
        # admission is then granted.
        model = ChannelModel(ChannelConfig(num_rbs=1))
        for i, (tx, rx) in enumerate(interferer_links):
            model.begin_transfer(f"i{i}", f"j{i}", tx, rx, payload, 0.0)
        est = model.estimate_link((0.0, 0.0), (distance, 0.0), payload, now=0.1)
        grant = model.begin_transfer(
            "a", "b", (0.0, 0.0), (distance, 0.0), payload, 0.1
        )
        assert grant.rate_bps == pytest.approx(est.rate_bps)
        assert grant.sinr_db == pytest.approx(est.sinr_db)
