"""Tests for the chaos engine: profiles, processes, determinism."""

import dataclasses

import pytest

from repro.faults.chaos import (
    CHAOS_PROFILES,
    STORM_APP,
    ChaosEngine,
    ChaosProfile,
    resolve_profile,
)
from repro.scenarios import build_network, run_relay_scenario


def event_tuples(report):
    return [(e.time_s, e.kind, e.target, e.detail) for e in report.events]


class TestProfiles:
    def test_builtin_profiles_registered(self):
        assert set(CHAOS_PROFILES) == {
            "mild", "relay-hostile", "link-hostile", "adversarial",
            "ran-outage", "paging-storm", "degraded-ran",
        }

    def test_resolve_by_name_none_and_instance(self):
        assert resolve_profile(None) is None
        assert resolve_profile("mild") is CHAOS_PROFILES["mild"]
        custom = ChaosProfile(name="custom")
        assert resolve_profile(custom) is custom

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown chaos profile"):
            resolve_profile("nope")

    def test_profiles_are_frozen_and_serializable(self):
        profile = CHAOS_PROFILES["adversarial"]
        with pytest.raises(dataclasses.FrozenInstanceError):
            profile.tick_s = 1.0
        data = profile.to_dict()
        assert data["name"] == "adversarial"
        assert data["relay_death_rate_hz"] > 0

    @pytest.mark.parametrize("field,value", [
        ("relay_death_rate_hz", -1.0),
        ("link_down_rate_hz", -0.1),
        ("storm_beats_per_device", -1),
        ("relay_battery_mah", 0.0),
        ("tick_s", 0.0),
    ])
    def test_validation_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            ChaosProfile(name="bad", **{field: value})


class TestEngineLifecycle:
    def test_needs_a_profile(self):
        with pytest.raises(ValueError):
            ChaosEngine(None)

    def test_attach_twice_raises(self):
        context = build_network(seed=0)
        engine = ChaosEngine("mild", seed=0)
        engine.attach(context.sim, {}, medium=context.medium)
        with pytest.raises(RuntimeError, match="attach called twice"):
            engine.attach(context.sim, {}, medium=context.medium)

    def test_refuses_to_stack_link_gates(self):
        context = build_network(seed=0)
        context.medium.link_gate = lambda a, b: True
        engine = ChaosEngine("link-hostile", seed=0)
        with pytest.raises(RuntimeError, match="link gate"):
            engine.attach(context.sim, {}, medium=context.medium)


#: Rates hot enough that every process demonstrably fires inside a short
#: three-period pair run.
HOT = ChaosProfile(
    name="hot",
    relay_death_rate_hz=1 / 90.0,
    relay_revival_rate_hz=1 / 45.0,
    link_down_rate_hz=1 / 90.0,
    link_up_rate_hz=1 / 45.0,
    ack_burst_rate_hz=1 / 150.0,
    ack_burst_mean_s=30.0,
    storm_rate_hz=1 / 200.0,
    storm_beats_per_device=1,
    relay_drain_uah_per_s=8.0,
    relay_battery_mah=3.0,
    clock_skew_max_s=30.0,
)


class TestProcessesFire:
    def test_hot_profile_exercises_every_process(self):
        result = run_relay_scenario(n_ues=3, periods=3, seed=1, chaos=HOT)
        report = result.chaos_report
        assert report.relay_deaths + report.batteries_depleted >= 1
        assert report.ack_bursts >= 1
        assert report.storms >= 1 and report.storm_beats >= 1
        assert report.ues_skewed == 3
        assert report.total_events == len(report.events)
        # the run stayed delivery-safe through all of it
        assert result.audit_ok(), result.audit_report.summary()
        assert result.deadline_safe_fraction() == 1.0

    def test_storm_beats_reach_the_server_as_their_own_app(self):
        result = run_relay_scenario(n_ues=2, periods=3, seed=3, chaos=HOT)
        if result.chaos_report.storm_beats == 0:
            pytest.skip("no storm drawn for this seed")
        storm_records = [
            r for r in result.context.server.records
            if r.message.app == STORM_APP
        ]
        assert storm_records, "storm beats never delivered"

    def test_battery_ramp_depletion_is_recorded(self):
        # relay-hostile bleeds a 3 mAh relay battery; whichever charge
        # crosses zero (chaos ramp or the organic energy model), the
        # depletion must appear in the report exactly once per battery.
        result = run_relay_scenario(
            n_ues=3, periods=4, seed=5, chaos="relay-hostile"
        )
        report = result.chaos_report
        assert report.batteries_depleted == 1
        kinds = [e.kind for e in report.events]
        assert kinds.count("battery-depleted") == 1
        assert result.devices["relay-0"].battery.is_depleted

    def test_fault_metrics_folded_into_run_metrics(self):
        result = run_relay_scenario(n_ues=2, periods=3, seed=1, chaos="mild")
        faults = result.metrics.faults
        assert faults is not None
        assert faults.chaos_profile == "mild"
        assert faults.audited
        assert faults.deadline_safe_fraction == 1.0
        assert "faults" in result.metrics.to_dict()


class TestDeterminism:
    def test_same_seed_replays_identically(self):
        runs = [
            run_relay_scenario(n_ues=2, periods=3, seed=7,
                               chaos="adversarial", chaos_seed=11)
            for _ in range(2)
        ]
        assert event_tuples(runs[0].chaos_report) == \
            event_tuples(runs[1].chaos_report)
        assert runs[0].audit_report.to_dict() == runs[1].audit_report.to_dict()
        assert runs[0].metrics.faults.to_dict() == \
            runs[1].metrics.faults.to_dict()

    def test_chaos_seed_decouples_from_scenario_seed(self):
        a = run_relay_scenario(n_ues=2, periods=3, seed=7,
                               chaos="adversarial", chaos_seed=1)
        b = run_relay_scenario(n_ues=2, periods=3, seed=7,
                               chaos="adversarial", chaos_seed=2)
        assert event_tuples(a.chaos_report) != event_tuples(b.chaos_report)
