"""Unit tests for the D2D medium: discovery, connection, transfer, breaks."""

import pytest

from repro.d2d.base import D2DEndpoint, D2DMedium, D2DTransferError
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.energy.model import EnergyModel, EnergyPhase
from repro.energy.profiles import DEFAULT_PROFILE
from repro.mobility.models import LinearMobility, StaticMobility


def make_endpoint(device_id, position=(0.0, 0.0), advertising=False, role=None):
    endpoint = D2DEndpoint(
        device_id,
        StaticMobility(position),
        energy=EnergyModel(owner=device_id),
        advertisement={"role": role} if role else {},
    )
    endpoint.advertising = advertising
    return endpoint


@pytest.fixture
def medium(sim):
    return D2DMedium(sim, WIFI_DIRECT)


class TestRegistration:
    def test_register_and_lookup(self, medium):
        endpoint = make_endpoint("a")
        medium.register(endpoint)
        assert medium.endpoint("a") is endpoint

    def test_duplicate_rejected(self, medium):
        medium.register(make_endpoint("a"))
        with pytest.raises(ValueError):
            medium.register(make_endpoint("a"))

    def test_unknown_lookup_raises(self, medium):
        with pytest.raises(KeyError):
            medium.endpoint("ghost")

    def test_undeployed_technology_gated(self, sim):
        from repro.d2d.lte_direct import LTE_DIRECT

        with pytest.raises(ValueError):
            D2DMedium(sim, LTE_DIRECT)
        # explicit opt-in works
        D2DMedium(sim, LTE_DIRECT, allow_undeployed=True)


class TestDiscovery:
    def test_finds_advertising_peers_in_range(self, sim, medium):
        medium.register(make_endpoint("ue"))
        medium.register(make_endpoint("relay", (3.0, 0.0), advertising=True, role="relay"))
        found = []
        medium.discover("ue", found.extend)
        sim.run_until(10.0)
        assert [p.device_id for p in found] == ["relay"]
        assert found[0].advertisement["role"] == "relay"

    def test_non_advertising_peers_invisible(self, sim, medium):
        medium.register(make_endpoint("ue"))
        medium.register(make_endpoint("silent", (3.0, 0.0), advertising=False))
        found = []
        medium.discover("ue", found.extend)
        sim.run_until(10.0)
        assert found == []

    def test_out_of_range_peers_invisible(self, sim, medium):
        medium.register(make_endpoint("ue"))
        medium.register(
            make_endpoint("far", (WIFI_DIRECT.max_range_m + 10, 0.0), advertising=True)
        )
        found = []
        medium.discover("ue", found.extend)
        sim.run_until(10.0)
        assert found == []

    def test_discovery_takes_latency(self, sim, medium):
        medium.register(make_endpoint("ue"))
        done_at = []
        medium.discover("ue", lambda peers: done_at.append(sim.now))
        sim.run_until(10.0)
        assert done_at == [WIFI_DIRECT.discovery_latency_s]

    def test_discovery_energy_charged_to_requester_only(self, sim, medium):
        """A probe response is free; the responder's discovery-phase cost
        is deferred to connection time (find-phase participation)."""
        ue = make_endpoint("ue")
        relay = make_endpoint("relay", (3.0, 0.0), advertising=True)
        medium.register(ue)
        medium.register(relay)
        medium.discover("ue", lambda peers: None)
        sim.run_until(10.0)
        assert ue.energy.phase_uah(EnergyPhase.D2D_DISCOVERY) == pytest.approx(
            DEFAULT_PROFILE.ue_discovery_uah
        )
        assert relay.energy.phase_uah(EnergyPhase.D2D_DISCOVERY) == 0.0
        # after pairing, the relay has paid its Table III discovery charge
        medium.connect("ue", "relay", lambda conn: None)
        sim.run_until(20.0)
        assert relay.energy.phase_uah(EnergyPhase.D2D_DISCOVERY) == pytest.approx(
            DEFAULT_PROFILE.relay_discovery_uah
        )

    def test_third_party_scans_do_not_drain_relays(self, sim, medium):
        """A crowd of scanning UEs must not multiply-bill every relay in
        range — the artifact that motivated deferring the responder cost."""
        relay = make_endpoint("relay", (3.0, 0.0), advertising=True)
        medium.register(relay)
        for i in range(5):
            scanner = make_endpoint(f"scanner-{i}")
            medium.register(scanner)
            medium.discover(f"scanner-{i}", lambda peers: None)
        sim.run_until(30.0)
        assert relay.energy.total_uah == 0.0

    def test_peers_sorted_strongest_first(self, sim, medium):
        medium.register(make_endpoint("ue"))
        medium.register(make_endpoint("near", (1.0, 0.0), advertising=True))
        medium.register(make_endpoint("far", (15.0, 0.0), advertising=True))
        found = []
        medium.discover("ue", found.extend, rssi_noise=False)
        sim.run_until(10.0)
        assert [p.device_id for p in found] == ["near", "far"]

    def test_distance_estimate_exact_without_noise(self, sim, medium):
        medium.register(make_endpoint("ue"))
        medium.register(make_endpoint("relay", (4.0, 0.0), advertising=True))
        found = []
        medium.discover("ue", found.extend, rssi_noise=False)
        sim.run_until(10.0)
        assert found[0].estimated_distance_m == pytest.approx(4.0, rel=1e-9)

    def test_powered_off_requester_rejected(self, medium):
        endpoint = make_endpoint("ue")
        endpoint.powered_on = False
        medium.register(endpoint)
        with pytest.raises(D2DTransferError):
            medium.discover("ue", lambda peers: None)


class TestConnection:
    def _pair(self, sim, medium, distance=3.0):
        ue = make_endpoint("ue")
        relay = make_endpoint("relay", (distance, 0.0), advertising=True)
        medium.register(ue)
        medium.register(relay)
        result = []
        medium.connect("ue", "relay", result.append)
        sim.run_until(10.0)
        return ue, relay, result[0]

    def test_connect_succeeds_in_range(self, sim, medium):
        __, __, connection = self._pair(sim, medium)
        assert connection is not None and connection.alive
        assert medium.connections_established == 1

    def test_connect_energy_both_sides(self, sim, medium):
        ue, relay, __ = self._pair(sim, medium)
        assert ue.energy.phase_uah(EnergyPhase.D2D_CONNECTION) == pytest.approx(
            DEFAULT_PROFILE.ue_connection_uah
        )
        assert relay.energy.phase_uah(EnergyPhase.D2D_CONNECTION) == pytest.approx(
            DEFAULT_PROFILE.relay_connection_uah
        )

    def test_self_connect_rejected(self, sim, medium):
        medium.register(make_endpoint("narcissist"))
        with pytest.raises(D2DTransferError):
            medium.connect("narcissist", "narcissist", lambda c: None)

    def test_connect_fails_out_of_range(self, sim, medium):
        __, __, connection = self._pair(sim, medium, distance=WIFI_DIRECT.max_range_m + 5)
        assert connection is None
        assert medium.connections_failed == 1

    def test_connect_fails_if_responder_powers_off_mid_handshake(self, sim, medium):
        ue = make_endpoint("ue")
        relay = make_endpoint("relay", (2.0, 0.0), advertising=True)
        medium.register(ue)
        medium.register(relay)
        result = []
        medium.connect("ue", "relay", result.append)
        relay.powered_on = False
        sim.run_until(10.0)
        assert result == [None]

    def test_transfer_delivers_payload(self, sim, medium):
        ue, relay, connection = self._pair(sim, medium)
        inbox = []
        relay.on_message = lambda conn, sender, payload, size: inbox.append(
            (sender, payload, size)
        )
        outcomes = []
        connection.send("ue", 78, "beat", on_result=outcomes.append)
        sim.run_until(20.0)
        assert inbox == [("ue", "beat", 78)]
        assert outcomes == [True]
        assert connection.messages_delivered == 1
        assert connection.bytes_transferred == 78

    def test_transfer_energy_tx_rx_split(self, sim, medium):
        ue, relay, connection = self._pair(sim, medium, distance=1.0)
        connection.send("ue", 54, "beat")
        sim.run_until(20.0)
        assert ue.energy.phase_uah(EnergyPhase.D2D_FORWARD) == pytest.approx(
            DEFAULT_PROFILE.ue_forward_cost_uah(54, 1.0)
        )
        assert relay.energy.phase_uah(EnergyPhase.D2D_RECEIVE) == pytest.approx(
            DEFAULT_PROFILE.relay_receive_cost_uah(54)
        )

    def test_transfer_energy_scales_with_distance(self, sim):
        costs = []
        for distance in (1.0, 10.0):
            from repro.sim.engine import Simulator

            sim2 = Simulator(seed=1)
            medium2 = D2DMedium(sim2, WIFI_DIRECT)
            ue = make_endpoint("ue")
            relay = make_endpoint("relay", (distance, 0.0), advertising=True)
            medium2.register(ue)
            medium2.register(relay)
            holder = []
            medium2.connect("ue", "relay", holder.append)
            sim2.run_until(5.0)
            holder[0].send("ue", 54, "x")
            sim2.run_until(10.0)
            costs.append(ue.energy.phase_uah(EnergyPhase.D2D_FORWARD))
        assert costs[1] > costs[0] * 2

    def test_channel_mode_scales_base_charge_not_per_byte_slope(self, sim):
        # Channel-mode billing: airtime scales only the time-dependent
        # base cost; the per-byte component stays unscaled. Scaling the
        # full cost would compound two size-dependent factors (slope and
        # grant duration) into energy quadratic in payload size.
        from repro.channel.model import ChannelModel

        channel = ChannelModel()
        medium = D2DMedium(sim, WIFI_DIRECT, channel=channel)
        ue = make_endpoint("ue")
        relay = make_endpoint("relay", (1.0, 0.0), advertising=True)
        medium.register(ue)
        medium.register(relay)
        holder = []
        medium.connect("ue", "relay", holder.append)
        sim.run_until(5.0)
        size = 5000
        holder[0].send("ue", size, "x")
        duration = channel.config.overhead_s + channel.stats.sum_airtime_s
        scale = duration / DEFAULT_PROFILE.d2d_transfer_s
        tx_base = DEFAULT_PROFILE.ue_forward_cost_uah(0, 1.0)
        tx_full = DEFAULT_PROFILE.ue_forward_cost_uah(size, 1.0)
        expected = (tx_base * scale + (tx_full - tx_base)) * WIFI_DIRECT.tx_scale
        assert ue.energy.phase_uah(EnergyPhase.D2D_FORWARD) == pytest.approx(expected)

    def test_control_messages_use_ack_charge(self, sim, medium):
        ue, relay, connection = self._pair(sim, medium)
        connection.send("relay", 24, "ack", control=True)
        sim.run_until(20.0)
        assert relay.energy.phase_uah(EnergyPhase.D2D_ACK) == pytest.approx(
            DEFAULT_PROFILE.relay_ack_uah
        )
        assert ue.energy.phase_uah(EnergyPhase.D2D_ACK) == pytest.approx(
            DEFAULT_PROFILE.relay_ack_uah
        )

    def test_send_from_non_member_raises(self, sim, medium):
        __, __, connection = self._pair(sim, medium)
        with pytest.raises(D2DTransferError):
            connection.send("stranger", 10, "x")

    def test_close_notifies_both_sides(self, sim, medium):
        ue, relay, connection = self._pair(sim, medium)
        reasons = []
        ue.on_disconnect = lambda conn, reason: reasons.append(("ue", reason))
        relay.on_disconnect = lambda conn, reason: reasons.append(("relay", reason))
        connection.close("done")
        assert not connection.alive
        assert set(reasons) == {("ue", "done"), ("relay", "done")}

    def test_send_on_closed_connection_fails(self, sim, medium):
        __, __, connection = self._pair(sim, medium)
        connection.close()
        outcomes = []
        assert connection.send("ue", 10, "x", on_result=outcomes.append) is False
        assert outcomes == [False]


class TestMobilityBreaks:
    def test_link_breaks_when_peer_walks_away(self, sim, medium):
        ue = D2DEndpoint(
            "ue",
            LinearMobility((0.0, 0.0), (2.0, 0.0)),  # 2 m/s away
            energy=EnergyModel(owner="ue"),
        )
        relay = make_endpoint("relay", (0.0, 0.0), advertising=True)
        medium.register(ue)
        medium.register(relay)
        holder = []
        medium.connect("ue", "relay", holder.append)
        sim.run_until(5.0)
        connection = holder[0]
        assert connection.alive
        breaks = []
        ue.on_disconnect = lambda conn, reason: breaks.append(reason)
        # after ~25 s the UE is past the 50 m Wi-Fi Direct range
        sim.run_until(60.0)
        assert not connection.alive
        assert breaks == ["out of range"]
        assert medium.connections_broken == 1

    def test_send_beyond_range_breaks_link(self, sim, medium):
        ue = D2DEndpoint("ue", LinearMobility((0.0, 0.0), (30.0, 0.0)))
        relay = make_endpoint("relay", advertising=True)
        medium.register(ue)
        medium.register(relay)
        holder = []
        medium.connect("ue", "relay", holder.append)
        sim.run_until(WIFI_DIRECT.connection_latency_s)
        connection = holder[0]
        sim.run_until(4.0)  # 120 m away now, before the first link check
        outcomes = []
        assert connection.send("ue", 10, "x", on_result=outcomes.append) is False
        assert outcomes == [False]
        assert not connection.alive

    def test_power_off_breaks_connections(self, sim, medium):
        ue = make_endpoint("ue")
        relay = make_endpoint("relay", (2.0, 0.0), advertising=True)
        medium.register(ue)
        medium.register(relay)
        holder = []
        medium.connect("ue", "relay", holder.append)
        sim.run_until(5.0)
        medium.power_off("relay")
        assert not holder[0].alive
        assert medium.connections_of("ue") == []


class TestAdvertisementSafety:
    """Peers see a live read-only view of the advertiser's record — no
    per-scan copies, and no way for a consumer to corrupt the source."""

    def test_peer_view_is_read_only(self, sim, medium):
        medium.register(make_endpoint("ue"))
        medium.register(make_endpoint("relay", (3.0, 0.0), advertising=True, role="relay"))
        found = []
        medium.discover("ue", found.extend)
        sim.run_until(10.0)
        peer = found[0]
        with pytest.raises(TypeError):
            peer.advertisement["role"] = "hacked"
        with pytest.raises(TypeError):
            del peer.advertisement["role"]

    def test_consumer_snapshot_leaves_source_intact(self, sim, medium):
        medium.register(make_endpoint("ue"))
        relay = make_endpoint("relay", (3.0, 0.0), advertising=True, role="relay")
        medium.register(relay)
        found = []
        medium.discover("ue", found.extend)
        sim.run_until(10.0)
        snapshot = dict(found[0].advertisement)
        snapshot["role"] = "edited-copy"
        assert relay.advertisement == {"role": "relay"}

    def test_view_tracks_in_place_advertiser_updates(self, sim, medium):
        medium.register(make_endpoint("ue"))
        relay = make_endpoint("relay", (3.0, 0.0), advertising=True, role="relay")
        medium.register(relay)
        found = []
        medium.discover("ue", found.extend)
        sim.run_until(10.0)
        # The advertiser mutates its record in place; the already-handed-out
        # view reflects it (it is a proxy, not a frozen copy).
        relay.advertisement["load"] = 0.7
        assert found[0].advertisement["load"] == 0.7
