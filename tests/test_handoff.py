"""Relay handoff under mobility: a UE walks from relay A's range into
relay B's.

The framework has no explicit handoff protocol — the behaviour *emerges*
from the pieces: the link monitor breaks the stale connection, pending
beats fall back via the feedback tracker, and the next beat triggers a
fresh discovery that matches the now-nearest relay. These tests pin that
emergent behaviour down.
"""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.core.matching import MatchConfig
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import LinearMobility, StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s
#: relay A at x=0, relay B at x=160; Wi-Fi Direct reaches 50 m.
RELAY_POSITIONS = ((0.0, 0.0), (160.0, 0.0))
#: the UE starts next to A and walks toward B at 0.1 m/s: it leaves A's
#: 50 m range around t = 510 s and enters B's 20 m pairing range around
#: t = 1380 s.
UE_MOBILITY = LinearMobility((2.0, 0.0), (0.1, 0.0))


@pytest.fixture
def rig():
    sim = Simulator(seed=21)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework(
        [], app=STANDARD_APP,
        config=FrameworkConfig(
            matching=MatchConfig(max_pair_distance_m=20.0),
            search_cooldown_s=30.0,
        ),
    )
    relays = []
    for i, position in enumerate(RELAY_POSITIONS):
        relay = Smartphone(sim, f"relay-{i}", mobility=StaticMobility(position),
                           role=Role.RELAY, ledger=ledger,
                           basestation=basestation, d2d_medium=medium)
        framework.add_device(relay, phase_fraction=0.0)
        relays.append(relay)
    ue = Smartphone(sim, "ue-0", mobility=UE_MOBILITY, role=Role.UE,
                    ledger=ledger, basestation=basestation, d2d_medium=medium)
    framework.add_device(ue, phase_fraction=0.3)
    return sim, server, framework, relays, ue


TOTAL_PERIODS = 8  # 8 × 270 s = 2160 s of walking


class TestHandoff:
    def test_ue_serves_from_both_relays_over_the_walk(self, rig):
        sim, server, framework, relays, ue = rig
        sim.run_until(TOTAL_PERIODS * T)
        agent = framework.ues["ue-0"]
        a = framework.relays["relay-0"]
        b = framework.relays["relay-1"]
        # the UE was paired with A early and B late
        assert a.beats_collected >= 1
        assert b.beats_collected >= 1
        assert agent.matches >= 2  # at least one re-pairing happened

    def test_mid_walk_beats_use_cellular(self, rig):
        """In the dead zone between relays the UE falls back to cellular."""
        sim, server, framework, relays, ue = rig
        sim.run_until(TOTAL_PERIODS * T)
        agent = framework.ues["ue-0"]
        assert agent.cellular_sends >= 1

    def test_every_beat_on_time_throughout(self, rig):
        sim, server, framework, relays, ue = rig
        sim.run_until(TOTAL_PERIODS * T)
        ue_beats = {
            record.message.seq
            for record in server.records
            if record.message.origin_device == "ue-0" and record.on_time
        }
        assert len(ue_beats) == TOTAL_PERIODS

    def test_final_attachment_is_the_nearer_relay(self, rig):
        sim, server, framework, relays, ue = rig
        sim.run_until(TOTAL_PERIODS * T)
        agent = framework.ues["ue-0"]
        if agent.relay_id is not None:  # paired at the end of the walk
            assert agent.relay_id == "relay-1"

    def test_online_status_never_lapses(self, rig):
        sim, server, framework, relays, ue = rig
        # sample the server's view of the UE every period
        for period in range(2, TOTAL_PERIODS + 1):
            sim.run_until(period * T)
            assert server.is_online("ue-0", "standard", now=sim.now), period
