"""Unit tests for the uniform-grid spatial index."""

import pytest

from repro.mobility.index import SpatialIndex


def _brute_within(positions, origin, radius_m):
    """Reference answer: ids whose exact distance is within radius."""
    ox, oy = origin
    return {
        did
        for did, (x, y) in positions.items()
        if (x - ox) ** 2 + (y - oy) ** 2 <= radius_m**2
    }


class TestConstruction:
    def test_rejects_non_positive_cell_size(self):
        with pytest.raises(ValueError):
            SpatialIndex(0.0)
        with pytest.raises(ValueError):
            SpatialIndex(-5.0)

    def test_len_and_contains(self):
        index = SpatialIndex(50.0)
        assert len(index) == 0
        index.insert("a", (0.0, 0.0))
        index.insert("b", (120.0, 40.0))
        assert len(index) == 2
        assert "a" in index and "b" in index and "c" not in index


class TestMembership:
    def test_duplicate_insert_raises(self):
        index = SpatialIndex(50.0)
        index.insert("a", (0.0, 0.0))
        with pytest.raises(ValueError):
            index.insert("a", (10.0, 10.0))

    def test_remove_unknown_is_ignored(self):
        index = SpatialIndex(50.0)
        index.remove("ghost")
        assert len(index) == 0

    def test_remove_drops_from_queries(self):
        index = SpatialIndex(50.0)
        index.insert("a", (10.0, 10.0))
        index.insert("b", (20.0, 20.0))
        index.remove("a")
        assert len(index) == 1
        assert set(index.query_neighbors((15.0, 15.0), 50.0)) == {"b"}

    def test_update_rebins_across_cells(self):
        index = SpatialIndex(50.0)
        index.insert("a", (10.0, 10.0))
        index.update("a", (210.0, 210.0))
        assert set(index.query_neighbors((10.0, 10.0), 50.0)) == set()
        assert set(index.query_neighbors((210.0, 210.0), 50.0)) == {"a"}
        assert index.moves == 1

    def test_update_within_cell_is_a_noop_move(self):
        index = SpatialIndex(50.0)
        index.insert("a", (10.0, 10.0))
        index.update("a", (12.0, 12.0))
        assert index.moves == 0
        assert set(index.query_neighbors((10.0, 10.0), 50.0)) == {"a"}


class TestQueryNeighbors:
    def test_returns_superset_of_exact_answer(self):
        index = SpatialIndex(50.0)
        positions = {}
        # Deterministic scatter across several cells.
        for i in range(100):
            pos = (float((i * 37) % 400), float((i * 71) % 400))
            positions[f"d{i}"] = pos
            index.insert(f"d{i}", pos)
        origin = (200.0, 200.0)
        radius = 50.0
        candidates = set(index.query_neighbors(origin, radius))
        exact = _brute_within(positions, origin, radius)
        assert exact <= candidates

    def test_slack_widens_the_disc(self):
        index = SpatialIndex(50.0)
        index.insert("edge", (149.0, 0.0))
        # Cell (2, 0) is outside the unexpanded 50 m cover from (0, 0)...
        assert "edge" not in index.query_neighbors((10.0, 0.0), 50.0)
        # ...but slack pulls it into the candidate set.
        assert "edge" in index.query_neighbors((10.0, 0.0), 50.0, slack_m=60.0)

    def test_negative_reach_returns_nothing(self):
        index = SpatialIndex(50.0)
        index.insert("a", (0.0, 0.0))
        assert index.query_neighbors((0.0, 0.0), 10.0, slack_m=-20.0) == []

    def test_negative_coordinates(self):
        index = SpatialIndex(50.0)
        index.insert("neg", (-75.0, -75.0))
        assert set(index.query_neighbors((-60.0, -60.0), 50.0)) == {"neg"}


class TestQueryBlock:
    def test_is_superset_of_query_neighbors(self):
        index = SpatialIndex(50.0)
        for i in range(60):
            index.insert(f"d{i}", (float((i * 53) % 300), float((i * 29) % 300)))
        origin = (151.0, 151.0)
        narrow = set(index.query_neighbors(origin, 50.0))
        block = set(index.query_block(origin, 50.0))
        assert narrow <= block

    def test_repeat_query_hits_cache(self):
        index = SpatialIndex(50.0)
        index.insert("a", (10.0, 10.0))
        first = index.query_block((12.0, 12.0), 50.0)
        second = index.query_block((12.0, 12.0), 50.0)
        assert second is first  # served verbatim from the block cache
        assert index.block_cache_hits == 1

    def test_insert_invalidates_cache(self):
        index = SpatialIndex(50.0)
        index.insert("a", (10.0, 10.0))
        assert set(index.query_block((12.0, 12.0), 50.0)) == {"a"}
        index.insert("b", (20.0, 20.0))
        assert set(index.query_block((12.0, 12.0), 50.0)) == {"a", "b"}

    def test_remove_invalidates_cache(self):
        index = SpatialIndex(50.0)
        index.insert("a", (10.0, 10.0))
        index.insert("b", (20.0, 20.0))
        index.query_block((12.0, 12.0), 50.0)
        index.remove("a")
        assert set(index.query_block((12.0, 12.0), 50.0)) == {"b"}

    def test_cross_cell_move_invalidates_cache(self):
        index = SpatialIndex(50.0)
        index.insert("a", (10.0, 10.0))
        index.query_block((12.0, 12.0), 50.0)
        index.update("a", (510.0, 510.0))
        assert index.query_block((12.0, 12.0), 50.0) == []

    def test_negative_reach_returns_nothing(self):
        index = SpatialIndex(50.0)
        index.insert("a", (0.0, 0.0))
        assert index.query_block((0.0, 0.0), 10.0, slack_m=-20.0) == []


class TestDiagnostics:
    def test_cell_population(self):
        index = SpatialIndex(50.0)
        index.insert("a", (10.0, 10.0))
        index.insert("b", (20.0, 20.0))
        index.insert("c", (210.0, 210.0))
        assert index.cell_population() == [1, 2]
