"""Unit tests for the UE↔relay wire protocol types."""

import dataclasses

import pytest

from repro.core.protocol import (
    BeatTransfer,
    D2D_HEADER_BYTES,
    DeliveryAck,
    RejectNotice,
)
from repro.workload.messages import PeriodicMessage


def beat(size=54):
    return PeriodicMessage(
        app="standard", origin_device="ue-0", size_bytes=size,
        created_at_s=0.0, period_s=270.0, expiry_s=270.0,
    )


class TestBeatTransfer:
    def test_wire_bytes_adds_framing(self):
        transfer = BeatTransfer(message=beat(54), sent_at_s=1.0)
        assert transfer.wire_bytes == 54 + D2D_HEADER_BYTES

    def test_frozen(self):
        transfer = BeatTransfer(message=beat(), sent_at_s=1.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            transfer.sent_at_s = 2.0

    def test_carries_the_message_unmodified(self):
        message = beat()
        transfer = BeatTransfer(message=message, sent_at_s=1.0)
        assert transfer.message is message


class TestDeliveryAck:
    def test_wire_bytes_scale_with_acked_beats(self):
        small = DeliveryAck(beat_seqs=(1,), delivered_at_s=5.0)
        large = DeliveryAck(beat_seqs=tuple(range(10)), delivered_at_s=5.0)
        assert large.wire_bytes > small.wire_bytes
        assert small.wire_bytes == D2D_HEADER_BYTES + 4

    def test_seqs_are_a_tuple(self):
        ack = DeliveryAck(beat_seqs=(3, 4), delivered_at_s=5.0)
        assert ack.beat_seqs == (3, 4)


class TestRejectNotice:
    def test_fixed_wire_size(self):
        notice = RejectNotice(beat_seq=9, reason="capacity")
        assert notice.wire_bytes == D2D_HEADER_BYTES

    def test_reason_is_advisory_text(self):
        notice = RejectNotice(beat_seq=9, reason="not accepting")
        assert "accepting" in notice.reason
