"""Unit tests for the three-state WCDMA RRC machine (DCH → FACH → IDLE)."""

import pytest

from repro.cellular.modem import CellularModem
from repro.cellular.rrc import (
    RrcState,
    RrcStateMachine,
    WCDMA_3STATE_PROFILE,
    WCDMA_PROFILE,
)
from repro.cellular.signaling import L3MessageType, SignalingLedger
from repro.energy.model import EnergyModel

P = WCDMA_3STATE_PROFILE
#: time at which the radio sits in FACH after one t=0 transmission
IN_FACH_AT = P.setup_latency_s + P.tail_s + 1.0
#: time by which the radio is fully IDLE after one t=0 transmission
IDLE_BY = P.setup_latency_s + P.tail_s + P.fach_tail_s + 1.0


@pytest.fixture
def machine(sim, ledger):
    return RrcStateMachine(sim, "dev", profile=P, ledger=ledger)


class TestStateFlow:
    def test_dch_tail_leads_to_fach_not_idle(self, sim, machine):
        machine.request_transmission(54, lambda ready: None)
        sim.run_until(IN_FACH_AT)
        assert machine.state == RrcState.FACH

    def test_fach_tail_leads_to_idle(self, sim, machine):
        machine.request_transmission(54, lambda ready: None)
        sim.run_until(IDLE_BY)
        assert machine.state == RrcState.IDLE
        assert machine.demotions == 1

    def test_release_sequence_only_at_final_demotion(self, sim, machine, ledger):
        machine.request_transmission(54, lambda ready: None)
        sim.run_until(IN_FACH_AT)
        # in FACH: setup recorded, release NOT yet
        assert ledger.count_for("dev") == len(P.setup_sequence)
        assert ledger.cycles_for("dev") == 0
        sim.run_until(IDLE_BY)
        assert ledger.cycles_for("dev") == 1
        assert ledger.count_for("dev") == P.messages_per_cycle

    def test_fach_time_accounted(self, sim, machine):
        machine.request_transmission(54, lambda ready: None)
        sim.run_until(IDLE_BY)
        assert machine.fach_time_s == pytest.approx(P.fach_tail_s)
        assert machine.connected_time_s == pytest.approx(P.tail_s)


class TestFachRepromotion:
    def test_send_from_fach_uses_cell_update(self, sim, machine, ledger):
        machine.request_transmission(54, lambda ready: None)
        sim.run_until(IN_FACH_AT)
        ready = []
        machine.request_transmission(54, ready.append)
        sim.run_until(IN_FACH_AT + 1.0)
        assert machine.state == RrcState.CONNECTED
        assert machine.fach_promotions == 1
        # repromotion is signalled with CELL UPDATE, not a new setup
        assert ledger.count_for_type(L3MessageType.CELL_UPDATE) == 1
        assert (
            ledger.count_for_type(L3MessageType.RRC_CONNECTION_REQUEST) == 1
        )

    def test_fach_repromotion_is_not_a_fresh_setup(self, sim, machine):
        """when_ready gets setup_was_needed=False: the caller must not pay
        the full setup energy again."""
        machine.request_transmission(54, lambda ready: None)
        sim.run_until(IN_FACH_AT)
        flags = []
        started = machine.request_transmission(54, flags.append)
        assert started is False
        sim.run_until(IN_FACH_AT + 1.0)
        assert flags == [False]

    def test_fach_repromotion_faster_than_full_setup(self, sim, machine):
        machine.request_transmission(54, lambda ready: None)
        sim.run_until(IN_FACH_AT)
        times = []
        machine.request_transmission(54, lambda ready: times.append(sim.now))
        sim.run_until(IN_FACH_AT + 2.0)
        assert times[0] - IN_FACH_AT == pytest.approx(P.fach_promotion_latency_s)
        assert P.fach_promotion_latency_s < P.setup_latency_s

    def test_cycle_count_spans_fach_bounce(self, sim, machine, ledger):
        """DCH → FACH → DCH → FACH → IDLE is ONE cycle, not two."""
        machine.request_transmission(54, lambda ready: None)
        sim.run_until(IN_FACH_AT)
        machine.request_transmission(54, lambda ready: None)
        sim.run_until(IN_FACH_AT + 60.0)
        assert ledger.cycles_for("dev") == 1


class TestForceRelease:
    def test_force_release_from_fach(self, sim, machine):
        machine.request_transmission(54, lambda ready: None)
        sim.run_until(IN_FACH_AT)
        machine.force_release()
        assert machine.state == RrcState.IDLE
        assert machine.fach_time_s > 0
        sim.run_until(IDLE_BY + 60.0)
        assert machine.state == RrcState.IDLE


class TestEnergy:
    def test_fach_dwell_charged_at_reduced_power(self, sim, ledger):
        three_state = EnergyModel("a")
        two_state = EnergyModel("b")
        CellularModem(sim, "a", energy=three_state, ledger=ledger,
                      rrc_profile=P).send(54)
        CellularModem(sim, "b", energy=two_state, ledger=ledger,
                      rrc_profile=WCDMA_PROFILE).send(54)
        sim.run_until(100.0)
        # the three-state machine occupies the radio longer (FACH dwell)
        # at reduced power; with these profiles the totals are comparable
        # but FACH time is visibly charged
        assert three_state.total_uah > 0
        assert two_state.total_uah > 0
        ratio = three_state.total_uah / two_state.total_uah
        assert 0.7 < ratio < 1.3

    def test_burst_cheaper_on_three_state(self, sim, ledger):
        """A beat shortly after the DCH tail: the three-state machine
        re-promotes from FACH (2 L3 msgs, no setup energy) where the
        two-state one pays a full fresh cycle."""
        from repro.sim.engine import Simulator

        def run(profile):
            local_sim = Simulator(seed=0)
            local_ledger = SignalingLedger()
            energy = EnergyModel("dev")
            modem = CellularModem(local_sim, "dev", energy=energy,
                                  ledger=local_ledger, rrc_profile=profile)
            modem.send(54)
            local_sim.run_until(profile.setup_latency_s + profile.tail_s + 2.0)
            modem.send(54)
            local_sim.run_until(200.0)
            return local_ledger.count_for("dev"), energy.total_uah

        l3_three, __ = run(P)
        l3_two, __ = run(WCDMA_PROFILE)
        assert l3_three < l3_two  # 8+2+3... < 2 full cycles of 8
