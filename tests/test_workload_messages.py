"""Unit tests for message types and relayability constraints."""

import pytest

from repro.workload.messages import (
    HeartbeatMessage,
    MAX_RELAYABLE_BYTES,
    MessageKind,
    NotRelayableError,
    PeriodicMessage,
    validate_relayable,
)


def make_message(**overrides):
    defaults = dict(
        app="standard",
        origin_device="ue-0",
        size_bytes=54,
        created_at_s=100.0,
        period_s=270.0,
        expiry_s=270.0,
    )
    defaults.update(overrides)
    return PeriodicMessage(**defaults)


class TestPeriodicMessage:
    def test_deadline_is_creation_plus_expiry(self):
        message = make_message()
        assert message.deadline_s == pytest.approx(370.0)

    def test_expiry_semantics(self):
        message = make_message()
        assert not message.is_expired(370.0)
        assert message.is_expired(370.01)

    def test_remaining_slack(self):
        message = make_message()
        assert message.remaining_slack_s(150.0) == pytest.approx(220.0)
        assert message.remaining_slack_s(400.0) < 0

    def test_sequence_numbers_unique(self):
        assert make_message().seq != make_message().seq

    def test_invalid_fields_rejected(self):
        with pytest.raises(ValueError):
            make_message(size_bytes=0)
        with pytest.raises(ValueError):
            make_message(period_s=0)
        with pytest.raises(ValueError):
            make_message(expiry_s=0)

    def test_default_kind_is_heartbeat(self):
        assert make_message().kind == MessageKind.HEARTBEAT

    def test_heartbeat_subclass_pins_kind(self):
        beat = HeartbeatMessage(
            app="x",
            origin_device="d",
            size_bytes=10,
            created_at_s=0.0,
            period_s=60.0,
            expiry_s=60.0,
        )
        assert beat.kind == MessageKind.HEARTBEAT

    def test_frozen(self):
        message = make_message()
        with pytest.raises(Exception):
            message.size_bytes = 99


class TestRelayabilityConstraints:
    """The paper's three constraints (conclusion section)."""

    def test_normal_heartbeat_is_relayable(self):
        validate_relayable(make_message())  # must not raise

    def test_oversized_message_refused(self):
        with pytest.raises(NotRelayableError):
            validate_relayable(make_message(size_bytes=MAX_RELAYABLE_BYTES + 1))

    def test_reply_requiring_message_refused(self):
        with pytest.raises(NotRelayableError):
            validate_relayable(make_message(requires_reply=True))

    def test_no_slack_message_refused(self):
        with pytest.raises(NotRelayableError):
            validate_relayable(make_message(expiry_s=0.5))

    def test_advertisement_extension_is_relayable(self):
        """The paper's future-work extension to ads/diagnostics."""
        ad = make_message(kind=MessageKind.ADVERTISEMENT, size_bytes=200)
        validate_relayable(ad)

    def test_diagnostic_extension_is_relayable(self):
        diag = make_message(kind=MessageKind.DIAGNOSTIC, period_s=600.0, expiry_s=600.0)
        validate_relayable(diag)
