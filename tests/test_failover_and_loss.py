"""Tests for the UE cache failover fast path and edge-of-range packet loss."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.core.matching import MatchConfig
from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.d2d.link import LinkModel
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s


def build_two_relay_rig(seed=0, cache_ttl_bump=None):
    sim = Simulator(seed=seed)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework(
        [], app=STANDARD_APP,
        config=FrameworkConfig(matching=MatchConfig(distance_tie_m=0.1)),
    )
    relays = []
    for i in range(2):
        relay = Smartphone(sim, f"relay-{i}",
                           mobility=StaticMobility((float(i), 0.0)),
                           role=Role.RELAY, ledger=ledger,
                           basestation=basestation, d2d_medium=medium)
        framework.add_device(relay, phase_fraction=0.0)
        relays.append(relay)
    ue = Smartphone(sim, "ue-0", mobility=StaticMobility((0.0, 1.0)),
                    role=Role.UE, ledger=ledger, basestation=basestation,
                    d2d_medium=medium)
    framework.add_device(ue, phase_fraction=0.4)
    if cache_ttl_bump is not None:
        framework.ues["ue-0"].detector.cache_ttl_s = cache_ttl_bump
    return sim, server, framework, relays, ue


class TestCacheFailover:
    def test_failover_skips_rescan_when_cache_fresh(self):
        sim, server, framework, relays, ue = build_two_relay_rig(
            cache_ttl_bump=10_000.0,  # keep the first scan warm
        )
        sim.run_until(0.4 * T + 20.0)  # paired with the nearer relay
        agent = framework.ues["ue-0"]
        first_relay = agent.relay_id
        assert first_relay is not None
        # kill the attached relay; the next beat triggers the failover
        framework.devices[first_relay].power_off()
        sim.run_until(1.4 * T + 40.0)
        assert agent.cache_failovers == 1
        assert agent.searches == 1  # no second discovery scan
        assert agent.relay_id is not None
        assert agent.relay_id != first_relay

    def test_failover_avoids_the_dead_relay(self):
        sim, server, framework, relays, ue = build_two_relay_rig(
            cache_ttl_bump=10_000.0,
        )
        sim.run_until(0.4 * T + 20.0)
        agent = framework.ues["ue-0"]
        dead = agent.relay_id
        framework.devices[dead].power_off()
        sim.run_until(2 * T)
        assert agent.relay_id != dead

    def test_stale_cache_falls_back_to_scanning(self):
        sim, server, framework, relays, ue = build_two_relay_rig()
        # default TTL is 30 s: by the time the relay dies mid-period the
        # original scan is long stale → a fresh discovery is required
        sim.run_until(0.4 * T + 20.0)
        agent = framework.ues["ue-0"]
        framework.devices[agent.relay_id].power_off()
        sim.run_until(2 * T)
        assert agent.cache_failovers == 0
        assert agent.searches >= 2

    def test_beats_survive_the_failover(self):
        sim, server, framework, relays, ue = build_two_relay_rig(
            cache_ttl_bump=10_000.0,
        )
        sim.run_until(0.4 * T + 20.0)
        agent = framework.ues["ue-0"]
        framework.devices[agent.relay_id].power_off()
        sim.run_until(4 * T)
        on_time = {
            r.message.seq for r in server.records
            if r.message.origin_device == "ue-0" and r.on_time
        }
        assert len(on_time) == 4


class TestEdgeOfRangeLoss:
    def _edge_pair(self, distance):
        sim = Simulator(seed=7)
        medium = D2DMedium(sim, WIFI_DIRECT)
        a = D2DEndpoint("a", StaticMobility((0.0, 0.0)))
        b = D2DEndpoint("b", StaticMobility((distance, 0.0)))
        b.advertising = True
        medium.register(a)
        medium.register(b)
        holder = []
        medium.connect("a", "b", holder.append)
        sim.run_until(5.0)
        return sim, holder[0]

    def test_no_loss_in_comfortable_range(self):
        sim, connection = self._edge_pair(distance=10.0)
        outcomes = []
        for __ in range(30):
            connection.send("a", 54, "x", on_result=outcomes.append)
        sim.run_until(100.0)
        assert outcomes == [True] * 30

    def test_losses_appear_near_the_edge(self):
        edge = WIFI_DIRECT.link.max_range_m()
        distance = edge * 0.98  # deep in the PER ramp
        assert WIFI_DIRECT.link.packet_error_rate(distance) > 0.1
        sim, connection = self._edge_pair(distance=min(distance,
                                                       WIFI_DIRECT.max_range_m - 1))
        outcomes = []
        for __ in range(60):
            connection.send("a", 54, "x", on_result=outcomes.append)
        sim.run_until(1000.0)
        assert outcomes.count(False) > 0
        assert connection.messages_lost == outcomes.count(False)

    def test_loss_is_deterministic_per_seed(self):
        def run():
            edge = WIFI_DIRECT.link.max_range_m()
            sim, connection = self._edge_pair(
                distance=min(edge * 0.98, WIFI_DIRECT.max_range_m - 1)
            )
            outcomes = []
            for __ in range(40):
                connection.send("a", 54, "x", on_result=outcomes.append)
            sim.run_until(1000.0)
            return outcomes

        assert run() == run()


class TestServerDuplicates:
    def test_duplicate_counted_once_per_extra_copy(self, sim):
        from repro.workload.messages import PeriodicMessage

        server = IMServer(sim)
        beat = PeriodicMessage(
            app="standard", origin_device="ue", size_bytes=54,
            created_at_s=0.0, period_s=270.0, expiry_s=270.0,
        )
        server.receive(beat, via_device="relay", time_s=1.0)
        server.receive(beat, via_device="ue", time_s=2.0)
        server.receive(beat, via_device="ue", time_s=3.0)
        assert server.duplicate_count == 2

    def test_clean_run_has_no_duplicates(self):
        from repro.scenarios import run_relay_scenario

        result = run_relay_scenario(n_ues=2, periods=3)
        assert result.context.server.duplicate_count == 0
