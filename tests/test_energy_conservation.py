"""Cross-cutting conservation laws: ledgers, traces and breakdowns agree."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.energy.power_monitor import PowerMonitor
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s


@pytest.fixture(scope="module")
def monitored_run():
    """A full relaying run with Monsoon-style monitors on every phone."""
    sim = Simulator(seed=17)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework([], app=STANDARD_APP)
    monitors = {}
    devices = {}
    for device_id, role, position, phase in (
        ("relay-0", Role.RELAY, (0.0, 0.0), 0.0),
        ("ue-0", Role.UE, (1.0, 0.0), 0.4),
        ("ue-1", Role.UE, (1.0, 1.0), 0.6),
    ):
        monitor = PowerMonitor()
        device = Smartphone(sim, device_id, mobility=StaticMobility(position),
                            role=role, ledger=ledger, basestation=basestation,
                            d2d_medium=medium, power_monitor=monitor)
        framework.add_device(device, phase_fraction=phase)
        monitors[device_id] = monitor
        devices[device_id] = device
    sim.run_until(3 * T - 1)
    framework.shutdown()
    sim.run_until(3 * T + 60)
    return devices, monitors, ledger, server, framework


class TestEnergyConservation:
    def test_trace_integral_equals_ledger_total(self, monitored_run):
        """The synthesized Monsoon trace carries exactly the charge the
        energy ledger booked — for every device."""
        devices, monitors, __, __, __ = monitored_run
        for device_id, device in devices.items():
            assert monitors[device_id].integral_uah() == pytest.approx(
                device.energy.total_uah, rel=1e-6
            ), device_id

    def test_breakdown_sums_to_total(self, monitored_run):
        devices, __, __, __, __ = monitored_run
        for device in devices.values():
            assert sum(device.energy.breakdown().values()) == pytest.approx(
                device.energy.total_uah
            )

    def test_d2d_plus_cellular_covers_everything(self, monitored_run):
        """No charge lands outside the two radio categories here."""
        devices, __, __, __, __ = monitored_run
        for device in devices.values():
            assert device.energy.d2d_uah + device.energy.cellular_uah == (
                pytest.approx(device.energy.total_uah)
            )


class TestSignalingConservation:
    def test_ledger_decomposes_by_device(self, monitored_run):
        __, __, ledger, __, __ = monitored_run
        assert sum(ledger.by_device().values()) == ledger.total

    def test_cycles_match_setup_release_pairs(self, monitored_run):
        from repro.cellular.signaling import L3MessageType

        __, __, ledger, __, __ = monitored_run
        setups = ledger.count_for_type(L3MessageType.RRC_CONNECTION_REQUEST)
        releases = ledger.count_for_type(L3MessageType.RRC_CONNECTION_RELEASE)
        assert ledger.total_cycles == releases
        assert setups >= releases  # a final connection may still be in tail


class TestDeliveryConservation:
    def test_every_emitted_beat_is_accounted(self, monitored_run):
        """emitted == on-time-delivered (no losses, no dupes in this run)."""
        devices, __, __, server, framework = monitored_run
        emitted = sum(
            agent.monitor.generators[STANDARD_APP.name].beats_emitted
            for agent in framework.ue_agents()
        ) + framework.relays["relay-0"].monitor.generators[
            STANDARD_APP.name
        ].beats_emitted
        on_time = {r.message.seq for r in server.records if r.on_time}
        assert len(on_time) == emitted
        assert server.duplicate_count == 0

    def test_rewards_equal_collected(self, monitored_run):
        __, __, __, __, framework = monitored_run
        assert framework.rewards.total_beats == (
            framework.total_beats_collected()
        )
