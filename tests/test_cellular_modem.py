"""Unit tests for the cellular modem (energy + signaling + delivery)."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.modem import CellularModem
from repro.cellular.rrc import WCDMA_PROFILE
from repro.energy.model import EnergyModel, EnergyPhase
from repro.energy.profiles import DEFAULT_PROFILE


@pytest.fixture
def modem(sim, ledger, energy):
    return CellularModem(sim, "dev", energy=energy, ledger=ledger)


class TestSingleSend:
    def test_standalone_heartbeat_energy_matches_profile(self, sim, modem, energy):
        """One beat from IDLE costs exactly the calibrated cellular cost."""
        modem.send(54)
        sim.run_until(60.0)  # past the tail demotion
        assert energy.total_uah == pytest.approx(
            DEFAULT_PROFILE.cellular_heartbeat_uah(54), rel=1e-6
        )

    def test_energy_split_across_phases(self, sim, modem, energy):
        modem.send(54)
        sim.run_until(60.0)
        assert energy.phase_uah(EnergyPhase.CELLULAR_SETUP) == pytest.approx(80.0)
        assert energy.phase_uah(EnergyPhase.CELLULAR_TAIL) == pytest.approx(455.23)
        assert energy.phase_uah(EnergyPhase.CELLULAR_TX) == pytest.approx(
            60.0 + 0.05 * 54
        )

    def test_delivery_callback_and_latency(self, sim, modem):
        results = []
        result = modem.send(54, on_delivered=results.append)
        sim.run_until(60.0)
        assert results == [result]
        assert result.delivered
        assert result.latency_s == pytest.approx(
            WCDMA_PROFILE.setup_latency_s + DEFAULT_PROFILE.cellular_tx_s
        )

    def test_setup_was_needed_flag(self, sim, modem):
        first = modem.send(54)
        sim.run_until(3.0)
        second = modem.send(54)
        sim.run_until(60.0)
        assert first.setup_was_needed is True
        assert second.setup_was_needed is False

    def test_invalid_payload_rejected(self, modem):
        with pytest.raises(ValueError):
            modem.send(0)

    def test_result_latency_none_before_delivery(self, modem):
        result = modem.send(54)
        assert result.latency_s is None
        assert not result.delivered


class TestAggregationEffect:
    def test_back_to_back_sends_share_one_cycle(self, sim, modem, energy, ledger):
        """Sends inside the tail pay no setup and add no signaling —
        the exact mechanism relay aggregation exploits."""
        modem.send(54)
        sim.run_until(3.0)
        modem.send(54)
        modem.send(54)
        sim.run_until(100.0)
        assert ledger.cycles_for("dev") == 1
        assert modem.aggregated_sends == 2
        three_separate = 3 * DEFAULT_PROFILE.cellular_heartbeat_uah(54)
        assert energy.total_uah < three_separate * 0.55

    def test_spaced_sends_pay_full_price_each(self, sim, modem, energy, ledger):
        for i in range(3):
            modem.send(54)
            sim.run_until((i + 1) * 270.0)
        assert ledger.cycles_for("dev") == 3
        assert energy.total_uah == pytest.approx(
            3 * DEFAULT_PROFILE.cellular_heartbeat_uah(54), rel=1e-6
        )

    def test_mid_tail_send_charges_partial_tail(self, sim, modem, energy):
        modem.send(54)
        sim.run_until(4.5)  # 3 s into tail
        modem.send(54)
        sim.run_until(100.0)
        # tail charge: 3 s partial + one full tail after the second send
        expected_tail = DEFAULT_PROFILE.cellular_tail_uah * (
            3.0 / DEFAULT_PROFILE.cellular_tail_s
        ) + DEFAULT_PROFILE.cellular_tail_uah
        assert energy.phase_uah(EnergyPhase.CELLULAR_TAIL) == pytest.approx(
            expected_tail, rel=1e-6
        )


class TestBaseStationDelivery:
    def test_payload_reaches_basestation(self, sim, ledger):
        basestation = BaseStation(sim, ledger=ledger)
        modem = CellularModem(sim, "dev", ledger=ledger, basestation=basestation)
        modem.send(54, payload="hello")
        sim.run_until(10.0)
        assert basestation.uplinks == 1
        assert basestation.bytes_received == 54
        assert basestation.uplinks_by_device == {"dev": 1}


class TestPowerOff:
    def test_send_after_power_off_raises(self, sim, modem):
        modem.power_off()
        with pytest.raises(RuntimeError):
            modem.send(54)

    def test_power_off_drops_rrc(self, sim, modem, ledger):
        modem.send(54)
        sim.run_until(3.0)
        modem.power_off()
        sim.run_until(100.0)
        # no release sequence: the connection was dropped, not released
        assert ledger.cycles_for("dev") == 0

    def test_power_on_recovers(self, sim, modem):
        modem.power_off()
        modem.power_on()
        result = modem.send(54)
        sim.run_until(10.0)
        assert result.delivered

    def test_stats_track_sends_and_bytes(self, sim, modem):
        modem.send(54)
        modem.send(100)
        sim.run_until(60.0)
        assert modem.sends == 2
        assert modem.bytes_sent == 154
