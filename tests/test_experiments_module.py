"""Tests for the programmatic experiment registry."""

import pytest

from repro.experiments import (
    REGISTRY,
    TABLE1_PAPER,
    TABLE3_PAPER,
    fig9,
    fig12,
    run_experiment,
    table1,
    table3,
    table4,
)


class TestRegistry:
    def test_every_table_and_figure_registered(self):
        assert {"T1", "T3", "T4", "F8", "F9", "F10", "F11", "F12", "F13",
                "F15", "S1", "C1", "X1", "X2", "X3", "R1"} == set(REGISTRY)

    def test_channel_capacity_artifact_shape(self):
        from repro.experiments import channel_capacity_vs_density

        rows = channel_capacity_vs_density(
            device_counts=(20, 60), duration_s=300.0
        )
        assert set(rows) == {"20 devices", "60 devices"}
        sparse, dense = rows["20 devices"], rows["60 devices"]
        for row in (sparse, dense):
            assert row["transfers"] > 0
            assert row["on_time"] == 1.0
        # More devices in the same arena → more spectrum held.
        assert dense["rb_utilization"] > sparse["rb_utilization"]

    def test_channel_safety_artifact_shape(self):
        from repro.experiments import channel_safety

        rows = channel_safety(seeds=(0,), n_devices=10, duration_s=600.0)
        row = rows["seed 0"]
        assert row["passed"] == 1.0
        assert row["deadline_safe"] == 1.0
        assert row["fixed_violations"] == row["channel_violations"] == 0.0

    def test_channel_selection_artifact_shape(self):
        from repro.experiments import channel_selection_policies

        rows = channel_selection_policies(
            policies=("distance", "rate"), sigmas_db=(8.0,),
            n_devices=120, duration_s=300.0,
        )
        assert set(rows) == {"sigma 8 dB / distance", "sigma 8 dB / rate"}
        for row in rows.values():
            assert row["transfers"] > 0
            assert row["on_time"] == 1.0
        # The X3 claim at high shadowing: channel-aware selection beats
        # distance-only mean delivered rate.
        assert (
            rows["sigma 8 dB / rate"]["mean_rate_bps"]
            > rows["sigma 8 dB / distance"]["mean_rate_bps"]
        )

    def test_chaos_reliability_artifact_shape(self):
        from repro.experiments import chaos_reliability

        rows = chaos_reliability(profiles=["mild"], seeds=(0,))
        assert set(rows) == {"mild"}
        row = rows["mild"]
        assert row["deadline_safe"] == 1.0
        assert row["violations"] == 0.0
        assert row["cases_passed"] == row["cases"] == 1.0

    def test_run_experiment_dispatches(self):
        result = run_experiment("t1")  # case-insensitive
        assert set(result) == set(TABLE1_PAPER)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("F99")

    def test_descriptions_present(self):
        for exp_id, (description, runner) in REGISTRY.items():
            assert description, exp_id
            assert callable(runner), exp_id


class TestExperimentOutputs:
    def test_table1_close_to_paper(self):
        measured = table1(days=3.0, repeats=2)
        for app, share in TABLE1_PAPER.items():
            assert measured[app] == pytest.approx(share, abs=0.05)

    def test_table3_structure_matches_paper_table(self):
        measured = table3()
        assert set(measured) == set(TABLE3_PAPER)
        for side in measured:
            assert set(measured[side]) == set(TABLE3_PAPER[side])

    def test_table4_length_and_monotonicity(self):
        values = table4(max_ues=4)
        assert len(values) == 4
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_fig9_shapes(self):
        saved_system, saved_ue = fig9(max_k=3)
        assert len(saved_system) == len(saved_ue) == 3
        assert all(u > s for u, s in zip(saved_ue, saved_system))

    def test_fig12_returns_flat_original(self):
        ue, relay, original = fig12(distances=(1.0, 10.0), periods=2)
        assert len(ue) == len(relay) == 2
        assert ue[1] > ue[0]
        assert original > 0

    def test_deterministic(self):
        assert fig9(max_k=2) == fig9(max_k=2)

    def test_sensitivity_grid_parallel_matches_serial(self, tmp_path):
        from repro.experiments import sensitivity_grid

        serial = sensitivity_grid(distances=(1.0, 10.0), periods=(1, 2))
        parallel = sensitivity_grid(
            distances=(1.0, 10.0), periods=(1, 2), workers=2,
            cache_dir=str(tmp_path),
        )
        assert serial.points == parallel.points
        # the near/long corner wins, as in the full bench grid
        assert parallel.best("system_saved").params == {
            "distance_m": 1.0, "periods": 2,
        }


class TestCliIntegration:
    def test_experiment_list(self, capsys):
        from repro.cli import main

        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "F9" in out and "Table I" in out

    def test_experiment_runs_and_tabulates(self, capsys):
        from repro.cli import main

        assert main(["experiment", "T4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "value" in out

    def test_experiment_tuple_result(self, capsys):
        from repro.cli import main

        assert main(["experiment", "F9"]) == 0
        out = capsys.readouterr().out
        assert "part 1" in out and "part 2" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["experiment", "F99"]) == 2
