"""Tests for the related-work baselines: piggybacking and fast dormancy."""

import pytest

from repro.baseline.fast_dormancy import (
    FAST_DORMANCY_PROFILE,
    FAST_DORMANCY_TAIL_S,
    FastDormancySystem,
)
from repro.baseline.piggyback import PiggybackSystem
from repro.baseline.traffic_driver import MixedTrafficDevice
from repro.cellular.basestation import BaseStation
from repro.cellular.rrc import WCDMA_PROFILE
from repro.device import Smartphone
from repro.workload.apps import STANDARD_APP

T = STANDARD_APP.heartbeat_period_s


def build_phone(sim, ledger, device_id="dev-0", rrc_profile=WCDMA_PROFILE,
                basestation=None):
    return Smartphone(
        sim, device_id, ledger=ledger, rrc_profile=rrc_profile,
        basestation=basestation,
    )


class TestMixedTrafficDevice:
    def test_generates_both_kinds(self, sim, ledger):
        phone = build_phone(sim, ledger)
        beats, data = [], []
        driver = MixedTrafficDevice(
            phone, STANDARD_APP, sim.rng.get("t"),
            on_heartbeat=beats.append, on_data=data.append,
            phase_fraction=0.0,
        )
        sim.run_until(4 * T)
        assert driver.heartbeats_emitted == 5  # t = 0, T, 2T, 3T, 4T
        assert driver.data_messages_sent > 0
        assert len(data) == driver.data_messages_sent

    def test_data_rate_matches_table_i_share(self, sim, ledger):
        phone = build_phone(sim, ledger)
        driver = MixedTrafficDevice(
            phone, STANDARD_APP, sim.rng.get("t"),
            on_heartbeat=lambda m: None, on_data=lambda b: None,
            phase_fraction=0.0,
        )
        sim.run_until(100 * T)
        # share 0.5 → expect roughly as many data messages as beats
        ratio = driver.data_messages_sent / driver.heartbeats_emitted
        assert ratio == pytest.approx(1.0, abs=0.3)

    def test_zero_scale_disables_data(self, sim, ledger):
        phone = build_phone(sim, ledger)
        driver = MixedTrafficDevice(
            phone, STANDARD_APP, sim.rng.get("t"),
            on_heartbeat=lambda m: None, on_data=lambda b: None,
            data_rate_scale=0.0, phase_fraction=0.0,
        )
        sim.run_until(10 * T)
        assert driver.data_messages_sent == 0

    def test_stop_halts_everything(self, sim, ledger):
        phone = build_phone(sim, ledger)
        driver = MixedTrafficDevice(
            phone, STANDARD_APP, sim.rng.get("t"),
            on_heartbeat=lambda m: None, on_data=lambda b: None,
            phase_fraction=0.0,
        )
        sim.run_until(T)
        driver.stop()
        beats_before = driver.heartbeats_emitted
        data_before = driver.data_messages_sent
        sim.run_until(10 * T)
        assert driver.heartbeats_emitted == beats_before
        assert driver.data_messages_sent == data_before

    def test_invalid_scale_rejected(self, sim, ledger):
        phone = build_phone(sim, ledger)
        with pytest.raises(ValueError):
            MixedTrafficDevice(
                phone, STANDARD_APP, sim.rng.get("t"),
                on_heartbeat=lambda m: None, on_data=lambda b: None,
                data_rate_scale=-1.0,
            )


class TestPiggybackSystem:
    def _run(self, sim, ledger, data_rate_scale=3.0, duration=8 * T):
        basestation = BaseStation(sim, ledger=ledger)
        phone = build_phone(sim, ledger, basestation=basestation)
        system = PiggybackSystem(data_rate_scale=data_rate_scale)
        system.add_device(phone, sim.rng.get("pb"), phase_fraction=0.0)
        sim.run_until(duration - 1)
        system.shutdown()
        sim.run_until(duration + 30)
        return system, phone

    def test_busy_phone_piggybacks_most_beats(self, sim, ledger):
        system, __ = self._run(sim, ledger, data_rate_scale=3.0)
        assert system.piggyback_ratio > 0.5
        assert system.piggybacked_beats + system.standalone_beats >= 8

    def test_idle_phone_gains_nothing(self, sim, ledger):
        """No foreground traffic → every beat goes out alone: the reason
        the paper moves beyond piggybacking."""
        system, __ = self._run(sim, ledger, data_rate_scale=0.0)
        assert system.piggybacked_beats == 0
        assert system.standalone_beats >= 8

    def test_beats_never_dropped(self, sim, ledger):
        system, __ = self._run(sim, ledger, data_rate_scale=1.0)
        driver = next(iter(system.drivers.values()))
        delivered = system.piggybacked_beats + system.standalone_beats
        pending = sum(len(p.pending) for p in system.policies.values())
        assert delivered + pending == driver.heartbeats_emitted

    def test_piggybacked_beats_add_no_rrc_cycles(self, sim, ledger):
        """A piggybacked beat shares the data message's cycle."""
        system, phone = self._run(sim, ledger, data_rate_scale=3.0)
        driver = next(iter(system.drivers.values()))
        # cycles ≈ transmissions that stood alone, not total messages
        total_transmissions = system.data_sends + system.standalone_beats
        assert phone.modem.sends == total_transmissions
        assert ledger.cycles_for("dev-0") <= total_transmissions

    def test_duplicate_device_rejected(self, sim, ledger):
        phone = build_phone(sim, ledger)
        system = PiggybackSystem()
        system.add_device(phone, sim.rng.get("pb"))
        with pytest.raises(ValueError):
            system.add_device(phone, sim.rng.get("pb"))


class TestFastDormancyEndToEnd:
    def test_system_drives_mixed_traffic(self, sim, ledger):
        basestation = BaseStation(sim, ledger=ledger)
        phone = build_phone(sim, ledger, rrc_profile=FAST_DORMANCY_PROFILE,
                            basestation=basestation)
        system = FastDormancySystem(data_rate_scale=1.0)
        system.add_device(phone, sim.rng.get("fd"), phase_fraction=0.0)
        sim.run_until(4 * T - 1)
        system.shutdown()
        sim.run_until(4 * T + 30)
        assert system.heartbeat_sends == 4  # beats at 0, T, 2T, 3T
        assert system.data_sends > 0
        assert basestation.uplinks == system.heartbeat_sends + system.data_sends
        # fast dormancy: every send demotes almost immediately, so cycles
        # track transmissions nearly one-for-one (only sends landing inside
        # another's 0.5 s residual tail can share a cycle)
        assert basestation.uplinks - 2 <= ledger.cycles_for("dev-0") <= (
            basestation.uplinks
        )

    def test_duplicate_device_rejected(self, sim, ledger):
        phone = build_phone(sim, ledger, rrc_profile=FAST_DORMANCY_PROFILE)
        system = FastDormancySystem()
        system.add_device(phone, sim.rng.get("fd"))
        with pytest.raises(ValueError):
            system.add_device(phone, sim.rng.get("fd"))


class TestFastDormancySystem:
    def test_profile_has_minimal_tail(self):
        assert FAST_DORMANCY_PROFILE.tail_s == FAST_DORMANCY_TAIL_S
        assert FAST_DORMANCY_PROFILE.tail_s < WCDMA_PROFILE.tail_s / 10

    def test_requires_fast_dormancy_device(self, sim, ledger):
        normal_phone = build_phone(sim, ledger)
        system = FastDormancySystem()
        with pytest.raises(ValueError):
            system.add_device(normal_phone, sim.rng.get("fd"))

    def test_saves_energy_versus_normal_tail(self, sim, ledger):
        fd_phone = build_phone(sim, ledger, device_id="fd",
                               rrc_profile=FAST_DORMANCY_PROFILE)
        normal_phone = build_phone(sim, ledger, device_id="normal")
        fd_phone.modem.send(54)
        normal_phone.modem.send(54)
        sim.run_until(60.0)
        assert fd_phone.energy.total_uah < 0.5 * normal_phone.energy.total_uah

    def test_aggravates_signaling_under_mixed_traffic(self, ledger):
        """The related-work trade-off: bursty traffic that one tail would
        have merged now pays a cycle per transmission."""
        from repro.sim.engine import Simulator
        from repro.cellular.signaling import SignalingLedger

        def run(rrc_profile):
            sim = Simulator(seed=3)
            local_ledger = SignalingLedger()
            phone = Smartphone(sim, "dev", ledger=local_ledger,
                               rrc_profile=rrc_profile)
            # a burst: data at t=0, heartbeat 3 s later (inside normal tail)
            for burst_start in range(0, 2700, 270):
                sim.schedule_at(burst_start, phone.modem.send, 600)
                sim.schedule_at(burst_start + 3.0, phone.modem.send, 54)
            sim.run_until(2800.0)
            return local_ledger.cycles_for("dev"), phone.energy.total_uah

        normal_cycles, normal_energy = run(WCDMA_PROFILE)
        fd_cycles, fd_energy = run(FAST_DORMANCY_PROFILE)
        assert fd_cycles == 2 * normal_cycles  # every burst splits in two
        assert fd_energy < normal_energy  # but energy still drops
