"""Failure-injection tests: delivery must never regress under faults.

The paper's Sec. III-A lists the failure modes its feedback mechanism
exists for: "the relay has ran out of its battery or lost connection to
cellular network before all the collected heartbeat messages are sent",
and "the physical distance between involved smartphones might exceed the
maximum communication distance ... while smartphones movement". Each is
injected here and the invariant checked: every heartbeat still reaches the
server on time (at worst as a duplicate).
"""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.core.scheduler import SchedulerConfig
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.energy.battery import Battery
from repro.mobility.models import LinearMobility, StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s


class FaultRig:
    def __init__(self, seed=0, relay_battery=None, ue_mobility=None):
        self.sim = Simulator(seed=seed)
        self.ledger = SignalingLedger()
        self.basestation = BaseStation(self.sim, ledger=self.ledger)
        self.server = IMServer(self.sim)
        self.basestation.attach_sink(self.server.uplink_sink)
        self.medium = D2DMedium(self.sim, WIFI_DIRECT)
        self.relay = Smartphone(
            self.sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
            role=Role.RELAY, ledger=self.ledger, basestation=self.basestation,
            d2d_medium=self.medium, battery=relay_battery,
        )
        self.ue = Smartphone(
            self.sim, "ue-0",
            mobility=ue_mobility or StaticMobility((1.0, 0.0)),
            role=Role.UE, ledger=self.ledger, basestation=self.basestation,
            d2d_medium=self.medium,
        )
        self.framework = HeartbeatRelayFramework([])
        self.framework.add_device(self.relay, phase_fraction=0.0)
        self.framework.add_device(self.ue, phase_fraction=0.5)

    def ue_beats_delivered_on_time(self):
        records = [
            r for r in self.server.records
            if r.message.origin_device == "ue-0" and r.on_time
        ]
        return {r.message.seq for r in records}


class TestRelayDeath:
    def test_relay_dies_after_collecting_ue_falls_back(self):
        rig = FaultRig()
        # let the UE pair and forward its first beat (t = 135), then kill
        # the relay before the aggregated flush (t = 267)
        rig.sim.run_until(200.0)
        assert rig.framework.ues["ue-0"].beats_forwarded == 1
        rig.relay.power_off()
        rig.sim.run_until(2 * T)
        # the beat reached the server via cellular fallback, on time
        assert len(rig.ue_beats_delivered_on_time()) >= 1
        assert rig.framework.ues["ue-0"].cellular_sends >= 1

    def test_ue_recovers_and_continues_standalone(self):
        rig = FaultRig()
        rig.sim.run_until(200.0)
        rig.relay.power_off()
        rig.sim.run_until(4 * T)
        # all 4 UE beats delivered on time despite the dead relay
        assert len(rig.ue_beats_delivered_on_time()) == 4

    def test_relay_battery_depletion_triggers_same_path(self):
        # battery with just enough charge for discovery+connection+collect
        battery = Battery(capacity_mah=0.8)  # 800 µAh
        rig = FaultRig(relay_battery=battery)
        rig.sim.run_until(4 * T)
        assert not rig.relay.alive  # it did die
        assert len(rig.ue_beats_delivered_on_time()) == 4


class TestMobilityBreak:
    def test_ue_walks_out_of_range_mid_session(self):
        rig = FaultRig(ue_mobility=LinearMobility((1.0, 0.0), (0.5, 0.0)))
        rig.sim.run_until(3 * T)
        # UE crossed the 50 m Wi-Fi Direct range at t ≈ 100 s
        assert len(rig.ue_beats_delivered_on_time()) == 3
        ue_agent = rig.framework.ues["ue-0"]
        assert ue_agent.cellular_sends >= 1

    def test_all_relay_beats_survive_too(self):
        rig = FaultRig(ue_mobility=LinearMobility((1.0, 0.0), (0.5, 0.0)))
        rig.sim.run_until(3 * T)
        relay_records = [
            r for r in rig.server.records
            if r.message.origin_device == "relay-0" and r.on_time
        ]
        assert len(relay_records) == 3


class TestLostAck:
    def test_link_break_after_flush_causes_harmless_duplicate(self):
        """If the link dies between the aggregated uplink and its ack, the
        UE re-sends: the server sees a duplicate, never a loss."""
        rig = FaultRig()
        rig.sim.run_until(200.0)  # beat forwarded, awaiting period flush

        # break the link at t = 266, just before the flush at T-3 = 267
        def sever():
            for connection in rig.medium.connections_of("relay-0"):
                connection.close("injected")

        rig.sim.schedule_at(266.0, sever)
        rig.sim.run_until(T + 60.0)
        on_time = rig.ue_beats_delivered_on_time()
        assert len(on_time) == 1
        # duplicate delivery is acceptable: the beat may appear twice
        total_ue_records = [
            r for r in rig.server.records if r.message.origin_device == "ue-0"
        ]
        assert 1 <= len(total_ue_records) <= 2


class TestCapacityPressure:
    def test_tiny_capacity_never_loses_beats(self):
        sim = Simulator(seed=1)
        ledger = SignalingLedger()
        basestation = BaseStation(sim, ledger=ledger)
        server = IMServer(sim)
        basestation.attach_sink(server.uplink_sink)
        medium = D2DMedium(sim, WIFI_DIRECT)
        framework = HeartbeatRelayFramework(
            [], config=FrameworkConfig(scheduler=SchedulerConfig(capacity=1))
        )
        relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                           role=Role.RELAY, ledger=ledger,
                           basestation=basestation, d2d_medium=medium)
        framework.add_device(relay, phase_fraction=0.0)
        for i in range(4):
            ue = Smartphone(sim, f"ue-{i}",
                            mobility=StaticMobility((1.0, float(i))),
                            role=Role.UE, ledger=ledger,
                            basestation=basestation, d2d_medium=medium)
            framework.add_device(ue, phase_fraction=0.3 + 0.1 * i)
        sim.run_until(2 * T)
        origins = {}
        for record in server.records:
            if record.on_time:
                origins.setdefault(record.message.origin_device, set()).add(
                    record.message.seq
                )
        # every UE got both its beats through (D2D or fallback)
        for i in range(4):
            assert len(origins.get(f"ue-{i}", set())) == 2, f"ue-{i} lost beats"
