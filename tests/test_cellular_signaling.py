"""Unit tests for layer-3 signaling taxonomy and ledger."""

import pytest

from repro.cellular.signaling import (
    Direction,
    L3MessageType,
    RECONFIG_PAYLOAD_STEP_BYTES,
    RELEASE_SEQUENCE,
    SETUP_SEQUENCE,
    SignalingLedger,
    reconfiguration_count,
)


class TestSequences:
    def test_setup_is_five_messages(self):
        assert len(SETUP_SEQUENCE) == 5

    def test_release_is_three_messages(self):
        assert len(RELEASE_SEQUENCE) == 3

    def test_cycle_is_eight_messages_matching_fig15_slope(self):
        """Fig. 15: ~8 layer-3 messages per heartbeat transmission."""
        assert len(SETUP_SEQUENCE) + len(RELEASE_SEQUENCE) == 8

    def test_setup_starts_with_connection_request_uplink(self):
        msg_type, direction = SETUP_SEQUENCE[0]
        assert msg_type == L3MessageType.RRC_CONNECTION_REQUEST
        assert direction == Direction.UPLINK


class TestReconfigurationCount:
    def test_small_payload_needs_none(self):
        assert reconfiguration_count(54) == 0
        assert reconfiguration_count(RECONFIG_PAYLOAD_STEP_BYTES - 1) == 0

    def test_one_step_payload_needs_one(self):
        assert reconfiguration_count(RECONFIG_PAYLOAD_STEP_BYTES) == 1

    def test_grows_with_payload(self):
        assert reconfiguration_count(3 * RECONFIG_PAYLOAD_STEP_BYTES + 10) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            reconfiguration_count(-1)

    def test_two_ue_aggregate_costs_more_than_one_ue(self):
        """The Fig. 15 effect: 3 beats + header crosses the step, 2 don't."""
        one_ue = 2 * 54 + 24
        two_ue = 3 * 54 + 24
        assert reconfiguration_count(one_ue) < reconfiguration_count(two_ue)


class TestLedger:
    def test_record_counts(self):
        ledger = SignalingLedger()
        ledger.record(1.0, "a", L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK)
        ledger.record(2.0, "a", L3MessageType.RRC_CONNECTION_SETUP, Direction.DOWNLINK)
        ledger.record(3.0, "b", L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK)
        assert ledger.total == 3
        assert len(ledger) == 3
        assert ledger.count_for("a") == 2
        assert ledger.count_for("b") == 1
        assert ledger.count_for("missing") == 0
        assert ledger.count_for_type(L3MessageType.RRC_CONNECTION_REQUEST) == 2

    def test_record_sequence(self):
        ledger = SignalingLedger()
        n = ledger.record_sequence(0.0, "a", SETUP_SEQUENCE)
        assert n == 5
        assert ledger.count_for("a") == 5

    def test_cycles(self):
        ledger = SignalingLedger()
        ledger.record_cycle("a")
        ledger.record_cycle("a")
        ledger.record_cycle("b")
        assert ledger.cycles_for("a") == 2
        assert ledger.total_cycles == 3

    def test_messages_filter_by_device(self):
        ledger = SignalingLedger()
        ledger.record(1.0, "a", L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK)
        ledger.record(2.0, "b", L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK)
        assert len(ledger.messages()) == 2
        assert [m.device_id for m in ledger.messages("a")] == ["a"]

    def test_rate_per_second(self):
        ledger = SignalingLedger()
        for t in (0.0, 1.0, 2.0, 3.0):
            ledger.record(t, "a", L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK)
        assert ledger.rate_per_second(0.0, 4.0) == pytest.approx(1.0)
        assert ledger.rate_per_second(0.0, 2.0) == pytest.approx(1.0)

    def test_rate_rejects_empty_window(self):
        with pytest.raises(ValueError):
            SignalingLedger().rate_per_second(1.0, 1.0)

    def test_rate_requires_kept_messages(self):
        ledger = SignalingLedger(keep_messages=False)
        ledger.record(0.0, "a", L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK)
        with pytest.raises(RuntimeError):
            ledger.rate_per_second(0.0, 1.0)

    def test_keep_messages_false_still_counts(self):
        ledger = SignalingLedger(keep_messages=False)
        ledger.record(0.0, "a", L3MessageType.RRC_CONNECTION_REQUEST, Direction.UPLINK)
        assert ledger.total == 1
        assert ledger.messages() == []

    def test_by_device_mapping(self):
        ledger = SignalingLedger()
        ledger.record_sequence(0.0, "x", SETUP_SEQUENCE)
        assert ledger.by_device() == {"x": 5}
