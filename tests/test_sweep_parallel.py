"""The parallel sweep executor: equivalence, caching, observability.

The contract under test (see `repro/sweep.py`):

1. a serial run and a ``workers=4`` run of the same grid produce
   identical :class:`SweepPoint` lists — same order, same params, same
   metric values — for a fixed ``base_seed``;
2. the on-disk cache serves unchanged points without re-running them,
   and any config change (parameter value, seed, version tag) misses;
3. every sweep exports per-point timings and progress counters through
   :class:`repro.metrics.SweepTelemetry`.

The runners used with ``workers>1`` are module-level on purpose: the
``ProcessPoolExecutor`` path pickles the callable, which is exactly the
regression the smoke CI job also guards.
"""

import pytest

from repro.metrics import SweepPointTiming, SweepTelemetry
from repro.scenarios import relay_savings_runner
from repro.sim.rng import make_rng, spawn
from repro.sweep import CODE_VERSION_TAG, SweepCache, grid_sweep

GRID = {"a": [1, 2], "b": [10, 20, 30]}


def seeded_runner(a, b, seed):
    """Deterministic in (a, b, seed) — and genuinely seed-sensitive."""
    rng = make_rng(seed, "sweep-parallel-test")
    return {"value": rng.random() + a * b, "seed_echo": float(seed % 1000)}


def unseeded_runner(a, b):
    return {"product": float(a * b)}


class TestSerialParallelEquivalence:
    def test_identical_points_for_fixed_base_seed(self):
        serial = grid_sweep(GRID, seeded_runner, base_seed=2017, workers=0)
        parallel = grid_sweep(GRID, seeded_runner, base_seed=2017, workers=4)
        assert serial.points == parallel.points
        assert serial.param_names == parallel.param_names

    def test_workers_one_is_the_serial_fallback(self):
        one = grid_sweep(GRID, seeded_runner, base_seed=5, workers=1)
        none = grid_sweep(GRID, seeded_runner, base_seed=5)
        assert one.points == none.points
        assert one.telemetry.mode == "serial"

    def test_real_simulator_grid_matches(self):
        """A 2×2 paired-scenario grid survives pickling and matches serial."""
        grid = {"distance_m": [1.0, 10.0], "periods": [1, 2]}
        serial = grid_sweep(grid, relay_savings_runner)
        parallel = grid_sweep(grid, relay_savings_runner, workers=4)
        assert serial.points == parallel.points

    def test_seed_axis_conflicts_with_base_seed(self):
        with pytest.raises(ValueError):
            grid_sweep({"seed": [1, 2]}, seeded_runner, base_seed=3)

    def test_point_order_is_canonical_grid_order(self):
        parallel = grid_sweep(GRID, unseeded_runner, workers=4)
        expected = [(a, b) for a in GRID["a"] for b in GRID["b"]]
        got = [(p.params["a"], p.params["b"]) for p in parallel.points]
        assert got == expected


class CountingRunner:
    """Serial-only runner that records how often it actually ran."""

    def __init__(self):
        self.calls = 0

    def __call__(self, a, b, seed):
        self.calls += 1
        return seeded_runner(a, b, seed)


class TestCache:
    def test_second_run_is_all_hits_and_skips_the_runner(self, tmp_path):
        runner = CountingRunner()
        first = grid_sweep(GRID, runner, base_seed=1, cache_dir=str(tmp_path))
        assert runner.calls == len(first)
        assert first.telemetry.cache_misses == len(first)

        second = grid_sweep(GRID, runner, base_seed=1, cache_dir=str(tmp_path))
        assert runner.calls == len(first)  # nothing recomputed
        assert second.telemetry.cache_hits == len(first)
        assert second.telemetry.cache_misses == 0
        assert second.points == first.points

    def test_changed_grid_value_misses(self, tmp_path):
        runner = CountingRunner()
        grid_sweep(GRID, runner, base_seed=1, cache_dir=str(tmp_path))
        calls_before = runner.calls
        changed = {"a": [1, 3], "b": GRID["b"]}  # a=3 rows are new
        grid_sweep(changed, runner, base_seed=1, cache_dir=str(tmp_path))
        # a=1 rows were already cached under identical (params, seed) keys
        assert runner.calls == calls_before + len(GRID["b"])

    def test_changed_base_seed_misses_everything(self, tmp_path):
        runner = CountingRunner()
        grid_sweep(GRID, runner, base_seed=1, cache_dir=str(tmp_path))
        calls_before = runner.calls
        grid_sweep(GRID, runner, base_seed=2, cache_dir=str(tmp_path))
        assert runner.calls == calls_before + len(GRID["a"]) * len(GRID["b"])

    def test_version_tag_segregates_entries(self, tmp_path):
        runner = CountingRunner()
        grid_sweep(GRID, runner, base_seed=1, cache_dir=str(tmp_path))
        calls_before = runner.calls
        grid_sweep(GRID, runner, base_seed=1, cache_dir=str(tmp_path),
                   version_tag="runner-v2")
        assert runner.calls == 2 * calls_before

    def test_parallel_run_populates_cache_serial_run_reads_it(self, tmp_path):
        parallel = grid_sweep(GRID, seeded_runner, base_seed=9, workers=4,
                              cache_dir=str(tmp_path))
        serial = grid_sweep(GRID, seeded_runner, base_seed=9,
                            cache_dir=str(tmp_path))
        assert serial.points == parallel.points
        assert serial.telemetry.cache_hits == len(parallel)

    def test_cache_layout_and_key_stability(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        key = cache.key_for({"a": 1}, seed=7)
        assert cache.key_for({"a": 1}, seed=7) == key
        assert cache.key_for({"a": 2}, seed=7) != key
        assert cache.key_for({"a": 1}, seed=8) != key
        assert cache.version_tag == CODE_VERSION_TAG
        path = cache.put({"a": 1}, 7, {"m": 1.5})
        assert path.endswith(f"{key}.json")
        assert f"/{key[:2]}/" in path
        assert cache.get({"a": 1}, 7) == {"m": 1.5}

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        path = cache.put({"a": 1}, None, {"m": 2.0})
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get({"a": 1}, None) is None
        assert cache.misses == 1


class TestTelemetry:
    def test_every_point_gets_a_measured_timing(self):
        sweep = grid_sweep(GRID, seeded_runner, base_seed=3, workers=4)
        telemetry = sweep.telemetry
        assert isinstance(telemetry, SweepTelemetry)
        assert telemetry.mode == "process-pool"
        assert telemetry.workers == 4
        assert telemetry.completed == telemetry.total == len(sweep)
        assert telemetry.pending == 0
        assert {t.index for t in telemetry.timings} == set(range(len(sweep)))
        assert all(isinstance(t, SweepPointTiming) for t in telemetry.timings)
        assert all(t.seconds > 0.0 for t in telemetry.timings)
        assert telemetry.wall_seconds > 0.0
        assert telemetry.busy_seconds() > 0.0
        assert telemetry.throughput() > 0.0

    def test_summary_and_dict_export(self):
        sweep = grid_sweep(GRID, unseeded_runner, workers=2)
        summary = sweep.telemetry.summary()
        assert "process-pool" in summary and "workers=2" in summary
        exported = sweep.telemetry.to_dict()
        assert exported["completed"] == len(sweep)
        assert len(exported["timings"]) == len(sweep)

    def test_progress_callback_sees_every_completion(self):
        seen = []
        grid_sweep(GRID, unseeded_runner,
                   progress=lambda t: seen.append(t.completed))
        assert seen == list(range(1, len(GRID["a"]) * len(GRID["b"]) + 1))


class TestSeedDerivation:
    def test_runner_receives_spawned_seeds_in_grid_order(self):
        sweep = grid_sweep(GRID, seeded_runner, base_seed=42, workers=4)
        for index, point in enumerate(sweep.points):
            assert point.metrics["seed_echo"] == float(spawn(42, index) % 1000)


class TestCounterHygiene:
    def test_cacheless_sweep_reports_no_cache_traffic(self):
        """Regression: a sweep with no cache attached used to report every
        point as a cache *miss*, making `hits/(hits+misses)` look like a
        0% hit rate instead of 'no cache in play'."""
        sweep = grid_sweep(GRID, unseeded_runner)
        assert sweep.telemetry.cache_hits == 0
        assert sweep.telemetry.cache_misses == 0
        assert "cache" not in sweep.telemetry.summary()

    def test_telemetry_counters_reconcile_with_the_cache(self, tmp_path):
        cold_cache = SweepCache(str(tmp_path))
        cold = grid_sweep(GRID, unseeded_runner, cache=cold_cache)
        assert cold.telemetry.cache_misses == cold_cache.misses == len(cold)
        assert cold.telemetry.cache_hits == cold_cache.hits == 0

        warm_cache = SweepCache(str(tmp_path))
        warm = grid_sweep(GRID, unseeded_runner, cache=warm_cache)
        assert warm.telemetry.cache_hits == warm_cache.hits == len(warm)
        assert warm.telemetry.cache_misses == warm_cache.misses == 0

    def test_attempts_distinguish_computed_from_cache_served(self, tmp_path):
        grid_sweep(GRID, unseeded_runner, cache_dir=str(tmp_path))
        warm = grid_sweep(GRID, unseeded_runner, cache_dir=str(tmp_path))
        cold_attempts = {t.attempts for t in
                         grid_sweep(GRID, unseeded_runner).telemetry.timings}
        assert cold_attempts == {1}
        assert {t.attempts for t in warm.telemetry.timings} == {0}
