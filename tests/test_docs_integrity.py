"""Documentation integrity: the docs must point at things that exist."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDeliverableFiles:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "CHANGELOG.md", "pyproject.toml"):
            assert (ROOT / name).is_file(), name

    def test_docs_directory(self):
        for name in ("architecture.md", "calibration.md", "extending.md",
                     "api.md", "faq.md"):
            assert (ROOT / "docs" / name).is_file(), name


class TestDesignExperimentIndex:
    def test_every_bench_target_in_design_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        targets = set(re.findall(r"`(benchmarks/[\w/]+\.py)`", design))
        assert targets, "DESIGN.md lists no bench targets?"
        for target in targets:
            assert (ROOT / target).is_file(), target

    def test_every_module_mentioned_in_design_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        modules = set(re.findall(
            r"`((?:core|cellular|d2d|energy|mobility|workload|sim|baseline)"
            r"/[\w]+\.py)`",
            design,
        ))
        for module in modules:
            assert (ROOT / "src" / "repro" / module).is_file(), module

    def test_experiments_md_references_existing_benches(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        targets = set(re.findall(r"`(benchmarks/[\w/]+\.py)", text))
        for target in targets:
            assert (ROOT / target).is_file(), target


class TestReadmeLinks:
    def test_relative_links_resolve(self):
        readme = (ROOT / "README.md").read_text()
        for link in re.findall(r"\]\((?!http)([^)#]+)\)", readme):
            assert (ROOT / link).exists(), link

    def test_readme_mentions_every_example(self):
        readme = (ROOT / "README.md").read_text()
        for example in sorted((ROOT / "examples").glob("*.py")):
            assert example.name in readme, example.name


class TestBenchCoverageOfPaperArtifacts:
    def test_one_bench_per_table_and_figure(self):
        """Every evaluation artifact id in DESIGN.md §4 has a bench file."""
        expected = {
            "T1": "test_table1_heartbeat_proportion.py",
            "T3": "test_table3_phase_energy.py",
            "T4": "test_table4_receive_energy.py",
            "F6": "test_fig6_7_current_traces.py",
            "F8": "test_fig8_energy_vs_transmissions.py",
            "F9": "test_fig9_saved_energy.py",
            "F10": "test_fig10_relay_multi_ue.py",
            "F11": "test_fig11_wasted_saved_ratio.py",
            "F12": "test_fig12_distance_sweep.py",
            "F13": "test_fig13_size_sweep.py",
            "F15": "test_fig15_signaling.py",
        }
        for artifact, filename in expected.items():
            assert (ROOT / "benchmarks" / filename).is_file(), artifact
