"""Unit and integration tests for the interference-aware channel layer.

Covers the pieces individually — PHY arithmetic, the resource-block
pool's bookkeeping, both allocators — and then the assembled
:class:`ChannelModel` inside real scenarios: channel-mode runs produce
per-run aggregates, fixed mode stays byte-identical to the pre-channel
implementation, and capacity-derived transfer durations reshape (but
never break) delivery and energy accounting.
"""

import math

import pytest

from repro.channel.allocator import (
    ALLOCATORS,
    CentralizedAllocator,
    LinkRequest,
    MessagePassingAllocator,
    make_allocator,
    total_penalty_mw,
)
from repro.channel.model import ChannelConfig, ChannelModel, TransferGrant
from repro.channel.phy import (
    dbm_to_mw,
    mw_to_dbm,
    shannon_capacity_bps,
    sinr_db,
    thermal_noise_dbm,
)
from repro.channel.rb import RBLease, ResourceBlockPool
from repro.d2d.link import LinkModel
from repro.scenarios import build_network, run_crowd_scenario, run_relay_scenario


class TestPhy:
    def test_dbm_mw_round_trip(self):
        for dbm in (-120.0, -60.0, 0.0, 23.0):
            assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm)

    def test_mw_to_dbm_of_zero_is_negative_infinity(self):
        assert mw_to_dbm(0.0) == float("-inf")

    def test_thermal_noise_matches_ktb(self):
        # -174 dBm/Hz over one LTE PRB (180 kHz) plus a 7 dB noise figure.
        noise = thermal_noise_dbm(180_000.0, noise_figure_db=7.0)
        assert noise == pytest.approx(-174.0 + 10 * math.log10(180_000.0) + 7.0)

    def test_thermal_noise_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            thermal_noise_dbm(0.0)

    def test_sinr_without_interference_is_snr(self):
        assert sinr_db(-60.0, (), -114.0) == pytest.approx(-60.0 - (-114.0))

    def test_interference_sums_in_linear_domain(self):
        # Two equal interferers cost exactly 3 dB more than one when the
        # noise floor is negligible next to them.
        one = sinr_db(-60.0, [-80.0], -200.0)
        two = sinr_db(-60.0, [-80.0, -80.0], -200.0)
        assert one - two == pytest.approx(10 * math.log10(2.0), abs=1e-9)

    def test_shannon_capacity_is_b_log2_one_plus_snr(self):
        # SINR of exactly 0 dB (linear 1.0) → B * log2(2) = B.
        assert shannon_capacity_bps(180_000.0, 0.0) == pytest.approx(180_000.0)

    def test_shannon_capacity_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            shannon_capacity_bps(-1.0, 10.0)


def _lease(lease_id, rb, pos=(0.0, 0.0), now=0.0):
    return RBLease(
        lease_id=lease_id, rb=rb, tx_id="t", rx_id="r",
        tx_pos=pos, rx_pos=pos, created_s=now, busy_until_s=now,
    )


class TestResourceBlockPool:
    def test_grant_and_release_round_trip(self):
        pool = ResourceBlockPool(4)
        pool.grant(_lease("a->b", 2), now=0.0)
        assert "a->b" in pool
        assert pool.occupancy() == [0, 0, 1, 0]
        pool.release("a->b", now=1.0)
        assert "a->b" not in pool
        assert pool.occupancy() == [0, 0, 0, 0]
        assert (pool.grants, pool.releases) == (1, 1)

    def test_double_booking_rejected(self):
        pool = ResourceBlockPool(4)
        pool.grant(_lease("a->b", 0), now=0.0)
        with pytest.raises(ValueError, match="already live"):
            pool.grant(_lease("a->b", 1), now=0.0)

    def test_out_of_range_block_rejected(self):
        pool = ResourceBlockPool(4)
        with pytest.raises(ValueError, match="out of range"):
            pool.grant(_lease("a->b", 4), now=0.0)

    def test_release_is_idempotent(self):
        pool = ResourceBlockPool(2)
        assert pool.release("ghost", now=0.0) is None
        assert pool.releases == 0

    def test_reap_idle_expires_only_stale_leases(self):
        pool = ResourceBlockPool(2)
        stale = _lease("old", 0)
        stale.busy_until_s = 1.0
        fresh = _lease("new", 1)
        fresh.busy_until_s = 9.0
        pool.grant(stale, now=0.0)
        pool.grant(fresh, now=0.0)
        reaped = pool.reap_idle(now=7.0, idle_timeout_s=5.0)
        assert [lease.lease_id for lease in reaped] == ["old"]
        assert "new" in pool and "old" not in pool

    def test_utilization_integrates_busy_time(self):
        pool = ResourceBlockPool(2)
        pool.grant(_lease("a", 0), now=0.0)
        pool.release("a", now=5.0)
        # One of two blocks held for half a 10 s horizon → 25%.
        assert pool.utilization(10.0) == pytest.approx(0.25)

    def test_audit_clean_after_churn(self):
        pool = ResourceBlockPool(3)
        for i in range(9):
            pool.grant(_lease(f"l{i}", i % 3), now=float(i))
        for i in range(0, 9, 2):
            pool.release(f"l{i}", now=10.0)
        ok, reason = pool.audit()
        assert ok, reason
        assert sum(pool.occupancy()) == len(pool)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            ResourceBlockPool(0)


def _requests(*positions):
    """LinkRequests with 1 m tx→rx offsets at the given anchor points."""
    return [
        LinkRequest(f"l{i}", (x, y), (x + 1.0, y))
        for i, (x, y) in enumerate(positions)
    ]


class TestAllocators:
    link = LinkModel()

    def test_make_allocator_resolves_names_and_instances(self):
        assert make_allocator(None).name == "centralized"
        assert make_allocator("message-passing").name == "message-passing"
        instance = CentralizedAllocator()
        assert make_allocator(instance) is instance
        with pytest.raises(ValueError, match="unknown allocator"):
            make_allocator("psychic")
        assert sorted(ALLOCATORS) == ["centralized", "message-passing"]

    def test_two_close_links_get_distinct_blocks(self):
        requests = _requests((0.0, 0.0), (3.0, 0.0))
        for name in ALLOCATORS:
            assignment = make_allocator(name).allocate(requests, 2, self.link)
            assert assignment["l0"] != assignment["l1"], name

    def test_far_links_may_share_but_near_pair_split_first(self):
        # Two colocated pairs far apart: the cheap split puts each
        # colocated pair on different blocks.
        requests = _requests(
            (0.0, 0.0), (2.0, 0.0), (500.0, 0.0), (502.0, 0.0)
        )
        assignment = CentralizedAllocator().allocate(requests, 2, self.link)
        assert assignment["l0"] != assignment["l1"]
        assert assignment["l2"] != assignment["l3"]

    def test_exhaustive_and_message_passing_agree_on_objective(self):
        requests = _requests((0.0, 0.0), (5.0, 5.0), (40.0, 10.0))
        exact = CentralizedAllocator().allocate(requests, 3, self.link)
        distributed = MessagePassingAllocator().allocate(requests, 3, self.link)
        assert total_penalty_mw(distributed, requests, self.link) == pytest.approx(
            total_penalty_mw(exact, requests, self.link), rel=1e-9, abs=1e-18
        )

    def test_message_passing_reports_iterations(self):
        allocator = MessagePassingAllocator()
        allocator.allocate(_requests((0.0, 0.0), (4.0, 0.0)), 2, self.link)
        assert allocator.last_iterations >= 1

    def test_contended_instance_iterates_and_matches_exhaustive(self):
        # Six clustered links over three blocks — a regression for the
        # broken min-sum update that collapsed every message to zero:
        # messages must actually propagate (more than one iteration) and
        # the settled assignment must reach the exhaustive optimum, which
        # pure 1-opt repair from an all-zeros start provably does not
        # (~2.5x the optimal objective on this geometry).
        requests = _requests(
            (0.0, 0.0), (3.0, 0.0), (6.0, 0.0),
            (0.0, 3.0), (3.0, 3.0), (6.0, 3.0),
        )
        allocator = MessagePassingAllocator()
        distributed = allocator.allocate(requests, 3, self.link)
        assert allocator.last_iterations > 1
        exact = CentralizedAllocator().allocate(requests, 3, self.link)
        assert total_penalty_mw(distributed, requests, self.link) == pytest.approx(
            total_penalty_mw(exact, requests, self.link), rel=1e-9, abs=1e-18
        )

    def test_centralized_pick_avoids_the_occupied_block(self):
        pool_leases = [_lease("busy", 0, pos=(0.0, 0.0))]
        request = LinkRequest("new", (1.0, 0.0), (2.0, 0.0))
        rb = CentralizedAllocator().pick(request, pool_leases, 2, self.link)
        assert rb == 1

    def test_message_passing_pick_joins_a_separating_consensus(self):
        # The distributed pick re-runs the joint consensus with live
        # leases pinned to their actual blocks, so the newcomer is the
        # node routed off the shared block.
        pool_leases = [_lease("zz->zz", 0, pos=(0.0, 0.0))]
        request = LinkRequest("aa->bb", (1.0, 0.0), (2.0, 0.0))
        allocator = MessagePassingAllocator()
        rb = allocator.pick(request, pool_leases, 2, self.link)
        assert rb == 1
        # And with no incumbents at all, the lowest block wins.
        assert allocator.pick(request, [], 2, self.link) == 0

    def test_allocators_are_deterministic(self):
        requests = _requests((0.0, 0.0), (7.0, 3.0), (20.0, 8.0))
        for name in ALLOCATORS:
            first = make_allocator(name).allocate(requests, 3, self.link)
            second = make_allocator(name).allocate(requests, 3, self.link)
            assert first == second, name


class TestChannelModel:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChannelConfig(num_rbs=0)
        with pytest.raises(ValueError):
            ChannelConfig(min_rate_bps=0.0)
        with pytest.raises(ValueError):
            ChannelConfig(overhead_s=-1.0)

    def test_solo_transfer_runs_at_the_interference_free_bound(self):
        model = ChannelModel()
        grant = model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        assert isinstance(grant, TransferGrant)
        assert grant.interferers == 0
        assert grant.rate_bps == pytest.approx(model.solo_rate_bps(5.0))
        assert grant.duration_s == pytest.approx(
            model.config.overhead_s + grant.airtime_s
        )

    def test_repeat_transfer_reuses_the_lease(self):
        model = ChannelModel()
        first = model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        second = model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 1.0)
        assert first.lease_id == second.lease_id
        assert model.pool.grants == 1

    def test_co_channel_interference_cuts_the_rate(self):
        # Force both directed links onto the same block with num_rbs=1.
        model = ChannelModel(ChannelConfig(num_rbs=1))
        solo = model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        contended = model.begin_transfer(
            "c", "d", (10.0, 0.0), (15.0, 0.0), 100, 0.1
        )
        assert contended.interferers == 1
        assert contended.rate_bps < solo.rate_bps
        assert contended.sinr_db < model.solo_sinr_db(5.0)

    def test_rate_floor_terminates_hopeless_transfers(self):
        model = ChannelModel(ChannelConfig(num_rbs=1, min_rate_bps=1000.0))
        model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        # Interferer transmitting right on top of the victim receiver.
        grant = model.begin_transfer(
            "c", "d", (1000.0, 0.0), (0.05, 0.0), 100, 0.1
        )
        assert grant.rate_bps >= 1000.0
        assert math.isfinite(grant.duration_s)

    def test_idle_leases_are_reaped_on_the_next_transfer(self):
        model = ChannelModel(ChannelConfig(lease_idle_timeout_s=2.0))
        model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        model.begin_transfer("c", "d", (50.0, 0.0), (55.0, 0.0), 100, 10.0)
        assert model.pool.get("a->b") is None
        assert model.pool.releases == 1

    def test_stats_snapshot_shape(self):
        model = ChannelModel()
        model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        model.end_of_run(10.0)
        snap = model.stats_snapshot(10.0)
        assert snap["mode"] == "sinr"
        assert snap["allocator"] == "centralized"
        assert snap["transfers"] == 1
        assert snap["rb_grants"] == 1
        assert 0.0 <= snap["rb_utilization"] <= 1.0
        assert snap["density"]["0"]["transfers"] == 1

    def test_empty_run_snapshot_uses_nulls_not_nan(self):
        snap = ChannelModel().stats_snapshot(10.0)
        assert snap["transfers"] == 0
        assert snap["mean_sinr_db"] is None
        assert snap["mean_rate_bps"] is None


class TestScenarioIntegration:
    def test_build_network_rejects_unknown_channel(self):
        with pytest.raises(ValueError, match="channel must be"):
            build_network(channel="magic")

    def test_fixed_mode_is_byte_identical_to_default(self):
        default = run_relay_scenario(n_ues=2, periods=3, seed=5)
        fixed = run_relay_scenario(n_ues=2, periods=3, seed=5, channel="fixed")
        assert (
            default.metrics.to_comparable_dict()
            == fixed.metrics.to_comparable_dict()
        )
        assert default.metrics.channel is None
        assert fixed.metrics.channel is None

    def test_channel_mode_attaches_aggregates_and_delivers(self):
        result = run_relay_scenario(n_ues=2, periods=3, seed=5, channel="sinr")
        stats = result.metrics.channel
        assert stats is not None and stats["mode"] == "sinr"
        assert stats["transfers"] > 0
        assert result.on_time_fraction() == 1.0

    def test_channel_mode_appears_in_comparable_dict(self):
        result = run_relay_scenario(n_ues=1, periods=2, seed=0, channel="sinr")
        comparable = result.metrics.to_comparable_dict()
        assert comparable["channel"]["mode"] == "sinr"

    def test_short_transfers_bill_less_forwarding_energy_than_fixed(self):
        # At 1 m the Shannon airtime is microseconds; the capacity-billed
        # forwarding charge must undercut the fixed 0.8 s constant.
        fixed = run_relay_scenario(n_ues=1, periods=3, seed=0)
        sinr = run_relay_scenario(n_ues=1, periods=3, seed=0, channel="sinr")
        fixed_fwd = fixed.metrics.devices["ue-0"].energy_breakdown["d2d_forward"]
        sinr_fwd = sinr.metrics.devices["ue-0"].energy_breakdown["d2d_forward"]
        assert 0.0 < sinr_fwd < fixed_fwd

    def test_message_passing_allocator_runs_the_crowd(self):
        result = run_crowd_scenario(
            n_devices=16, duration_s=300.0, seed=1,
            channel="sinr", allocator="message-passing", num_rbs=3,
        )
        stats = result.metrics.channel
        assert stats["allocator"] == "message-passing"
        assert stats["num_rbs"] == 3
        assert stats["transfers"] > 0

    def test_shadowing_sigma_knob_reshapes_discovery(self):
        calm = run_crowd_scenario(
            n_devices=12, duration_s=300.0, seed=3, shadowing_sigma_db=0.0
        )
        stormy = run_crowd_scenario(
            n_devices=12, duration_s=300.0, seed=3, shadowing_sigma_db=12.0
        )
        # Same seed, different lognormal regime: the RSSI draws differ.
        assert (
            calm.metrics.to_comparable_dict()
            != stormy.metrics.to_comparable_dict()
        )
        # And each regime is individually replayable.
        again = run_crowd_scenario(
            n_devices=12, duration_s=300.0, seed=3, shadowing_sigma_db=12.0
        )
        assert (
            stormy.metrics.to_comparable_dict()
            == again.metrics.to_comparable_dict()
        )

    def test_shadowing_sigma_applied_to_link_model(self):
        context = build_network(shadowing_sigma_db=9.5)
        assert context.medium.technology.link.shadowing_sigma_db == 9.5
        sinr_ctx = build_network(channel="sinr", shadowing_sigma_db=9.5)
        # The channel model shares the (overridden) link curve.
        assert sinr_ctx.medium.channel.link.shadowing_sigma_db == 9.5


class TestLinkEstimate:
    """`estimate_link` — the pure query feeding channel-aware selection."""

    def test_empty_channel_estimate_matches_the_solo_bound(self):
        model = ChannelModel()
        est = model.estimate_link((0.0, 0.0), (5.0, 0.0), 100)
        assert est.interferers == 0
        assert est.sinr_db == pytest.approx(model.solo_sinr_db(5.0))
        assert est.rate_bps == pytest.approx(model.solo_rate_bps(5.0))
        assert est.solo_rate_bps == pytest.approx(est.rate_bps)
        bits = (100 + model.config.protocol_overhead_bytes) * 8
        assert est.airtime_s == pytest.approx(bits / est.rate_bps)
        assert est.duration_s == pytest.approx(
            model.config.overhead_s + est.airtime_s
        )

    def test_estimate_sees_live_co_channel_interference(self):
        # One block only: the live lease must show up as an interferer.
        model = ChannelModel(ChannelConfig(num_rbs=1))
        model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        est = model.estimate_link((10.0, 0.0), (15.0, 0.0), 100)
        assert est.interferers == 1
        assert est.sinr_db < est.solo_sinr_db
        assert est.rate_bps < est.solo_rate_bps

    def test_estimate_prefers_an_empty_block(self):
        # Six blocks, one occupied: the estimate lands on a free one and
        # predicts the interference-free figure.
        model = ChannelModel()
        model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        est = model.estimate_link((10.0, 0.0), (15.0, 0.0), 100)
        assert est.interferers == 0
        assert est.rate_bps == pytest.approx(est.solo_rate_bps)

    def test_estimate_rate_never_below_the_floor(self):
        model = ChannelModel(ChannelConfig(num_rbs=1, min_rate_bps=1000.0))
        model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        # victim receiver right next to the live transmitter
        est = model.estimate_link((1000.0, 0.0), (0.05, 0.0), 100)
        assert est.rate_bps >= 1000.0
        assert math.isfinite(est.duration_s)

    def test_estimate_is_pure(self):
        # Any number of estimates must not lease, reap, bill, or record.
        model = ChannelModel(ChannelConfig(lease_idle_timeout_s=2.0))
        model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        before = (
            model.pool.grants,
            model.pool.releases,
            len(model.pool.live_leases()),
            model.stats.transfers,
        )
        for i in range(25):
            # far past the idle timeout: a stateful path would reap the lease
            model.estimate_link((10.0, 0.0), (15.0, 0.0), 100, now=100.0 + i)
        after = (
            model.pool.grants,
            model.pool.releases,
            len(model.pool.live_leases()),
            model.stats.transfers,
        )
        assert after == before


class TestLeasePositionRefresh:
    """Regression: interferer SINR used positions frozen at *their* last
    transfer. With a position resolver installed, live-lease endpoints
    follow the devices, so a later transfer sees co-channel transmitters
    where they are now — and `begin_transfer` refreshes the victim's own
    stale lease the same way."""

    @staticmethod
    def _tracked(model, positions):
        model.position_resolver = lambda device_id, now: positions.get(device_id)
        return model

    def test_interferer_position_tracks_the_resolver(self):
        positions = {"a": (0.0, 0.0), "b": (5.0, 0.0)}
        stale = ChannelModel(ChannelConfig(num_rbs=1))
        fresh = self._tracked(ChannelModel(ChannelConfig(num_rbs=1)), positions)
        for model in (stale, fresh):
            model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        # "a" wanders right next to the new victim receiver "d"...
        positions["a"] = (100.0, 0.0)
        grant_stale = stale.begin_transfer(
            "c", "d", (95.0, 0.0), (100.0, 1.0), 100, 1.0
        )
        grant_fresh = fresh.begin_transfer(
            "c", "d", (95.0, 0.0), (100.0, 1.0), 100, 1.0
        )
        # ...so the refreshed model sees a much louder interferer.
        assert grant_fresh.sinr_db < grant_stale.sinr_db

    def test_estimate_link_resolves_interferer_positions(self):
        positions = {"a": (0.0, 0.0), "b": (5.0, 0.0)}
        model = self._tracked(ChannelModel(ChannelConfig(num_rbs=1)), positions)
        model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        far = model.estimate_link((95.0, 0.0), (100.0, 1.0), 100, now=1.0)
        positions["a"] = (100.0, 0.0)
        near = model.estimate_link((95.0, 0.0), (100.0, 1.0), 100, now=1.0)
        assert near.sinr_db < far.sinr_db
        # without `now` the estimate reads the lease as-is (no resolver)
        stale = model.estimate_link((95.0, 0.0), (100.0, 1.0), 100)
        assert stale.sinr_db == pytest.approx(far.sinr_db)

    def test_unknown_devices_keep_their_lease_positions(self):
        model = ChannelModel(ChannelConfig(num_rbs=1))
        model.position_resolver = lambda device_id, now: None
        model.begin_transfer("a", "b", (0.0, 0.0), (5.0, 0.0), 100, 0.0)
        grant = model.begin_transfer(
            "c", "d", (10.0, 0.0), (15.0, 0.0), 100, 1.0
        )
        assert grant.interferers == 1  # resolver returning None is benign
