"""Tests for trace-driven workloads."""

import random

import pytest

from repro.workload.apps import STANDARD_APP
from repro.workload.trace import (
    HeartbeatTrace,
    TraceEvent,
    TraceReplayGenerator,
    synthesize_trace,
)


def small_trace():
    return HeartbeatTrace([
        TraceEvent(10.0, "a", "standard", 54),
        TraceEvent(5.0, "b", "standard", 54),
        TraceEvent(280.0, "a", "standard", 54),
    ])


class TestTraceContainer:
    def test_events_sorted_by_time(self):
        trace = small_trace()
        assert [e.time_s for e in trace.events] == [5.0, 10.0, 280.0]

    def test_device_queries(self):
        trace = small_trace()
        assert trace.devices() == ["a", "b"]
        assert len(trace.for_device("a")) == 2
        assert len(trace) == 3

    def test_duration_and_intervals(self):
        trace = small_trace()
        assert trace.duration_s() == 280.0
        assert trace.mean_interval_s("a") == pytest.approx(270.0)
        assert trace.mean_interval_s("b") == 0.0

    def test_event_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(-1.0, "a", "standard", 54)
        with pytest.raises(ValueError):
            TraceEvent(1.0, "a", "standard", 0)


class TestCsvRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        original = small_trace()
        original.save_csv(path)
        loaded = HeartbeatTrace.load_csv(path)
        assert loaded.events == original.events

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,device\n1.0,a\n")
        with pytest.raises(ValueError):
            HeartbeatTrace.load_csv(str(path))


class TestSynthesis:
    def test_deterministic_under_seed(self):
        a = synthesize_trace(["d0", "d1"], STANDARD_APP, 5000.0,
                             random.Random(3))
        b = synthesize_trace(["d0", "d1"], STANDARD_APP, 5000.0,
                             random.Random(3))
        assert a.events == b.events

    def test_mean_interval_near_period(self):
        trace = synthesize_trace(["d0"], STANDARD_APP, 100 * 270.0,
                                 random.Random(1))
        assert trace.mean_interval_s("d0") == pytest.approx(270.0, rel=0.15)

    def test_misses_thin_the_trace(self):
        dense = synthesize_trace(["d"], STANDARD_APP, 50 * 270.0,
                                 random.Random(5), miss_probability=0.0)
        thin = synthesize_trace(["d"], STANDARD_APP, 50 * 270.0,
                                random.Random(5), miss_probability=0.4)
        assert len(thin) < len(dense)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_trace(["d"], STANDARD_APP, 0.0, random.Random(0))
        with pytest.raises(ValueError):
            synthesize_trace(["d"], STANDARD_APP, 10.0, random.Random(0),
                             miss_probability=1.0)


class TestReplay:
    def test_replays_device_slice_at_recorded_times(self, sim):
        beats = []
        trace = small_trace()
        TraceReplayGenerator(sim, "a", trace, beats.append).start()
        sim.run_until(1000.0)
        assert [b.created_at_s for b in beats] == [10.0, 280.0]
        assert all(b.origin_device == "a" for b in beats)

    def test_known_app_gets_registry_expiry(self, sim):
        beats = []
        TraceReplayGenerator(sim, "a", small_trace(), beats.append).start()
        sim.run_until(1000.0)
        assert beats[0].expiry_s == STANDARD_APP.expiry_s

    def test_stop_halts_replay(self, sim):
        beats = []
        generator = TraceReplayGenerator(sim, "a", small_trace(), beats.append)
        generator.start()
        sim.run_until(20.0)
        generator.stop()
        sim.run_until(1000.0)
        assert len(beats) == 1

    def test_end_to_end_trace_driven_relaying(self):
        """A synthesized trace drives a full UE through the framework."""
        from repro.cellular.basestation import BaseStation
        from repro.cellular.signaling import SignalingLedger
        from repro.core.framework import HeartbeatRelayFramework
        from repro.d2d.base import D2DMedium
        from repro.d2d.wifi_direct import WIFI_DIRECT
        from repro.device import Role, Smartphone
        from repro.mobility.models import StaticMobility
        from repro.sim.engine import Simulator
        from repro.workload.server import IMServer

        sim = Simulator(seed=9)
        ledger = SignalingLedger()
        basestation = BaseStation(sim, ledger=ledger)
        server = IMServer(sim)
        basestation.attach_sink(server.uplink_sink)
        medium = D2DMedium(sim, WIFI_DIRECT)
        framework = HeartbeatRelayFramework([])
        relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                           role=Role.RELAY, ledger=ledger,
                           basestation=basestation, d2d_medium=medium)
        framework.add_device(relay, phase_fraction=0.0)
        ue = Smartphone(sim, "ue-0", mobility=StaticMobility((1.0, 0.0)),
                        role=Role.UE, ledger=ledger, basestation=basestation,
                        d2d_medium=medium)
        framework.add_device(ue, phase_fraction=0.5)
        agent = framework.ues["ue-0"]
        agent.monitor.stop()  # replace the periodic generator with the trace
        horizon = 6 * 270.0
        trace = synthesize_trace(["ue-0"], STANDARD_APP, horizon,
                                 random.Random(2))
        TraceReplayGenerator(sim, "ue-0", trace, agent.monitor.intercept).start()
        sim.run_until(horizon + 60.0)

        delivered = {
            r.message.seq for r in server.records
            if r.message.origin_device == "ue-0" and r.on_time
        }
        # every trace beat arrived on time, via relay or fallback
        assert len(delivered) == len(trace)
        assert agent.beats_forwarded >= 1
