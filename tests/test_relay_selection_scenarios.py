"""Scenario-level tests for the pluggable relay-selection strategies."""

import pytest

from repro.mobility.space import Arena
from repro.scenarios import run_crowd_scenario

COMMON = dict(
    n_devices=20,
    relay_fraction=0.15,
    duration_s=600.0,
    arena=Arena(100.0, 100.0),
    hotspots=3,
    seed=6,
)


class TestSelectionStrategies:
    def test_all_strategies_produce_working_systems(self):
        for strategy in ("roundrobin", "greedy", "random"):
            result = run_crowd_scenario(relay_selection=strategy, **COMMON)
            assert result.on_time_fraction() == 1.0, strategy
            assert result.metrics.delivery.received > 0, strategy

    def test_relay_budget_respected(self):
        for strategy in ("roundrobin", "greedy", "random"):
            result = run_crowd_scenario(relay_selection=strategy, **COMMON)
            assert len(result.relay_ids) <= round(20 * 0.15), strategy

    def test_strategies_pick_different_relays(self):
        picks = {}
        for strategy in ("roundrobin", "greedy", "random"):
            result = run_crowd_scenario(relay_selection=strategy, **COMMON)
            picks[strategy] = frozenset(result.relay_ids)
        # at least two of the three strategies disagree
        assert len(set(picks.values())) >= 2

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_crowd_scenario(relay_selection="psychic", **COMMON)

    def test_original_mode_ignores_selection(self):
        result = run_crowd_scenario(relay_selection="greedy", mode="original",
                                    **COMMON)
        assert result.relay_ids == []

    def test_pre_run_hook_sees_wired_devices(self):
        seen = {}

        def hook(context, devices):
            seen["n"] = len(devices)
            seen["sim_time"] = context.sim.now

        run_crowd_scenario(pre_run=hook, **COMMON)
        assert seen["n"] == 20
        assert seen["sim_time"] == 0.0
