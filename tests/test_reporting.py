"""Unit tests for table/series formatting."""

import pytest

from repro.reporting import (
    format_comparison,
    format_series,
    format_table,
    percent,
    sparkline,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["App", "Share"], [["WeChat", 0.5], ["QQ", 0.526]])
        lines = text.splitlines()
        assert lines[0].startswith("App")
        assert "WeChat" in lines[2]
        assert "0.53" in lines[3]

    def test_title_included(self):
        text = format_table(["a"], [[1]], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_format_override(self):
        text = format_table(["x"], [[1.23456]], float_format="{:.4f}")
        assert "1.2346" in text

    def test_integers_not_float_formatted(self):
        text = format_table(["x"], [[7]])
        assert "7" in text and "7.00" not in text


class TestFormatSeries:
    def test_one_column_per_curve(self):
        text = format_series(
            "k", [1, 2], {"ue": [1.0, 2.0], "relay": [3.0, 4.0]}
        )
        header = text.splitlines()[0]
        assert "k" in header and "ue" in header and "relay" in header

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("k", [1, 2], {"ue": [1.0]})


class TestSmallHelpers:
    def test_comparison_line(self):
        line = format_comparison("Fig 9", ">50%", "52%", "OK")
        assert "paper=>50%" in line and "[OK]" in line

    def test_percent(self):
        assert percent(0.361) == "36.1%"
        assert percent(0.5, decimals=0) == "50%"

    def test_sparkline_monotone(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] != line[-1]

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        flat = sparkline([2.0, 2.0, 2.0])
        assert len(set(flat)) == 1

    def test_sparkline_downsamples(self):
        assert len(sparkline(list(range(200)), width=40)) == 40
