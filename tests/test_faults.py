"""Tests for the public fault-injection API."""

import pytest

from repro.cellular.basestation import BaseStation
from repro.cellular.signaling import SignalingLedger
from repro.core.feedback import FeedbackTracker
from repro.core.framework import HeartbeatRelayFramework
from repro.d2d.base import D2DMedium
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.energy.battery import Battery
from repro.faults import AckLossSwitch, FaultPlan
from repro.mobility.models import StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP
from repro.workload.messages import PeriodicMessage
from repro.workload.server import IMServer

T = STANDARD_APP.heartbeat_period_s


def build_rig(relay_battery=None, seed=0):
    sim = Simulator(seed=seed)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = D2DMedium(sim, WIFI_DIRECT)
    framework = HeartbeatRelayFramework([], app=STANDARD_APP)
    relay = Smartphone(sim, "relay-0", mobility=StaticMobility((0.0, 0.0)),
                       role=Role.RELAY, ledger=ledger, basestation=basestation,
                       d2d_medium=medium, battery=relay_battery)
    framework.add_device(relay, phase_fraction=0.0)
    ue = Smartphone(sim, "ue-0", mobility=StaticMobility((1.0, 0.0)),
                    role=Role.UE, ledger=ledger, basestation=basestation,
                    d2d_medium=medium)
    framework.add_device(ue, phase_fraction=0.5)
    return sim, medium, server, framework, relay, ue


def ue_on_time(server):
    return {
        r.message.seq for r in server.records
        if r.message.origin_device == "ue-0" and r.on_time
    }


class TestDeviceDeath:
    def test_kill_fires_and_delivery_survives(self):
        sim, medium, server, framework, relay, ue = build_rig()
        plan = FaultPlan(sim)
        fault = plan.kill_device_at(200.0, relay)
        sim.run_until(3 * T)
        assert fault.fired
        assert not relay.alive
        assert len(ue_on_time(server)) == 3
        assert plan.fired_count == 1
        assert any("FIRED" in line for line in plan.report())

    def test_report_shows_pending_before_firing(self):
        sim, medium, server, framework, relay, ue = build_rig()
        plan = FaultPlan(sim)
        plan.kill_device_at(5000.0, relay)
        sim.run_until(10.0)
        assert any("pending" in line for line in plan.report())


class TestBatteryDrain:
    def test_drain_triggers_depletion_path(self):
        battery = Battery(capacity_mah=100.0)
        sim, medium, server, framework, relay, ue = build_rig(
            relay_battery=battery
        )
        plan = FaultPlan(sim)
        fault = plan.drain_battery_at(150.0, relay, to_level=0.0)
        sim.run_until(3 * T)
        assert fault.fired
        assert battery.is_depleted
        assert not relay.alive
        assert len(ue_on_time(server)) == 3

    def test_requires_a_battery(self):
        sim, medium, server, framework, relay, ue = build_rig()
        with pytest.raises(ValueError):
            FaultPlan(sim).drain_battery_at(10.0, relay)

    def test_partial_drain_keeps_device_alive(self):
        battery = Battery(capacity_mah=100.0)
        sim, medium, server, framework, relay, ue = build_rig(
            relay_battery=battery
        )
        plan = FaultPlan(sim)
        plan.drain_battery_at(10.0, relay, to_level=0.5)
        sim.run_until(20.0)
        assert relay.alive
        assert battery.level == pytest.approx(0.5, abs=0.02)


class TestLinkBreak:
    def test_break_severs_and_framework_recovers(self):
        sim, medium, server, framework, relay, ue = build_rig()
        plan = FaultPlan(sim)
        fault = plan.break_links_at(200.0, medium, "relay-0")
        sim.run_until(4 * T)
        assert fault.fired
        assert "1 link" in fault.detail
        # the UE re-paired (same relay is still alive and advertising)
        assert framework.ues["ue-0"].matches >= 2
        assert len(ue_on_time(server)) == 4


class TestAckLoss:
    def test_dropped_acks_trigger_fallbacks_not_losses(self):
        sim, medium, server, framework, relay, ue = build_rig()
        plan = FaultPlan(sim)
        # relay flushes at ~263 s; drop every ack in that window
        fault = plan.drop_acks_between(250.0, 300.0, framework.ues["ue-0"])
        sim.run_until(2 * T)
        assert fault.fired
        agent = framework.ues["ue-0"]
        assert agent.feedback.fallbacks_fired >= 1
        # delivered (as a duplicate at worst)
        assert len(ue_on_time(server)) == 2
        assert server.duplicate_count >= 1

    def test_acks_flow_again_after_window(self):
        sim, medium, server, framework, relay, ue = build_rig()
        plan = FaultPlan(sim)
        plan.drop_acks_between(250.0, 300.0, framework.ues["ue-0"])
        sim.run_until(3 * T)
        agent = framework.ues["ue-0"]
        assert agent.feedback.acks_received >= 1  # period 2+ acks arrive

    def test_invalid_window_rejected(self):
        sim, medium, server, framework, relay, ue = build_rig()
        with pytest.raises(ValueError):
            FaultPlan(sim).drop_acks_between(10.0, 10.0,
                                             framework.ues["ue-0"])


class TestDeviceRevival:
    def test_revive_restores_heartbeats(self):
        sim, medium, server, framework, relay, ue = build_rig()
        plan = FaultPlan(sim)
        plan.kill_device_at(0.5 * T, ue)
        fault = plan.revive_device_at(2.2 * T, ue)
        sim.run_until(4 * T)
        assert fault.fired
        assert "powered on" in fault.detail
        assert ue.alive
        # the UE beat again after revival (periods 3 and 4)
        assert len(ue_on_time(server)) >= 2

    def test_revive_alive_device_is_noop(self):
        sim, medium, server, framework, relay, ue = build_rig()
        plan = FaultPlan(sim)
        fault = plan.revive_device_at(10.0, ue)
        sim.run_until(20.0)
        assert fault.fired
        assert "already alive" in fault.detail


def tracked_beat(seq_start=0.0, expiry=270.0):
    return PeriodicMessage(
        app="standard", origin_device="ue-0", size_bytes=54,
        created_at_s=seq_start, period_s=270.0, expiry_s=expiry,
    )


class TestAckLossSwitchComposition:
    """Regression for the ack-hook stacking bug.

    Two overlapping ``drop_acks_between`` windows used to each wrap
    ``tracker.ack``; the earlier window's disarm restored its captured
    original, silently disarming the later window. The ref-counted
    switch keeps suppressing until the *last* window closes.
    """

    def test_install_is_idempotent(self, sim):
        tracker = FeedbackTracker(sim, on_fallback=lambda m: None)
        assert AckLossSwitch.install(tracker) is AckLossSwitch.install(tracker)

    def test_overlapping_windows_refcount(self, sim):
        tracker = FeedbackTracker(sim, on_fallback=lambda m: None)
        switch = AckLossSwitch.install(tracker)
        first = switch.open_window()
        second = switch.open_window()
        a, b = tracked_beat(), tracked_beat()
        tracker.track(a)
        tracker.track(b)
        assert tracker.ack([a.seq]) == 0  # suppressed, credited to both
        assert first.dropped == 1 and second.dropped == 1
        switch.close_window(first)
        assert switch.suppressing  # second window still open
        assert tracker.ack([a.seq]) == 0
        assert second.dropped == 2
        switch.close_window(second)
        assert not switch.suppressing
        assert tracker.ack([b.seq]) == 1  # original ack restored
        assert switch.total_dropped == 2

    def test_close_window_twice_is_safe(self, sim):
        tracker = FeedbackTracker(sim, on_fallback=lambda m: None)
        switch = AckLossSwitch.install(tracker)
        window = switch.open_window()
        switch.close_window(window)
        switch.close_window(window)
        assert not switch.suppressing
        message = tracked_beat()
        tracker.track(message)
        assert tracker.ack([message.seq]) == 1

    def test_overlapping_plan_windows_keep_suppressing(self):
        sim, medium, server, framework, relay, ue = build_rig()
        agent = framework.ues["ue-0"]
        plan = FaultPlan(sim)
        a = plan.drop_acks_between(250.0, 300.0, agent)
        b = plan.drop_acks_between(260.0, 320.0, agent)
        switch = AckLossSwitch.install(agent.feedback)
        probes = []
        # pre-fix, closing window `a` at 300 restored the unsuppressed
        # ack and window `b` stopped doing anything
        plan.custom_at(310.0, "probe", lambda: probes.append(switch.suppressing))
        plan.custom_at(330.0, "probe2", lambda: probes.append(switch.suppressing))
        sim.run_until(3 * T)
        assert a.fired and b.fired
        assert probes == [True, False]
        # the relay's ~263 s ack was dropped → fallback covered delivery
        assert agent.feedback.fallbacks_fired >= 1
        assert len(ue_on_time(server)) == 3
        # acks flow again after the last window: period-3 ack lands
        assert agent.feedback.acks_received >= 1


class TestCustomFault:
    def test_custom_action_runs(self):
        sim, medium, server, framework, relay, ue = build_rig()
        plan = FaultPlan(sim)
        hits = []
        fault = plan.custom_at(42.0, "chaos", lambda: hits.append(sim.now))
        sim.run_until(100.0)
        assert hits == [42.0]
        assert fault.fired
