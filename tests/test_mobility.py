"""Unit tests for arena geometry and mobility models."""

import math
import random

import pytest

from repro.mobility.models import (
    LinearMobility,
    RandomWaypointMobility,
    StaticMobility,
    place_crowd,
)
from repro.mobility.space import Arena, distance_between


class TestArena:
    def test_contains_and_clamp(self):
        arena = Arena(10.0, 20.0)
        assert arena.contains((5.0, 5.0))
        assert not arena.contains((11.0, 5.0))
        assert arena.clamp((11.0, -3.0)) == (10.0, 0.0)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Arena(0.0, 10.0)

    def test_random_position_inside(self):
        arena = Arena(10.0, 10.0)
        rng = random.Random(0)
        for _ in range(50):
            assert arena.contains(arena.random_position(rng))

    def test_diagonal(self):
        assert Arena(3.0, 4.0).diagonal == pytest.approx(5.0)

    def test_distance_between(self):
        assert distance_between((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)


class TestStaticMobility:
    def test_never_moves(self):
        model = StaticMobility((1.0, 2.0))
        assert model.position(0.0) == model.position(1e6) == (1.0, 2.0)

    def test_zero_velocity(self):
        assert StaticMobility((0.0, 0.0)).speed(100.0) == 0.0


class TestLinearMobility:
    def test_position_advances_linearly(self):
        model = LinearMobility((0.0, 0.0), (2.0, -1.0))
        assert model.position(3.0) == (6.0, -3.0)

    def test_velocity_constant(self):
        model = LinearMobility((0.0, 0.0), (3.0, 4.0))
        assert model.speed(10.0) == pytest.approx(5.0)

    def test_clamped_by_arena(self):
        arena = Arena(10.0, 10.0)
        model = LinearMobility((0.0, 5.0), (2.0, 0.0), arena=arena)
        assert model.position(100.0) == (10.0, 5.0)
        assert model.velocity(100.0) == (0.0, 0.0)


class TestRandomWaypoint:
    def _model(self, seed=0, **kwargs):
        arena = Arena(50.0, 50.0)
        return RandomWaypointMobility(arena, random.Random(seed), **kwargs)

    def test_stays_inside_arena(self):
        model = self._model()
        for t in range(0, 2000, 37):
            x, y = model.position(float(t))
            assert 0.0 <= x <= 50.0 and 0.0 <= y <= 50.0

    def test_deterministic_and_repeatable_queries(self):
        model = self._model(seed=5)
        first = model.position(500.0)
        # earlier query after a later one must not change history
        __ = model.position(100.0)
        assert model.position(500.0) == first

    def test_same_seed_same_trajectory(self):
        a = self._model(seed=9)
        b = self._model(seed=9)
        for t in (0.0, 10.0, 100.0, 999.0):
            assert a.position(t) == b.position(t)

    def test_speed_within_configured_range(self):
        model = self._model(speed_range=(1.0, 2.0), pause_range=(0.0, 0.0))
        speeds = [model.speed(float(t)) for t in range(1, 300)]
        moving = [s for s in speeds if s > 0]
        assert moving, "should be moving most of the time with zero pause"
        assert all(0.99 <= s <= 2.01 for s in moving)

    def test_respects_start_position(self):
        arena = Arena(50.0, 50.0)
        model = RandomWaypointMobility(
            arena, random.Random(0), start=(25.0, 25.0), pause_range=(5.0, 5.0)
        )
        assert model.position(0.0) == (25.0, 25.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            self._model().position(-1.0)

    def test_invalid_ranges_rejected(self):
        arena = Arena(10, 10)
        with pytest.raises(ValueError):
            RandomWaypointMobility(arena, random.Random(0), speed_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            RandomWaypointMobility(arena, random.Random(0), pause_range=(5.0, 1.0))

    def test_continuous_motion_no_teleports(self):
        model = self._model(speed_range=(1.0, 2.0), pause_range=(0.0, 1.0))
        prev = model.position(0.0)
        for t in range(1, 500):
            cur = model.position(float(t))
            assert distance_between(prev, cur) <= 2.5  # max speed + slack
            prev = cur


class TestPlaceCrowd:
    def test_count_and_containment(self):
        arena = Arena(100.0, 100.0)
        models = place_crowd(25, arena, random.Random(3))
        assert len(models) == 25
        for model in models:
            assert arena.contains(model.position(0.0))

    def test_clustering_around_hotspots(self):
        arena = Arena(200.0, 200.0)
        models = place_crowd(60, arena, random.Random(1), hotspots=2, spread_m=5.0)
        positions = [m.position(0.0) for m in models]
        # mean nearest-neighbour distance must be far below uniform placement
        def nearest(i):
            return min(
                distance_between(positions[i], positions[j])
                for j in range(len(positions))
                if j != i
            )

        mean_nn = sum(nearest(i) for i in range(len(positions))) / len(positions)
        assert mean_nn < 10.0

    def test_mobile_fraction(self):
        arena = Arena(50.0, 50.0)
        models = place_crowd(10, arena, random.Random(2), mobile_fraction=0.5)
        mobile = sum(isinstance(m, RandomWaypointMobility) for m in models)
        assert mobile == 5

    def test_zero_devices(self):
        assert place_crowd(0, Arena(10, 10), random.Random(0)) == []

    def test_invalid_args_rejected(self):
        arena = Arena(10, 10)
        with pytest.raises(ValueError):
            place_crowd(-1, arena, random.Random(0))
        with pytest.raises(ValueError):
            place_crowd(5, arena, random.Random(0), hotspots=0)
        with pytest.raises(ValueError):
            place_crowd(5, arena, random.Random(0), mobile_fraction=1.5)
