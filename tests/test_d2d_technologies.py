"""Unit tests for the three D2D technology models (paper Sec. IV-A)."""

import pytest

from repro.d2d.bluetooth import BLUETOOTH
from repro.d2d.lte_direct import LTE_DIRECT
from repro.d2d.wifi_direct import (
    GroupOwnerNegotiator,
    MAX_GO_INTENT,
    WIFI_DIRECT,
)


class TestTechnologyTradeoffs:
    def test_bluetooth_is_short_ranged(self):
        """Sec. IV-A: 'its communication range is typically less than 10 m'."""
        assert BLUETOOTH.max_range_m <= 10.0
        assert WIFI_DIRECT.max_range_m > 3 * BLUETOOTH.max_range_m

    def test_bluetooth_is_cheaper_per_transfer(self):
        assert BLUETOOTH.tx_scale < WIFI_DIRECT.tx_scale
        assert BLUETOOTH.discovery_scale < WIFI_DIRECT.discovery_scale

    def test_lte_direct_has_500m_discovery(self):
        """Sec. IV-A: 'discovery of thousands of devices ... approximately
        500 meters'."""
        assert LTE_DIRECT.max_range_m == pytest.approx(500.0)

    def test_lte_direct_flagged_undeployed(self):
        assert LTE_DIRECT.deployed is False
        assert WIFI_DIRECT.deployed is True
        assert BLUETOOTH.deployed is True

    def test_wifi_direct_is_the_energy_calibration_baseline(self):
        assert WIFI_DIRECT.tx_scale == 1.0
        assert WIFI_DIRECT.rx_scale == 1.0
        assert WIFI_DIRECT.discovery_scale == 1.0
        assert WIFI_DIRECT.connection_scale == 1.0

    def test_link_ranges_are_self_consistent(self):
        # each technology's nominal range is reachable by its link model
        for tech in (WIFI_DIRECT, BLUETOOTH, LTE_DIRECT):
            assert tech.link.in_range(tech.max_range_m * 0.5), tech.name


class TestGroupOwnerNegotiation:
    def test_fresh_relay_has_max_intent(self):
        negotiator = GroupOwnerNegotiator(is_relay=True, capacity=10)
        assert negotiator.intent == MAX_GO_INTENT

    def test_ue_pins_intent_zero(self):
        negotiator = GroupOwnerNegotiator(is_relay=False)
        negotiator.note_collected(5)
        assert negotiator.intent == 0

    def test_intent_decays_proportionally_with_collection(self):
        """Sec. IV-C: 'reduce groupOwnerIntend proportionally until 0'."""
        negotiator = GroupOwnerNegotiator(is_relay=True, capacity=10)
        intents = []
        for _ in range(10):
            negotiator.note_collected()
            intents.append(negotiator.intent)
        assert intents[0] < MAX_GO_INTENT
        assert intents[-1] == 0
        assert all(b <= a for a, b in zip(intents, intents[1:]))

    def test_collection_caps_at_capacity(self):
        negotiator = GroupOwnerNegotiator(is_relay=True, capacity=3)
        negotiator.note_collected(10)
        assert negotiator.collected == 3
        assert negotiator.intent == 0

    def test_reset_period_restores_intent(self):
        negotiator = GroupOwnerNegotiator(is_relay=True, capacity=4)
        negotiator.note_collected(4)
        negotiator.reset_period()
        assert negotiator.intent == MAX_GO_INTENT

    def test_relay_requires_capacity(self):
        with pytest.raises(ValueError):
            GroupOwnerNegotiator(is_relay=True, capacity=0)

    def test_negative_collection_rejected(self):
        negotiator = GroupOwnerNegotiator(is_relay=True, capacity=5)
        with pytest.raises(ValueError):
            negotiator.note_collected(-1)

    def test_negotiate_higher_intent_wins(self):
        assert GroupOwnerNegotiator.negotiate(15, 0) == 0
        assert GroupOwnerNegotiator.negotiate(0, 15) == 1

    def test_negotiate_tie_is_deterministic(self):
        assert GroupOwnerNegotiator.negotiate(7, 7) == 0

    def test_negotiate_rejects_out_of_range_intent(self):
        with pytest.raises(ValueError):
            GroupOwnerNegotiator.negotiate(16, 0)

    def test_loaded_relay_loses_to_fresh_relay(self):
        """The load-balancing effect: fresh relays win group ownership."""
        fresh = GroupOwnerNegotiator(is_relay=True, capacity=10)
        loaded = GroupOwnerNegotiator(is_relay=True, capacity=10)
        loaded.note_collected(8)
        assert GroupOwnerNegotiator.negotiate(loaded.intent, fresh.intent) == 1
