"""Tests for GO-intent wiring and fresh-relay load balancing."""

import pytest

from repro.core.matching import MatchConfig, RelayMatcher
from repro.d2d.base import D2DEndpoint, D2DMedium, PeerInfo
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.energy.profiles import DEFAULT_PROFILE
from repro.mobility.models import StaticMobility


def peer(device_id, distance, go_intent, capacity=10):
    return PeerInfo(
        device_id=device_id,
        rssi_dbm=-40.0,
        estimated_distance_m=distance,
        advertisement={
            "role": "relay",
            "capacity_remaining": capacity,
            "go_intent": go_intent,
        },
    )


class TestFreshRelayPreference:
    def test_near_tie_broken_by_intent(self):
        matcher = RelayMatcher(WIFI_DIRECT, DEFAULT_PROFILE, MatchConfig())
        loaded = peer("loaded", distance=2.0, go_intent=3)
        fresh = peer("fresh", distance=2.4, go_intent=15)
        best = matcher.select([loaded, fresh], 270.0, 54,
                              relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "fresh"

    def test_clear_distance_gap_still_wins(self):
        matcher = RelayMatcher(WIFI_DIRECT, DEFAULT_PROFILE, MatchConfig())
        near_loaded = peer("near-loaded", distance=2.0, go_intent=1)
        far_fresh = peer("far-fresh", distance=9.0, go_intent=15)
        best = matcher.select([near_loaded, far_fresh], 270.0, 54,
                              relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "near-loaded"

    def test_preference_can_be_disabled(self):
        matcher = RelayMatcher(
            WIFI_DIRECT, DEFAULT_PROFILE,
            MatchConfig(prefer_fresh_relays=False),
        )
        loaded = peer("loaded", distance=2.0, go_intent=0)
        fresh = peer("fresh", distance=2.4, go_intent=15)
        best = matcher.select([loaded, fresh], 270.0, 54,
                              relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "loaded"

    def test_missing_intent_treated_as_zero(self):
        matcher = RelayMatcher(WIFI_DIRECT, DEFAULT_PROFILE, MatchConfig())
        no_intent = PeerInfo("plain", -40.0, 2.0,
                             {"role": "relay", "capacity_remaining": 5})
        fresh = peer("fresh", distance=2.2, go_intent=15)
        best = matcher.select([no_intent, fresh], 270.0, 54,
                              relative_speed_m_per_s=0.0)
        assert best.peer.device_id == "fresh"


class TestGroupOwnerOnConnections:
    def _connect(self, sim, initiator_intent, responder_intent):
        medium = D2DMedium(sim, WIFI_DIRECT)
        a = D2DEndpoint("a", StaticMobility((0.0, 0.0)),
                        advertisement={"go_intent": initiator_intent})
        b = D2DEndpoint("b", StaticMobility((2.0, 0.0)),
                        advertisement={"go_intent": responder_intent})
        b.advertising = True
        medium.register(a)
        medium.register(b)
        holder = []
        medium.connect("a", "b", holder.append)
        sim.run_until(5.0)
        return holder[0]

    def test_relay_becomes_group_owner(self, sim):
        connection = self._connect(sim, initiator_intent=0, responder_intent=15)
        assert connection.group_owner_id == "b"

    def test_tie_goes_to_responder(self, sim):
        # UEs pin 0; a 0/0 tie means neither is a relay — responder hosts
        connection = self._connect(sim, initiator_intent=0, responder_intent=0)
        assert connection.group_owner_id == "b"

    def test_higher_initiator_intent_wins(self, sim):
        connection = self._connect(sim, initiator_intent=15, responder_intent=7)
        assert connection.group_owner_id == "a"


class TestEndToEndLoadBalance:
    def test_ues_spread_across_relays(self):
        """Two equidistant relays, four UEs arriving in sequence: the GO
        intent decay steers later UEs toward the emptier relay."""
        from repro.cellular.basestation import BaseStation
        from repro.cellular.signaling import SignalingLedger
        from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
        from repro.core.scheduler import SchedulerConfig
        from repro.device import Role, Smartphone
        from repro.sim.engine import Simulator
        from repro.workload.apps import STANDARD_APP
        from repro.workload.server import IMServer

        sim = Simulator(seed=4)
        ledger = SignalingLedger()
        basestation = BaseStation(sim, ledger=ledger)
        server = IMServer(sim)
        basestation.attach_sink(server.uplink_sink)
        medium = D2DMedium(sim, WIFI_DIRECT)
        framework = HeartbeatRelayFramework(
            [], app=STANDARD_APP,
            config=FrameworkConfig(
                scheduler=SchedulerConfig(capacity=3),
                matching=MatchConfig(distance_tie_m=3.0),
            ),
        )
        for i in range(2):
            relay = Smartphone(sim, f"relay-{i}",
                               mobility=StaticMobility((float(2 * i - 1), 0.0)),
                               role=Role.RELAY, ledger=ledger,
                               basestation=basestation, d2d_medium=medium)
            framework.add_device(relay, phase_fraction=0.0)
        for i in range(4):
            ue = Smartphone(sim, f"ue-{i}",
                            mobility=StaticMobility((0.0, 1.0 + 0.1 * i)),
                            role=Role.UE, ledger=ledger,
                            basestation=basestation, d2d_medium=medium)
            framework.add_device(ue, phase_fraction=0.3 + 0.1 * i)
        sim.run_until(STANDARD_APP.heartbeat_period_s + 30.0)
        loads = sorted(
            agent.beats_collected for agent in framework.relay_agents()
        )
        # both relays participate — no relay hogs all four UEs
        assert loads[0] >= 1
        assert sum(loads) == 4
