"""Simulated wall clock.

All times in the simulation are floating-point **seconds** from the start
of the run. The clock can only be advanced by the simulator driver, and
never moves backwards; components hold a reference to the clock instead of
passing ``now`` through every call.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised on an illegal clock manipulation (e.g. moving backwards)."""


class Clock:
    """Monotonically non-decreasing simulated time source.

    Parameters
    ----------
    start:
        Initial simulated time in seconds (defaults to ``0.0``).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ClockError(f"clock cannot start before zero (got {start})")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Raises :class:`ClockError` if ``t`` is in the past; advancing to the
        current time is a no-op (events at identical timestamps are legal).
        """
        if t < self._now:
            raise ClockError(
                f"clock cannot move backwards: now={self._now}, requested={t}"
            )
        self._now = float(t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds (``dt >= 0``)."""
        if dt < 0.0:
            raise ClockError(f"cannot advance by negative delta {dt}")
        self._now += dt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(now={self._now:.6f})"
