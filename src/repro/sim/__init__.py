"""Discrete-event simulation kernel.

The kernel is deliberately small and dependency-free: a simulated
:class:`~repro.sim.clock.Clock`, a stable :class:`~repro.sim.events.EventQueue`
built on ``heapq``, the :class:`~repro.sim.engine.Simulator` driver, and
seeded random-stream helpers in :mod:`repro.sim.rng`.

Everything above this layer (cellular, D2D, energy, the framework itself)
schedules work exclusively through :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at`, which keeps every experiment deterministic
under a fixed seed.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue
from repro.sim.engine import Simulator, SimulationError
from repro.sim.rng import RngStreams, make_rng, spawn

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Simulator",
    "SimulationError",
    "RngStreams",
    "make_rng",
    "spawn",
]
