"""Event primitives for the discrete-event kernel.

An :class:`Event` is a timestamped callback with a stable tiebreak sequence
number, so two events scheduled for the same instant always fire in the
order they were scheduled — a property several framework protocols (e.g.
"ack before fallback timer") rely on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are created by the simulator; user code receives the event handle
    back from :meth:`~repro.sim.engine.Simulator.schedule` and may
    :meth:`cancel` it. A cancelled event stays in the heap but is skipped
    when popped (lazy deletion — O(1) cancel).
    """

    __slots__ = ("time", "seq", "callback", "args", "name", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        name: str = "",
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.name = name or getattr(callback, "__name__", "event")
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark this event so the simulator skips it; idempotent.

        Live-count bookkeeping lives here: an event created by a queue
        tells that queue it went dead, so ``len(queue)`` stays truthful no
        matter who cancels — ``Simulator.cancel``, a ``PeriodicProcess``,
        or user code holding the handle directly.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._dropped_live()

    def __lt__(self, other: "Event") -> bool:
        # Kept for direct Event comparisons; the queue's heap orders
        # (time, seq, event) tuples instead, so the hot path compares
        # floats/ints at C speed and never calls back into Python.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " CANCELLED" if self.cancelled else ""
        return f"Event({self.name!r} @ {self.time:.6f} #{self.seq}{flag})"


class EventQueue:
    """Min-heap of events with stable FIFO ordering at equal timestamps.

    The heap holds ``(time, seq, event)`` entries rather than bare events:
    ``seq`` is unique, so tuple comparison settles every sift at C speed
    without ever invoking ``Event.__lt__``. That one representation choice
    is worth a double-digit percentage of kernel time on event-dense runs.
    """

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        name: str = "",
    ) -> Event:
        """Insert a callback to fire at absolute ``time``; returns the handle."""
        event = Event(time, next(self._counter), callback, args, name, queue=self)
        heapq.heappush(self._heap, (time, event.seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            if event.cancelled:
                continue
            self._live -= 1
            event._queue = None  # fired: a late cancel() must not re-decrement
            return event
        return None

    def pop_until(self, horizon: float) -> Optional[Event]:
        """Pop the earliest live event with ``time <= horizon``.

        Returns ``None`` when the queue is empty or the earliest live event
        lies beyond the horizon (in which case it stays queued). This fuses
        the :meth:`peek_time`/:meth:`pop` pair the run loop used to make —
        one heap traversal per fired event instead of two.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if entry[0] > horizon:
                return None
            heapq.heappop(heap)
            self._live -= 1
            event._queue = None  # fired: a late cancel() must not re-decrement
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def _dropped_live(self) -> None:
        """One of this queue's events was cancelled while still queued."""
        self._live = max(0, self._live - 1)

    def note_cancelled(self) -> None:
        """Deprecated no-op, kept for API compatibility.

        Live-count bookkeeping moved into :meth:`Event.cancel`, which knows
        its owning queue — callers no longer need to (and must not) report
        cancellations separately, which previously let direct
        ``event.cancel()`` calls drift the count.
        """

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
