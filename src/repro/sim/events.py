"""Event primitives for the discrete-event kernel.

An :class:`Event` is a timestamped callback with a stable tiebreak sequence
number, so two events scheduled for the same instant always fire in the
order they were scheduled — a property several framework protocols (e.g.
"ack before fallback timer") rely on.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Dict, Optional, Union


class Event:
    """A scheduled callback.

    Events are created by the simulator; user code receives the event handle
    back from :meth:`~repro.sim.engine.Simulator.schedule` and may
    :meth:`cancel` it. A cancelled event stays in the queue but is skipped
    when popped (lazy deletion — O(1) cancel).
    """

    __slots__ = ("time", "seq", "callback", "args", "name", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        name: str = "",
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.name = name or getattr(callback, "__name__", "event")
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark this event so the simulator skips it; idempotent.

        Live-count bookkeeping lives here: an event created by a queue
        tells that queue it went dead, so ``len(queue)`` stays truthful no
        matter who cancels — ``Simulator.cancel``, a ``PeriodicProcess``,
        or user code holding the handle directly.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._dropped_live()

    def __lt__(self, other: "Event") -> bool:
        # Kept for direct Event comparisons; the queue orders a heap of
        # unique timestamps plus FIFO buckets instead, so the hot path
        # compares floats at C speed and never calls back into Python.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " CANCELLED" if self.cancelled else ""
        return f"Event({self.name!r} @ {self.time:.6f} #{self.seq}{flag})"


#: A timestamp's entry: a lone event, or a FIFO deque once it has company.
_Bucket = Union[Event, "deque[Event]"]


class EventQueue:
    """Min-heap of *timestamps* with a FIFO event bucket per timestamp.

    Simulated workloads synchronize: at crowd scale, thousands of beat and
    scan timers share the exact same deadline (every storm device scans on
    the same period, every window boundary re-arms a cohort at once). A
    classic entry-per-event heap pays O(log N) sifts for each of them; this
    queue keeps one heap entry per *distinct* timestamp and groups the
    events into a per-timestamp bucket. Pushing into a timestamp that is
    already queued — and popping any event but a bucket's last — is O(1)
    dict/deque work, so a cohort of k same-deadline timers costs one sift
    instead of k.

    A timestamp seen once holds its event directly (no deque allocation —
    scattered-unique schedules stay as cheap as the old tuple heap); the
    second push at the same instant promotes the entry to a deque.

    Ordering is observably identical to the old (time, seq, event) tuple
    heap: sequence numbers increase monotonically, so bucket FIFO order *is*
    seq order, and the timestamp heap settles everything else. The
    ``coalesced_pushes``/``coalesced_pops`` counters make the batching
    observable for perf reports.
    """

    __slots__ = ("_heap", "_buckets", "_counter", "_live",
                 "coalesced_pushes", "coalesced_pops")

    def __init__(self) -> None:
        self._heap: list[float] = []
        self._buckets: Dict[float, _Bucket] = {}
        self._counter = itertools.count()
        self._live = 0
        #: pushes that joined an already-queued timestamp (no heap sift)
        self.coalesced_pushes = 0
        #: pops served from a bucket that stayed hot (no heap traversal)
        self.coalesced_pops = 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        name: str = "",
    ) -> Event:
        """Insert a callback to fire at absolute ``time``; returns the handle."""
        event = Event(time, next(self._counter), callback, args, name, queue=self)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = event
            heapq.heappush(self._heap, time)
        else:
            if type(bucket) is deque:
                bucket.append(event)
            else:
                buckets[time] = deque((bucket, event))
            self.coalesced_pushes += 1
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are discarded transparently.
        """
        return self.pop_until(float("inf"))

    def pop_until(self, horizon: float) -> Optional[Event]:
        """Pop the earliest live event with ``time <= horizon``.

        Returns ``None`` when the queue is empty or the earliest live event
        lies beyond the horizon (in which case it stays queued). Within a
        hot bucket this is one deque popleft — no heap traversal at all.
        """
        heap = self._heap
        buckets = self._buckets
        while heap:
            time = heap[0]
            bucket = buckets[time]
            if type(bucket) is deque:
                # cancelled-only buckets must not mask a later live event,
                # so drain dead heads before trusting the timestamp
                while bucket and bucket[0].cancelled:
                    bucket.popleft()
                if bucket:
                    if time > horizon:
                        return None
                    event = bucket.popleft()
                    self._live -= 1
                    event._queue = None  # fired: late cancel() must not re-decrement
                    if bucket:
                        self.coalesced_pops += 1
                    else:
                        heapq.heappop(heap)
                        del buckets[time]
                    return event
            else:
                if not bucket.cancelled:
                    if time > horizon:
                        return None
                    heapq.heappop(heap)
                    del buckets[time]
                    self._live -= 1
                    bucket._queue = None  # fired: late cancel() must not re-decrement
                    return bucket
            heapq.heappop(heap)
            del buckets[time]
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        buckets = self._buckets
        while heap:
            time = heap[0]
            bucket = buckets[time]
            if type(bucket) is deque:
                while bucket and bucket[0].cancelled:
                    bucket.popleft()
                if bucket:
                    return time
            elif not bucket.cancelled:
                return time
            heapq.heappop(heap)
            del buckets[time]
        return None

    def _dropped_live(self) -> None:
        """One of this queue's events was cancelled while still queued."""
        self._live = max(0, self._live - 1)

    def note_cancelled(self) -> None:
        """Deprecated no-op, kept for API compatibility.

        Live-count bookkeeping moved into :meth:`Event.cancel`, which knows
        its owning queue — callers no longer need to (and must not) report
        cancellations separately, which previously let direct
        ``event.cancel()`` calls drift the count.
        """

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
