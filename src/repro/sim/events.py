"""Event primitives for the discrete-event kernel.

An :class:`Event` is a timestamped callback with a stable tiebreak sequence
number, so two events scheduled for the same instant always fire in the
order they were scheduled — a property several framework protocols (e.g.
"ack before fallback timer") rely on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are created by the simulator; user code receives the event handle
    back from :meth:`~repro.sim.engine.Simulator.schedule` and may
    :meth:`cancel` it. A cancelled event stays in the heap but is skipped
    when popped (lazy deletion — O(1) cancel).
    """

    __slots__ = ("time", "seq", "callback", "args", "name", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        name: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.name = name or getattr(callback, "__name__", "event")
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so the simulator skips it; idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " CANCELLED" if self.cancelled else ""
        return f"Event({self.name!r} @ {self.time:.6f} #{self.seq}{flag})"


class EventQueue:
    """Min-heap of events with stable FIFO ordering at equal timestamps."""

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        name: str = "",
    ) -> Event:
        """Insert a callback to fire at absolute ``time``; returns the handle."""
        event = Event(time, next(self._counter), callback, args, name)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def note_cancelled(self) -> None:
        """Bookkeeping hook: a live event was cancelled externally."""
        self._live = max(0, self._live - 1)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
