"""The discrete-event simulator driver.

A :class:`Simulator` owns the clock, the event queue, and the per-run random
streams. Components schedule callbacks with :meth:`Simulator.schedule`
(relative delay) or :meth:`Simulator.schedule_at` (absolute time) and the
driver fires them in timestamp order until the horizon, a stop condition, or
queue exhaustion.

The driver also supports lightweight *periodic processes* — a convenience
used by heartbeat generators and mobility updaters — and a trace hook for
debugging and for the Monsoon-style power-trace synthesizer.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngStreams


class SimulationError(RuntimeError):
    """Raised for illegal simulator operations (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulation driver.

    Parameters
    ----------
    seed:
        Master seed for all named random streams.
    start:
        Initial simulated time in seconds.
    trace:
        When true, every fired event is appended to :attr:`event_log`
        as ``(time, name)`` — cheap enough for unit tests, off by default
        for long benches.
    """

    def __init__(self, seed: int = 0, start: float = 0.0, trace: bool = False) -> None:
        self.clock = Clock(start)
        self.queue = EventQueue()
        self.rng = RngStreams(seed)
        self.trace = trace
        self.event_log: List[Tuple[float, str]] = []
        self._fired = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # time & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return len(self.queue)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest live pending event, or ``None``.

        Lets a windowed driver (the sharded kernel's conservative-time
        sync loop) ask how far it may safely advance without firing
        anything — cancelled events are skipped, the queue is untouched.
        """
        return self.queue.peek_time()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        return self.queue.push(self.clock.now + delay, callback, args, name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self.clock.now}"
            )
        return self.queue.push(time, callback, args, name)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event; ``None`` is ignored.

        Equivalent to ``event.cancel()`` — the queue's live count is kept
        by the event itself, so cancelling through the simulator or through
        the handle directly makes no bookkeeping difference.
        """
        if event is not None:
            event.cancel()

    def every(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        start_after: Optional[float] = None,
        name: str = "",
    ) -> "PeriodicProcess":
        """Run ``callback(*args)`` every ``period`` seconds.

        The first firing happens after ``start_after`` seconds (default: one
        full period). Returns a handle whose :meth:`PeriodicProcess.stop`
        cancels future firings.
        """
        if period <= 0:
            raise SimulationError(f"periodic process needs period > 0, got {period}")
        process = PeriodicProcess(self, period, callback, args, name)
        first = period if start_after is None else start_after
        process._arm(first)
        return process

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    def run_until(self, horizon: float, max_events: int = 10_000_000) -> int:
        """Fire events in order until ``horizon`` (inclusive).

        The clock is left exactly at ``horizon`` even if the queue drains
        early, so post-run metric snapshots are taken at a consistent time.
        Returns the number of events fired by this call.
        """
        if horizon < self.clock.now:
            raise SimulationError(
                f"horizon {horizon} is before now={self.clock.now}"
            )
        if self._running:
            raise SimulationError("run_until re-entered from inside an event")
        self._running = True
        self._stop_requested = False
        fired_before = self._fired
        # Hot path: this loop dominates every long run, so the per-event
        # attribute chases are hoisted into locals and the old
        # peek_time()/pop() double heap traversal is fused into one
        # pop_until(horizon) call. `self._fired` is still written back every
        # iteration so callbacks reading `events_fired`/`pending` mid-run
        # observe the truth.
        pop_until = self.queue.pop_until
        advance_to = self.clock.advance_to
        trace = self.trace
        event_log = self.event_log
        limit = fired_before + max_events
        try:
            while not self._stop_requested:
                event = pop_until(horizon)
                if event is None:
                    break
                if self._fired >= limit:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway schedule?"
                    )
                advance_to(event.time)
                self._fired += 1
                if trace:
                    event_log.append((event.time, event.name))
                event.callback(*event.args)
            if not self._stop_requested:
                advance_to(horizon)
        finally:
            self._running = False
        return self._fired - fired_before

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Fire every queued event regardless of horizon (tests/tools)."""
        fired_before = self._fired
        pop = self.queue.pop
        advance_to = self.clock.advance_to
        limit = fired_before + max_events
        while not self._stop_requested:
            event = pop()
            if event is None:
                break
            if self._fired >= limit:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway schedule?"
                )
            advance_to(event.time)
            self._fired += 1
            if self.trace:
                self.event_log.append((event.time, event.name))
            event.callback(*event.args)
        return self._fired - fired_before


class PeriodicProcess:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    __slots__ = ("_sim", "period", "_callback", "_args", "_name", "_event", "_stopped")

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[..., Any],
        args: tuple,
        name: str,
    ) -> None:
        self._sim = sim
        self.period = period
        self._callback = callback
        self._args = args
        self._name = name or getattr(callback, "__name__", "periodic")
        self._event: Optional[Event] = None
        self._stopped = False

    def _arm(self, delay: float) -> None:
        if self._stopped:
            return
        self._event = self._sim.schedule(delay, self._fire, name=self._name)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(*self._args)
        self._arm(self.period)

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def next_fire_s(self) -> Optional[float]:
        """Absolute time of the next firing; ``None`` once stopped."""
        if self._stopped or self._event is None or self._event.cancelled:
            return None
        return self._event.time

    def stop(self) -> None:
        """Cancel all future firings; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        self._sim.cancel(self._event)
        self._event = None
