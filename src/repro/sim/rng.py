"""Seeded random-number streams.

Every stochastic component (mobility, discovery latency jitter, heartbeat
phase offsets, link losses) draws from its **own named stream** derived from
the experiment seed. Adding a new random consumer therefore never perturbs
the draws seen by existing ones, which keeps regression baselines stable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(master_seed: int, stream: str) -> int:
    """Derive a 64-bit child seed from ``(master_seed, stream)``.

    Uses BLAKE2b rather than Python's ``hash`` so derivation is stable
    across interpreter runs and ``PYTHONHASHSEED`` values.
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{stream}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def make_rng(master_seed: int, stream: str) -> random.Random:
    """Create an independent :class:`random.Random` for a named stream."""
    return random.Random(_derive_seed(master_seed, stream))


def spawn(base_seed: int, point_index: int) -> int:
    """Derive the child seed for sweep point ``point_index``.

    The result is a 64-bit integer that depends only on
    ``(base_seed, point_index)`` — never on worker count, submission
    order, or which process computes it — so a parallel sweep sees
    exactly the randomness a serial sweep would. Like
    :func:`_derive_seed` it uses BLAKE2b, so it is stable across
    interpreter runs and ``PYTHONHASHSEED`` values.
    """
    if point_index < 0:
        raise ValueError(f"point_index must be non-negative, got {point_index}")
    return _derive_seed(int(base_seed), f"sweep-point:{point_index}")


def child_seed(master_seed: int, label: str) -> int:
    """Derive a stable 64-bit child seed for a named subcomponent.

    Used where one experiment seed must fan out into several independent
    simulators — e.g. the sharded kernel seeds shard ``i``'s
    :class:`~repro.sim.engine.Simulator` with
    ``child_seed(seed, f"shard:{i}")``. Like :func:`spawn`, the result
    depends only on the inputs (BLAKE2b; stable across interpreter runs
    and ``PYTHONHASHSEED``), never on process layout, so serial and
    multi-process shard backends draw identical randomness.
    """
    return _derive_seed(int(master_seed), f"child:{label}")


class RngStreams:
    """Registry of named random streams for one experiment run.

    >>> streams = RngStreams(seed=42)
    >>> streams.get("mobility") is streams.get("mobility")
    True
    >>> streams.get("mobility") is not streams.get("discovery")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, stream: str) -> random.Random:
        """Return the RNG for ``stream``, creating it on first use."""
        rng = self._streams.get(stream)
        if rng is None:
            rng = make_rng(self.seed, stream)
            self._streams[stream] = rng
        return rng

    def fork(self, stream: str) -> random.Random:
        """A fresh, unregistered RNG seeded from ``(seed, stream)``.

        Unlike :meth:`get`, each call returns a new generator in the same
        initial state — useful for replaying a sub-experiment.
        """
        return make_rng(self.seed, stream)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
