"""Mobility models.

Each model answers ``position(t)`` for any simulated time ``t >= 0`` and
``velocity(t)`` (used by the prejudgment mechanism to estimate how long a
candidate D2D pair will stay in range).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.mobility.space import Arena, Position, distance_between

try:  # numpy accelerates batched trajectory evaluation; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None


class MobilityModel:
    """Interface: analytic trajectory of one device."""

    def position(self, t: float) -> Position:
        """Position at simulated time ``t`` (seconds)."""
        raise NotImplementedError

    def velocity(self, t: float) -> Tuple[float, float]:
        """Instantaneous velocity vector at ``t`` (m/s)."""
        raise NotImplementedError

    def speed(self, t: float) -> float:
        """Instantaneous speed at ``t`` (m/s)."""
        vx, vy = self.velocity(t)
        return math.hypot(vx, vy)

    def max_speed_m_s(self) -> Optional[float]:
        """Upper bound on this model's speed over all time, if known.

        ``None`` means "unbounded/unknown" — spatial acceleration
        structures must then treat the device as unindexable and fall back
        to exact checks. Built-in models all return a finite bound.
        """
        return None


class StaticMobility(MobilityModel):
    """A device that never moves (the paper's bench experiments)."""

    def __init__(self, position: Position) -> None:
        self._position = (float(position[0]), float(position[1]))

    def position(self, t: float) -> Position:
        return self._position

    def velocity(self, t: float) -> Tuple[float, float]:
        return (0.0, 0.0)

    def max_speed_m_s(self) -> float:
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StaticMobility({self._position})"


class LinearMobility(MobilityModel):
    """Constant-velocity straight-line motion, clamped to an optional arena.

    Used for controlled distance sweeps: a UE walking away from its relay
    reproduces Fig. 12's distance axis over time.
    """

    def __init__(
        self,
        start: Position,
        velocity: Tuple[float, float],
        arena: Optional[Arena] = None,
    ) -> None:
        self.start = (float(start[0]), float(start[1]))
        self._velocity = (float(velocity[0]), float(velocity[1]))
        self.arena = arena

    def position(self, t: float) -> Position:
        pos = (
            self.start[0] + self._velocity[0] * t,
            self.start[1] + self._velocity[1] * t,
        )
        if self.arena is not None:
            pos = self.arena.clamp(pos)
        return pos

    def velocity(self, t: float) -> Tuple[float, float]:
        if self.arena is not None and self.position(t) != (
            self.start[0] + self._velocity[0] * t,
            self.start[1] + self._velocity[1] * t,
        ):
            return (0.0, 0.0)  # pinned at the wall
        return self._velocity

    def max_speed_m_s(self) -> float:
        return math.hypot(*self._velocity)


class _Segment:
    """One leg of a random-waypoint walk: pause, then move to the waypoint."""

    __slots__ = ("t_start", "pause_until", "t_end", "origin", "target")

    def __init__(
        self,
        t_start: float,
        pause_s: float,
        origin: Position,
        target: Position,
        speed: float,
    ) -> None:
        self.t_start = t_start
        self.pause_until = t_start + pause_s
        travel = distance_between(origin, target) / speed if speed > 0 else 0.0
        self.t_end = self.pause_until + travel
        self.origin = origin
        self.target = target

    def position(self, t: float) -> Position:
        if t <= self.pause_until:
            return self.origin
        if t >= self.t_end or self.t_end == self.pause_until:
            return self.target
        frac = (t - self.pause_until) / (self.t_end - self.pause_until)
        return (
            self.origin[0] + (self.target[0] - self.origin[0]) * frac,
            self.origin[1] + (self.target[1] - self.origin[1]) * frac,
        )

    def velocity(self, t: float) -> Tuple[float, float]:
        if t <= self.pause_until or t >= self.t_end or self.t_end == self.pause_until:
            return (0.0, 0.0)
        duration = self.t_end - self.pause_until
        return (
            (self.target[0] - self.origin[0]) / duration,
            (self.target[1] - self.origin[1]) / duration,
        )


class RandomWaypointMobility(MobilityModel):
    """Classic random-waypoint model on an arena.

    Waypoint legs are generated lazily and cached, so two queries for the
    same time always agree and the trajectory is deterministic under the
    model's RNG.
    """

    def __init__(
        self,
        arena: Arena,
        rng: random.Random,
        speed_range: Tuple[float, float] = (0.5, 1.5),
        pause_range: Tuple[float, float] = (0.0, 30.0),
        start: Optional[Position] = None,
    ) -> None:
        if speed_range[0] <= 0 or speed_range[1] < speed_range[0]:
            raise ValueError(f"invalid speed range {speed_range}")
        if pause_range[0] < 0 or pause_range[1] < pause_range[0]:
            raise ValueError(f"invalid pause range {pause_range}")
        self.arena = arena
        self.rng = rng
        self.speed_range = speed_range
        self.pause_range = pause_range
        origin = arena.random_position(rng) if start is None else arena.clamp(start)
        self._segments: List[_Segment] = []
        self._append_segment(0.0, origin)

    def _append_segment(self, t_start: float, origin: Position) -> None:
        pause = self.rng.uniform(*self.pause_range)
        target = self.arena.random_position(self.rng)
        speed = self.rng.uniform(*self.speed_range)
        self._segments.append(_Segment(t_start, pause, origin, target, speed))

    def _segment_for(self, t: float) -> _Segment:
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
        while self._segments[-1].t_end < t:
            last = self._segments[-1]
            self._append_segment(last.t_end, last.target)
        # linear scan from the end is fine: queries are near-monotone
        for segment in reversed(self._segments):
            if segment.t_start <= t:
                return segment
        return self._segments[0]

    def position(self, t: float) -> Position:
        return self._segment_for(t).position(t)

    def velocity(self, t: float) -> Tuple[float, float]:
        return self._segment_for(t).velocity(t)

    def max_speed_m_s(self) -> float:
        return self.speed_range[1]


def affine_params(
    model: MobilityModel,
) -> Optional[Tuple[float, float, float, float]]:
    """``(x0, y0, vx, vy)`` if ``position(t) == (x0 + vx·t, y0 + vy·t)``
    exactly for all ``t``, else ``None``.

    Only unclamped straight-line motion qualifies: an arena-clamped
    :class:`LinearMobility` stops being affine the moment it hits a wall,
    and :class:`RandomWaypointMobility` is piecewise (and mutates lazy
    segment state on queries), so both take the exact per-model fallback.
    """
    if isinstance(model, StaticMobility):
        x, y = model._position
        return (x, y, 0.0, 0.0)
    if isinstance(model, LinearMobility) and model.arena is None:
        return (*model.start, *model._velocity)
    return None


class TrajectoryBatch:
    """Batched ``position(t)`` over a fixed set of mobility models.

    Splits the set into an affine block — evaluated as ``x0 + vx·t`` with
    one numpy multiply-add per axis, the *same* IEEE-754 sequence
    :meth:`LinearMobility.position` performs, so results are bit-identical
    to per-model calls — and an exact remainder evaluated model by model.
    Built once per membership change; ``positions_at`` is the per-tick
    call. Without numpy (or below ``min_block`` affine members) everything
    runs the exact path, so the batch is always safe to use.
    """

    def __init__(
        self,
        members: Sequence[Tuple[str, MobilityModel]],
        min_block: int = 8,
    ) -> None:
        affine_ids: List[str] = []
        x0: List[float] = []
        y0: List[float] = []
        vx: List[float] = []
        vy: List[float] = []
        exact: List[Tuple[str, MobilityModel]] = []
        for key, model in members:
            params = affine_params(model) if _np is not None else None
            if params is None:
                exact.append((key, model))
            else:
                affine_ids.append(key)
                x0.append(params[0])
                y0.append(params[1])
                vx.append(params[2])
                vy.append(params[3])
        if len(affine_ids) < min_block:
            # not worth the numpy call overhead — fold back into exact
            exact = list(members)
            affine_ids = []
        self._exact = exact
        self._affine_ids = affine_ids
        if affine_ids:
            self._x0 = _np.array(x0)
            self._y0 = _np.array(y0)
            self._vx = _np.array(vx)
            self._vy = _np.array(vy)

    def __len__(self) -> int:
        return len(self._affine_ids) + len(self._exact)

    @property
    def affine_count(self) -> int:
        return len(self._affine_ids)

    def positions_at(self, t: float) -> List[Tuple[str, float, float]]:
        """``(key, x, y)`` for every member at time ``t``.

        Affine members first (batch order), then the exact remainder —
        callers that need a specific order should not rely on this one.
        """
        out: List[Tuple[str, float, float]] = []
        if self._affine_ids:
            xs = (self._x0 + self._vx * t).tolist()
            ys = (self._y0 + self._vy * t).tolist()
            out.extend(zip(self._affine_ids, xs, ys))
        for key, model in self._exact:
            x, y = model.position(t)
            out.append((key, x, y))
        return out


def place_crowd(
    n: int,
    arena: Arena,
    rng: random.Random,
    hotspots: int = 3,
    spread_m: float = 8.0,
    mobile_fraction: float = 0.0,
    speed_range: Tuple[float, float] = (0.5, 1.5),
) -> List[MobilityModel]:
    """Place ``n`` devices clustered around hotspots (stadium/plaza crowd).

    The signaling-storm scenario the paper motivates is a dense crowd;
    clustering makes short-distance D2D pairs plentiful, as Sec. II-D
    argues. A ``mobile_fraction`` of devices random-waypoint within the
    arena; the rest stand still near a hotspot.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if hotspots < 1:
        raise ValueError(f"need at least one hotspot, got {hotspots}")
    if not 0.0 <= mobile_fraction <= 1.0:
        raise ValueError(f"mobile_fraction out of [0,1]: {mobile_fraction}")
    centers = [arena.random_position(rng) for _ in range(hotspots)]
    models: List[MobilityModel] = []
    n_mobile = int(round(n * mobile_fraction))
    for i in range(n):
        center = centers[i % hotspots]
        pos = arena.clamp(
            (
                center[0] + rng.gauss(0.0, spread_m),
                center[1] + rng.gauss(0.0, spread_m),
            )
        )
        if i < n_mobile:
            # Each mover owns a child RNG: waypoint legs are generated
            # lazily on position queries, so a shared stream would make
            # trajectories depend on *who asks when* — e.g. indexed vs
            # brute-force discovery querying positions in different orders.
            models.append(
                RandomWaypointMobility(
                    arena,
                    random.Random(rng.getrandbits(64)),
                    speed_range=speed_range,
                    start=pos,
                )
            )
        else:
            models.append(StaticMobility(pos))
    return models
