"""Uniform-grid spatial index for neighbor discovery.

Every D2D scan needs "who is within ``max_range_m`` of me?". Answering it
by walking all N endpoints makes a crowd scan O(N) and a scan storm O(N²);
the :class:`SpatialIndex` bins devices into square cells of
``cell_size_m`` (one radio range per cell) so a query touches only the
cells overlapping the query disc — O(local density) instead of O(N).

The index is an *acceleration structure, not an oracle*: it returns a
candidate superset and callers re-check exact distances, so correctness
never depends on binned positions being perfectly fresh. Staleness is
handled with the drift-bound contract:

- devices whose mobility model has a known speed bound are rebinned
  incrementally via :meth:`update`; a query expands its radius by the
  caller-supplied ``slack_m`` (max speed × staleness) so a device can
  never drift out of its candidate cell unseen;
- devices with an unknown speed bound don't belong in the index at all —
  the owner keeps them in an always-checked side set.

All methods are O(1) or O(candidate cells); nothing is O(N).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.mobility.space import Position

Cell = Tuple[int, int]


class SpatialIndex:
    """Uniform grid over an unbounded plane (cells exist on demand).

    Parameters
    ----------
    cell_size_m:
        Edge of one square cell, in metres. Use the radio technology's
        ``max_range_m`` so a range query touches at most a 3×3 block plus
        the slack ring.
    """

    __slots__ = (
        "cell_size_m",
        "_cells",
        "_where",
        "_version",
        "_block_cache",
        "queries",
        "block_cache_hits",
        "updates",
        "moves",
    )

    def __init__(self, cell_size_m: float) -> None:
        if cell_size_m <= 0:
            raise ValueError(f"cell size must be positive, got {cell_size_m}")
        self.cell_size_m = float(cell_size_m)
        #: cell → {device_id: None} (dict for O(1) removal, stable order)
        self._cells: Dict[Cell, Dict[str, None]] = {}
        self._where: Dict[str, Cell] = {}
        #: bumped on every membership/bin change; stamps block-cache entries
        self._version = 0
        #: (cell, reach_cells) → (version, merged id list) — see query_block
        self._block_cache: Dict[Tuple[Cell, int], Tuple[int, List[str]]] = {}
        # observability counters (read by repro.perf consumers)
        self.queries = 0
        self.block_cache_hits = 0
        self.updates = 0
        self.moves = 0

    # ------------------------------------------------------------------
    def _cell_of(self, pos: Position) -> Cell:
        size = self.cell_size_m
        return (math.floor(pos[0] / size), math.floor(pos[1] / size))

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._where

    # ------------------------------------------------------------------
    def insert(self, device_id: str, pos: Position) -> None:
        """Add a device at ``pos``; it must not already be indexed."""
        if device_id in self._where:
            raise ValueError(f"{device_id!r} is already indexed")
        cell = self._cell_of(pos)
        self._cells.setdefault(cell, {})[device_id] = None
        self._where[device_id] = cell
        self._bump_version()

    def remove(self, device_id: str) -> None:
        """Drop a device from the index; unknown ids are ignored."""
        cell = self._where.pop(device_id, None)
        if cell is None:
            return
        bucket = self._cells.get(cell)
        if bucket is not None:
            bucket.pop(device_id, None)
            if not bucket:
                del self._cells[cell]
        self._bump_version()

    def update(self, device_id: str, pos: Position) -> None:
        """Rebin a device after it moved — O(1), no-op if the cell held."""
        self.updates += 1
        new_cell = self._cell_of(pos)
        old_cell = self._where.get(device_id)
        if old_cell == new_cell:
            return
        if old_cell is not None:
            bucket = self._cells.get(old_cell)
            if bucket is not None:
                bucket.pop(device_id, None)
                if not bucket:
                    del self._cells[old_cell]
            self.moves += 1
        self._cells.setdefault(new_cell, {})[device_id] = None
        self._where[device_id] = new_cell
        self._bump_version()

    def _bump_version(self) -> None:
        """Invalidate cached block queries after a membership/bin change.

        Every block-cache entry is stamped with the pre-bump version, so
        after a bump *all* of them are stale; dropping them outright keeps
        the cache bounded by the number of distinct ``(cell, k)`` blocks
        queried since the last change, instead of every block ever queried
        over the run (which grows without bound under sustained movement).
        """
        self._version += 1
        if self._block_cache:
            self._block_cache.clear()

    # ------------------------------------------------------------------
    def query_neighbors(
        self, pos: Position, radius_m: float, slack_m: float = 0.0
    ) -> List[str]:
        """Ids of every indexed device whose cell overlaps the query disc.

        Returns a *superset* of the devices within ``radius_m`` of ``pos``
        (cell granularity; callers re-check exact distances). ``slack_m``
        widens the disc to absorb drift of not-yet-rebinned movers. Order
        is unspecified — callers needing determinism must sort. A plain
        list (not a generator) on purpose: this sits on the scan hot path
        and generator frame switches cost more than the list build.
        """
        self.queries += 1
        reach = radius_m + slack_m
        found: List[str] = []
        if reach < 0:
            return found
        size = self.cell_size_m
        cells = self._cells
        x_lo = math.floor((pos[0] - reach) / size)
        x_hi = math.floor((pos[0] + reach) / size)
        y_lo = math.floor((pos[1] - reach) / size)
        y_hi = math.floor((pos[1] + reach) / size)
        for cx in range(x_lo, x_hi + 1):
            for cy in range(y_lo, y_hi + 1):
                bucket = cells.get((cx, cy))
                if bucket:
                    found.extend(bucket)
        return found

    def query_block(
        self, pos: Position, radius_m: float, slack_m: float = 0.0
    ) -> List[str]:
        """Cached block query: a (possibly wider) superset of
        :meth:`query_neighbors`.

        Merges the ``(2k+1)²`` cells within ``k = ceil(reach / cell_size)``
        of the query's own cell — a conservative cover of the query disc
        regardless of where in its cell ``pos`` falls, which is what makes
        the result cacheable per *(cell, k)* instead of per position. The
        cache is stamped with the index version and invalidated by any
        membership or bin change, so static crowds (the common case)
        resolve repeat scans from the same neighbourhood with one dict
        lookup. **Callers must not mutate the returned list.**
        """
        self.queries += 1
        reach = radius_m + slack_m
        if reach < 0:
            return []
        cell = self._cell_of(pos)
        k = max(0, math.ceil(reach / self.cell_size_m))
        key = (cell, k)
        cached = self._block_cache.get(key)
        version = self._version
        if cached is not None and cached[0] == version:
            self.block_cache_hits += 1
            return cached[1]
        cells = self._cells
        cx, cy = cell
        found: List[str] = []
        for x in range(cx - k, cx + k + 1):
            for y in range(cy - k, cy + k + 1):
                bucket = cells.get((x, y))
                if bucket:
                    found.extend(bucket)
        self._block_cache[key] = (version, found)
        return found

    def cell_population(self) -> List[int]:
        """Occupancy of each non-empty cell (diagnostics/benchmarks)."""
        return sorted(len(bucket) for bucket in self._cells.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SpatialIndex(cell={self.cell_size_m:g} m, "
            f"{len(self._where)} devices in {len(self._cells)} cells)"
        )
