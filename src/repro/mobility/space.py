"""2D arena geometry."""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

Position = Tuple[float, float]


def distance_between(a: Position, b: Position) -> float:
    """Euclidean distance between two positions (metres).

    Deliberately ``sqrt(dx² + dy²)`` rather than ``math.hypot``: hypot's
    overflow-safe scaling rounds differently in the last ulp, and the
    vectorized scan path computes distances as ``numpy.sqrt(dx*dx +
    dy*dy)`` over whole candidate blocks. Both IEEE-754 operation
    sequences are identical, which is what keeps vectorized and scalar
    discovery byte-for-byte interchangeable under the determinism guard.
    Coordinates are metres in city-scale arenas, so the overflow regime
    hypot protects against is unreachable.
    """
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return math.sqrt(dx * dx + dy * dy)


@dataclasses.dataclass(frozen=True)
class Arena:
    """Rectangular simulation area ``[0, width] × [0, height]`` (metres)."""

    width: float = 100.0
    height: float = 100.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"arena dimensions must be positive: {self}")

    def contains(self, pos: Position) -> bool:
        """Whether ``pos`` lies inside the arena (inclusive)."""
        return 0.0 <= pos[0] <= self.width and 0.0 <= pos[1] <= self.height

    def clamp(self, pos: Position) -> Position:
        """Project ``pos`` to the nearest point inside the arena."""
        return (
            min(max(pos[0], 0.0), self.width),
            min(max(pos[1], 0.0), self.height),
        )

    def random_position(self, rng) -> Position:
        """Uniform random point inside the arena."""
        return (rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))

    @property
    def diagonal(self) -> float:
        """Longest possible pairwise distance in the arena."""
        return math.hypot(self.width, self.height)
