"""Mobility substrate.

The paper's framework cares about mobility only through the pairwise
distance between a UE and its relay over time: distance drives D2D energy
(Fig. 12), disconnection risk (the prejudgment mechanism of Sec. III-C),
and mid-session link breaks (the feedback/fallback mechanism).

Models are *analytic*: ``position(t)`` is computable for any ``t`` without
event-driven updates, which keeps the discrete-event schedule small.
"""

from repro.mobility.space import Arena, Position, distance_between
from repro.mobility.index import SpatialIndex
from repro.mobility.models import (
    MobilityModel,
    StaticMobility,
    LinearMobility,
    RandomWaypointMobility,
    place_crowd,
)

__all__ = [
    "Arena",
    "Position",
    "SpatialIndex",
    "distance_between",
    "MobilityModel",
    "StaticMobility",
    "LinearMobility",
    "RandomWaypointMobility",
    "place_crowd",
]
