"""Canned end-to-end simulations — the workhorse behind every bench.

Three scenario families, mirroring the paper's evaluation setups:

- :func:`run_relay_scenario` — one relay with ``n`` static UEs at a fixed
  distance (the paper's bench rig: Figs. 8-13, 15, Tables III/IV). Runs
  either the D2D framework (``mode="d2d"``) or the unmodified original
  system (``mode="original"``) over the same device layout.
- :func:`run_crowd_scenario` — a clustered crowd in an arena with a
  fraction of devices acting as relays; the signaling-storm setting the
  paper motivates.
- :func:`build_network` — the shared substrate wiring, reusable for
  hand-rolled experiments.
- :func:`relay_savings_runner` / :func:`crowd_metrics_runner` — picklable
  module-level grid runners over the two scenario families, built for
  ``repro.sweep.grid_sweep(..., workers=N)`` fan-out.

Every run stops beat emission one second before the nominal horizon, then
drains for ``drain_s`` so RRC tails demote, acks arrive, and energy/
signaling totals are complete and comparable across modes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.baseline.original import OriginalSystem
from repro.cellular.basestation import BaseStation
from repro.cellular.paging import PagingChannel
from repro.cellular.rrc import RrcProfile, WCDMA_PROFILE
from repro.cellular.signaling import SignalingLedger
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework
from repro.core.matching import MatchConfig
from repro.core.scheduler import SchedulerConfig
from repro.d2d.base import D2DMedium, D2DTechnology
from repro.d2d.wifi_direct import WIFI_DIRECT
from repro.device import Role, Smartphone
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.metrics import FaultMetrics, RunMetrics, collect_metrics
from repro.mobility.models import MobilityModel, StaticMobility, place_crowd
from repro.mobility.space import Arena
from repro.sim.engine import Simulator
from repro.workload.apps import AppProfile, STANDARD_APP
from repro.workload.server import IMServer

#: Post-emission drain: longer than the RRC tail plus ack round trip.
DEFAULT_DRAIN_S = 30.0


@dataclasses.dataclass
class NetworkContext:
    """Shared substrates of one simulation run."""

    sim: Simulator
    ledger: SignalingLedger
    basestation: BaseStation
    server: IMServer
    medium: Optional[D2DMedium]
    profile: EnergyProfile
    rrc_profile: RrcProfile
    #: Shared paging channel; passive (zero events) unless something —
    #: e.g. a chaos paging storm — actually pages through it.
    paging: Optional[PagingChannel] = None


def build_network(
    seed: int = 0,
    profile: EnergyProfile = DEFAULT_PROFILE,
    rrc_profile: RrcProfile = WCDMA_PROFILE,
    technology: Optional[D2DTechnology] = WIFI_DIRECT,
    allow_undeployed: bool = False,
    group_aware: bool = False,
    brute_force: bool = False,
    channel: Optional[str] = None,
    allocator: str = "centralized",
    num_rbs: int = 6,
    shadowing_sigma_db: Optional[float] = None,
) -> NetworkContext:
    """Wire up simulator, signaling ledger, base station, server, medium.

    ``brute_force=True`` disables the medium's spatial index (every scan
    walks all endpoints) — the determinism guard's escape hatch and the
    bench's reference mode. Results must be identical either way.

    ``channel`` selects the transfer model: ``None``/``"fixed"`` keeps
    the calibrated fixed-cost constants (the default, byte-identical to
    the pre-channel implementation), ``"sinr"`` activates the
    interference-aware capacity layer with ``num_rbs`` resource blocks
    assigned by ``allocator`` (see :data:`repro.channel.ALLOCATORS`).

    ``shadowing_sigma_db`` overrides the link model's lognormal shadowing
    standard deviation (the Zafaruddin et al. sweep axis) without
    touching the technology's other parameters.
    """
    if channel not in (None, "fixed", "sinr"):
        raise ValueError(f"channel must be 'fixed' or 'sinr', got {channel!r}")
    sim = Simulator(seed=seed)
    ledger = SignalingLedger()
    basestation = BaseStation(sim, ledger=ledger)
    server = IMServer(sim)
    basestation.attach_sink(server.uplink_sink)
    medium = None
    if technology is not None:
        if shadowing_sigma_db is not None:
            technology = dataclasses.replace(
                technology,
                link=dataclasses.replace(
                    technology.link, shadowing_sigma_db=shadowing_sigma_db
                ),
            )
        channel_model = None
        if channel == "sinr":
            from repro.channel.model import ChannelConfig, ChannelModel

            channel_model = ChannelModel(
                config=ChannelConfig(num_rbs=num_rbs, allocator=allocator),
                link=technology.link,
            )
        medium = D2DMedium(
            sim, technology, profile=profile, allow_undeployed=allow_undeployed,
            group_aware=group_aware, brute_force=brute_force,
            channel=channel_model,
        )
    return NetworkContext(
        sim=sim,
        ledger=ledger,
        basestation=basestation,
        server=server,
        medium=medium,
        profile=profile,
        rrc_profile=rrc_profile,
        paging=PagingChannel(sim, ledger),
    )


@dataclasses.dataclass
class ScenarioResult:
    """Everything a bench needs from one finished run."""

    context: NetworkContext
    metrics: RunMetrics
    devices: Dict[str, Smartphone]
    relay_ids: List[str]
    ue_ids: List[str]
    framework: Optional[HeartbeatRelayFramework]
    original: Optional[OriginalSystem]
    app: AppProfile
    periods: int
    #: Populated when the run enabled chaos and/or the invariant auditor
    #: (see :mod:`repro.faults`); ``None`` otherwise.
    chaos_report: Optional[object] = None
    audit_report: Optional[object] = None

    # convenience accessors -------------------------------------------------
    def relay_energy_uah(self) -> float:
        return sum(self.metrics.energy_of(r) for r in self.relay_ids)

    def ue_energy_uah(self) -> float:
        return sum(self.metrics.energy_of(u) for u in self.ue_ids)

    def system_energy_uah(self) -> float:
        return self.metrics.total_energy_uah()

    def per_device_energy_uah(self, device_id: str) -> float:
        return self.metrics.energy_of(device_id)

    def relay_l3(self) -> int:
        return sum(self.metrics.l3_of(r) for r in self.relay_ids)

    def ue_l3(self) -> int:
        return sum(self.metrics.l3_of(u) for u in self.ue_ids)

    def total_l3(self) -> int:
        return self.metrics.total_l3_messages

    def on_time_fraction(self) -> float:
        return self.metrics.delivery.on_time_fraction if self.metrics.delivery else 1.0

    def audit_ok(self) -> bool:
        """Whether the invariant auditor ran and found zero violations."""
        return self.audit_report is not None and self.audit_report.ok

    def deadline_safe_fraction(self) -> float:
        """Audited on-time fraction of non-exempt beats (1.0 unaudited)."""
        if self.metrics.faults is None:
            return 1.0
        return self.metrics.faults.deadline_safe_fraction


def _attach_faults(
    context: NetworkContext,
    devices: Dict[str, Smartphone],
    framework: Optional[HeartbeatRelayFramework],
    original: Optional[OriginalSystem],
    chaos,
    chaos_seed: Optional[int],
    audit: Optional[bool],
    seed: int,
):
    """Attach the invariant auditor and/or chaos engine to a built scenario.

    Auditor first, chaos second: ack suppression must wrap *outside* the
    audit hook so the auditor only sees acks the UE really received.
    Returns ``(auditor, engine)`` (either may be ``None``).
    """
    audit_enabled = (chaos is not None) if audit is None else audit
    auditor = None
    if audit_enabled:
        from repro.faults.auditor import InvariantAuditor
        from repro.faults.chaos import resolve_profile

        auditor = InvariantAuditor(
            context.sim,
            server=context.server,
            rewards=framework.rewards if framework is not None else None,
        )
        if framework is not None:
            auditor.attach_framework(framework, devices)
        elif original is not None:
            auditor.attach_original(original, devices)
        auditor.attach_basestation(context.basestation)
        resolved = resolve_profile(chaos) if chaos is not None else None
        if resolved is not None:
            auditor.reattach_bound_s = resolved.reattach_bound_s
    engine = None
    if chaos is not None:
        from repro.faults.chaos import ChaosEngine

        engine = ChaosEngine(
            chaos, seed=seed if chaos_seed is None else chaos_seed
        )
        engine.attach(
            context.sim,
            devices,
            medium=context.medium,
            framework=framework,
            original=original,
            basestation=context.basestation,
            paging=context.paging,
        )
    return auditor, engine


def _iter_fallback_senders(
    framework: Optional[HeartbeatRelayFramework],
    original: Optional[OriginalSystem],
):
    """Every degraded-mode cellular sender wired into a built scenario."""
    if framework is not None:
        for agent in framework.ues.values():
            yield agent.cellular
        for agent in framework.relays.values():
            yield agent.cellular
        for sender in framework.standalones.values():
            yield sender.cellular
    if original is not None:
        yield from original.fallback_senders.values()


def _fault_metrics(
    engine,
    auditor,
    horizon: float,
    framework: Optional[HeartbeatRelayFramework],
    original: Optional[OriginalSystem] = None,
    context: Optional[NetworkContext] = None,
) -> Optional[FaultMetrics]:
    """Fold chaos/audit outcomes into one :class:`FaultMetrics` record."""
    if engine is None and auditor is None:
        return None
    fallbacks = late = duplicates = 0
    if framework is not None:
        for agent in framework.ues.values():
            fallbacks += agent.feedback.fallbacks_fired
            late += agent.feedback.late_acks
            duplicates += agent.feedback.duplicate_acks
    retries = detaches = reattaches = 0
    dropped_stale = dropped_overflow = dropped_retries = 0
    for sender in _iter_fallback_senders(framework, original):
        retries += sender.retries
        detaches += sender.detaches
        reattaches += sender.reattaches
        dropped_stale += sender.dropped_stale
        dropped_overflow += sender.dropped_overflow
        dropped_retries += sender.dropped_retries
    chaos = engine.report if engine is not None else None
    report = auditor.finalize(horizon) if auditor is not None else None
    return FaultMetrics(
        chaos_profile=chaos.profile if chaos else None,
        chaos_seed=chaos.seed if chaos else None,
        chaos_events=chaos.total_events if chaos else 0,
        relay_deaths=chaos.relay_deaths if chaos else 0,
        relay_revivals=chaos.relay_revivals if chaos else 0,
        link_downs=chaos.link_downs if chaos else 0,
        link_ups=chaos.link_ups if chaos else 0,
        ack_bursts=chaos.ack_bursts if chaos else 0,
        acks_dropped=chaos.acks_dropped if chaos else 0,
        storm_beats=chaos.storm_beats if chaos else 0,
        batteries_depleted=chaos.batteries_depleted if chaos else 0,
        fallbacks_fired=fallbacks,
        late_acks=late,
        duplicate_acks=duplicates,
        audit_violations=len(report.violations) if report is not None else None,
        beats_adjudicated=report.beats_adjudicated if report is not None else 0,
        beats_on_time=report.beats_on_time if report is not None else 0,
        beats_exempt_downtime=(
            report.beats_exempt_downtime if report is not None else 0
        ),
        bs_outages=chaos.bs_outages if chaos else 0,
        bs_brownouts=chaos.bs_brownouts if chaos else 0,
        rrc_rejections=chaos.rrc_rejections if chaos else 0,
        pages_injected=chaos.pages_injected if chaos else 0,
        pages_failed=(
            context.paging.pages_failed
            if context is not None and context.paging is not None
            else 0
        ),
        uplinks_rejected=(
            context.basestation.uplinks_rejected if context is not None else 0
        ),
        cellular_retries=retries,
        detaches=detaches,
        reattaches=reattaches,
        beats_dropped_stale=dropped_stale,
        beats_dropped_overflow=dropped_overflow,
        beats_dropped_retries=dropped_retries,
        beats_buffered_end=report.beats_buffered_end if report is not None else 0,
        beats_exempt_ran=report.beats_exempt_ran if report is not None else 0,
    )


def _channel_snapshot(context: NetworkContext, horizon: float):
    """Channel aggregates of the run, or ``None`` in fixed mode."""
    if context.medium is None or context.medium.channel is None:
        return None
    return context.medium.channel.stats_snapshot(horizon)


def _ue_positions(n: int, distance_m: float) -> List[MobilityModel]:
    """``n`` static UEs on a circle of radius ``distance_m`` round the relay."""
    models: List[MobilityModel] = []
    for i in range(n):
        angle = 2.0 * math.pi * i / max(n, 1)
        models.append(
            StaticMobility(
                (distance_m * math.cos(angle), distance_m * math.sin(angle))
            )
        )
    return models


def _spread_phases(n: int, low: float = 0.3, high: float = 0.8) -> List[float]:
    """Evenly spread UE heartbeat phases inside the relay period."""
    if n <= 0:
        return []
    if n == 1:
        return [(low + high) / 2.0]
    step = (high - low) / (n - 1)
    return [low + i * step for i in range(n)]


def _apply_selection_policy(
    match_config: Optional[MatchConfig], selection_policy: Optional[str]
) -> Optional[MatchConfig]:
    """Overlay the scalar ``selection_policy`` knob onto a match config.

    The scalar exists so picklable grid runners and the CLI can select a
    policy without constructing (unpicklable-through-argv) dataclasses;
    ``None`` leaves the config untouched.
    """
    if selection_policy is None:
        return match_config
    return dataclasses.replace(
        match_config or MatchConfig(), selection_policy=selection_policy
    )


def run_relay_scenario(
    n_ues: int = 1,
    distance_m: float = 1.0,
    periods: int = 7,
    app: AppProfile = STANDARD_APP,
    heartbeat_bytes: Optional[int] = None,
    mode: str = "d2d",
    capacity: int = 10,
    seed: int = 0,
    technology: D2DTechnology = WIFI_DIRECT,
    profile: EnergyProfile = DEFAULT_PROFILE,
    rrc_profile: RrcProfile = WCDMA_PROFILE,
    match_config: Optional[MatchConfig] = None,
    scheduler_config: Optional[SchedulerConfig] = None,
    drain_s: float = DEFAULT_DRAIN_S,
    allow_undeployed: bool = False,
    ue_phases: Optional[Sequence[float]] = None,
    keep_energy_log: bool = False,
    group_aware: bool = False,
    brute_force: bool = False,
    chaos=None,
    chaos_seed: Optional[int] = None,
    audit: Optional[bool] = None,
    channel: Optional[str] = None,
    allocator: str = "centralized",
    num_rbs: int = 6,
    shadowing_sigma_db: Optional[float] = None,
    selection_policy: Optional[str] = None,
) -> ScenarioResult:
    """The paper's bench rig: one relay, ``n_ues`` UEs at ``distance_m``.

    Runs for ``periods`` relay heartbeat periods. Each UE beats once per
    period (same app), phased mid-period so its beat is collected and
    flushed with the relay's own delayed beat — the paper's "transmission
    times" axis equals ``periods`` for one UE.

    ``mode="original"`` runs the identical device layout without the
    framework (the baseline); ``mode="d2d"`` deploys the framework.

    ``chaos`` (a :class:`repro.faults.ChaosProfile` or its name) layers
    stochastic fault processes on the run, seeded by ``chaos_seed``
    (default: ``seed``). ``audit`` runs the delivery-safety auditor
    (default: on whenever chaos is on).
    """
    if n_ues < 0:
        raise ValueError(f"n_ues must be non-negative, got {n_ues}")
    if periods < 1:
        raise ValueError(f"periods must be >= 1, got {periods}")
    if mode not in ("d2d", "original"):
        raise ValueError(f"mode must be 'd2d' or 'original', got {mode!r}")
    if heartbeat_bytes is not None:
        app = dataclasses.replace(app, heartbeat_bytes=heartbeat_bytes)
    match_config = _apply_selection_policy(match_config, selection_policy)
    context = build_network(
        seed=seed,
        profile=profile,
        rrc_profile=rrc_profile,
        technology=technology if mode == "d2d" else None,
        allow_undeployed=allow_undeployed,
        group_aware=group_aware,
        brute_force=brute_force,
        channel=channel,
        allocator=allocator,
        num_rbs=num_rbs,
        shadowing_sigma_db=shadowing_sigma_db,
    )
    relay_role = Role.RELAY if mode == "d2d" else Role.STANDALONE
    ue_role = Role.UE if mode == "d2d" else Role.STANDALONE

    devices: Dict[str, Smartphone] = {}
    relay = Smartphone(
        context.sim,
        "relay-0",
        mobility=StaticMobility((0.0, 0.0)),
        role=relay_role,
        ledger=context.ledger,
        basestation=context.basestation,
        d2d_medium=context.medium,
        profile=profile,
        rrc_profile=rrc_profile,
    )
    devices[relay.device_id] = relay
    ue_mobilities = _ue_positions(n_ues, distance_m)
    ues: List[Smartphone] = []
    for i, mobility in enumerate(ue_mobilities):
        ue = Smartphone(
            context.sim,
            f"ue-{i}",
            mobility=mobility,
            role=ue_role,
            ledger=context.ledger,
            basestation=context.basestation,
            d2d_medium=context.medium,
            profile=profile,
            rrc_profile=rrc_profile,
        )
        devices[ue.device_id] = ue
        ues.append(ue)

    if keep_energy_log:
        for device in devices.values():
            device.energy.keep_log = True
    phases = list(ue_phases) if ue_phases is not None else _spread_phases(n_ues)
    framework: Optional[HeartbeatRelayFramework] = None
    original: Optional[OriginalSystem] = None
    if mode == "d2d":
        config = FrameworkConfig(
            scheduler=scheduler_config or SchedulerConfig(capacity=capacity),
            matching=match_config or MatchConfig(),
        )
        framework = HeartbeatRelayFramework([], app=app, config=config)
        framework.add_device(relay, phase_fraction=0.0)
        for ue, phase in zip(ues, phases):
            framework.add_device(ue, phase_fraction=phase)
    else:
        original = OriginalSystem(app=app)
        original.add_device(relay, phase_fraction=0.0)
        for ue, phase in zip(ues, phases):
            original.add_device(ue, phase_fraction=phase)

    auditor, engine = _attach_faults(
        context, devices, framework, original, chaos, chaos_seed, audit, seed
    )
    stop_at = periods * app.heartbeat_period_s - 1.0
    context.sim.run_until(stop_at)
    if framework is not None:
        framework.shutdown()
    if original is not None:
        original.shutdown()
    horizon = periods * app.heartbeat_period_s + drain_s
    context.sim.run_until(horizon)

    faults = _fault_metrics(
        engine, auditor, horizon, framework, original=original, context=context
    )
    metrics = collect_metrics(
        devices.values(), context.ledger, context.server, horizon_s=horizon,
        faults=faults,
        perf=context.medium.perf if context.medium else None,
        channel=_channel_snapshot(context, horizon),
    )
    return ScenarioResult(
        context=context,
        metrics=metrics,
        devices=devices,
        relay_ids=[relay.device_id],
        ue_ids=[u.device_id for u in ues],
        framework=framework,
        original=original,
        app=app,
        periods=periods,
        chaos_report=engine.report if engine is not None else None,
        audit_report=auditor.report if auditor is not None else None,
    )


def relay_savings_runner(
    distance_m: float = 1.0,
    periods: int = 7,
    n_ues: int = 1,
    seed: int = 0,
    capacity: int = 10,
    chaos_profile: Optional[str] = None,
    chaos_seed: Optional[int] = None,
) -> Dict[str, float]:
    """Grid runner: paired d2d/original relay runs → headline metrics.

    Module-level (hence picklable) so ``grid_sweep(..., workers=N)`` can
    ship it to ``ProcessPoolExecutor`` workers; every argument is a plain
    scalar for the same reason. Returns the saved fractions the
    sensitivity benches assert on plus the raw relay charge.
    """
    from repro.analysis import saved_fraction

    d2d = run_relay_scenario(
        n_ues=n_ues, distance_m=distance_m, periods=periods,
        capacity=capacity, seed=seed,
        chaos=chaos_profile, chaos_seed=chaos_seed,
    )
    base = run_relay_scenario(
        n_ues=n_ues, distance_m=distance_m, periods=periods,
        capacity=capacity, seed=seed, mode="original",
    )
    result = {
        "system_saved": saved_fraction(
            base.system_energy_uah(), d2d.system_energy_uah()
        ),
        "ue_saved": saved_fraction(base.ue_energy_uah(), d2d.ue_energy_uah()),
        "l3_saved": saved_fraction(float(base.total_l3()), float(d2d.total_l3())),
        "relay_uah": d2d.relay_energy_uah(),
    }
    if chaos_profile is not None:
        result["audit_violations"] = float(
            len(d2d.audit_report.violations) if d2d.audit_report else 0
        )
        result["deadline_safe_fraction"] = d2d.deadline_safe_fraction()
    return result


def crowd_metrics_runner(
    n_devices: int = 40,
    relay_fraction: float = 0.2,
    duration_s: float = 1800.0,
    arena_m: float = 60.0,
    hotspots: Optional[int] = None,
    seed: int = 0,
    mode: str = "d2d",
    chaos_profile: Optional[str] = None,
    chaos_seed: Optional[int] = None,
    channel: Optional[str] = None,
    allocator: str = "centralized",
    num_rbs: int = 6,
    shadowing_sigma_db: Optional[float] = None,
    selection_policy: Optional[str] = None,
    heartbeat_period_s: Optional[float] = None,
    audit: Optional[bool] = None,
    mobile_fraction: float = 0.0,
    shards: int = 1,
    shard_backend: str = "serial",
    shard_plan: str = "bands",
) -> Dict[str, float]:
    """Grid runner: one crowd run → plain scalar metrics.

    Picklable like :func:`relay_savings_runner`. ``hotspots=None`` scales
    the cluster count with the crowd (one per ~20 devices, at least two),
    so a single runner covers a whole device-count axis. The channel
    knobs (``channel``/``allocator``/``num_rbs``/``shadowing_sigma_db``/
    ``selection_policy``) are plain scalars for the same picklability
    reason; ``audit=True`` runs the invariant auditor and reports its
    violation count even without chaos.

    ``shards > 1`` dispatches to the cell-sharded kernel
    (:func:`repro.shard.run_crowd_scenario_sharded`) with
    ``shard_backend`` choosing serial or process execution; the sharded
    kernel rejects chaos/channel/audit combinations it cannot honor.
    """
    if hotspots is None:
        hotspots = max(2, n_devices // 20)
    if shards > 1:
        from repro.shard import run_crowd_scenario_sharded

        if selection_policy not in (None, "distance"):
            raise ValueError(
                "sharded kernel supports the default distance selection "
                f"policy only, got {selection_policy!r}"
            )
        sharded = run_crowd_scenario_sharded(
            n_devices=n_devices,
            relay_fraction=relay_fraction,
            duration_s=duration_s,
            arena=Arena(arena_m, arena_m),
            hotspots=hotspots,
            mobile_fraction=mobile_fraction,
            seed=seed,
            mode=mode,
            heartbeat_period_s=heartbeat_period_s,
            shards=shards,
            backend=shard_backend,
            shard_plan=shard_plan,
            channel=channel,
            chaos=chaos_profile,
            audit=audit,
        )
        delivery = sharded.metrics.delivery
        return {
            "events_fired": float(sharded.events_fired),
            "on_time_fraction": (
                delivery.on_time_fraction if delivery else 1.0
            ),
            "received": float(delivery.received if delivery else 0),
            "total_l3": float(sharded.metrics.total_l3_messages),
            "system_uah": sharded.metrics.total_energy_uah(),
            "shards": float(shards),
            "windows": float(sharded.windows),
            "handovers": float(sharded.handovers),
            "ghost_registrations": float(sharded.ghost_registrations),
            "device_skew": sharded.device_skew,
            "critical_path_s": sharded.critical_path_s,
        }
    app = STANDARD_APP
    if heartbeat_period_s is not None:
        app = dataclasses.replace(app, heartbeat_period_s=heartbeat_period_s)
    result = run_crowd_scenario(
        n_devices=n_devices,
        relay_fraction=relay_fraction,
        duration_s=duration_s,
        arena=Arena(arena_m, arena_m),
        hotspots=hotspots,
        mobile_fraction=mobile_fraction,
        seed=seed,
        mode=mode,
        app=app,
        chaos=chaos_profile,
        chaos_seed=chaos_seed,
        channel=channel,
        allocator=allocator,
        num_rbs=num_rbs,
        shadowing_sigma_db=shadowing_sigma_db,
        selection_policy=selection_policy,
        audit=audit,
    )
    delivery = result.metrics.delivery
    out = {
        "events_fired": float(result.context.sim.events_fired),
        "on_time_fraction": result.on_time_fraction(),
        "received": float(delivery.received if delivery else 0),
        "total_l3": float(result.total_l3()),
        "system_uah": result.system_energy_uah(),
    }
    if chaos_profile is not None or result.audit_report is not None:
        out["audit_violations"] = float(
            len(result.audit_report.violations) if result.audit_report else 0
        )
        out["deadline_safe_fraction"] = result.deadline_safe_fraction()
    if result.metrics.channel is not None:
        stats = result.metrics.channel
        out["channel_transfers"] = float(stats["transfers"])
        out["channel_mean_rate_bps"] = float(stats["mean_rate_bps"] or 0.0)
        out["channel_rb_utilization"] = float(stats["rb_utilization"])
    return out


def chaos_differential_runner(
    scenario: str = "pair",
    profile: str = "mild",
    seed: int = 0,
    n_ues: int = 2,
    periods: int = 4,
    n_devices: int = 12,
    duration_s: float = 900.0,
) -> Dict[str, float]:
    """Grid runner: one differential chaos case → pass/fail scalars.

    Runs the scenario audited with and without chaos and reports the
    safety deltas (see :func:`repro.faults.harness.run_differential`).
    Picklable, so distributed sweeps can fan a whole profile × seed grid
    across hosts.
    """
    from repro.faults.harness import run_differential

    case = run_differential(
        scenario=scenario,
        profile=profile,
        seed=seed,
        n_ues=n_ues,
        periods=periods,
        n_devices=n_devices,
        duration_s=duration_s,
    )
    return {
        "passed": 1.0 if case.passed else 0.0,
        "baseline_on_time": case.baseline_on_time,
        "chaos_on_time": case.chaos_on_time,
        "chaos_deadline_safe": case.chaos_deadline_safe,
        "audit_violations": float(case.audit_violations),
        "chaos_events": float(case.chaos_events),
    }


def _ran_differential_runner(
    profile: str,
    scenario: str,
    seed: int,
    n_ues: int,
    periods: int,
    n_devices: int,
    duration_s: float,
) -> Dict[str, float]:
    from repro.faults.harness import run_ran_differential

    case = run_ran_differential(
        scenario=scenario,
        profile=profile,
        seed=seed,
        n_ues=n_ues,
        periods=periods,
        n_devices=n_devices,
        duration_s=duration_s,
    )
    return {
        "passed": 1.0 if case.passed else 0.0,
        "baseline_deadline_safe": case.baseline_deadline_safe,
        "chaos_deadline_safe": case.chaos_deadline_safe,
        "audit_violations": float(case.chaos_violations),
        "chaos_events": float(case.chaos_events),
        "bs_outages": float(case.bs_outages),
        "bs_brownouts": float(case.bs_brownouts),
        "uplinks_rejected": float(case.uplinks_rejected),
        "detaches": float(case.detaches),
        "reattaches": float(case.reattaches),
        "beats_dropped": float(case.beats_dropped),
        "replay_identical": 1.0 if case.replay_identical else 0.0,
    }


def ran_outage_runner(
    scenario: str = "pair",
    seed: int = 0,
    n_ues: int = 2,
    periods: int = 4,
    n_devices: int = 12,
    duration_s: float = 900.0,
) -> Dict[str, float]:
    """Grid runner: differential base-station-outage case → scalars.

    Picklable like the other registry runners; wraps
    :func:`repro.faults.harness.run_ran_differential` with the
    ``ran-outage`` profile (hard cell outages + reattach liveness).
    """
    return _ran_differential_runner(
        "ran-outage", scenario, seed, n_ues, periods, n_devices, duration_s
    )


def paging_storm_runner(
    scenario: str = "pair",
    seed: int = 0,
    n_ues: int = 2,
    periods: int = 4,
    n_devices: int = 12,
    duration_s: float = 900.0,
) -> Dict[str, float]:
    """Grid runner: differential paging-storm case → scalars.

    Same shape as :func:`ran_outage_runner`, with the ``paging-storm``
    profile (control-channel page floods + brown-outs + RRC rejects).
    """
    return _ran_differential_runner(
        "paging-storm", scenario, seed, n_ues, periods, n_devices, duration_s
    )


#: Name → picklable grid runner. Multi-host dispatch (``repro.sweep``'s
#: shared-dir backend) needs every dispatcher process to construct the
#: *same* runner from a plain string it can pass on the command line;
#: this registry is that lookup table.
RUNNER_REGISTRY: Dict[str, Callable[..., Dict[str, float]]] = {
    "relay-savings": relay_savings_runner,
    "crowd-metrics": crowd_metrics_runner,
    "chaos-differential": chaos_differential_runner,
    "ran-outage": ran_outage_runner,
    "paging-storm": paging_storm_runner,
}


def _select_relay_indices(
    strategy: str,
    mobilities: Sequence[MobilityModel],
    n_relays: int,
    context: NetworkContext,
    match_config: Optional[MatchConfig],
) -> set:
    """Which device indices the operator appoints as relays."""
    if strategy == "roundrobin" or n_relays == 0:
        return set(range(n_relays))
    from repro.core.operator import (
        Participant,
        greedy_relay_selection,
        random_relay_selection,
    )

    pair_range = (match_config or MatchConfig()).max_pair_distance_m
    participants = [
        Participant(str(i), mobility.position(0.0))
        for i, mobility in enumerate(mobilities)
    ]
    if strategy == "greedy":
        chosen = greedy_relay_selection(
            participants, range_m=pair_range, max_relays=n_relays
        )
    else:  # random
        chosen = random_relay_selection(
            participants, n_relays, context.sim.rng.get("relay-selection")
        )
    return {int(device_id) for device_id in chosen}


def run_crowd_scenario(
    n_devices: int = 40,
    relay_fraction: float = 0.2,
    arena: Optional[Arena] = None,
    mode: str = "d2d",
    app: AppProfile = STANDARD_APP,
    duration_s: float = 1800.0,
    hotspots: int = 3,
    hotspot_spread_m: float = 8.0,
    mobile_fraction: float = 0.0,
    capacity: int = 10,
    seed: int = 0,
    technology: D2DTechnology = WIFI_DIRECT,
    profile: EnergyProfile = DEFAULT_PROFILE,
    rrc_profile: RrcProfile = WCDMA_PROFILE,
    match_config: Optional[MatchConfig] = None,
    drain_s: float = DEFAULT_DRAIN_S,
    relay_selection: str = "roundrobin",
    brute_force: bool = False,
    pre_run: Optional[Callable[[NetworkContext, Dict[str, Smartphone]], None]] = None,
    chaos=None,
    chaos_seed: Optional[int] = None,
    audit: Optional[bool] = None,
    channel: Optional[str] = None,
    allocator: str = "centralized",
    num_rbs: int = 6,
    shadowing_sigma_db: Optional[float] = None,
    selection_policy: Optional[str] = None,
) -> ScenarioResult:
    """A dense crowd: the signaling-storm setting of the paper's Sec. I.

    ``pre_run(context, devices)`` is called after wiring but before the
    clock starts — the hook for attaching extra instrumentation or
    scheduling additional traffic (e.g. push notifications).

    ``relay_fraction`` of devices volunteer as relays; the rest are UEs
    (or everything standalone in ``mode="original"``). Phases are random
    but seeded. ``relay_selection`` picks who the operator appoints:
    ``"roundrobin"`` (the first devices of each hotspot), ``"greedy"``
    (dominating-set planning from :mod:`repro.core.operator`) or
    ``"random"``.
    """
    if not 0.0 <= relay_fraction <= 1.0:
        raise ValueError(f"relay_fraction out of [0,1]: {relay_fraction}")
    if mode not in ("d2d", "original"):
        raise ValueError(f"mode must be 'd2d' or 'original', got {mode!r}")
    if relay_selection not in ("roundrobin", "greedy", "random"):
        raise ValueError(f"unknown relay_selection {relay_selection!r}")
    match_config = _apply_selection_policy(match_config, selection_policy)
    arena = arena or Arena(60.0, 60.0)
    context = build_network(
        seed=seed,
        profile=profile,
        rrc_profile=rrc_profile,
        technology=technology if mode == "d2d" else None,
        brute_force=brute_force,
        channel=channel,
        allocator=allocator,
        num_rbs=num_rbs,
        shadowing_sigma_db=shadowing_sigma_db,
    )
    placement_rng = context.sim.rng.get("crowd-placement")
    mobilities = place_crowd(
        n_devices,
        arena,
        placement_rng,
        hotspots=hotspots,
        spread_m=hotspot_spread_m,
        mobile_fraction=mobile_fraction,
    )
    n_relays = int(round(n_devices * relay_fraction))
    relay_indices = _select_relay_indices(
        relay_selection, mobilities, n_relays, context, match_config
    )
    phase_rng = context.sim.rng.get("crowd-phases")

    devices: Dict[str, Smartphone] = {}
    relay_ids: List[str] = []
    ue_ids: List[str] = []
    framework: Optional[HeartbeatRelayFramework] = None
    original: Optional[OriginalSystem] = None
    if mode == "d2d":
        framework = HeartbeatRelayFramework(
            [],
            app=app,
            config=FrameworkConfig(
                scheduler=SchedulerConfig(capacity=capacity),
                matching=match_config or MatchConfig(),
            ),
        )
    else:
        original = OriginalSystem([], app=app)

    for i, mobility in enumerate(mobilities):
        is_relay = i in relay_indices and mode == "d2d"
        role = (
            Role.RELAY
            if is_relay
            else (Role.UE if mode == "d2d" else Role.STANDALONE)
        )
        device = Smartphone(
            context.sim,
            f"{'relay' if is_relay else 'dev'}-{i}",
            mobility=mobility,
            role=role,
            ledger=context.ledger,
            basestation=context.basestation,
            d2d_medium=context.medium,
            profile=profile,
            rrc_profile=rrc_profile,
        )
        devices[device.device_id] = device
        if is_relay:
            relay_ids.append(device.device_id)
        else:
            ue_ids.append(device.device_id)
        phase = phase_rng.random()
        if framework is not None:
            framework.add_device(device, phase_fraction=phase if not is_relay else 0.0)
        else:
            assert original is not None
            original.add_device(device, phase_fraction=phase)

    auditor, engine = _attach_faults(
        context, devices, framework, original, chaos, chaos_seed, audit, seed
    )
    if pre_run is not None:
        pre_run(context, devices)
    context.sim.run_until(max(0.0, duration_s - 1.0))
    if framework is not None:
        framework.shutdown()
    if original is not None:
        original.shutdown()
    horizon = duration_s + drain_s
    context.sim.run_until(horizon)
    faults = _fault_metrics(
        engine, auditor, horizon, framework, original=original, context=context
    )
    metrics = collect_metrics(
        devices.values(), context.ledger, context.server, horizon_s=horizon,
        faults=faults,
        perf=context.medium.perf if context.medium else None,
        channel=_channel_snapshot(context, horizon),
    )
    periods = max(1, int(duration_s / app.heartbeat_period_s))
    return ScenarioResult(
        context=context,
        metrics=metrics,
        devices=devices,
        relay_ids=relay_ids,
        ue_ids=ue_ids,
        framework=framework,
        original=original,
        app=app,
        periods=periods,
        chaos_report=engine.report if engine is not None else None,
        audit_report=auditor.report if auditor is not None else None,
    )
