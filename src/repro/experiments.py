"""Programmatic regeneration of every paper artifact.

Each function reproduces one of the paper's tables or figures and returns
plain data (dicts/lists) ready for tabulation or plotting; the benchmark
suite wraps these with shape assertions, and the CLI exposes them as
``repro-sim experiment <id>``. Experiment ids follow DESIGN.md §4.
"""

from __future__ import annotations

import functools
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import saved_percent, signaling_reduction, wasted_to_saved_ratio
from repro.scenarios import relay_savings_runner, run_relay_scenario
from repro.sweep import SweepResult, grid_sweep
from repro.workload.traffic import heartbeat_share_table

#: Paper values for Table I (heartbeat share of all messages).
TABLE1_PAPER = {"wechat": 0.50, "whatsapp": 0.619, "qq": 0.526, "facebook": 0.484}

#: Paper values for Table III (per-phase charge, µAh).
TABLE3_PAPER = {
    "ue": {"discovery": 132.24, "connection": 63.74, "forwarding": 73.09},
    "relay": {"discovery": 122.50, "connection": 60.29, "forwarding": 132.45},
}


def table1(seed: int = 2017, days: float = 7.0, repeats: int = 5) -> Dict[str, float]:
    """Table I — measured heartbeat share per app."""
    return heartbeat_share_table(
        list(TABLE1_PAPER), window_s=days * 86_400.0,
        rng=random.Random(seed), repeats=repeats,
    )


def table3(seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Table III — per-phase charge (µAh) for one 1 m single-beat session."""
    result = run_relay_scenario(n_ues=1, distance_m=1.0, periods=1, seed=seed)
    ue = result.metrics.devices["ue-0"].energy_breakdown
    relay = result.metrics.devices["relay-0"].energy_breakdown
    return {
        "ue": {
            "discovery": ue["d2d_discovery"],
            "connection": ue["d2d_connection"],
            "forwarding": ue["d2d_forward"],
        },
        "relay": {
            "discovery": relay["d2d_discovery"],
            "connection": relay["d2d_connection"],
            "forwarding": relay["d2d_receive"],
        },
    }


def table4(max_ues: int = 7, seed: int = 0) -> List[float]:
    """Table IV — relay cumulative receive charge (µAh) for 1..max_ues."""
    measured = []
    for n_ues in range(1, max_ues + 1):
        result = run_relay_scenario(
            n_ues=n_ues, distance_m=1.0, periods=1, seed=seed
        )
        measured.append(
            result.metrics.devices["relay-0"].energy_breakdown["d2d_receive"]
        )
    return measured


def fig8(max_k: int = 8, seed: int = 0) -> Dict[str, List[float]]:
    """Fig. 8 — energy (µAh) vs. transmission times, 1 relay + 1 UE @ 1 m."""
    series: Dict[str, List[float]] = {
        "ue": [], "relay": [], "original": [], "saved_system": [], "saved_ue": []
    }
    for periods in range(1, max_k + 1):
        d2d = run_relay_scenario(n_ues=1, distance_m=1.0, periods=periods,
                                 seed=seed)
        base = run_relay_scenario(n_ues=1, distance_m=1.0, periods=periods,
                                  seed=seed, mode="original")
        original = base.per_device_energy_uah("ue-0")
        series["ue"].append(d2d.per_device_energy_uah("ue-0"))
        series["relay"].append(d2d.per_device_energy_uah("relay-0"))
        series["original"].append(original)
        series["saved_system"].append(
            base.system_energy_uah() - d2d.system_energy_uah()
        )
        series["saved_ue"].append(original - d2d.per_device_energy_uah("ue-0"))
    return series


def fig9(max_k: int = 8, seed: int = 0) -> Tuple[List[float], List[float]]:
    """Fig. 9 — saved energy %, (system, ue) per transmission count."""
    saved_system, saved_ue = [], []
    for periods in range(1, max_k + 1):
        d2d = run_relay_scenario(n_ues=1, distance_m=1.0, periods=periods,
                                 seed=seed)
        base = run_relay_scenario(n_ues=1, distance_m=1.0, periods=periods,
                                  seed=seed, mode="original")
        saved_system.append(
            saved_percent(base.system_energy_uah(), d2d.system_energy_uah())
        )
        saved_ue.append(
            saved_percent(
                base.per_device_energy_uah("ue-0"),
                d2d.per_device_energy_uah("ue-0"),
            )
        )
    return saved_system, saved_ue


def fig10(
    ue_counts: Sequence[int] = (1, 3, 5, 7), max_k: int = 7, seed: int = 0
) -> Dict[str, List[float]]:
    """Fig. 10 — relay energy with multiple UEs (aligned arrivals)."""
    curves: Dict[str, List[float]] = {}
    for n_ues in ue_counts:
        curve = []
        for periods in range(1, max_k + 1):
            result = run_relay_scenario(
                n_ues=n_ues, distance_m=1.0, periods=periods, seed=seed,
                ue_phases=[0.5] * n_ues,
            )
            curve.append(result.per_device_energy_uah("relay-0"))
        curves[f"{n_ues} UE"] = curve
    return curves


def fig11(
    ue_counts: Sequence[int] = (1, 3, 5, 7), max_k: int = 7, seed: int = 0
) -> Dict[str, List[float]]:
    """Fig. 11 — wasted/saved energy ratio (%), by UE count and k."""
    curves: Dict[str, List[float]] = {}
    for n_ues in ue_counts:
        curve = []
        for periods in range(1, max_k + 1):
            d2d = run_relay_scenario(n_ues=n_ues, distance_m=1.0,
                                     periods=periods, seed=seed,
                                     ue_phases=[0.5] * n_ues)
            base = run_relay_scenario(n_ues=n_ues, distance_m=1.0,
                                      periods=periods, seed=seed,
                                      mode="original",
                                      ue_phases=[0.5] * n_ues)
            curve.append(100.0 * wasted_to_saved_ratio(
                relay_d2d=d2d.per_device_energy_uah("relay-0"),
                relay_baseline=base.per_device_energy_uah("relay-0"),
                ue_d2d=d2d.ue_energy_uah(),
                ue_baseline=base.ue_energy_uah(),
            ))
        curves[f"{n_ues} UE"] = curve
    return curves


def fig12(
    distances: Sequence[float] = (1.0, 3.0, 5.0, 8.0, 10.0, 12.0, 15.0),
    periods: int = 5,
    seed: int = 0,
) -> Tuple[List[float], List[float], float]:
    """Fig. 12 — (ue, relay, original) energy vs. distance."""
    ue, relay = [], []
    for distance in distances:
        result = run_relay_scenario(n_ues=1, distance_m=distance,
                                    periods=periods, seed=seed)
        ue.append(result.per_device_energy_uah("ue-0"))
        relay.append(result.per_device_energy_uah("relay-0"))
    base = run_relay_scenario(n_ues=1, distance_m=1.0, periods=periods,
                              seed=seed, mode="original")
    return ue, relay, base.per_device_energy_uah("ue-0")


def fig13(
    multipliers: Sequence[int] = (1, 2, 3, 4, 5),
    base_size: int = 54,
    periods: int = 3,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Fig. 13 — energy vs. message size."""
    series: Dict[str, List[float]] = {"ue": [], "relay": [], "original": []}
    for multiplier in multipliers:
        size = base_size * multiplier
        d2d = run_relay_scenario(n_ues=1, periods=periods,
                                 heartbeat_bytes=size, seed=seed)
        base = run_relay_scenario(n_ues=1, periods=periods,
                                  heartbeat_bytes=size, seed=seed,
                                  mode="original")
        series["ue"].append(d2d.per_device_energy_uah("ue-0"))
        series["relay"].append(d2d.per_device_energy_uah("relay-0"))
        series["original"].append(base.per_device_energy_uah("ue-0"))
    return series


def fig15(
    max_k: int = 10, seed: int = 0
) -> Tuple[Dict[str, List[int]], Dict[int, List[float]]]:
    """Fig. 15 — layer-3 series and per-UE-count reduction fractions."""
    series: Dict[str, List[int]] = {
        "original": [], "relay w/1 UE": [], "relay w/2 UEs": [], "ue (d2d)": []
    }
    reductions: Dict[int, List[float]] = {1: [], 2: []}
    for periods in range(1, max_k + 1):
        base1 = run_relay_scenario(n_ues=1, periods=periods, seed=seed,
                                   mode="original")
        series["original"].append(base1.metrics.l3_of("relay-0"))
        for n_ues in (1, 2):
            d2d = run_relay_scenario(n_ues=n_ues, periods=periods, seed=seed)
            base = base1 if n_ues == 1 else run_relay_scenario(
                n_ues=2, periods=periods, seed=seed, mode="original"
            )
            if n_ues == 1:
                series["relay w/1 UE"].append(d2d.relay_l3())
                series["ue (d2d)"].append(d2d.ue_l3())
            else:
                series["relay w/2 UEs"].append(d2d.relay_l3())
            reductions[n_ues].append(
                signaling_reduction(base.total_l3(), d2d.total_l3())
            )
    return series, reductions


def sensitivity_grid(
    distances: Sequence[float] = (1.0, 8.0, 15.0, 19.0),
    periods: Sequence[int] = (1, 3, 7),
    seed: int = 0,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
    max_retries: int = 0,
    on_error: str = "raise",
    claim_ttl_s: float = 120.0,
) -> SweepResult:
    """Saved-energy sensitivity over the (distance × periods) plane.

    The joint sweep behind ``benchmarks/test_sensitivity_grid.py``, run
    through the sweep execution layer: ``workers`` fans points out over a
    local process pool, ``cache_dir`` re-serves unchanged points from
    disk, and ``backend="shared-dir"`` lets several dispatcher processes
    (possibly on different hosts) drive this same grid concurrently
    through one shared ``cache_dir``. ``max_retries``/``on_error`` are
    the fault-tolerance knobs of :func:`repro.sweep.grid_sweep`. Returns
    the full :class:`~repro.sweep.SweepResult` (telemetry attached) so
    callers can pivot, slice, or inspect timings.
    """
    runner = functools.partial(relay_savings_runner, n_ues=1, seed=seed)
    return grid_sweep(
        {"distance_m": list(distances), "periods": list(periods)},
        runner,
        workers=workers,
        cache_dir=cache_dir,
        backend=backend,
        max_retries=max_retries,
        on_error=on_error,
        claim_ttl_s=claim_ttl_s,
    )


def _sensitivity_grid_artifact() -> Dict[str, Dict[int, float]]:
    """S1 registry entry — system-saved pivot of the sensitivity grid."""
    sweep = sensitivity_grid()
    pivot = sweep.pivot("distance_m", "periods", "system_saved")
    return {f"{distance:g} m": row for distance, row in pivot.items()}


def chaos_reliability(
    profiles: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1),
    scenario: str = "pair",
) -> Dict[str, Dict[str, float]]:
    """Delivery safety under chaos, per profile (paper Sec. III-A claim).

    Runs the differential harness for every built-in chaos profile and
    folds the per-seed cases into one row per profile: worst audited
    deadline-safety, total auditor violations, total chaos events, and
    how many cases passed. The paper's reliability argument holds iff
    every ``deadline_safe`` is 1.0 and every ``violations`` is 0.
    """
    from repro.faults.chaos import CHAOS_PROFILES
    from repro.faults.harness import run_differential_suite

    names = list(profiles) if profiles is not None else sorted(CHAOS_PROFILES)
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        suite = run_differential_suite(
            profiles=[name], seeds=seeds, scenarios=(scenario,)
        )
        rows[name] = {
            "deadline_safe": min(c.chaos_deadline_safe for c in suite.cases),
            "violations": float(sum(c.audit_violations for c in suite.cases)),
            "chaos_events": float(sum(c.chaos_events for c in suite.cases)),
            "fallbacks": float(sum(c.fallbacks_fired for c in suite.cases)),
            "cases_passed": float(
                sum(1 for c in suite.cases if c.passed)
            ),
            "cases": float(len(suite.cases)),
        }
    return rows


def channel_capacity_vs_density(
    device_counts: Sequence[int] = (50, 150, 300),
    duration_s: float = 1800.0,
    seed: int = 0,
    num_rbs: int = 6,
    allocator: str = "centralized",
) -> Dict[str, Dict[str, float]]:
    """Per-transfer capacity vs. crowd density under the SINR channel.

    Runs the crowd scenario with ``channel="sinr"`` at increasing device
    counts and reports the channel aggregates the capacity layer exposes:
    mean/min SINR, mean per-transfer rate, RB utilization, and peak live
    co-channel leases. The arena stays fixed at 250 m × 250 m while the
    population grows, so each step raises spatial density; the
    interference-limited claim holds iff RB utilization and peak live
    leases rise monotonically while the mean per-transfer rate falls
    once the RB pool saturates.
    """
    import dataclasses as _dc

    from repro.mobility.space import Arena
    from repro.scenarios import run_crowd_scenario
    from repro.workload.apps import STANDARD_APP

    app = _dc.replace(STANDARD_APP, heartbeat_period_s=45.0)
    rows: Dict[str, Dict[str, float]] = {}
    for n_devices in device_counts:
        result = run_crowd_scenario(
            n_devices=n_devices,
            arena=Arena(250.0, 250.0),
            app=app,
            duration_s=duration_s,
            hotspots=12,
            seed=seed,
            channel="sinr",
            num_rbs=num_rbs,
            allocator=allocator,
        )
        stats = result.metrics.channel or {}
        rows[f"{n_devices} devices"] = {
            "transfers": float(stats.get("transfers", 0)),
            # zero-transfer runs record these keys as None, not absent
            "mean_sinr_db": float(stats.get("mean_sinr_db") or 0.0),
            "min_sinr_db": float(stats.get("min_sinr_db") or 0.0),
            "mean_rate_bps": float(stats.get("mean_rate_bps") or 0.0),
            "rb_utilization": float(stats.get("rb_utilization", 0.0)),
            "rb_peak_live": float(stats.get("rb_peak_live", 0)),
            "on_time": result.on_time_fraction(),
        }
    return rows


def channel_safety(
    seeds: Sequence[int] = (0, 1),
    n_devices: int = 16,
    duration_s: float = 900.0,
) -> Dict[str, Dict[str, float]]:
    """Fixed-vs-channel differential: contention never costs delivery.

    Runs the audited crowd scenario in fixed-cost and ``sinr`` mode from
    the same seeds and folds the differential cases into one row per
    seed. The safety claim holds iff every row has zero violations and
    ``deadline_safe`` 1.0 — capacity-derived transfer durations must not
    break the paper's delivery guarantees.
    """
    from repro.faults.harness import run_channel_differential

    rows: Dict[str, Dict[str, float]] = {}
    for seed in seeds:
        case = run_channel_differential(
            "crowd", seed=seed, n_devices=n_devices, duration_s=duration_s
        )
        rows[f"seed {seed}"] = {
            "fixed_violations": float(case.fixed_violations),
            "channel_violations": float(case.channel_violations),
            "deadline_safe": case.channel_deadline_safe,
            "transfers": float(case.channel_transfers),
            "rb_peak_live": float(case.channel_peak_live),
            "passed": float(case.passed),
        }
    return rows


def channel_selection_policies(
    policies: Sequence[str] = ("distance", "rate", "hybrid"),
    sigmas_db: Sequence[float] = (2.0, 8.0),
    n_devices: int = 300,
    duration_s: float = 900.0,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Selection policy × shadowing sigma under the SINR channel (X3).

    The X1 crowd (fixed 250 m × 250 m arena, 45 s heartbeat,
    ``channel="sinr"``) rerun at high density for every combination of
    relay-selection policy and lognormal shadowing sigma. Distance-only
    selection ranks candidates by RSSI-estimated distance, which
    shadowing corrupts; the channel-aware policies rank by the channel
    model's deterministic per-link rate estimate. The claim judged
    against the X1 baseline: at high sigma (≥ 8 dB) ``rate``/``hybrid``
    deliver a higher mean per-transfer rate than ``distance``, while at
    low sigma all three are near-identical. Deterministic from
    ``(scenario, seed)`` — rerunning reproduces every cell exactly.
    """
    import dataclasses as _dc

    from repro.mobility.space import Arena
    from repro.scenarios import run_crowd_scenario
    from repro.workload.apps import STANDARD_APP

    app = _dc.replace(STANDARD_APP, heartbeat_period_s=45.0)
    rows: Dict[str, Dict[str, float]] = {}
    for sigma in sigmas_db:
        for policy in policies:
            result = run_crowd_scenario(
                n_devices=n_devices,
                arena=Arena(250.0, 250.0),
                app=app,
                duration_s=duration_s,
                hotspots=12,
                seed=seed,
                channel="sinr",
                shadowing_sigma_db=sigma,
                selection_policy=policy,
            )
            stats = result.metrics.channel or {}
            rows[f"sigma {sigma:g} dB / {policy}"] = {
                "mean_rate_bps": float(stats.get("mean_rate_bps") or 0.0),
                "mean_sinr_db": float(stats.get("mean_sinr_db") or 0.0),
                "transfers": float(stats.get("transfers", 0)),
                "rb_utilization": float(stats.get("rb_utilization", 0.0)),
                "on_time": result.on_time_fraction(),
            }
    return rows


def ran_resilience(
    profiles: Sequence[str] = ("ran-outage", "paging-storm", "degraded-ran"),
    seeds: Sequence[int] = (0, 1, 2),
    n_ues: int = 2,
    periods: int = 4,
) -> Dict[str, Dict[str, float]]:
    """Degraded-RAN resilience — the cellular-side differential (R1).

    For every RAN chaos profile × seed, the pair scenario runs three
    times through :func:`repro.faults.harness.run_ran_differential`:
    audited chaos-free, audited under RAN chaos (base-station outages,
    brown-outs, injected RRC rejects, paging storms), and an exact
    replay. A row passes only with zero auditor violations in both
    audited legs — no silent heartbeat loss, buffer bounds held,
    backoff monotone, reattach within the profile's declared bound —
    100 % outage-aware deadline-safe delivery, and a byte-identical
    replay from ``(scenario, profile, seed)``.
    """
    from repro.faults.harness import run_ran_differential

    rows: Dict[str, Dict[str, float]] = {}
    for profile in profiles:
        for seed in seeds:
            case = run_ran_differential(
                scenario="pair", profile=profile, seed=seed,
                n_ues=n_ues, periods=periods,
            )
            rows[f"{profile} / seed {seed}"] = {
                "baseline_safe": case.baseline_deadline_safe,
                "chaos_safe": case.chaos_deadline_safe,
                "violations": float(case.chaos_violations),
                "chaos_events": float(case.chaos_events),
                "bs_outages": float(case.bs_outages),
                "bs_brownouts": float(case.bs_brownouts),
                "uplinks_rejected": float(case.uplinks_rejected),
                "detaches": float(case.detaches),
                "reattaches": float(case.reattaches),
                "beats_dropped": float(case.beats_dropped),
                "replay_identical": float(case.replay_identical),
                "passed": float(case.passed),
            }
    return rows


#: Experiment id → (description, zero-argument runner).
REGISTRY: Dict[str, Tuple[str, Callable[[], object]]] = {
    "T1": ("Table I — heartbeat share per app", table1),
    "T3": ("Table III — per-phase charge (µAh)", table3),
    "T4": ("Table IV — relay receive charge vs. beats", table4),
    "F8": ("Fig. 8 — energy vs. transmission times", fig8),
    "F9": ("Fig. 9 — saved energy %", fig9),
    "F10": ("Fig. 10 — relay energy with multiple UEs", fig10),
    "F11": ("Fig. 11 — wasted/saved ratio %", fig11),
    "F12": ("Fig. 12 — energy vs. distance", fig12),
    "F13": ("Fig. 13 — energy vs. message size", fig13),
    "F15": ("Fig. 15 — layer-3 messages", fig15),
    "S1": ("Sensitivity grid — system saved over distance × periods",
           _sensitivity_grid_artifact),
    "C1": ("Chaos reliability — delivery safety per chaos profile",
           chaos_reliability),
    "X1": ("Channel capacity vs. crowd density (SINR layer)",
           channel_capacity_vs_density),
    "X2": ("Channel safety — fixed-vs-sinr differential",
           channel_safety),
    "X3": ("Selection policy × shadowing sigma (channel-aware matching)",
           channel_selection_policies),
    "R1": ("Degraded-RAN resilience — differential per RAN chaos profile",
           ran_resilience),
}


def run_experiment(experiment_id: str):
    """Run one registered experiment by id (e.g. ``"F9"``)."""
    try:
        __, runner = REGISTRY[experiment_id.upper()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    return runner()
