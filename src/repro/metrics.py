"""Per-run metric collection.

Bundles the numbers every experiment reports — per-device energy (total
and by phase), per-device layer-3 signaling, RRC cycles, delivery quality —
into plain data structures the benches and reporting helpers consume.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

from repro.cellular.signaling import SignalingLedger
from repro.device import Role, Smartphone
from repro.workload.server import IMServer


@dataclasses.dataclass(frozen=True)
class DeviceMetrics:
    """One device's totals at the end of a run."""

    device_id: str
    role: str
    energy_uah: float
    d2d_energy_uah: float
    cellular_energy_uah: float
    energy_breakdown: Dict[str, float]
    l3_messages: int
    rrc_cycles: int
    uplink_sends: int
    battery_level: Optional[float]


@dataclasses.dataclass(frozen=True)
class DeliveryMetrics:
    """Server-side delivery quality."""

    received: int
    on_time: int
    late: int
    relayed: int
    mean_delay_s: float

    @property
    def on_time_fraction(self) -> float:
        total = self.on_time + self.late
        return 1.0 if total == 0 else self.on_time / total


@dataclasses.dataclass(frozen=True)
class RunMetrics:
    """Everything measured in one experiment run."""

    horizon_s: float
    devices: Dict[str, DeviceMetrics]
    delivery: Optional[DeliveryMetrics]
    total_l3_messages: int

    # ------------------------------------------------------------------
    def energy_of(self, device_id: str) -> float:
        return self.devices[device_id].energy_uah

    def l3_of(self, device_id: str) -> int:
        return self.devices[device_id].l3_messages

    def total_energy_uah(self, roles: Optional[Iterable[str]] = None) -> float:
        wanted = set(roles) if roles is not None else None
        return sum(
            d.energy_uah
            for d in self.devices.values()
            if wanted is None or d.role in wanted
        )

    def devices_with_role(self, role: str) -> List[DeviceMetrics]:
        return [d for d in self.devices.values() if d.role == role]

    def energy_by_role(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for d in self.devices.values():
            totals[d.role] = totals.get(d.role, 0.0) + d.energy_uah
        return totals

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain-data form for JSON serialization."""
        return {
            "horizon_s": self.horizon_s,
            "total_l3_messages": self.total_l3_messages,
            "delivery": (
                None
                if self.delivery is None
                else {
                    "received": self.delivery.received,
                    "on_time": self.delivery.on_time,
                    "late": self.delivery.late,
                    "relayed": self.delivery.relayed,
                    "mean_delay_s": self.delivery.mean_delay_s,
                    "on_time_fraction": self.delivery.on_time_fraction,
                }
            ),
            "devices": {
                device_id: dataclasses.asdict(device)
                for device_id, device in self.devices.items()
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON document of the whole run (for archival/plotting)."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_csv_rows(self) -> List[List[object]]:
        """Per-device rows (header first) for spreadsheet export."""
        header: List[object] = [
            "device_id", "role", "energy_uah", "d2d_energy_uah",
            "cellular_energy_uah", "l3_messages", "rrc_cycles",
            "uplink_sends", "battery_level",
        ]
        rows: List[List[object]] = [header]
        for device in sorted(self.devices.values(), key=lambda d: d.device_id):
            rows.append([
                device.device_id, device.role, device.energy_uah,
                device.d2d_energy_uah, device.cellular_energy_uah,
                device.l3_messages, device.rrc_cycles, device.uplink_sends,
                device.battery_level,
            ])
        return rows

    def write_csv(self, path: str) -> None:
        """Write the per-device table to ``path``."""
        import csv

        with open(path, "w", newline="") as handle:
            csv.writer(handle).writerows(self.to_csv_rows())


def collect_metrics(
    devices: Iterable[Smartphone],
    ledger: SignalingLedger,
    server: Optional[IMServer] = None,
    horizon_s: float = 0.0,
) -> RunMetrics:
    """Snapshot the run's metrics from the live objects."""
    per_device: Dict[str, DeviceMetrics] = {}
    for device in devices:
        per_device[device.device_id] = DeviceMetrics(
            device_id=device.device_id,
            role=device.role.value,
            energy_uah=device.energy.total_uah,
            d2d_energy_uah=device.energy.d2d_uah,
            cellular_energy_uah=device.energy.cellular_uah,
            energy_breakdown=device.energy.breakdown(),
            l3_messages=ledger.count_for(device.device_id),
            rrc_cycles=ledger.cycles_for(device.device_id),
            uplink_sends=device.modem.sends,
            battery_level=device.battery.level if device.battery else None,
        )
    delivery = None
    if server is not None:
        delivery = DeliveryMetrics(
            received=len(server.records),
            on_time=server.on_time_count,
            late=server.late_count,
            relayed=server.relayed_count,
            mean_delay_s=server.mean_delay_s(),
        )
    return RunMetrics(
        horizon_s=horizon_s,
        devices=per_device,
        delivery=delivery,
        total_l3_messages=ledger.total,
    )
