"""Per-run metric collection.

Bundles the numbers every experiment reports — per-device energy (total
and by phase), per-device layer-3 signaling, RRC cycles, delivery quality —
into plain data structures the benches and reporting helpers consume.

Also home to :class:`SweepTelemetry`, the progress counters and per-point
wall-clock timings the parallel sweep executor (:mod:`repro.sweep`)
records, so a sweep's speedup is observable rather than asserted.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.cellular.signaling import SignalingLedger
from repro.device import Role, Smartphone
from repro.perf import PerfCounters
from repro.workload.server import IMServer


def default_host_id() -> str:
    """``hostname:pid`` identity of this dispatcher process.

    Used to stamp sweep telemetry and shared-dir claim files so a
    distributed sweep's progress view can attribute in-flight points to
    the host (and process) working on them.
    """
    try:
        hostname = socket.gethostname()
    except OSError:  # pragma: no cover - exotic environments only
        hostname = "unknown-host"
    return f"{hostname}:{os.getpid()}"


@dataclasses.dataclass(frozen=True)
class DeviceMetrics:
    """One device's totals at the end of a run."""

    device_id: str
    role: str
    energy_uah: float
    d2d_energy_uah: float
    cellular_energy_uah: float
    energy_breakdown: Dict[str, float]
    l3_messages: int
    rrc_cycles: int
    uplink_sends: int
    battery_level: Optional[float]


@dataclasses.dataclass(frozen=True)
class DeliveryMetrics:
    """Server-side delivery quality."""

    received: int
    on_time: int
    late: int
    relayed: int
    mean_delay_s: float

    @property
    def on_time_fraction(self) -> float:
        total = self.on_time + self.late
        return 1.0 if total == 0 else self.on_time / total


@dataclasses.dataclass(frozen=True)
class FaultMetrics:
    """Fault-process activity and safety-audit outcome of one run.

    Populated when a run enables the chaos engine and/or the invariant
    auditor (:mod:`repro.faults`); ``None`` fields mean the corresponding
    subsystem was off.
    """

    chaos_profile: Optional[str] = None
    chaos_seed: Optional[int] = None
    chaos_events: int = 0
    relay_deaths: int = 0
    relay_revivals: int = 0
    link_downs: int = 0
    link_ups: int = 0
    ack_bursts: int = 0
    acks_dropped: int = 0
    storm_beats: int = 0
    batteries_depleted: int = 0
    fallbacks_fired: int = 0
    late_acks: int = 0
    duplicate_acks: int = 0
    audit_violations: Optional[int] = None
    beats_adjudicated: int = 0
    beats_on_time: int = 0
    beats_exempt_downtime: int = 0
    # RAN fault domain: cell-side chaos activity and degraded-mode protocol
    bs_outages: int = 0
    bs_brownouts: int = 0
    rrc_rejections: int = 0
    pages_injected: int = 0
    pages_failed: int = 0
    uplinks_rejected: int = 0
    cellular_retries: int = 0
    detaches: int = 0
    reattaches: int = 0
    beats_dropped_stale: int = 0
    beats_dropped_overflow: int = 0
    beats_dropped_retries: int = 0
    beats_buffered_end: int = 0
    beats_exempt_ran: int = 0

    @property
    def audited(self) -> bool:
        return self.audit_violations is not None

    @property
    def deadline_safe_fraction(self) -> float:
        """On-time fraction of adjudicated, non-exempt beats (1.0 if none).

        Outage-aware: beats whose window overlapped a degraded-RAN
        interval (and were buffered, dropped-with-cause, or delivered
        late because of it) are exempt alongside powered-off devices, so
        the figure measures the protocol against the healthy population.
        """
        eligible = (
            self.beats_adjudicated
            - self.beats_exempt_downtime
            - self.beats_exempt_ran
        )
        return 1.0 if eligible <= 0 else self.beats_on_time / eligible

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["audited"] = self.audited
        data["deadline_safe_fraction"] = self.deadline_safe_fraction
        return data


@dataclasses.dataclass(frozen=True)
class RunMetrics:
    """Everything measured in one experiment run.

    ``perf`` carries the hot-path observability counters of the run
    (scan candidates examined, spatial-index activity, wall-clock
    timers — see :mod:`repro.perf`). Unlike every other field it is
    *not* part of the simulation's deterministic output: a brute-force
    and an index-accelerated run produce identical metrics everywhere
    else but legitimately different perf counters. Equality/determinism
    checks should compare :meth:`to_dict` with the ``perf`` key removed
    (or use :meth:`to_comparable_dict`).
    """

    horizon_s: float
    devices: Dict[str, DeviceMetrics]
    delivery: Optional[DeliveryMetrics]
    total_l3_messages: int
    faults: Optional[FaultMetrics] = None
    perf: Optional[Dict[str, float]] = None
    #: Channel-layer aggregates (SINR, rates, RB utilization) when the
    #: run used the interference-aware channel; ``None`` in fixed mode.
    #: Unlike ``perf`` this IS deterministic simulation output and stays
    #: in :meth:`to_comparable_dict`.
    channel: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def energy_of(self, device_id: str) -> float:
        return self.devices[device_id].energy_uah

    def l3_of(self, device_id: str) -> int:
        return self.devices[device_id].l3_messages

    def total_energy_uah(self, roles: Optional[Iterable[str]] = None) -> float:
        wanted = set(roles) if roles is not None else None
        return sum(
            d.energy_uah
            for d in self.devices.values()
            if wanted is None or d.role in wanted
        )

    def devices_with_role(self, role: str) -> List[DeviceMetrics]:
        return [d for d in self.devices.values() if d.role == role]

    def energy_by_role(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for d in self.devices.values():
            totals[d.role] = totals.get(d.role, 0.0) + d.energy_uah
        return totals

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain-data form for JSON serialization."""
        return {
            "horizon_s": self.horizon_s,
            "total_l3_messages": self.total_l3_messages,
            "delivery": (
                None
                if self.delivery is None
                else {
                    "received": self.delivery.received,
                    "on_time": self.delivery.on_time,
                    "late": self.delivery.late,
                    "relayed": self.delivery.relayed,
                    "mean_delay_s": self.delivery.mean_delay_s,
                    "on_time_fraction": self.delivery.on_time_fraction,
                }
            ),
            "devices": {
                device_id: dataclasses.asdict(device)
                for device_id, device in self.devices.items()
            },
            "faults": None if self.faults is None else self.faults.to_dict(),
            "perf": None if self.perf is None else dict(self.perf),
            "channel": None if self.channel is None else dict(self.channel),
        }

    def to_comparable_dict(self) -> Dict:
        """:meth:`to_dict` minus observability-only fields.

        This is the form two runs of the same scenario must agree on
        byte-for-byte regardless of which acceleration paths (spatial
        index vs. brute force) computed them.
        """
        data = self.to_dict()
        data.pop("perf", None)
        return data

    def to_json(self, indent: int = 2) -> str:
        """JSON document of the whole run (for archival/plotting)."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_csv_rows(self) -> List[List[object]]:
        """Per-device rows (header first) for spreadsheet export."""
        header: List[object] = [
            "device_id", "role", "energy_uah", "d2d_energy_uah",
            "cellular_energy_uah", "l3_messages", "rrc_cycles",
            "uplink_sends", "battery_level",
        ]
        rows: List[List[object]] = [header]
        for device in sorted(self.devices.values(), key=lambda d: d.device_id):
            rows.append([
                device.device_id, device.role, device.energy_uah,
                device.d2d_energy_uah, device.cellular_energy_uah,
                device.l3_messages, device.rrc_cycles, device.uplink_sends,
                device.battery_level,
            ])
        return rows

    def write_csv(self, path: str) -> None:
        """Write the per-device table to ``path``."""
        import csv

        with open(path, "w", newline="") as handle:
            csv.writer(handle).writerows(self.to_csv_rows())


@dataclasses.dataclass(frozen=True)
class SweepPointTiming:
    """Wall-clock record of one executed (or cache-served) sweep point.

    ``attempts`` counts runner invocations behind this point: ``1`` for a
    clean first-try success, more after retries, ``0`` when the point was
    served from the cache (locally or published by another dispatcher).
    """

    index: int
    params: Mapping[str, Any]
    seconds: float
    cached: bool
    attempts: int = 1


class SweepTelemetry:
    """Progress counters and per-point timings for one grid sweep.

    The executor in :mod:`repro.sweep` records one
    :class:`SweepPointTiming` per grid point as it completes (in
    completion order, which under a process pool need not be grid
    order), plus cache hit/miss counters and the sweep's total wall
    time. ``busy_seconds() / wall_seconds`` is the achieved parallel
    speedup; for a serial sweep it is ~1.

    Fault-tolerance and multi-host counters: ``retries`` (extra runner
    attempts beyond the first, summed over points), ``errors`` (points
    that exhausted their attempts), ``claim_contention`` / ``claims_stolen``
    (shared-dir dispatch: points found claimed by another dispatcher /
    stale claims taken over), and ``host`` (the ``hostname:pid`` identity
    of the dispatcher that recorded this telemetry).

    Cache counters only move when a cache is attached to the sweep: the
    executor passes ``cached=None`` for points computed without a cache,
    so a cacheless sweep reports ``0 hit / 0 miss`` rather than ``total``
    misses, and the counters reconcile with ``SweepCache.hits/misses``.
    """

    def __init__(
        self,
        total: int,
        mode: str = "serial",
        workers: int = 0,
        host: Optional[str] = None,
    ) -> None:
        self.total = int(total)
        self.mode = mode
        self.workers = int(workers)
        self.host = host if host is not None else default_host_id()
        self.timings: List[SweepPointTiming] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.retries = 0
        self.errors = 0
        self.claim_contention = 0
        self.claims_stolen = 0
        self.wall_seconds = 0.0

    @property
    def completed(self) -> int:
        return len(self.timings)

    @property
    def pending(self) -> int:
        return self.total - self.completed - self.errors

    # ------------------------------------------------------------------
    def record(
        self,
        index: int,
        params: Mapping[str, Any],
        seconds: float,
        cached: Optional[bool] = False,
        attempts: int = 1,
    ) -> SweepPointTiming:
        """Book one finished point; returns the stored timing.

        ``cached`` is three-valued: ``True`` (served from the cache),
        ``False`` (computed while a cache was attached — a miss), or
        ``None`` (computed with no cache configured — neither counter
        moves).
        """
        timing = SweepPointTiming(
            index=index,
            params=dict(params),
            seconds=seconds,
            cached=bool(cached),
            attempts=int(attempts),
        )
        self.timings.append(timing)
        if cached is True:
            self.cache_hits += 1
        elif cached is False:
            self.cache_misses += 1
        self.retries += max(0, int(attempts) - 1)
        return timing

    def record_error(
        self, index: int, params: Mapping[str, Any], attempts: int = 1
    ) -> None:
        """Book one point that exhausted its attempts without a result."""
        del index, params  # identity lives in the SweepError list
        self.errors += 1
        self.retries += max(0, int(attempts) - 1)

    def busy_seconds(self) -> float:
        """Summed per-point compute time (what a serial run would pay)."""
        return sum(t.seconds for t in self.timings)

    def speedup(self) -> float:
        """Busy/wall ratio — >1 means parallelism (or the cache) paid off."""
        if self.wall_seconds <= 0.0:
            return 1.0
        return self.busy_seconds() / self.wall_seconds

    def throughput(self) -> float:
        """Completed points per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.completed / self.wall_seconds

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for JSON export alongside sweep results."""
        return {
            "total": self.total,
            "completed": self.completed,
            "mode": self.mode,
            "workers": self.workers,
            "host": self.host,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "retries": self.retries,
            "errors": self.errors,
            "claim_contention": self.claim_contention,
            "claims_stolen": self.claims_stolen,
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds(),
            "timings": [dataclasses.asdict(t) for t in self.timings],
        }

    def summary(self) -> str:
        """One-line progress/speedup report for CLI and bench output."""
        line = (
            f"sweep: {self.completed}/{self.total} points "
            f"({self.mode}, workers={self.workers}) "
            f"wall {self.wall_seconds:.3f}s busy {self.busy_seconds():.3f}s "
            f"speedup {self.speedup():.2f}x"
        )
        if self.cache_hits or self.cache_misses:
            line += f" cache {self.cache_hits} hit / {self.cache_misses} miss"
        if self.errors or self.retries:
            line += f" errors {self.errors} retries {self.retries}"
        if self.claim_contention or self.claims_stolen:
            line += (
                f" contention {self.claim_contention}"
                f" stolen {self.claims_stolen}"
            )
        return line

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SweepTelemetry({self.summary()})"


def collect_metrics(
    devices: Iterable[Smartphone],
    ledger: SignalingLedger,
    server: Optional[IMServer] = None,
    horizon_s: float = 0.0,
    faults: Optional[FaultMetrics] = None,
    perf: Optional[Union[Dict[str, float], PerfCounters]] = None,
    channel: Optional[Dict[str, Any]] = None,
) -> RunMetrics:
    """Snapshot the run's metrics from the live objects.

    ``perf`` accepts either an already-flattened counter dict or the live
    :class:`~repro.perf.PerfCounters`; passing the live object lets this
    function book the per-device energy aggregation walk under the
    ``energy`` wall-time section before snapshotting, so the phase
    attribution (discover / transfer / energy / shard-sync) in bench
    reports includes metric-collection cost.
    """
    counters = perf if isinstance(perf, PerfCounters) else None
    t_section = time.perf_counter()
    per_device: Dict[str, DeviceMetrics] = {}
    for device in devices:
        per_device[device.device_id] = DeviceMetrics(
            device_id=device.device_id,
            role=device.role.value,
            energy_uah=device.energy.total_uah,
            d2d_energy_uah=device.energy.d2d_uah,
            cellular_energy_uah=device.energy.cellular_uah,
            energy_breakdown=device.energy.breakdown(),
            l3_messages=ledger.count_for(device.device_id),
            rrc_cycles=ledger.cycles_for(device.device_id),
            uplink_sends=device.modem.sends,
            battery_level=device.battery.level if device.battery else None,
        )
    if counters is not None:
        counters.add_seconds("energy", time.perf_counter() - t_section)
        perf = counters.to_dict()
    delivery = None
    if server is not None:
        delivery = DeliveryMetrics(
            received=len(server.records),
            on_time=server.on_time_count,
            late=server.late_count,
            relayed=server.relayed_count,
            mean_delay_s=server.mean_delay_s(),
        )
    return RunMetrics(
        horizon_s=horizon_s,
        devices=per_device,
        delivery=delivery,
        total_l3_messages=ledger.total,
        faults=faults,
        perf=perf,
        channel=channel,
    )
