"""Parameter-sweep utilities: grids, a parallel executor, a result cache.

Define a grid of named parameters and a runner mapping one parameter
combination to a dict of metrics, and get a :class:`SweepResult` that can
slice, tabulate, and pivot:

    sweep = grid_sweep(
        {"distance_m": [1, 5, 10], "periods": [1, 4, 7]},
        lambda distance_m, periods: {"saved": run(distance_m, periods)},
    )
    sweep.pivot("distance_m", "periods", "saved")

Execution scales from the inline serial loop (the default, and the
fallback when ``workers <= 1``) to a ``ProcessPoolExecutor`` fan-out via
the ``workers=`` knob. Three guarantees make the parallel path safe to
adopt everywhere:

- **Determinism.** With ``base_seed=`` set, every point's runner receives
  ``seed=spawn(base_seed, point_index)`` (:func:`repro.sim.rng.spawn`),
  which depends only on the point's position in the grid — so serial and
  parallel sweeps produce identical :class:`SweepPoint` lists, point for
  point, regardless of worker count or completion order.
- **Caching.** With ``cache=``/``cache_dir=`` set, finished points are
  stored on disk keyed by (params hash, seed, code-version tag) — see
  :class:`SweepCache` — so re-running a grid only computes changed points.
- **Observability.** Every sweep records per-point wall-clock timings and
  progress counters in a :class:`repro.metrics.SweepTelemetry`, attached
  as ``SweepResult.telemetry``, so speedups are measured, not asserted.

Parallel runners must be picklable: module-level functions (or
``functools.partial`` over them), e.g. the canned runners in
:mod:`repro.scenarios`. Closures and lambdas only work serially.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import itertools
import json
import os
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.metrics import SweepTelemetry
from repro.sim.rng import spawn

#: Code-version tag baked into every cache key. Bump when runner or
#: simulator semantics change in a way that invalidates stored metrics.
CODE_VERSION_TAG = "repro-sweep-v1"


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid point: the parameters used and the metrics produced."""

    params: Mapping[str, Any]
    metrics: Mapping[str, float]


class SweepResult:
    """The collected points of one grid sweep.

    ``telemetry`` (when present) carries the executor's per-point timings
    and cache counters; it is observational and deliberately excluded
    from any equality comparison over ``points``.
    """

    def __init__(
        self,
        param_names: Sequence[str],
        points: List[SweepPoint],
        telemetry: Optional[SweepTelemetry] = None,
    ) -> None:
        self.param_names = list(param_names)
        self.points = points
        self.telemetry = telemetry

    def __len__(self) -> int:
        return len(self.points)

    # ------------------------------------------------------------------
    def metric_names(self) -> List[str]:
        if not self.points:
            return []
        return sorted(self.points[0].metrics)

    def where(self, **conditions: Any) -> List[SweepPoint]:
        """Points whose parameters match every condition."""
        return [
            point
            for point in self.points
            if all(point.params.get(k) == v for k, v in conditions.items())
        ]

    def series(self, x_param: str, metric: str, **fixed: Any) -> List[Tuple[Any, float]]:
        """(x, metric) pairs along one parameter, other params fixed."""
        if x_param not in self.param_names:
            raise KeyError(f"unknown parameter {x_param!r}")
        rows = [
            (point.params[x_param], point.metrics[metric])
            for point in self.where(**fixed)
        ]
        rows.sort(key=lambda pair: pair[0])
        return rows

    def pivot(
        self, row_param: str, col_param: str, metric: str
    ) -> Dict[Any, Dict[Any, float]]:
        """row value → {column value → metric} (a 2-D slice)."""
        table: Dict[Any, Dict[Any, float]] = {}
        for point in self.points:
            row = point.params[row_param]
            col = point.params[col_param]
            table.setdefault(row, {})[col] = point.metrics[metric]
        return table

    def best(self, metric: str, maximize: bool = True) -> SweepPoint:
        """The point with the extreme value of ``metric``."""
        if not self.points:
            raise ValueError("empty sweep")
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p.metrics[metric])

    def rows(self) -> List[List[Any]]:
        """Header row + one row per point (for `reporting.format_table`)."""
        header: List[Any] = list(self.param_names) + self.metric_names()
        out: List[List[Any]] = [header]
        for point in self.points:
            out.append(
                [point.params[name] for name in self.param_names]
                + [point.metrics[name] for name in self.metric_names()]
            )
        return out


class SweepCache:
    """On-disk cache of finished sweep points.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the BLAKE2b
    hex digest of the canonical JSON of ``{"params", "seed", "tag"}``.
    The tag defaults to :data:`CODE_VERSION_TAG`; pass your own
    ``version_tag`` to segregate (and thereby invalidate) results across
    incompatible runner versions. Because the key covers every parameter
    value and the seed, any config change misses the cache naturally —
    stale entries are never *read*, only left behind.

    Entries store the params and metrics as JSON, written atomically
    (tmp file + ``os.replace``) so a killed sweep never leaves a
    half-written entry behind.
    """

    def __init__(self, root: str, version_tag: str = CODE_VERSION_TAG) -> None:
        self.root = str(root)
        self.version_tag = version_tag
        self.hits = 0
        self.misses = 0
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    def key_for(self, params: Mapping[str, Any], seed: Optional[int] = None) -> str:
        payload = json.dumps(
            {"params": dict(params), "seed": seed, "tag": self.version_tag},
            sort_keys=True,
            default=repr,
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()

    def path_for(self, params: Mapping[str, Any], seed: Optional[int] = None) -> str:
        key = self.key_for(params, seed)
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    def get(
        self, params: Mapping[str, Any], seed: Optional[int] = None
    ) -> Optional[Dict[str, float]]:
        """Stored metrics for ``(params, seed)``, or ``None`` on a miss."""
        path = self.path_for(params, seed)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return dict(entry["metrics"])

    def put(
        self,
        params: Mapping[str, Any],
        seed: Optional[int],
        metrics: Mapping[str, float],
    ) -> str:
        """Store one finished point; returns the entry's path."""
        path = self.path_for(params, seed)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "params": dict(params),
            "seed": seed,
            "tag": self.version_tag,
            "metrics": dict(metrics),
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True, default=repr)
        os.replace(tmp, path)
        return path


def _execute_point(
    runner: Callable[..., Mapping[str, float]],
    params: Mapping[str, Any],
    seed: Optional[int],
) -> Tuple[Dict[str, float], float]:
    """Run one grid point; returns (metrics, elapsed seconds).

    Module-level so a ``ProcessPoolExecutor`` can pickle it; the timing is
    taken inside the worker, so it measures compute, not queueing.
    """
    started = time.perf_counter()
    kwargs = dict(params)
    if seed is not None:
        kwargs["seed"] = seed
    metrics = dict(runner(**kwargs))
    return metrics, time.perf_counter() - started


def _check_metrics(
    metrics: Mapping[str, float],
    expected: Optional[frozenset],
    params: Mapping[str, Any],
) -> frozenset:
    """Enforce one metric set across all points (same error as ever)."""
    names = frozenset(metrics)
    if expected is not None and names != expected:
        raise ValueError(
            f"runner returned inconsistent metrics at {dict(params)}: "
            f"{sorted(names)} vs {sorted(expected)}"
        )
    return names


def grid_sweep(
    param_grid: Mapping[str, Sequence[Any]],
    runner: Callable[..., Mapping[str, float]],
    *,
    workers: Optional[int] = None,
    base_seed: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    cache_dir: Optional[str] = None,
    version_tag: Optional[str] = None,
    progress: Optional[Callable[[SweepTelemetry], None]] = None,
) -> SweepResult:
    """Run ``runner(**params)`` for every combination in the grid.

    The runner must return a mapping of metric name → value; the metric
    set must be identical across points.

    ``workers``: ``None``/``0``/``1`` run the serial inline loop;
    ``workers >= 2`` fans misses out over a ``ProcessPoolExecutor`` of
    that size (the runner must then be picklable — a module-level
    function or a ``functools.partial`` over one).

    ``base_seed``: when set, each point's runner is additionally called
    with ``seed=spawn(base_seed, point_index)`` so parallel and serial
    runs see identical randomness. The grid must not itself contain a
    ``seed`` axis in that case.

    ``cache``/``cache_dir``: an explicit :class:`SweepCache`, or a
    directory to build one in (with ``version_tag`` overriding the
    default code-version tag). Cached points are served without invoking
    the runner; fresh points are stored after they complete.

    ``progress``: optional callback invoked with the live
    :class:`~repro.metrics.SweepTelemetry` after each point completes.

    Point order in the result is always canonical grid order
    (``itertools.product`` over the grid as given), independent of
    execution order.
    """
    if not param_grid:
        raise ValueError("parameter grid must not be empty")
    names = list(param_grid)
    for name, values in param_grid.items():
        if not values:
            raise ValueError(f"parameter {name!r} has no values")
    if base_seed is not None and "seed" in param_grid:
        raise ValueError(
            "param_grid already has a 'seed' axis; drop it or omit base_seed"
        )
    if cache is None and cache_dir is not None:
        cache = SweepCache(cache_dir, version_tag or CODE_VERSION_TAG)

    combos: List[Dict[str, Any]] = [
        dict(zip(names, combo))
        for combo in itertools.product(*(param_grid[name] for name in names))
    ]
    seeds: List[Optional[int]] = [
        spawn(base_seed, index) if base_seed is not None else None
        for index in range(len(combos))
    ]

    n_workers = int(workers) if workers else 0
    parallel = n_workers > 1
    telemetry = SweepTelemetry(
        total=len(combos),
        mode="process-pool" if parallel else "serial",
        workers=n_workers if parallel else 1,
    )
    wall_started = time.perf_counter()

    results: List[Optional[Dict[str, float]]] = [None] * len(combos)
    pending: List[int] = []
    for index, params in enumerate(combos):
        if cache is not None:
            lookup_started = time.perf_counter()
            stored = cache.get(params, seeds[index])
            if stored is not None:
                results[index] = stored
                telemetry.record(
                    index, params, time.perf_counter() - lookup_started, cached=True
                )
                if progress is not None:
                    progress(telemetry)
                continue
        pending.append(index)

    def book(index: int, metrics: Dict[str, float], seconds: float) -> None:
        results[index] = metrics
        if cache is not None:
            cache.put(combos[index], seeds[index], metrics)
        telemetry.record(index, combos[index], seconds, cached=False)
        if progress is not None:
            progress(telemetry)

    if parallel and pending:
        with concurrent.futures.ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = {
                pool.submit(_execute_point, runner, combos[index], seeds[index]): index
                for index in pending
            }
            for future in concurrent.futures.as_completed(futures):
                metrics, seconds = future.result()
                book(futures[future], metrics, seconds)
    else:
        for index in pending:
            metrics, seconds = _execute_point(runner, combos[index], seeds[index])
            book(index, metrics, seconds)

    telemetry.wall_seconds = time.perf_counter() - wall_started

    points: List[SweepPoint] = []
    expected: Optional[frozenset] = None
    for params, metrics in zip(combos, results):
        assert metrics is not None
        expected = _check_metrics(metrics, expected, params)
        points.append(SweepPoint(params=params, metrics=metrics))
    return SweepResult(names, points, telemetry=telemetry)
