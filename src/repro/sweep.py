"""Parameter-sweep utilities.

Thin, dependency-free grid runner used by the sensitivity benches and
handy for downstream exploration: define a grid of named parameters, a
runner mapping one parameter combination to a dict of metrics, and get a
:class:`SweepResult` that can slice, tabulate, and pivot.

    sweep = grid_sweep(
        {"distance_m": [1, 5, 10], "periods": [1, 4, 7]},
        lambda distance_m, periods: {"saved": run(distance_m, periods)},
    )
    sweep.pivot("distance_m", "periods", "saved")
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid point: the parameters used and the metrics produced."""

    params: Mapping[str, Any]
    metrics: Mapping[str, float]


class SweepResult:
    """The collected points of one grid sweep."""

    def __init__(self, param_names: Sequence[str], points: List[SweepPoint]) -> None:
        self.param_names = list(param_names)
        self.points = points

    def __len__(self) -> int:
        return len(self.points)

    # ------------------------------------------------------------------
    def metric_names(self) -> List[str]:
        if not self.points:
            return []
        return sorted(self.points[0].metrics)

    def where(self, **conditions: Any) -> List[SweepPoint]:
        """Points whose parameters match every condition."""
        return [
            point
            for point in self.points
            if all(point.params.get(k) == v for k, v in conditions.items())
        ]

    def series(self, x_param: str, metric: str, **fixed: Any) -> List[Tuple[Any, float]]:
        """(x, metric) pairs along one parameter, other params fixed."""
        if x_param not in self.param_names:
            raise KeyError(f"unknown parameter {x_param!r}")
        rows = [
            (point.params[x_param], point.metrics[metric])
            for point in self.where(**fixed)
        ]
        rows.sort(key=lambda pair: pair[0])
        return rows

    def pivot(
        self, row_param: str, col_param: str, metric: str
    ) -> Dict[Any, Dict[Any, float]]:
        """row value → {column value → metric} (a 2-D slice)."""
        table: Dict[Any, Dict[Any, float]] = {}
        for point in self.points:
            row = point.params[row_param]
            col = point.params[col_param]
            table.setdefault(row, {})[col] = point.metrics[metric]
        return table

    def best(self, metric: str, maximize: bool = True) -> SweepPoint:
        """The point with the extreme value of ``metric``."""
        if not self.points:
            raise ValueError("empty sweep")
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p.metrics[metric])

    def rows(self) -> List[List[Any]]:
        """Header row + one row per point (for `reporting.format_table`)."""
        header: List[Any] = list(self.param_names) + self.metric_names()
        out: List[List[Any]] = [header]
        for point in self.points:
            out.append(
                [point.params[name] for name in self.param_names]
                + [point.metrics[name] for name in self.metric_names()]
            )
        return out


def grid_sweep(
    param_grid: Mapping[str, Sequence[Any]],
    runner: Callable[..., Mapping[str, float]],
) -> SweepResult:
    """Run ``runner(**params)`` for every combination in the grid.

    The runner must return a mapping of metric name → value; the metric
    set must be identical across points.
    """
    if not param_grid:
        raise ValueError("parameter grid must not be empty")
    names = list(param_grid)
    for name, values in param_grid.items():
        if not values:
            raise ValueError(f"parameter {name!r} has no values")
    points: List[SweepPoint] = []
    expected_metrics = None
    for combo in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, combo))
        metrics = dict(runner(**params))
        if expected_metrics is None:
            expected_metrics = set(metrics)
        elif set(metrics) != expected_metrics:
            raise ValueError(
                f"runner returned inconsistent metrics at {params}: "
                f"{sorted(metrics)} vs {sorted(expected_metrics)}"
            )
        points.append(SweepPoint(params=params, metrics=metrics))
    return SweepResult(names, points)
