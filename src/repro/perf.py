"""Lightweight performance counters and timers.

The scaling work (spatial-index discovery, adjacency maps, the event-kernel
fast path) is only trustworthy if it is *observable*: this module is the
one place hot paths book what they did — candidates examined per scan,
index rebins, events fired per wall second — so `repro-sim bench` and
`RunMetrics` can report a perf trajectory instead of anecdotes.

Counters are plain integer attributes bumped inline (no locks, no dict
lookups on the hot path); timers accumulate wall-clock seconds under a
name. Everything folds into a flat ``{name: number}`` dict via
:meth:`PerfCounters.to_dict`.

These numbers are **observability, not results**: two runs that produce
identical simulation output (the determinism guard's contract) may book
different counter values — e.g. a brute-force scan examines N candidates
where an indexed scan examines only the local ones.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator


class PerfCounters:
    """Counter/timer sink shared by one simulation's hot paths."""

    __slots__ = (
        "scans",
        "scan_candidates_examined",
        "scan_peers_returned",
        "scan_cache_served",
        "brute_force_scans",
        "index_queries",
        "index_block_cache_hits",
        "index_updates",
        "index_moves",
        "index_rebuild_passes",
        "static_position_hits",
        "sorted_cache_hits",
        "vectorized_scans",
        "vector_block_builds",
        "_timers",
    )

    def __init__(self) -> None:
        #: discovery scans completed
        self.scans = 0
        #: endpoints examined across all scans (the O(N) vs O(local) story)
        self.scan_candidates_examined = 0
        #: peers actually returned to scan callbacks
        self.scan_peers_returned = 0
        #: discovery requests served from a detector's still-fresh cache
        #: (no radio work at all — the cheapest scan is the one not made)
        self.scan_cache_served = 0
        #: scans that walked every endpoint (escape hatch / no index)
        self.brute_force_scans = 0
        #: spatial-index range queries issued
        self.index_queries = 0
        #: queries served from the index's version-stamped block cache
        self.index_block_cache_hits = 0
        #: incremental position updates applied to the index
        self.index_updates = 0
        #: updates that actually crossed a cell boundary
        self.index_moves = 0
        #: lazy refresh passes over the mobile-endpoint set
        self.index_rebuild_passes = 0
        #: per-candidate position() calls skipped for static endpoints
        self.static_position_hits = 0
        #: scans whose candidate sort was served from the re-sort memo
        self.sorted_cache_hits = 0
        #: scans whose distance math ran on the numpy block path
        self.vectorized_scans = 0
        #: aligned coordinate-block (re)builds behind vectorized scans
        self.vector_block_builds = 0
        self._timers: Dict[str, float] = {}

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of the block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._timers[name] = self._timers.get(name, 0.0) + elapsed

    def add_seconds(self, name: str, seconds: float) -> None:
        """Accumulate already-measured wall seconds under ``name``.

        The hot-path spelling of :meth:`timer`: callers bracket the section
        with two ``time.perf_counter()`` reads and book the difference, so
        per-call instrumentation costs two C calls instead of a generator
        context manager. Used for the phase attribution sections (discover /
        transfer / energy / shard-sync) that `repro-sim bench` surfaces.
        """
        self._timers[name] = self._timers.get(name, 0.0) + seconds

    def timer_seconds(self, name: str) -> float:
        return self._timers.get(name, 0.0)

    # ------------------------------------------------------------------
    @property
    def mean_candidates_per_scan(self) -> float:
        """Average endpoints examined per scan (N for brute force)."""
        return (
            self.scan_candidates_examined / self.scans if self.scans else 0.0
        )

    def to_dict(self) -> Dict[str, float]:
        """Flat snapshot for `RunMetrics`/JSON export."""
        data: Dict[str, float] = {
            "scans": self.scans,
            "scan_candidates_examined": self.scan_candidates_examined,
            "scan_peers_returned": self.scan_peers_returned,
            "scan_cache_served": self.scan_cache_served,
            "brute_force_scans": self.brute_force_scans,
            "index_queries": self.index_queries,
            "index_block_cache_hits": self.index_block_cache_hits,
            "index_updates": self.index_updates,
            "index_moves": self.index_moves,
            "index_rebuild_passes": self.index_rebuild_passes,
            "static_position_hits": self.static_position_hits,
            "sorted_cache_hits": self.sorted_cache_hits,
            "vectorized_scans": self.vectorized_scans,
            "vector_block_builds": self.vector_block_builds,
            "mean_candidates_per_scan": self.mean_candidates_per_scan,
        }
        for name, seconds in sorted(self._timers.items()):
            data[f"timer_{name}_s"] = seconds
        return data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PerfCounters(scans={self.scans}, "
            f"examined={self.scan_candidates_examined}, "
            f"mean/scan={self.mean_candidates_per_scan:.1f})"
        )
