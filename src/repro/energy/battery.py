"""Battery model.

The paper motivates the work with battery drain ("a smartphone spends at
least 6% of its battery capacity in sending heartbeat messages"); relays in
the framework may also die mid-session, which the feedback/fallback protocol
must tolerate. This module provides the capacity bookkeeping and lifetime
projection used by both.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.energy.profiles import GALAXY_S4_BATTERY_MAH


class BatteryDepleted(RuntimeError):
    """Raised when a drain request exceeds the remaining charge."""


class Battery:
    """Finite charge reservoir (mAh), with a depletion callback.

    Parameters
    ----------
    capacity_mah:
        Full capacity; defaults to the paper's Galaxy S4 (2600 mAh).
    level:
        Initial state of charge in [0, 1].
    on_depleted:
        Called once, the first time the battery hits empty — used to power
        off a relay mid-run in failure-injection tests.
    """

    def __init__(
        self,
        capacity_mah: float = GALAXY_S4_BATTERY_MAH,
        level: float = 1.0,
        on_depleted: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity_mah <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_mah}")
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"level must be in [0,1], got {level}")
        self.capacity_mah = float(capacity_mah)
        self.remaining_mah = self.capacity_mah * level
        self.on_depleted = on_depleted
        self._depleted_fired = False
        self.total_drained_mah = 0.0

    @property
    def level(self) -> float:
        """State of charge in [0, 1]."""
        return self.remaining_mah / self.capacity_mah

    @property
    def is_depleted(self) -> bool:
        return self.remaining_mah <= 0.0

    def drain_uah(self, uah: float) -> None:
        """Drain ``uah`` µAh; clamps at zero and fires the depletion hook."""
        if uah < 0:
            raise ValueError(f"cannot drain negative charge {uah}")
        mah = uah / 1000.0
        self.total_drained_mah += min(mah, self.remaining_mah)
        self.remaining_mah = max(0.0, self.remaining_mah - mah)
        if self.is_depleted and not self._depleted_fired:
            self._depleted_fired = True
            if self.on_depleted is not None:
                self.on_depleted()

    def recharge(self, level: float = 1.0) -> None:
        """Recharge to ``level`` (re-arms the depletion hook)."""
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"level must be in [0,1], got {level}")
        self.remaining_mah = self.capacity_mah * level
        if self.remaining_mah > 0:
            self._depleted_fired = False

    def projected_lifetime_s(self, drain_uah_per_s: float) -> float:
        """Seconds until empty at a steady drain rate; ``inf`` if rate ≤ 0."""
        if drain_uah_per_s <= 0:
            return float("inf")
        return self.remaining_mah * 1000.0 / drain_uah_per_s

    def fraction_for(self, charge_uah: float) -> float:
        """What fraction of *full capacity* a given charge represents.

        The paper's "6% of battery capacity per day on heartbeats" claim is
        this quantity for a day's worth of beats.
        """
        return charge_uah / 1000.0 / self.capacity_mah

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Battery({self.remaining_mah:.1f}/{self.capacity_mah:.0f} mAh,"
            f" level={self.level:.2%})"
        )
