"""Energy substrate.

The paper's evaluation measures charge (µAh at a constant 3.7 V) with a
Monsoon Power Monitor. We reproduce that with:

- :mod:`repro.energy.profiles` — calibration constants lifted from the
  paper's published measurements (Tables III & IV, Figs. 6-13). Single
  source of truth; every energy number in the simulator traces back here.
- :mod:`repro.energy.model` — per-phase charge accounting for a device.
- :mod:`repro.energy.battery` — capacity, drain and lifetime projection.
- :mod:`repro.energy.power_monitor` — synthesis of Monsoon-style 0.1 s
  instant-current traces from simulation events (Figs. 6 & 7).
"""

from repro.energy.profiles import EnergyProfile, DEFAULT_PROFILE
from repro.energy.model import EnergyModel, EnergyPhase
from repro.energy.battery import Battery, BatteryDepleted
from repro.energy.power_monitor import PowerMonitor, CurrentSample

__all__ = [
    "EnergyProfile",
    "DEFAULT_PROFILE",
    "EnergyModel",
    "EnergyPhase",
    "Battery",
    "BatteryDepleted",
    "PowerMonitor",
    "CurrentSample",
]
