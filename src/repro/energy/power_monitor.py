"""Monsoon-style power monitor emulation.

The paper captures instant current every 0.1 s at a constant 3.7 V with a
Monsoon Power Monitor (its Fig. 5 setup) and plots single-transfer traces
in Figs. 6 (D2D) and 7 (cellular). We reproduce those traces by converting
each charge event from the :class:`~repro.energy.model.EnergyModel` into a
current pulse with a phase-appropriate envelope:

- D2D transfer: a sharp spike that decays quickly (Fig. 6).
- Cellular transfer: a spike followed by a long elevated tail (Fig. 7).

The envelope shapes are cosmetic; the *integral* of every pulse equals the
charge actually accounted by the energy model, so traces and ledgers agree.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence

from repro.energy.model import EnergyPhase
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile


@dataclasses.dataclass(frozen=True)
class CurrentSample:
    """One sampled point of the synthesized trace."""

    time_s: float
    current_ma: float


def _pulse_weights(n: int, shape: str) -> List[float]:
    """Normalized per-sample weights for a pulse of ``n`` samples."""
    if n <= 0:
        return []
    if n == 1 or shape == "flat":
        return [1.0 / n] * n
    if shape == "spike":
        # front-loaded exponential decay: w_i ∝ exp(-2 i / n)
        raw = [math.exp(-2.0 * i / n) for i in range(n)]
    elif shape == "ramp":
        # rising ramp (RRC setup: power grows as the radio promotes)
        raw = [0.3 + 0.7 * (i + 1) / n for i in range(n)]
    elif shape == "tail":
        # slowly decaying plateau (DCH tail)
        raw = [1.0 - 0.4 * i / n for i in range(n)]
    else:
        raise ValueError(f"unknown pulse shape {shape!r}")
    total = sum(raw)
    return [w / total for w in raw]


#: Envelope shape per phase.
_PHASE_SHAPES: Dict[EnergyPhase, str] = {
    EnergyPhase.D2D_DISCOVERY: "flat",
    EnergyPhase.D2D_CONNECTION: "flat",
    EnergyPhase.D2D_FORWARD: "spike",
    EnergyPhase.D2D_RECEIVE: "spike",
    EnergyPhase.D2D_ACK: "spike",
    EnergyPhase.CELLULAR_SETUP: "ramp",
    EnergyPhase.CELLULAR_TX: "spike",
    EnergyPhase.CELLULAR_TAIL: "tail",
    EnergyPhase.IDLE: "flat",
    EnergyPhase.OTHER: "flat",
}

#: Default durations (s) when the charger did not say how long a phase took.
def _default_duration(phase: EnergyPhase, profile: EnergyProfile) -> float:
    durations = {
        EnergyPhase.D2D_DISCOVERY: profile.d2d_discovery_s,
        EnergyPhase.D2D_CONNECTION: profile.d2d_connection_s,
        EnergyPhase.D2D_FORWARD: profile.d2d_transfer_s,
        EnergyPhase.D2D_RECEIVE: profile.d2d_transfer_s,
        EnergyPhase.D2D_ACK: 0.1,
        EnergyPhase.CELLULAR_SETUP: profile.cellular_setup_s,
        EnergyPhase.CELLULAR_TX: profile.cellular_tx_s,
        EnergyPhase.CELLULAR_TAIL: profile.cellular_tail_s,
    }
    return durations.get(phase, 0.1)


class PowerMonitor:
    """Synthesizes a 0.1 s-resolution current trace from charge events.

    Attach via ``EnergyModel(on_charge=monitor.on_charge)``. The trace is a
    dense array starting at time 0; the idle baseline current is added to
    every sample, matching the real monitor which measures the whole phone.
    """

    def __init__(
        self,
        sample_period_s: float = 0.1,
        profile: EnergyProfile = DEFAULT_PROFILE,
        idle_current_ma: float | None = None,
    ) -> None:
        if sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        self.sample_period_s = sample_period_s
        self.profile = profile
        self.idle_current_ma = (
            profile.idle_current_ma if idle_current_ma is None else idle_current_ma
        )
        self._extra_ma: List[float] = []  # current above idle, per sample

    # ------------------------------------------------------------------
    def on_charge(
        self, time_s: float, phase: EnergyPhase, uah: float, duration_s: float = 0.0
    ) -> None:
        """Energy-model hook: deposit a pulse for one charge event."""
        if uah <= 0:
            return
        if duration_s <= 0:
            duration_s = _default_duration(phase, self.profile)
        n = max(1, int(round(duration_s / self.sample_period_s)))
        first = int(time_s / self.sample_period_s)
        self._ensure_length(first + n)
        weights = _pulse_weights(n, _PHASE_SHAPES.get(phase, "flat"))
        # charge per sample → average current over that sample
        for i, w in enumerate(weights):
            charge_uah = uah * w
            current_ma = charge_uah / 1000.0 / (self.sample_period_s / 3600.0)
            self._extra_ma[first + i] += current_ma

    def _ensure_length(self, n: int) -> None:
        if len(self._extra_ma) < n:
            self._extra_ma.extend([0.0] * (n - len(self._extra_ma)))

    # ------------------------------------------------------------------
    def trace(self, until_s: float | None = None) -> List[CurrentSample]:
        """The synthesized trace as ``CurrentSample`` points."""
        n = len(self._extra_ma)
        if until_s is not None:
            n = max(n, int(math.ceil(until_s / self.sample_period_s)))
            self._ensure_length(n)
        return [
            CurrentSample(i * self.sample_period_s, self.idle_current_ma + extra)
            for i, extra in enumerate(self._extra_ma[:n])
        ]

    def currents_ma(self, until_s: float | None = None) -> List[float]:
        """Just the current values (mA), for quick assertions."""
        return [s.current_ma for s in self.trace(until_s)]

    def integral_uah(self) -> float:
        """Total charge above idle in the trace — equals charged energy."""
        per_sample_h = self.sample_period_s / 3600.0
        return sum(ma * 1000.0 * per_sample_h for ma in self._extra_ma)

    def peak_ma(self) -> float:
        """Peak total current in the trace (idle if empty)."""
        if not self._extra_ma:
            return self.idle_current_ma
        return self.idle_current_ma + max(self._extra_ma)

    def elevated_duration_s(self, threshold_ma: float = 50.0) -> float:
        """Total time the current sits ``threshold_ma`` above idle.

        Figs. 6 vs. 7 differ exactly here: the cellular trace stays elevated
        for several seconds (the tail) while D2D decays almost immediately.
        """
        return (
            sum(1 for ma in self._extra_ma if ma >= threshold_ma)
            * self.sample_period_s
        )

    def reset(self) -> None:
        self._extra_ma.clear()
