"""Per-device energy accounting.

An :class:`EnergyModel` is attached to each simulated smartphone. Radios
and the framework charge it with ``charge(phase, uah)``; the model keeps a
per-phase breakdown (the paper's Table III is exactly such a breakdown),
drains the attached battery, and notifies an optional power monitor so
current traces can be synthesized.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple


class EnergyPhase(str, enum.Enum):
    """Phases of energy expenditure tracked separately (paper Table III)."""

    D2D_DISCOVERY = "d2d_discovery"
    D2D_CONNECTION = "d2d_connection"
    D2D_FORWARD = "d2d_forward"  # UE-side D2D transmit
    D2D_RECEIVE = "d2d_receive"  # relay-side D2D receive
    D2D_ACK = "d2d_ack"  # feedback ack exchange
    CELLULAR_SETUP = "cellular_setup"
    CELLULAR_TX = "cellular_tx"
    CELLULAR_TAIL = "cellular_tail"
    IDLE = "idle"
    OTHER = "other"


#: Phases counted as "D2D" in aggregate reports.
D2D_PHASES = frozenset(
    {
        EnergyPhase.D2D_DISCOVERY,
        EnergyPhase.D2D_CONNECTION,
        EnergyPhase.D2D_FORWARD,
        EnergyPhase.D2D_RECEIVE,
        EnergyPhase.D2D_ACK,
    }
)

#: Phases counted as "cellular" in aggregate reports.
CELLULAR_PHASES = frozenset(
    {
        EnergyPhase.CELLULAR_SETUP,
        EnergyPhase.CELLULAR_TX,
        EnergyPhase.CELLULAR_TAIL,
    }
)


class EnergyModel:
    """Charge ledger for one device.

    Parameters
    ----------
    owner:
        Identifier of the owning device, used in reports.
    battery:
        Optional battery to drain on every charge; when the battery is
        depleted it raises and the device should be treated as dead.
    on_charge:
        Optional hook ``(time_s, phase, uah, duration_s)`` — used by
        :class:`~repro.energy.power_monitor.PowerMonitor`.
    """

    def __init__(
        self,
        owner: str = "",
        battery: Optional["Battery"] = None,
        on_charge: Optional[Callable[[float, EnergyPhase, float, float], None]] = None,
    ) -> None:
        self.owner = owner
        self.battery = battery
        self.on_charge = on_charge
        self._by_phase: Dict[EnergyPhase, float] = {}
        self._log: List[Tuple[float, EnergyPhase, float]] = []
        self.keep_log = False

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def charge(
        self,
        phase: EnergyPhase,
        uah: float,
        time_s: float = 0.0,
        duration_s: float = 0.0,
    ) -> None:
        """Record ``uah`` µAh spent in ``phase`` starting at ``time_s``."""
        if uah < 0:
            raise ValueError(f"cannot charge negative energy {uah}")
        if uah == 0:
            return
        self._by_phase[phase] = self._by_phase.get(phase, 0.0) + uah
        if self.keep_log:
            self._log.append((time_s, phase, uah))
        if self.battery is not None:
            self.battery.drain_uah(uah)
        if self.on_charge is not None:
            self.on_charge(time_s, phase, uah, duration_s)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def total_uah(self) -> float:
        """Total charge spent across all phases."""
        return sum(self._by_phase.values())

    def phase_uah(self, phase: EnergyPhase) -> float:
        """Charge spent in one phase."""
        return self._by_phase.get(phase, 0.0)

    @property
    def d2d_uah(self) -> float:
        """Total charge spent on D2D activity."""
        return sum(v for p, v in self._by_phase.items() if p in D2D_PHASES)

    @property
    def cellular_uah(self) -> float:
        """Total charge spent on cellular activity."""
        return sum(v for p, v in self._by_phase.items() if p in CELLULAR_PHASES)

    def breakdown(self) -> Dict[str, float]:
        """Phase → µAh mapping (stable key order for reports)."""
        return {phase.value: self._by_phase.get(phase, 0.0) for phase in EnergyPhase}

    def log(self) -> List[Tuple[float, EnergyPhase, float]]:
        """The charge log (only populated when :attr:`keep_log` is set)."""
        return list(self._log)

    def snapshot(self) -> Dict[EnergyPhase, float]:
        """Copy of the raw per-phase totals."""
        return dict(self._by_phase)

    def reset(self) -> None:
        """Zero all counters (battery state is left untouched)."""
        self._by_phase.clear()
        self._log.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EnergyModel(owner={self.owner!r}, total={self.total_uah:.2f}uAh)"


# imported late to avoid a cycle in type checking only
from repro.energy.battery import Battery  # noqa: E402  (re-export convenience)
