"""Per-device energy accounting.

An :class:`EnergyModel` is attached to each simulated smartphone. Radios
and the framework charge it with ``charge(phase, uah)``; the model keeps a
per-phase breakdown (the paper's Table III is exactly such a breakdown),
drains the attached battery, and notifies an optional power monitor so
current traces can be synthesized.

The hot path is aggregate-only by design: ``charge`` adds into a flat
per-phase slot array (one dict lookup + one float add), and the per-charge
log exists only behind :attr:`EnergyModel.keep_log` — optionally bounded by
:attr:`EnergyModel.log_maxlen` as a ring buffer so city-scale soak runs
cannot let trace memory grow without bound. ``breakdown()``/``snapshot()``
always stay exact: they read the aggregates, never the log.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple


class EnergyPhase(str, enum.Enum):
    """Phases of energy expenditure tracked separately (paper Table III)."""

    D2D_DISCOVERY = "d2d_discovery"
    D2D_CONNECTION = "d2d_connection"
    D2D_FORWARD = "d2d_forward"  # UE-side D2D transmit
    D2D_RECEIVE = "d2d_receive"  # relay-side D2D receive
    D2D_ACK = "d2d_ack"  # feedback ack exchange
    CELLULAR_SETUP = "cellular_setup"
    CELLULAR_TX = "cellular_tx"
    CELLULAR_TAIL = "cellular_tail"
    IDLE = "idle"
    OTHER = "other"


#: Phases counted as "D2D" in aggregate reports.
D2D_PHASES = frozenset(
    {
        EnergyPhase.D2D_DISCOVERY,
        EnergyPhase.D2D_CONNECTION,
        EnergyPhase.D2D_FORWARD,
        EnergyPhase.D2D_RECEIVE,
        EnergyPhase.D2D_ACK,
    }
)

#: Phases counted as "cellular" in aggregate reports.
CELLULAR_PHASES = frozenset(
    {
        EnergyPhase.CELLULAR_SETUP,
        EnergyPhase.CELLULAR_TX,
        EnergyPhase.CELLULAR_TAIL,
    }
)

#: Stable slot order for the flat per-phase accumulator array.
_PHASES: Tuple[EnergyPhase, ...] = tuple(EnergyPhase)
_SLOT: Dict[EnergyPhase, int] = {phase: i for i, phase in enumerate(_PHASES)}
_N_SLOTS = len(_PHASES)
_D2D_SLOTS: Tuple[int, ...] = tuple(
    i for i, phase in enumerate(_PHASES) if phase in D2D_PHASES
)
_CELLULAR_SLOTS: Tuple[int, ...] = tuple(
    i for i, phase in enumerate(_PHASES) if phase in CELLULAR_PHASES
)


class EnergyModel:
    """Charge ledger for one device.

    Parameters
    ----------
    owner:
        Identifier of the owning device, used in reports.
    battery:
        Optional battery to drain on every charge; when the battery is
        depleted it raises and the device should be treated as dead.
    on_charge:
        Optional hook ``(time_s, phase, uah, duration_s)`` — used by
        :class:`~repro.energy.power_monitor.PowerMonitor`.
    log_maxlen:
        When set, the per-charge log (only kept while :attr:`keep_log` is
        true) becomes a ring buffer of at most this many records; older
        records are evicted and counted in :attr:`log_dropped`. ``None``
        keeps the legacy unbounded log.
    """

    def __init__(
        self,
        owner: str = "",
        battery: Optional["Battery"] = None,
        on_charge: Optional[Callable[[float, EnergyPhase, float, float], None]] = None,
        log_maxlen: Optional[int] = None,
    ) -> None:
        self.owner = owner
        self.battery = battery
        self.on_charge = on_charge
        # flat accumulator indexed by phase slot: the aggregate-only hot
        # path — no per-charge allocation, no growing structures
        self._totals: List[float] = [0.0] * _N_SLOTS
        self.keep_log = False
        #: per-charge records evicted by the ring buffer (bounded-log mode)
        self.log_dropped = 0
        self._log_maxlen = log_maxlen
        self._log: "deque[Tuple[float, EnergyPhase, float]]" = deque(
            maxlen=log_maxlen
        )

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def charge(
        self,
        phase: EnergyPhase,
        uah: float,
        time_s: float = 0.0,
        duration_s: float = 0.0,
    ) -> None:
        """Record ``uah`` µAh spent in ``phase`` starting at ``time_s``."""
        if uah < 0:
            raise ValueError(f"cannot charge negative energy {uah}")
        if uah == 0:
            return
        self._totals[_SLOT[phase]] += uah
        if self.keep_log:
            log = self._log
            if log.maxlen is not None and len(log) == log.maxlen:
                self.log_dropped += 1
            log.append((time_s, phase, uah))
        if self.battery is not None:
            self.battery.drain_uah(uah)
        if self.on_charge is not None:
            self.on_charge(time_s, phase, uah, duration_s)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def total_uah(self) -> float:
        """Total charge spent across all phases."""
        return sum(self._totals)

    def phase_uah(self, phase: EnergyPhase) -> float:
        """Charge spent in one phase."""
        return self._totals[_SLOT[phase]]

    @property
    def d2d_uah(self) -> float:
        """Total charge spent on D2D activity."""
        totals = self._totals
        return sum(totals[i] for i in _D2D_SLOTS)

    @property
    def cellular_uah(self) -> float:
        """Total charge spent on cellular activity."""
        totals = self._totals
        return sum(totals[i] for i in _CELLULAR_SLOTS)

    def breakdown(self) -> Dict[str, float]:
        """Phase → µAh mapping (stable key order for reports)."""
        totals = self._totals
        return {phase.value: totals[i] for i, phase in enumerate(_PHASES)}

    @property
    def log_maxlen(self) -> Optional[int]:
        """Ring-buffer bound for the per-charge log (``None`` = unbounded)."""
        return self._log_maxlen

    @log_maxlen.setter
    def log_maxlen(self, maxlen: Optional[int]) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"log_maxlen must be >= 1 or None, got {maxlen}")
        if maxlen == self._log_maxlen:
            return
        self._log_maxlen = maxlen
        kept = deque(self._log, maxlen=maxlen)
        self.log_dropped += len(self._log) - len(kept)
        self._log = kept

    def log(self) -> List[Tuple[float, EnergyPhase, float]]:
        """The charge log (only populated when :attr:`keep_log` is set).

        In bounded mode this is the *most recent* ``log_maxlen`` records;
        :attr:`log_dropped` counts what the ring buffer evicted. Aggregates
        (:meth:`breakdown`, :meth:`snapshot`, the totals) are always exact
        regardless of eviction.
        """
        return list(self._log)

    def snapshot(self) -> Dict[EnergyPhase, float]:
        """Copy of the raw per-phase totals (phases actually charged)."""
        totals = self._totals
        return {
            phase: totals[i] for i, phase in enumerate(_PHASES) if totals[i]
        }

    def reset(self) -> None:
        """Zero all counters (battery state is left untouched)."""
        self._totals = [0.0] * _N_SLOTS
        self._log.clear()
        self.log_dropped = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EnergyModel(owner={self.owner!r}, total={self.total_uah:.2f}uAh)"


# imported late to avoid a cycle in type checking only
from repro.energy.battery import Battery  # noqa: E402  (re-export convenience)
