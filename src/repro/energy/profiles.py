"""Calibration constants for the energy model.

All charge figures are **µAh at 3.7 V** (the Monsoon Power Monitor supply
voltage used in the paper). The provenance of each constant:

Table III (per-phase charge, one relay + one UE at 1 m, 54 B beats)::

                Discovery  Connection  Forwarding
    UE    (µAh)   132.24      63.74       73.09
    Relay (µAh)   122.50      60.29      132.45

Table IV (relay receive charge vs. number of received beats)::

    beats      1       2        3        4        5        6        7
    µAh     123.22  252.40  386.106  517.97   655.82   791.178  911.196

which is ≈ linear with slope 130.17 µAh per received beat (911.196 / 7).

The cellular heartbeat cost is derived from the paper's headline result:
a one-shot D2D session for the UE costs 132.24 + 63.74 + 73.09 =
269.07 µAh and the paper reports this as a **55 % saving** over cellular,
so one cellular heartbeat costs 269.07 / 0.45 = 597.93 µAh. Sanity check
against the paper's introduction: WeChat sends a beat every 270 s → 320
beats/day → 191 mAh/day → 7.4 % of a Galaxy S4's 2600 mAh battery, matching
the paper's "at least 6 % of battery capacity" claim.

The cellular cost decomposes into RRC setup + transmission + high-power
tail; the split (and the durations) is chosen to make the synthesized
current traces match the *shape* of Figs. 6 and 7 (a short spike with fast
decay for D2D, a spike followed by a multi-second elevated tail for
cellular).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

#: Supply voltage of the Monsoon Power Monitor used in the paper (volts).
SUPPLY_VOLTAGE_V = 3.7

#: Standard heartbeat size used throughout the paper's evaluation (bytes).
STANDARD_HEARTBEAT_BYTES = 54

#: Galaxy S4 battery capacity (mAh) — the paper's test device.
GALAXY_S4_BATTERY_MAH = 2600.0

#: Table IV raw data: cumulative relay receive charge (µAh) by beat count.
TABLE_IV_RECEIVE_UAH: Tuple[float, ...] = (
    123.22,
    252.40,
    386.106,
    517.97,
    655.82,
    791.178,
    911.196,
)


def microamp_hours_to_milliamps(charge_uah: float, duration_s: float) -> float:
    """Average current (mA) that drains ``charge_uah`` in ``duration_s``."""
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    return charge_uah / 1000.0 / (duration_s / 3600.0)


@dataclasses.dataclass(frozen=True)
class EnergyProfile:
    """Per-phase charge calibration for one device class.

    Instances are immutable; experiments that need a variant (e.g. a more
    expensive cellular network) use :meth:`replace`.
    """

    # --- D2D: UE side (Table III row 1) -----------------------------------
    ue_discovery_uah: float = 132.24
    ue_connection_uah: float = 63.74
    ue_forward_uah: float = 73.09  # per message at reference distance

    # --- D2D: relay side (Table III row 2, Table IV slope) ----------------
    relay_discovery_uah: float = 122.50
    relay_connection_uah: float = 60.29
    relay_receive_uah: float = 130.17  # per received message (fresh wake)
    #: Incremental charge for a receive while the radio is still awake from
    #: a previous one. The paper attributes the per-UE receive cost to
    #: "more times awaking ... to receive messages"; back-to-back arrivals
    #: share one wake, so only the radio-active increment is paid.
    relay_receive_coalesced_uah: float = 25.0
    #: Window after a receive during which the radio is still awake.
    d2d_rx_coalesce_window_s: float = 1.0
    relay_ack_uah: float = 4.0  # feedback ack over the open D2D link

    # --- D2D distance scaling (Fig. 12) ------------------------------------
    #: Reference distance at which Table III was measured (metres).
    d2d_reference_distance_m: float = 1.0
    #: TX energy scale: phi(d) = (1 + k * d^gamma) / (1 + k * d_ref^gamma).
    d2d_distance_coeff: float = 0.08
    d2d_distance_exponent: float = 1.5

    # --- D2D message-size scaling (Fig. 13) ---------------------------------
    d2d_per_byte_uah: float = 0.04

    # --- cellular (derived from the 55 % UE saving) -------------------------
    cellular_setup_uah: float = 80.0
    cellular_tx_base_uah: float = 60.0
    cellular_per_byte_uah: float = 0.05
    cellular_tail_uah: float = 455.23  # full tail, scales with actual tail time
    #: FACH power relative to the DCH tail power (three-state WCDMA only).
    fach_power_fraction: float = 0.4

    # --- timing (seconds) — drives current-trace synthesis and protocol ----
    d2d_discovery_s: float = 2.0
    d2d_connection_s: float = 1.5
    d2d_transfer_s: float = 0.8
    cellular_setup_s: float = 1.5
    cellular_tx_s: float = 0.5
    cellular_tail_s: float = 7.5

    #: Idle baseline current (mA) — screen-off phone, for trace synthesis.
    idle_current_ma: float = 180.0

    def __post_init__(self) -> None:
        for name in (
            "ue_discovery_uah", "ue_connection_uah", "ue_forward_uah",
            "relay_discovery_uah", "relay_connection_uah", "relay_receive_uah",
            "relay_receive_coalesced_uah", "relay_ack_uah",
            "cellular_setup_uah", "cellular_tx_base_uah", "cellular_tail_uah",
            "d2d_per_byte_uah", "cellular_per_byte_uah",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for name in (
            "d2d_discovery_s", "d2d_connection_s", "d2d_transfer_s",
            "cellular_setup_s", "cellular_tx_s", "cellular_tail_s",
            "d2d_rx_coalesce_window_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.d2d_reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        if not 0.0 <= self.fach_power_fraction <= 1.0:
            raise ValueError("fach_power_fraction must be in [0,1]")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def replace(self, **changes: float) -> "EnergyProfile":
        """Return a copy of this profile with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def d2d_distance_factor(self, distance_m: float) -> float:
        """TX-energy scale factor at ``distance_m`` (1.0 at the reference).

        Monotone increasing in distance; models the higher Wi-Fi Direct TX
        power (and retransmissions) needed at range, per Fig. 12.
        """
        if distance_m < 0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        k = self.d2d_distance_coeff
        g = self.d2d_distance_exponent
        ref = self.d2d_reference_distance_m
        return (1.0 + k * distance_m**g) / (1.0 + k * ref**g)

    def ue_forward_cost_uah(
        self, size_bytes: int, distance_m: float | None = None
    ) -> float:
        """UE charge to forward one ``size_bytes`` message over D2D."""
        d = self.d2d_reference_distance_m if distance_m is None else distance_m
        tx = self.ue_forward_uah + self.d2d_per_byte_uah * size_bytes
        return tx * self.d2d_distance_factor(d)

    def relay_receive_cost_uah(self, size_bytes: int, coalesced: bool = False) -> float:
        """Relay charge to receive one message (RX power is distance-flat).

        ``coalesced`` selects the already-awake increment instead of the
        full wake-and-receive cost (see :attr:`relay_receive_coalesced_uah`).
        """
        base = self.relay_receive_coalesced_uah if coalesced else self.relay_receive_uah
        return base + self.d2d_per_byte_uah * size_bytes

    def cellular_send_cost_uah(
        self, size_bytes: int, setup_needed: bool = True, tail_fraction: float = 1.0
    ) -> float:
        """Charge for one cellular uplink transmission.

        ``setup_needed`` is false when the radio is already CONNECTED (within
        the tail of a previous send) — then neither setup nor a fresh tail is
        paid. ``tail_fraction`` scales the tail for early demotions.
        """
        if not 0.0 <= tail_fraction <= 1.0:
            raise ValueError(f"tail_fraction out of [0,1]: {tail_fraction}")
        cost = self.cellular_tx_base_uah + self.cellular_per_byte_uah * size_bytes
        if setup_needed:
            cost += self.cellular_setup_uah + self.cellular_tail_uah * tail_fraction
        return cost

    def cellular_heartbeat_uah(
        self, size_bytes: int = STANDARD_HEARTBEAT_BYTES
    ) -> float:
        """Full cost of a standalone cellular heartbeat (setup + tx + tail)."""
        return self.cellular_send_cost_uah(size_bytes, setup_needed=True)

    def ue_session_cost_uah(
        self,
        n_messages: int,
        size_bytes: int = STANDARD_HEARTBEAT_BYTES,
        distance_m: float | None = None,
    ) -> float:
        """Closed-form UE cost of one D2D session forwarding ``n_messages``."""
        if n_messages < 0:
            raise ValueError(f"n_messages must be non-negative, got {n_messages}")
        overhead = self.ue_discovery_uah + self.ue_connection_uah
        return overhead + n_messages * self.ue_forward_cost_uah(size_bytes, distance_m)

    def tail_current_ma(self) -> float:
        """Average extra current during the cellular tail (for traces)."""
        return microamp_hours_to_milliamps(self.cellular_tail_uah, self.cellular_tail_s)


#: The profile used throughout the reproduction (Galaxy S4 / WCDMA).
DEFAULT_PROFILE = EnergyProfile()


#: Named variants used by ablation benches.
PROFILE_VARIANTS: Dict[str, EnergyProfile] = {
    "default": DEFAULT_PROFILE,
    # An LTE-flavoured network: faster setup, shorter but hotter tail.
    "lte": DEFAULT_PROFILE.replace(
        cellular_setup_s=0.3,
        cellular_setup_uah=40.0,
        cellular_tail_s=10.0,
        cellular_tail_uah=500.0,
    ),
    # A pessimistic D2D radio: doubles discovery/connection overhead.
    "expensive-d2d": DEFAULT_PROFILE.replace(
        ue_discovery_uah=264.48,
        ue_connection_uah=127.48,
        relay_discovery_uah=245.0,
        relay_connection_uah=120.58,
    ),
}
