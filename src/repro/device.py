"""Smartphone device model.

A :class:`Smartphone` bundles the per-device substrates — energy model and
battery, cellular modem, D2D endpoint, mobility, app heartbeat generators —
under one identity, and handles battery death by powering everything off
(the relay-failure case the feedback mechanism must survive).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.cellular.basestation import BaseStation
from repro.cellular.modem import CellularModem
from repro.cellular.rrc import RrcProfile, WCDMA_PROFILE
from repro.cellular.signaling import SignalingLedger
from repro.d2d.base import D2DEndpoint, D2DMedium
from repro.energy.battery import Battery
from repro.energy.model import EnergyModel
from repro.energy.power_monitor import PowerMonitor
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.mobility.models import MobilityModel, StaticMobility
from repro.sim.engine import Simulator
from repro.workload.apps import AppProfile
from repro.workload.generator import HeartbeatGenerator


class Role(str, enum.Enum):
    """The two roles the paper assigns, plus the unmodified baseline."""

    RELAY = "relay"
    UE = "ue"
    STANDALONE = "standalone"  # original system: no D2D participation


class Smartphone:
    """One simulated smartphone.

    Parameters
    ----------
    sim, device_id:
        Simulator and unique identity.
    mobility:
        Trajectory; defaults to standing at the origin.
    role:
        RELAY, UE, or STANDALONE (baseline).
    apps:
        App profiles whose heartbeats this phone emits.
    ledger, basestation, d2d_medium:
        Shared network substrates; the D2D medium is optional for
        standalone phones.
    profile, rrc_profile:
        Energy and RRC calibration.
    battery:
        Optional finite battery; on depletion the phone powers off.
    power_monitor:
        Optional Monsoon-style trace recorder for this phone.
    """

    def __init__(
        self,
        sim: Simulator,
        device_id: str,
        mobility: Optional[MobilityModel] = None,
        role: Role = Role.STANDALONE,
        apps: Optional[List[AppProfile]] = None,
        ledger: Optional[SignalingLedger] = None,
        basestation: Optional[BaseStation] = None,
        d2d_medium: Optional[D2DMedium] = None,
        profile: EnergyProfile = DEFAULT_PROFILE,
        rrc_profile: RrcProfile = WCDMA_PROFILE,
        battery: Optional[Battery] = None,
        power_monitor: Optional[PowerMonitor] = None,
    ) -> None:
        self.sim = sim
        self.device_id = device_id
        self.mobility = mobility if mobility is not None else StaticMobility((0.0, 0.0))
        self.role = role
        self.apps = list(apps or [])
        self.profile = profile
        self.power_monitor = power_monitor
        self.battery = battery
        if battery is not None:
            battery.on_depleted = self._on_battery_depleted
        self.energy = EnergyModel(
            owner=device_id,
            battery=battery,
            on_charge=power_monitor.on_charge if power_monitor is not None else None,
        )
        self.modem = CellularModem(
            sim,
            device_id,
            energy=self.energy,
            ledger=ledger,
            basestation=basestation,
            profile=profile,
            rrc_profile=rrc_profile,
        )
        self.d2d_medium = d2d_medium
        self.d2d: Optional[D2DEndpoint] = None
        if d2d_medium is not None:
            self.d2d = D2DEndpoint(device_id, self.mobility, energy=self.energy)
            d2d_medium.register(self.d2d)
        self.generators: Dict[str, HeartbeatGenerator] = {}
        self.alive = True

    # ------------------------------------------------------------------
    def position(self, t: Optional[float] = None) -> tuple:
        """Position at time ``t`` (defaults to now)."""
        return self.mobility.position(self.sim.now if t is None else t)

    def add_generator(self, generator: HeartbeatGenerator) -> None:
        """Attach a started-or-startable heartbeat generator."""
        self.generators[generator.app.name] = generator

    @property
    def is_relay(self) -> bool:
        return self.role == Role.RELAY

    @property
    def is_ue(self) -> bool:
        return self.role == Role.UE

    # ------------------------------------------------------------------
    def power_off(self) -> None:
        """Hard power-down: stops generators, drops cellular and D2D."""
        if not self.alive:
            return
        self.alive = False
        for generator in self.generators.values():
            generator.stop()
        self.modem.power_off()
        if self.d2d_medium is not None:
            self.d2d_medium.power_off(self.device_id)

    def power_on(self) -> None:
        """Bring a dead phone back up (battery swap / reboot); idempotent.

        A depleted battery is recharged to full — a phone cannot boot on
        an empty battery. D2D advertising is NOT resumed here: a relay
        decides whether to volunteer again (see ``RelayAgent.revive``).
        """
        if self.alive:
            return
        if self.battery is not None and self.battery.is_depleted:
            self.battery.recharge()
        self.alive = True
        self.modem.power_on()
        if self.d2d_medium is not None:
            self.d2d_medium.power_on(self.device_id)
        for generator in self.generators.values():
            generator.restart()

    def _on_battery_depleted(self) -> None:
        self.power_off()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Smartphone({self.device_id!r}, role={self.role.value})"
