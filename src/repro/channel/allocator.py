"""Resource-block allocation: who shares spectrum with whom.

Two allocators behind one interface, mirroring the ROADMAP's pairing of
a centralized assigner with Hasan & Hossain's distributed message-passing
resource allocation:

- :class:`CentralizedAllocator` — the base station knows every link and
  solves the assignment directly: exhaustively optimal on small
  instances, greedy (least added interference, in link order) beyond
  the exhaustive budget.
- :class:`MessagePassingAllocator` — links are nodes of a pairwise
  interference graph and exchange min-sum messages until their local
  beliefs settle, followed by a 1-opt best-response repair sweep (each
  link locally switches block while that strictly lowers its own
  interference). No global coordinator ever sees the whole problem; the
  fixed point is what the distributed protocol converges to.

Both minimize the same objective — total pairwise co-channel
interference power (:func:`total_penalty_mw`) — so the property suite
can check them against each other: on instances small enough to
enumerate exhaustively the two must land on assignments of equal
objective value.

Everything is deterministic: iteration follows sorted link ids, ties
break toward the lowest block index, and no RNG is consumed anywhere.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.channel.phy import dbm_to_mw
from repro.channel.rb import RBLease
from repro.d2d.link import LinkModel
from repro.mobility.space import Position, distance_between


@dataclasses.dataclass(frozen=True)
class LinkRequest:
    """One directed D2D link asking for a resource block."""

    link_id: str
    tx_pos: Position
    rx_pos: Position


def _received_mw(link: LinkModel, tx_pos: Position, rx_pos: Position) -> float:
    """Mean received power (mW) of a transmitter at ``tx_pos`` heard at
    ``rx_pos`` — the deterministic path-loss curve, no shadowing."""
    mean_rssi = link.rssi(distance_between(tx_pos, rx_pos))
    return dbm_to_mw(mean_rssi)


def pair_penalty_mw(
    a: LinkRequest, b: LinkRequest, link: LinkModel
) -> float:
    """Mutual interference power if links ``a`` and ``b`` share a block:
    a's transmitter heard at b's receiver plus b's at a's."""
    return _received_mw(link, a.tx_pos, b.rx_pos) + _received_mw(
        link, b.tx_pos, a.rx_pos
    )


def total_penalty_mw(
    assignment: Mapping[str, int],
    requests: Sequence[LinkRequest],
    link: LinkModel,
) -> float:
    """The shared objective: summed pairwise penalty of co-channel pairs."""
    total = 0.0
    for a, b in itertools.combinations(requests, 2):
        if assignment[a.link_id] == assignment[b.link_id]:
            total += pair_penalty_mw(a, b, link)
    return total


def _penalty_matrix(
    requests: Sequence[LinkRequest], link: LinkModel
) -> List[List[float]]:
    n = len(requests)
    penalty = [[0.0] * n for _ in range(n)]
    for i, j in itertools.combinations(range(n), 2):
        p = pair_penalty_mw(requests[i], requests[j], link)
        penalty[i][j] = penalty[j][i] = p
    return penalty


def added_interference_mw(
    request: LinkRequest,
    rb: int,
    active: Sequence[RBLease],
    link: LinkModel,
) -> float:
    """Interference a newcomer on ``rb`` trades with the live leases there:
    what it would suffer at its receiver plus what it would inflict on
    every co-channel receiver."""
    total = 0.0
    for lease in active:
        if lease.rb != rb:
            continue
        total += _received_mw(link, lease.tx_pos, request.rx_pos)
        total += _received_mw(link, request.tx_pos, lease.rx_pos)
    return total


class RBAllocator:
    """Interface: batch assignment plus incremental single-link admission."""

    name = "abstract"

    def allocate(
        self,
        requests: Sequence[LinkRequest],
        num_rbs: int,
        link: LinkModel,
    ) -> Dict[str, int]:
        """Assign every request a block in ``[0, num_rbs)``."""
        raise NotImplementedError

    def pick(
        self,
        request: LinkRequest,
        active: Sequence[RBLease],
        num_rbs: int,
        link: LinkModel,
    ) -> int:
        """Block for one newcomer given the currently live leases."""
        raise NotImplementedError


def _greedy_pick(
    request: LinkRequest,
    active: Sequence[RBLease],
    num_rbs: int,
    link: LinkModel,
) -> int:
    """Least-added-interference block; ties break to the lowest index."""
    best_rb = 0
    best_cost = float("inf")
    for rb in range(num_rbs):
        cost = added_interference_mw(request, rb, active, link)
        if cost < best_cost:
            best_cost = cost
            best_rb = rb
    return best_rb


class CentralizedAllocator(RBAllocator):
    """Omniscient assigner: exhaustive on small instances, greedy beyond.

    ``exhaustive_limit`` caps ``num_rbs ** n_links``; under it the
    allocator enumerates every assignment (lexicographic order over
    sorted link ids, first optimum wins — fully deterministic), above it
    links are placed greedily in sorted-id order.
    """

    name = "centralized"

    def __init__(self, exhaustive_limit: int = 4096) -> None:
        self.exhaustive_limit = exhaustive_limit

    def allocate(
        self,
        requests: Sequence[LinkRequest],
        num_rbs: int,
        link: LinkModel,
    ) -> Dict[str, int]:
        ordered = sorted(requests, key=lambda r: r.link_id)
        if not ordered:
            return {}
        if num_rbs ** len(ordered) <= self.exhaustive_limit:
            return self._exhaustive(ordered, num_rbs, link)
        return self._greedy(ordered, num_rbs, link)

    def pick(
        self,
        request: LinkRequest,
        active: Sequence[RBLease],
        num_rbs: int,
        link: LinkModel,
    ) -> int:
        return _greedy_pick(request, active, num_rbs, link)

    # ------------------------------------------------------------------
    def _exhaustive(
        self, ordered: Sequence[LinkRequest], num_rbs: int, link: LinkModel
    ) -> Dict[str, int]:
        penalty = _penalty_matrix(ordered, link)
        n = len(ordered)
        best: Optional[tuple] = None
        best_cost = float("inf")
        for combo in itertools.product(range(num_rbs), repeat=n):
            cost = 0.0
            for i in range(n):
                row = penalty[i]
                rb = combo[i]
                for j in range(i + 1, n):
                    if combo[j] == rb:
                        cost += row[j]
                if cost >= best_cost:
                    break
            if cost < best_cost:
                best_cost = cost
                best = combo
        assert best is not None
        return {r.link_id: rb for r, rb in zip(ordered, best)}

    def _greedy(
        self, ordered: Sequence[LinkRequest], num_rbs: int, link: LinkModel
    ) -> Dict[str, int]:
        penalty = _penalty_matrix(ordered, link)
        assignment: Dict[str, int] = {}
        placed: List[int] = []
        for i, request in enumerate(ordered):
            best_rb, best_cost = 0, float("inf")
            for rb in range(num_rbs):
                cost = sum(penalty[i][j] for j in placed if assignment[ordered[j].link_id] == rb)
                if cost < best_cost:
                    best_cost, best_rb = cost, rb
            assignment[request.link_id] = best_rb
            placed.append(i)
        return assignment


class MessagePassingAllocator(RBAllocator):
    """Hasan & Hossain-style distributed assignment via min-sum messages.

    Each link node ``i`` keeps a message vector toward every neighbour
    ``j`` over the block alphabet; one iteration recomputes

    ``m_{i→j}(s) = min_t [ cost_ij(t, s) + Σ_{k≠j} m_{k→i}(t) ]``

    with ``cost_ij(t, s) = penalty_ij`` iff ``t == s`` (co-channel) else
    0. Messages are damped and min-normalized; after ``max_iters`` (or
    early convergence) each node takes the argmin of its belief. A final
    1-opt repair sweep lets every node best-respond to the others'
    settled choices until no node wants to move — the same local rule a
    real distributed protocol would run, and the step that guarantees
    optimality on the small instances the equivalence property
    enumerates.
    """

    name = "message-passing"

    def __init__(
        self,
        max_iters: int = 60,
        damping: float = 0.5,
        tolerance: float = 1e-12,
    ) -> None:
        if not 0.0 <= damping < 1.0:
            raise ValueError(f"damping must be in [0,1), got {damping}")
        self.max_iters = max_iters
        self.damping = damping
        self.tolerance = tolerance
        #: iterations the last allocate() actually ran (observability)
        self.last_iterations = 0

    def allocate(
        self,
        requests: Sequence[LinkRequest],
        num_rbs: int,
        link: LinkModel,
    ) -> Dict[str, int]:
        ordered = sorted(requests, key=lambda r: r.link_id)
        n = len(ordered)
        if n == 0:
            return {}
        if n == 1 or num_rbs == 1:
            return {r.link_id: 0 for r in ordered}
        penalty = _penalty_matrix(ordered, link)
        states = range(num_rbs)
        # messages[i][j][s]: node i's message toward node j about state s
        messages = [
            [[0.0] * num_rbs for _ in range(n)] for _ in range(n)
        ]
        self.last_iterations = 0
        for _ in range(self.max_iters):
            self.last_iterations += 1
            delta = 0.0
            for i in range(n):
                incoming = [
                    sum(messages[k][i][s] for k in range(n) if k != i)
                    for s in states
                ]
                for j in range(n):
                    if j == i:
                        continue
                    base = [incoming[s] - messages[j][i][s] for s in states]
                    floor = min(base)
                    fresh = [
                        min(floor, base[s] + penalty[i][j]) for s in states
                    ]
                    norm = min(fresh)
                    for s in states:
                        new = (
                            self.damping * messages[i][j][s]
                            + (1.0 - self.damping) * (fresh[s] - norm)
                        )
                        delta = max(delta, abs(new - messages[i][j][s]))
                        messages[i][j][s] = new
            if delta <= self.tolerance:
                break
        choice = []
        for i in range(n):
            belief = [
                sum(messages[k][i][s] for k in range(n) if k != i)
                for s in states
            ]
            choice.append(min(states, key=lambda s: (belief[s], s)))
        choice = self._repair(choice, penalty, num_rbs)
        return {r.link_id: rb for r, rb in zip(ordered, choice)}

    def pick(
        self,
        request: LinkRequest,
        active: Sequence[RBLease],
        num_rbs: int,
        link: LinkModel,
    ) -> int:
        """Admit one link by joining the distributed consensus.

        Re-runs message passing over the live leases plus the newcomer
        and adopts the newcomer's slot from the joint fixed point (the
        live leases keep their actual blocks — re-allocation advice for
        them is discarded, as in-flight airtime can't hop blocks).
        """
        if not active:
            return 0
        requests = [
            LinkRequest(lease.lease_id, lease.tx_pos, lease.rx_pos)
            for lease in active
        ]
        requests.append(request)
        joint = self.allocate(requests, num_rbs, link)
        return joint[request.link_id]

    # ------------------------------------------------------------------
    def _repair(
        self, choice: List[int], penalty: List[List[float]], num_rbs: int
    ) -> List[int]:
        """1-opt best-response sweeps until no link wants to move."""
        n = len(choice)
        for _ in range(4 * n):
            moved = False
            for i in range(n):
                row = penalty[i]
                costs = [0.0] * num_rbs
                for j in range(n):
                    if j != i:
                        costs[choice[j]] += row[j]
                best = min(range(num_rbs), key=lambda s: (costs[s], s))
                if costs[best] < costs[choice[i]]:
                    choice[i] = best
                    moved = True
            if not moved:
                break
        return choice


#: Name → allocator factory, the ``--allocator`` CLI alphabet.
ALLOCATORS: Dict[str, type] = {
    CentralizedAllocator.name: CentralizedAllocator,
    MessagePassingAllocator.name: MessagePassingAllocator,
}


def make_allocator(spec: Union[str, RBAllocator, None]) -> RBAllocator:
    """Resolve an allocator name (or pass an instance through)."""
    if spec is None:
        return CentralizedAllocator()
    if isinstance(spec, RBAllocator):
        return spec
    try:
        return ALLOCATORS[spec]()
    except KeyError:
        raise ValueError(
            f"unknown allocator {spec!r}; known: {sorted(ALLOCATORS)}"
        ) from None
