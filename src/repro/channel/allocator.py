"""Resource-block allocation: who shares spectrum with whom.

Two allocators behind one interface, mirroring the ROADMAP's pairing of
a centralized assigner with Hasan & Hossain's distributed message-passing
resource allocation:

- :class:`CentralizedAllocator` — the base station knows every link and
  solves the assignment directly: exhaustively optimal on small
  instances, greedy (least added interference, in link order) beyond
  the exhaustive budget.
- :class:`MessagePassingAllocator` — links are nodes of a pairwise
  interference graph and exchange min-sum messages until their local
  beliefs settle, followed by a 1-opt best-response repair sweep (each
  link locally switches block while that strictly lowers its own
  interference). No global coordinator ever sees the whole problem; the
  fixed point is what the distributed protocol converges to.

Both minimize the same objective — total pairwise co-channel
interference power (:func:`total_penalty_mw`) — so the property suite
can check them against each other: on instances small enough to
enumerate exhaustively the two must land on assignments of equal
objective value.

Everything is deterministic: iteration follows sorted link ids, ties
break toward the lowest block index, and no RNG is consumed anywhere.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.channel.phy import dbm_to_mw
from repro.channel.rb import RBLease
from repro.d2d.link import LinkModel
from repro.mobility.space import Position, distance_between


@dataclasses.dataclass(frozen=True)
class LinkRequest:
    """One directed D2D link asking for a resource block."""

    link_id: str
    tx_pos: Position
    rx_pos: Position


def _received_mw(link: LinkModel, tx_pos: Position, rx_pos: Position) -> float:
    """Mean received power (mW) of a transmitter at ``tx_pos`` heard at
    ``rx_pos`` — the deterministic path-loss curve, no shadowing."""
    mean_rssi = link.rssi(distance_between(tx_pos, rx_pos))
    return dbm_to_mw(mean_rssi)


def pair_penalty_mw(
    a: LinkRequest, b: LinkRequest, link: LinkModel
) -> float:
    """Mutual interference power if links ``a`` and ``b`` share a block:
    a's transmitter heard at b's receiver plus b's at a's."""
    return _received_mw(link, a.tx_pos, b.rx_pos) + _received_mw(
        link, b.tx_pos, a.rx_pos
    )


def total_penalty_mw(
    assignment: Mapping[str, int],
    requests: Sequence[LinkRequest],
    link: LinkModel,
) -> float:
    """The shared objective: summed pairwise penalty of co-channel pairs."""
    total = 0.0
    for a, b in itertools.combinations(requests, 2):
        if assignment[a.link_id] == assignment[b.link_id]:
            total += pair_penalty_mw(a, b, link)
    return total


def _penalty_matrix(
    requests: Sequence[LinkRequest], link: LinkModel
) -> List[List[float]]:
    n = len(requests)
    penalty = [[0.0] * n for _ in range(n)]
    for i, j in itertools.combinations(range(n), 2):
        p = pair_penalty_mw(requests[i], requests[j], link)
        penalty[i][j] = penalty[j][i] = p
    return penalty


def added_interference_mw(
    request: LinkRequest,
    rb: int,
    active: Sequence[RBLease],
    link: LinkModel,
) -> float:
    """Interference a newcomer on ``rb`` trades with the live leases there:
    what it would suffer at its receiver plus what it would inflict on
    every co-channel receiver."""
    total = 0.0
    for lease in active:
        if lease.rb != rb:
            continue
        total += _received_mw(link, lease.tx_pos, request.rx_pos)
        total += _received_mw(link, request.tx_pos, lease.rx_pos)
    return total


class RBAllocator:
    """Interface: batch assignment plus incremental single-link admission."""

    name = "abstract"

    def allocate(
        self,
        requests: Sequence[LinkRequest],
        num_rbs: int,
        link: LinkModel,
    ) -> Dict[str, int]:
        """Assign every request a block in ``[0, num_rbs)``."""
        raise NotImplementedError

    def pick(
        self,
        request: LinkRequest,
        active: Sequence[RBLease],
        num_rbs: int,
        link: LinkModel,
    ) -> int:
        """Block for one newcomer given the currently live leases."""
        raise NotImplementedError


def _greedy_pick(
    request: LinkRequest,
    active: Sequence[RBLease],
    num_rbs: int,
    link: LinkModel,
) -> int:
    """Least-added-interference block; ties break to the lowest index."""
    best_rb = 0
    best_cost = float("inf")
    for rb in range(num_rbs):
        cost = added_interference_mw(request, rb, active, link)
        if cost < best_cost:
            best_cost = cost
            best_rb = rb
    return best_rb


class CentralizedAllocator(RBAllocator):
    """Omniscient assigner: exhaustive on small instances, greedy beyond.

    ``exhaustive_limit`` caps ``num_rbs ** n_links``; under it the
    allocator enumerates every assignment (lexicographic order over
    sorted link ids, first optimum wins — fully deterministic), above it
    links are placed greedily in sorted-id order.
    """

    name = "centralized"

    def __init__(self, exhaustive_limit: int = 4096) -> None:
        self.exhaustive_limit = exhaustive_limit

    def allocate(
        self,
        requests: Sequence[LinkRequest],
        num_rbs: int,
        link: LinkModel,
    ) -> Dict[str, int]:
        ordered = sorted(requests, key=lambda r: r.link_id)
        if not ordered:
            return {}
        if num_rbs ** len(ordered) <= self.exhaustive_limit:
            return self._exhaustive(ordered, num_rbs, link)
        return self._greedy(ordered, num_rbs, link)

    def pick(
        self,
        request: LinkRequest,
        active: Sequence[RBLease],
        num_rbs: int,
        link: LinkModel,
    ) -> int:
        return _greedy_pick(request, active, num_rbs, link)

    # ------------------------------------------------------------------
    def _exhaustive(
        self, ordered: Sequence[LinkRequest], num_rbs: int, link: LinkModel
    ) -> Dict[str, int]:
        penalty = _penalty_matrix(ordered, link)
        n = len(ordered)
        best: Optional[tuple] = None
        best_cost = float("inf")
        for combo in itertools.product(range(num_rbs), repeat=n):
            cost = 0.0
            for i in range(n):
                row = penalty[i]
                rb = combo[i]
                for j in range(i + 1, n):
                    if combo[j] == rb:
                        cost += row[j]
                if cost >= best_cost:
                    break
            if cost < best_cost:
                best_cost = cost
                best = combo
        assert best is not None
        return {r.link_id: rb for r, rb in zip(ordered, best)}

    def _greedy(
        self, ordered: Sequence[LinkRequest], num_rbs: int, link: LinkModel
    ) -> Dict[str, int]:
        penalty = _penalty_matrix(ordered, link)
        assignment: Dict[str, int] = {}
        placed: List[int] = []
        for i, request in enumerate(ordered):
            best_rb, best_cost = 0, float("inf")
            for rb in range(num_rbs):
                cost = sum(penalty[i][j] for j in placed if assignment[ordered[j].link_id] == rb)
                if cost < best_cost:
                    best_cost, best_rb = cost, rb
            assignment[request.link_id] = best_rb
            placed.append(i)
        return assignment


class MessagePassingAllocator(RBAllocator):
    """Hasan & Hossain-style distributed assignment via min-sum messages.

    Each link node ``i`` keeps a message vector toward every neighbour
    ``j`` over the block alphabet; one iteration recomputes

    ``m_{i→j}(s) = min_t [ cost_ij(t, s) + u_i(t) + Σ_{k≠j} m_{k→i}(t) ]``

    with ``cost_ij(t, s) = penalty_ij`` iff ``t == s`` (co-channel) else
    0, and ``u_i`` a tiny deterministic unary tilt (see below). The
    inner minimum excludes ``t == s`` from the zero-cost branch — folding
    it in would collapse every message to a constant and kill
    propagation. Messages are damped and min-normalized; after
    ``max_iters`` (or early convergence) the beliefs
    ``u_i(s) + Σ_k m_{k→i}(s)`` are settled into an assignment by two
    locally-computable readouts — every node takes its belief argmin,
    and nodes claim blocks one at a time in belief-confidence order —
    with the lower-objective result kept.

    Because the objective is purely pairwise and symmetric under block
    relabelling, the all-zero message state is a fixed point min-sum
    cannot leave on its own: every block looks identical from a cold
    start. Hasan & Hossain break that symmetry with per-RB link
    utilities (channel gains differ across blocks); our blocks are
    physically identical, so ``u_i`` is a vanishing stand-in — node ``i``
    prefers block ``i mod num_rbs`` by a margin of order ``1e-3`` of the
    largest pairwise penalty, enough to tilt the factor graph without
    measurably moving the objective.

    A final repair phase lets nodes best-respond to the others' settled
    choices — single-node block switches, then pairwise block swaps once
    single moves dry up — until no local move lowers the objective. Both
    move types need only information the two participants already
    exchange, so the fixed point is still one a distributed protocol
    reaches; the swap moves are what rescue the frustrated instances
    where pure 1-opt parks in a poor local optimum.
    """

    name = "message-passing"

    #: Unary tilt magnitude relative to the largest pairwise penalty.
    TILT_FRACTION = 1e-3

    def __init__(
        self,
        max_iters: int = 60,
        damping: float = 0.5,
        tolerance: float = 1e-12,
    ) -> None:
        if not 0.0 <= damping < 1.0:
            raise ValueError(f"damping must be in [0,1), got {damping}")
        self.max_iters = max_iters
        self.damping = damping
        self.tolerance = tolerance
        #: iterations the last allocate() actually ran (observability)
        self.last_iterations = 0

    def allocate(
        self,
        requests: Sequence[LinkRequest],
        num_rbs: int,
        link: LinkModel,
    ) -> Dict[str, int]:
        return self._allocate(requests, num_rbs, link, {})

    def _allocate(
        self,
        requests: Sequence[LinkRequest],
        num_rbs: int,
        link: LinkModel,
        pins: Mapping[str, int],
    ) -> Dict[str, int]:
        """Joint assignment; links in ``pins`` are held to their block."""
        ordered = sorted(requests, key=lambda r: r.link_id)
        n = len(ordered)
        if n == 0:
            return {}
        if n == 1 or num_rbs == 1:
            return {r.link_id: pins.get(r.link_id, 0) for r in ordered}
        penalty = _penalty_matrix(ordered, link)
        states = range(num_rbs)
        locked = {
            i for i, r in enumerate(ordered) if r.link_id in pins
        }
        # symmetry-breaking unary tilt: node i prefers block i % num_rbs,
        # margin shrinking with node index so ties resolve in id order.
        # Pinned nodes instead carry a prohibitive unary away from their
        # block — larger than any achievable total penalty — so the
        # consensus routes around them rather than moving them.
        max_pen = max(max(row) for row in penalty)
        tilt = self.TILT_FRACTION * max_pen
        pin_cost = (1.0 + max_pen) * n * n
        unary = [
            (
                [
                    0.0 if s == pins[ordered[i].link_id] else pin_cost
                    for s in states
                ]
                if i in locked
                else [
                    tilt * ((s - i) % num_rbs) * (n - i) / (n * num_rbs)
                    for s in states
                ]
            )
            for i in range(n)
        ]
        # messages[i][j][s]: node i's message toward node j about state s
        messages = [
            [[0.0] * num_rbs for _ in range(n)] for _ in range(n)
        ]
        self.last_iterations = 0
        for _ in range(self.max_iters):
            self.last_iterations += 1
            delta = 0.0
            for i in range(n):
                incoming = [
                    unary[i][s]
                    + sum(messages[k][i][s] for k in range(n) if k != i)
                    for s in states
                ]
                for j in range(n):
                    if j == i:
                        continue
                    base = [incoming[s] - messages[j][i][s] for s in states]
                    # min over t != s of base[t]: track the two smallest so
                    # the co-channel state s is excluded from its own
                    # zero-cost branch (min over all t would collapse every
                    # message to a constant and kill propagation).
                    lo_idx = min(states, key=base.__getitem__)
                    lo = base[lo_idx]
                    lo2 = min(base[s] for s in states if s != lo_idx)
                    fresh = [
                        min(
                            lo2 if s == lo_idx else lo,
                            base[s] + penalty[i][j],
                        )
                        for s in states
                    ]
                    norm = min(fresh)
                    for s in states:
                        new = (
                            self.damping * messages[i][j][s]
                            + (1.0 - self.damping) * (fresh[s] - norm)
                        )
                        delta = max(delta, abs(new - messages[i][j][s]))
                        messages[i][j][s] = new
            if delta <= self.tolerance:
                break
        beliefs = [
            [
                unary[i][s]
                + sum(messages[k][i][s] for k in range(n) if k != i)
                for s in states
            ]
            for i in range(n)
        ]
        # Two locally-computable decision rules settle the beliefs into
        # an assignment; each is polished by best-response repair and the
        # lower-objective fixed point wins. The simultaneous argmin is
        # the classic min-sum readout; the sequential claim (nodes pick
        # in belief-confidence order, responding to earlier claims) is
        # what rescues Latin-square-like geometries where every
        # simultaneous readout is a frustrated local optimum.
        pinned_choice = [
            pins[ordered[i].link_id] if i in locked else None for i in range(n)
        ]
        argmin = self._repair(
            [
                pinned_choice[i]
                if i in locked
                else min(states, key=lambda s: (beliefs[i][s], s))
                for i in range(n)
            ],
            penalty,
            num_rbs,
            locked,
        )
        claimed = self._repair(
            self._sequential_claim(
                beliefs, penalty, num_rbs, pinned_choice
            ),
            penalty,
            num_rbs,
            locked,
        )
        choice = min(
            (argmin, claimed), key=lambda c: self._objective(c, penalty)
        )
        return {r.link_id: rb for r, rb in zip(ordered, choice)}

    def pick(
        self,
        request: LinkRequest,
        active: Sequence[RBLease],
        num_rbs: int,
        link: LinkModel,
    ) -> int:
        """Admit one link by joining the distributed consensus.

        Re-runs message passing over the live leases plus the newcomer
        with every live lease pinned to its actual block (in-flight
        airtime can't hop blocks), so the joint fixed point routes the
        newcomer around the incumbents rather than advising moves they
        cannot make.
        """
        if not active:
            return 0
        requests = [
            LinkRequest(lease.lease_id, lease.tx_pos, lease.rx_pos)
            for lease in active
        ]
        pins = {lease.lease_id: lease.rb for lease in active}
        requests.append(request)
        joint = self._allocate(requests, num_rbs, link, pins)
        return joint[request.link_id]

    # ------------------------------------------------------------------
    @staticmethod
    def _objective(choice: List[int], penalty: List[List[float]]) -> float:
        """Total co-channel penalty of an assignment (the shared objective)."""
        n = len(choice)
        return sum(
            penalty[i][j]
            for i in range(n)
            for j in range(i + 1, n)
            if choice[i] == choice[j]
        )

    @staticmethod
    def _sequential_claim(
        beliefs: List[List[float]],
        penalty: List[List[float]],
        num_rbs: int,
        pinned_choice: List[Optional[int]],
    ) -> List[int]:
        """Nodes claim blocks one at a time, most-decided first.

        Pinned nodes hold their block up front. Confidence is the gap
        between a node's best and second-best belief; each claimer takes
        the block with the least penalty toward already-claimed nodes,
        breaking ties by its own belief, then by block index.
        Deterministic: the claim order tie-breaks on node index.
        """
        n = len(beliefs)
        states = range(num_rbs)
        choice: List[Optional[int]] = list(pinned_choice)

        def confidence(i: int) -> float:
            top_two = sorted(beliefs[i])[:2]
            return top_two[1] - top_two[0]

        order = sorted(
            (i for i in range(n) if choice[i] is None),
            key=lambda i: (-confidence(i), i),
        )
        for i in order:
            costs = [0.0] * num_rbs
            for j in range(n):
                if choice[j] is not None and j != i:
                    costs[choice[j]] += penalty[i][j]
            choice[i] = min(states, key=lambda s: (costs[s], beliefs[i][s], s))
        return choice

    def _repair(
        self,
        choice: List[int],
        penalty: List[List[float]],
        num_rbs: int,
        locked: frozenset = frozenset(),
    ) -> List[int]:
        """Local best-response until no single move or pair swap helps.

        Single-node block switches run first; once they dry up, pairwise
        block swaps (two nodes trading blocks — each needs only the
        other's cost row) are tried. ``locked`` nodes never move. Every
        accepted move strictly lowers the shared objective, so the sweep
        terminates.
        """
        n = len(choice)
        for _ in range(4 * n):
            moved = False
            for i in range(n):
                if i in locked:
                    continue
                row = penalty[i]
                costs = [0.0] * num_rbs
                for j in range(n):
                    if j != i:
                        costs[choice[j]] += row[j]
                best = min(range(num_rbs), key=lambda s: (costs[s], s))
                if costs[best] < costs[choice[i]]:
                    choice[i] = best
                    moved = True
            if not moved:
                for i in range(n):
                    if i in locked:
                        continue
                    for j in range(i + 1, n):
                        if j in locked:
                            continue
                        a, b = choice[i], choice[j]
                        if a == b:
                            continue
                        gain = 0.0
                        for k in range(n):
                            if k == i or k == j:
                                continue
                            c = choice[k]
                            gain += penalty[i][k] * ((c == b) - (c == a))
                            gain += penalty[j][k] * ((c == a) - (c == b))
                        if gain < 0.0:
                            choice[i], choice[j] = b, a
                            moved = True
            if not moved:
                break
        return choice


#: Name → allocator factory, the ``--allocator`` CLI alphabet.
ALLOCATORS: Dict[str, type] = {
    CentralizedAllocator.name: CentralizedAllocator,
    MessagePassingAllocator.name: MessagePassingAllocator,
}


def make_allocator(spec: Union[str, RBAllocator, None]) -> RBAllocator:
    """Resolve an allocator name (or pass an instance through)."""
    if spec is None:
        return CentralizedAllocator()
    if isinstance(spec, RBAllocator):
        return spec
    try:
        return ALLOCATORS[spec]()
    except KeyError:
        raise ValueError(
            f"unknown allocator {spec!r}; known: {sorted(ALLOCATORS)}"
        ) from None
