"""Interference-aware D2D channel layer: SINR, resource blocks, capacity.

The fixed-cost transfer model (``d2d_transfer_s`` and per-message charge
constants) stays the default everywhere; this package is opt-in via
``channel="sinr"`` on scenarios or ``--channel sinr`` on the CLI.
"""

from repro.channel.allocator import (
    ALLOCATORS,
    CentralizedAllocator,
    LinkRequest,
    MessagePassingAllocator,
    RBAllocator,
    added_interference_mw,
    make_allocator,
    pair_penalty_mw,
    total_penalty_mw,
)
from repro.channel.model import (
    ChannelConfig,
    ChannelModel,
    ChannelStats,
    TransferGrant,
)
from repro.channel.phy import (
    THERMAL_NOISE_DBM_PER_HZ,
    dbm_to_mw,
    mw_to_dbm,
    shannon_capacity_bps,
    sinr_db,
    thermal_noise_dbm,
)
from repro.channel.rb import RBLease, ResourceBlockPool

__all__ = [
    "ALLOCATORS",
    "CentralizedAllocator",
    "ChannelConfig",
    "ChannelModel",
    "ChannelStats",
    "LinkRequest",
    "MessagePassingAllocator",
    "RBAllocator",
    "RBLease",
    "ResourceBlockPool",
    "THERMAL_NOISE_DBM_PER_HZ",
    "TransferGrant",
    "added_interference_mw",
    "dbm_to_mw",
    "make_allocator",
    "mw_to_dbm",
    "pair_penalty_mw",
    "shannon_capacity_bps",
    "sinr_db",
    "thermal_noise_dbm",
    "total_penalty_mw",
]
