"""SINR and Shannon-capacity arithmetic for the channel layer.

Pure functions, no state, no RNG: given who transmits where on which
resource block, what signal-to-interference-plus-noise ratio does a
receiver see and how fast can the link run? Modelled on the gym-d2d
simulator's SINR pipeline (received power minus aggregate co-channel
interference over a thermal noise floor) with the repo's
:class:`~repro.d2d.link.LinkModel` supplying the path-loss curve.

Everything here is deterministic so channel-mode runs stay replayable
from ``(scenario, seed)``; shadowing randomness lives in the discovery
path (:meth:`LinkModel.shadowed`), never in capacity computation.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Thermal noise power spectral density at ~290 K, dBm per Hz.
THERMAL_NOISE_DBM_PER_HZ = -174.0


def dbm_to_mw(dbm: float) -> float:
    """Convert a dBm power level to linear milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert linear milliwatts to dBm; ``-inf`` for zero power."""
    if mw <= 0.0:
        return float("-inf")
    return 10.0 * math.log10(mw)


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise floor over ``bandwidth_hz`` plus receiver noise figure."""
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return (
        THERMAL_NOISE_DBM_PER_HZ
        + 10.0 * math.log10(bandwidth_hz)
        + noise_figure_db
    )


def sinr_db(
    signal_dbm: float,
    interferer_dbms: Iterable[float],
    noise_dbm: float,
) -> float:
    """SINR (dB) of a link under aggregate co-channel interference.

    ``interferer_dbms`` are the received powers of every *other*
    transmission sharing the resource block, as seen at this link's
    receiver. Summation happens in linear milliwatts (powers add; dB
    values do not), exactly like gym-d2d's ``_calculate_sinrs``.
    """
    denominator_mw = dbm_to_mw(noise_dbm)
    for interferer_dbm in interferer_dbms:
        denominator_mw += dbm_to_mw(interferer_dbm)
    return signal_dbm - mw_to_dbm(denominator_mw)


def shannon_capacity_bps(bandwidth_hz: float, sinr_db_value: float) -> float:
    """Shannon bound ``B * log2(1 + SINR)`` in bits per second."""
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    sinr_linear = 10.0 ** (sinr_db_value / 10.0)
    return bandwidth_hz * math.log2(1.0 + sinr_linear)
