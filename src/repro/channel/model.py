"""The channel model: per-transfer SINR, capacity, airtime, and leases.

:class:`ChannelModel` is the one object `D2DMedium` talks to in channel
mode. For each transfer it

1. reaps idle resource-block leases,
2. finds (or admits, via the configured :class:`RBAllocator`) the lease
   for the directed link ``"sender->receiver"``,
3. computes the SINR at the receiver against every co-channel lease
   currently live,
4. turns that into a Shannon-capacity rate and an airtime, and
5. extends the lease's busy horizon and records the sample into
   :class:`ChannelStats`.

No RNG anywhere: given the same sequence of ``begin_transfer`` calls the
model produces the same grants, so channel-mode runs replay
byte-identically from ``(scenario, seed)``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Union

from repro.channel.allocator import (
    LinkRequest,
    RBAllocator,
    make_allocator,
)
from repro.channel.phy import (
    shannon_capacity_bps,
    sinr_db,
    thermal_noise_dbm,
)
from repro.channel.rb import RBLease, ResourceBlockPool
from repro.d2d.link import LinkModel
from repro.mobility.space import Position, distance_between


@dataclasses.dataclass(frozen=True)
class ChannelConfig:
    """Knobs of the interference-aware channel layer."""

    #: Shared resource blocks (one LTE RB-group-ish slice each).
    num_rbs: int = 6
    #: Bandwidth of a single resource block (Hz) — LTE PRB is 180 kHz.
    rb_bandwidth_hz: float = 180_000.0
    #: Receiver noise figure stacked on the thermal floor (dB).
    noise_figure_db: float = 7.0
    #: Per-transfer protocol preamble (MAC setup, not capacity-limited).
    overhead_s: float = 0.05
    #: Framing bytes added to every payload before the airtime division.
    protocol_overhead_bytes: int = 28
    #: Rate floor so a deeply-interfered transfer still terminates (bps).
    min_rate_bps: float = 250.0
    #: A lease idle this long after its last airtime is reaped.
    lease_idle_timeout_s: float = 5.0
    #: Allocator name from :data:`repro.channel.allocator.ALLOCATORS`.
    allocator: str = "centralized"

    def __post_init__(self) -> None:
        if self.num_rbs < 1:
            raise ValueError(f"num_rbs must be >= 1, got {self.num_rbs}")
        if self.rb_bandwidth_hz <= 0:
            raise ValueError("rb_bandwidth_hz must be positive")
        if self.min_rate_bps <= 0:
            raise ValueError("min_rate_bps must be positive")
        if self.overhead_s < 0 or self.lease_idle_timeout_s < 0:
            raise ValueError("timing knobs must be non-negative")


@dataclasses.dataclass(frozen=True)
class LinkEstimate:
    """What :meth:`ChannelModel.estimate_link` predicts for one geometry.

    A pure query — nothing is leased, billed, or recorded. ``sinr_db`` /
    ``rate_bps`` are the *best* the link could get across the RB
    alphabet against the co-channel leases live right now (what an
    admission would roughly see); the ``solo_*`` fields are the
    interference-free ceiling for the same geometry.
    """

    solo_sinr_db: float
    solo_rate_bps: float
    sinr_db: float
    rate_bps: float
    #: Payload+framing bits over the contended rate.
    airtime_s: float
    #: ``overhead_s + airtime_s`` — the predicted billable duration.
    duration_s: float
    #: Live co-channel leases on the best block.
    interferers: int


@dataclasses.dataclass(frozen=True)
class TransferGrant:
    """What the channel granted one transfer: block, quality, airtime."""

    lease_id: str
    rb: int
    sinr_db: float
    rate_bps: float
    #: Payload+framing bits divided by the granted rate.
    airtime_s: float
    #: ``overhead_s + airtime_s`` — what the medium schedules and bills.
    duration_s: float
    #: Co-channel leases live at grant time (the density bucket key).
    interferers: int


class ChannelStats:
    """Deterministic per-run aggregates for :class:`RunMetrics.channel`."""

    def __init__(self) -> None:
        self.transfers = 0
        self.sum_sinr_db = 0.0
        self.min_sinr_db = float("inf")
        self.max_sinr_db = float("-inf")
        self.sum_rate_bps = 0.0
        self.min_rate_bps = float("inf")
        self.sum_airtime_s = 0.0
        self.floor_hits = 0
        #: interferer count -> [transfer count, summed rate]
        self.density: Dict[int, list] = {}

    def record(self, grant: TransferGrant, floored: bool) -> None:
        self.transfers += 1
        self.sum_sinr_db += grant.sinr_db
        self.min_sinr_db = min(self.min_sinr_db, grant.sinr_db)
        self.max_sinr_db = max(self.max_sinr_db, grant.sinr_db)
        self.sum_rate_bps += grant.rate_bps
        self.min_rate_bps = min(self.min_rate_bps, grant.rate_bps)
        self.sum_airtime_s += grant.airtime_s
        if floored:
            self.floor_hits += 1
        bucket = self.density.setdefault(grant.interferers, [0, 0.0])
        bucket[0] += 1
        bucket[1] += grant.rate_bps


class ChannelModel:
    """Interference-aware capacity model over a shared RB pool."""

    def __init__(
        self,
        config: Optional[ChannelConfig] = None,
        link: Optional[LinkModel] = None,
        allocator: Union[str, RBAllocator, None] = None,
    ) -> None:
        self.config = config or ChannelConfig()
        self.link = link or LinkModel()
        self.allocator = make_allocator(allocator or self.config.allocator)
        self.pool = ResourceBlockPool(self.config.num_rbs)
        self.stats = ChannelStats()
        self._noise_dbm = thermal_noise_dbm(
            self.config.rb_bandwidth_hz, self.config.noise_figure_db
        )
        #: Optional ``(device_id, t) -> Position | None`` hook the medium
        #: installs so SINR evaluation can read co-channel transmitters'
        #: *current* positions instead of the ones frozen into their
        #: leases at their last transfer. ``None`` (standalone use) keeps
        #: lease positions as-is; so does a resolver returning ``None``
        #: for an unknown device. Deterministic as long as the resolver
        #: is (analytic mobility models are), so replay identity holds.
        self.position_resolver: Optional[
            Callable[[str, float], Optional[Position]]
        ] = None

    # ------------------------------------------------------------------
    def _refresh_lease_positions(self, now: float) -> None:
        """Move every live lease's endpoints to their current positions."""
        resolver = self.position_resolver
        if resolver is None:
            return
        for lease in self.pool.live_leases():
            tx = resolver(lease.tx_id, now)
            if tx is not None:
                lease.tx_pos = tx
            rx = resolver(lease.rx_id, now)
            if rx is not None:
                lease.rx_pos = rx

    # ------------------------------------------------------------------
    def solo_sinr_db(self, distance_m: float) -> float:
        """SNR of an interference-free link at ``distance_m``."""
        return sinr_db(self.link.rssi(distance_m), (), self._noise_dbm)

    def solo_rate_bps(self, distance_m: float) -> float:
        """The interference-free Shannon bound at ``distance_m`` — no
        granted rate may exceed this for the same geometry."""
        return shannon_capacity_bps(
            self.config.rb_bandwidth_hz, self.solo_sinr_db(distance_m)
        )

    # ------------------------------------------------------------------
    def estimate_link(
        self,
        tx_pos: Position,
        rx_pos: Position,
        payload_bytes: int = 0,
        now: Optional[float] = None,
    ) -> LinkEstimate:
        """Cheap per-link quality query for relay selection.

        Predicts what a transfer over ``tx_pos -> rx_pos`` would get
        *without* touching any state: no lease is admitted, no idle
        lease reaped, no stats recorded, and live leases are read (at
        their current positions when a resolver and ``now`` are given)
        but never mutated. The contended figure evaluates the SINR
        against the live co-channel occupancy of every block and keeps
        the best — the least-interfered block an admission could land
        on. O(num_rbs × live leases) and RNG-free, so calling it any
        number of times cannot perturb a replay.
        """
        cfg = self.config
        distance = distance_between(tx_pos, rx_pos)
        signal_dbm = self.link.rssi(distance)
        solo_sinr = sinr_db(signal_dbm, (), self._noise_dbm)
        solo_rate = shannon_capacity_bps(cfg.rb_bandwidth_hz, solo_sinr)

        resolver = self.position_resolver if now is not None else None
        per_rb_interferers: Dict[int, List[float]] = {}
        for lease in self.pool.live_leases():
            other_tx = lease.tx_pos
            if resolver is not None:
                assert now is not None
                resolved = resolver(lease.tx_id, now)
                if resolved is not None:
                    other_tx = resolved
            per_rb_interferers.setdefault(lease.rb, []).append(
                self.link.rssi(distance_between(other_tx, rx_pos))
            )

        best_sinr = solo_sinr
        best_interferers = 0
        for rb in range(cfg.num_rbs):
            interferer_dbms = per_rb_interferers.get(rb, [])
            if not interferer_dbms:
                best_sinr = solo_sinr
                best_interferers = 0
                break
            sinr = sinr_db(signal_dbm, interferer_dbms, self._noise_dbm)
            if rb == 0 or sinr > best_sinr:
                best_sinr = sinr
                best_interferers = len(interferer_dbms)

        rate = max(
            shannon_capacity_bps(cfg.rb_bandwidth_hz, best_sinr),
            cfg.min_rate_bps,
        )
        bits = (payload_bytes + cfg.protocol_overhead_bytes) * 8
        airtime = bits / rate
        return LinkEstimate(
            solo_sinr_db=solo_sinr,
            solo_rate_bps=solo_rate,
            sinr_db=best_sinr,
            rate_bps=rate,
            airtime_s=airtime,
            duration_s=cfg.overhead_s + airtime,
            interferers=best_interferers,
        )

    # ------------------------------------------------------------------
    def begin_transfer(
        self,
        sender_id: str,
        receiver_id: str,
        tx_pos: Position,
        rx_pos: Position,
        payload_bytes: int,
        now: float,
    ) -> TransferGrant:
        """Grant airtime for one transfer on the directed link's lease."""
        cfg = self.config
        self.pool.reap_idle(now, cfg.lease_idle_timeout_s)
        # Interferer SINR must see where co-channel transmitters are *now*,
        # not where they were at their own last transfer.
        self._refresh_lease_positions(now)

        lease_id = f"{sender_id}->{receiver_id}"
        lease = self.pool.get(lease_id)
        if lease is None:
            request = LinkRequest(lease_id, tx_pos, rx_pos)
            rb = self.allocator.pick(
                request, self.pool.live_leases(), cfg.num_rbs, self.link
            )
            lease = RBLease(
                lease_id=lease_id,
                rb=rb,
                tx_id=sender_id,
                rx_id=receiver_id,
                tx_pos=tx_pos,
                rx_pos=rx_pos,
                created_s=now,
                busy_until_s=now,
            )
            self.pool.grant(lease, now)
        else:
            lease.tx_pos = tx_pos
            lease.rx_pos = rx_pos

        interferers = self.pool.co_channel(lease.rb, exclude_id=lease_id)
        interferer_dbms = [
            self.link.rssi(distance_between(other.tx_pos, rx_pos))
            for other in interferers
        ]
        signal_dbm = self.link.rssi(distance_between(tx_pos, rx_pos))
        sinr = sinr_db(signal_dbm, interferer_dbms, self._noise_dbm)
        shannon = shannon_capacity_bps(cfg.rb_bandwidth_hz, sinr)
        floored = shannon < cfg.min_rate_bps
        rate = cfg.min_rate_bps if floored else shannon

        bits = (payload_bytes + cfg.protocol_overhead_bytes) * 8
        airtime = bits / rate
        duration = cfg.overhead_s + airtime
        lease.busy_until_s = max(lease.busy_until_s, now + duration)

        grant = TransferGrant(
            lease_id=lease_id,
            rb=lease.rb,
            sinr_db=sinr,
            rate_bps=rate,
            airtime_s=airtime,
            duration_s=duration,
            interferers=len(interferers),
        )
        self.stats.record(grant, floored)
        return grant

    def end_of_run(self, now: float) -> None:
        """Flush busy-time integration at the simulation horizon."""
        self.pool.busy_seconds(now)

    # ------------------------------------------------------------------
    def stats_snapshot(self, horizon_s: float) -> Dict[str, object]:
        """JSON-ready aggregates; key order is deterministic."""
        s = self.stats
        n = s.transfers
        density = {
            str(k): {
                "transfers": bucket[0],
                "mean_rate_bps": round(bucket[1] / bucket[0], 3),
            }
            for k, bucket in sorted(s.density.items())
        }
        return {
            "mode": "sinr",
            "allocator": self.allocator.name,
            "num_rbs": self.config.num_rbs,
            "transfers": n,
            "mean_sinr_db": round(s.sum_sinr_db / n, 6) if n else None,
            "min_sinr_db": round(s.min_sinr_db, 6) if n else None,
            "max_sinr_db": round(s.max_sinr_db, 6) if n else None,
            "mean_rate_bps": round(s.sum_rate_bps / n, 3) if n else None,
            "min_rate_bps": round(s.min_rate_bps, 3) if n else None,
            "total_airtime_s": round(s.sum_airtime_s, 6),
            "rate_floor_hits": s.floor_hits,
            "rb_grants": self.pool.grants,
            "rb_releases": self.pool.releases,
            "rb_peak_live": self.pool.peak_live,
            "rb_utilization": round(self.pool.utilization(horizon_s), 6),
            "density": density,
        }
