"""Resource-block pool: who holds spectrum, on which block, since when.

A :class:`ResourceBlockPool` tracks one lease per directed D2D link.
Resource blocks are *shared*, not exclusive — several leases may sit on
the same block, and that co-channel sharing is exactly what the SINR
computation turns into interference. What the pool does guarantee (and
what the physics property suite pins) is honest bookkeeping:

- a lease occupies **exactly one** block — granting an already-live
  lease is an error (the "no double-booking" invariant);
- every grant lands on a block inside ``[0, num_rbs)``;
- release is exact: a released lease is gone from every per-block
  bucket, and per-block occupancy always sums to the live-lease count.

The pool also integrates busy time per block so a run can report RB
utilization as a time-weighted fraction rather than a point sample.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.mobility.space import Position


@dataclasses.dataclass
class RBLease:
    """One directed link's hold on a resource block.

    Positions are refreshed on every transfer the lease carries, so
    interference estimates against this lease use the transmitter's
    last-known location (exact for static endpoints, slightly stale for
    movers — conservative either way, never unsafe).
    """

    lease_id: str
    rb: int
    tx_id: str
    rx_id: str
    tx_pos: Position
    rx_pos: Position
    created_s: float
    #: End of the latest airtime carried on this lease; the lease expires
    #: ``idle_timeout`` after this instant.
    busy_until_s: float


class ResourceBlockPool:
    """Lease bookkeeping over ``num_rbs`` shared resource blocks."""

    def __init__(self, num_rbs: int) -> None:
        if num_rbs < 1:
            raise ValueError(f"need at least one resource block, got {num_rbs}")
        self.num_rbs = num_rbs
        self._leases: Dict[str, RBLease] = {}
        self._by_rb: List[Dict[str, RBLease]] = [{} for _ in range(num_rbs)]
        # busy-time integral: active-lease-seconds accumulated per block
        self._busy_s: List[float] = [0.0] * num_rbs
        self._last_event_s = 0.0
        # statistics
        self.grants = 0
        self.releases = 0
        self.peak_live = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, lease_id: str) -> bool:
        return lease_id in self._leases

    def get(self, lease_id: str) -> Optional[RBLease]:
        return self._leases.get(lease_id)

    def live_leases(self) -> List[RBLease]:
        """Snapshot of every live lease, in grant order."""
        return list(self._leases.values())

    def co_channel(self, rb: int, exclude_id: Optional[str] = None) -> List[RBLease]:
        """Leases sharing block ``rb`` (the interferer set), in grant order."""
        return [
            lease
            for lease_id, lease in self._by_rb[rb].items()
            if lease_id != exclude_id
        ]

    def occupancy(self) -> List[int]:
        """Live lease count per block."""
        return [len(bucket) for bucket in self._by_rb]

    # ------------------------------------------------------------------
    def grant(self, lease: RBLease, now: float) -> RBLease:
        """Admit ``lease`` onto its block; rejects double-booking."""
        if lease.lease_id in self._leases:
            raise ValueError(
                f"lease {lease.lease_id!r} is already live on rb "
                f"{self._leases[lease.lease_id].rb} — release it first"
            )
        if not 0 <= lease.rb < self.num_rbs:
            raise ValueError(
                f"rb {lease.rb} out of range [0, {self.num_rbs})"
            )
        self._advance(now)
        self._leases[lease.lease_id] = lease
        self._by_rb[lease.rb][lease.lease_id] = lease
        self.grants += 1
        self.peak_live = max(self.peak_live, len(self._leases))
        return lease

    def release(self, lease_id: str, now: float) -> Optional[RBLease]:
        """Drop a lease; unknown ids are ignored (idempotent)."""
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            return None
        self._advance(now)
        self._by_rb[lease.rb].pop(lease_id, None)
        self.releases += 1
        return lease

    def reap_idle(self, now: float, idle_timeout_s: float) -> List[RBLease]:
        """Release every lease idle past ``idle_timeout_s``; returns them."""
        expired = [
            lease
            for lease in self._leases.values()
            if lease.busy_until_s + idle_timeout_s <= now
        ]
        for lease in expired:
            self.release(lease.lease_id, now)
        return expired

    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        """Integrate per-block busy time up to ``now``."""
        dt = now - self._last_event_s
        if dt > 0.0:
            for rb, bucket in enumerate(self._by_rb):
                if bucket:
                    self._busy_s[rb] += dt
            self._last_event_s = now

    def busy_seconds(self, now: Optional[float] = None) -> List[float]:
        """Per-block lease-held seconds, optionally advanced to ``now``."""
        if now is not None:
            self._advance(now)
        return list(self._busy_s)

    def utilization(self, horizon_s: float) -> float:
        """Mean fraction of (block × time) held over ``horizon_s``."""
        if horizon_s <= 0.0:
            return 0.0
        return sum(self.busy_seconds(horizon_s)) / (self.num_rbs * horizon_s)

    def audit(self) -> Tuple[bool, str]:
        """Internal consistency check used by the property suite.

        Returns ``(ok, reason)``: every live lease sits in exactly one
        per-block bucket, buckets only hold live leases, and occupancy
        sums to the live count.
        """
        seen: Dict[str, int] = {}
        for rb, bucket in enumerate(self._by_rb):
            for lease_id, lease in bucket.items():
                if lease_id in seen:
                    return False, f"lease {lease_id!r} booked on rb {seen[lease_id]} and {rb}"
                if lease.rb != rb:
                    return False, f"lease {lease_id!r} filed under rb {rb} but claims {lease.rb}"
                seen[lease_id] = rb
        if set(seen) != set(self._leases):
            return False, "per-block buckets disagree with the lease table"
        return True, ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResourceBlockPool({len(self._leases)} leases over "
            f"{self.num_rbs} RBs, occupancy={self.occupancy()})"
        )
