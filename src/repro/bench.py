"""Pinned performance suite — the `repro-sim bench` backend.

The scaling work (spatial-index discovery, adjacency maps, the event-kernel
fast path) needs a *trajectory*, not anecdotes: a fixed set of micro and
macro cases, run the same way every time, written to ``BENCH_<rev>.json``
so successive revisions can be compared and CI can catch regressions.

Cases
-----
- ``kernel`` — micro: events/second through the discrete-event kernel
  (heap churn with a cancelled-event mix, exercising lazy deletion).
- ``pair`` — macro: the paper's bench rig (1 relay + 8 UEs), end to end.
- ``crowd-200`` — macro + gate: a 200-device discovery-heavy crowd run
  twice, spatial index vs ``brute_force=True``. Reports the speedup and
  asserts the two runs' :class:`~repro.metrics.RunMetrics` are identical
  (minus the observability-only ``perf`` block). CI gates on this case's
  speedup: the *ratio* is machine-independent where raw seconds are not.
- ``crowd-500-storm`` — the headline demonstration (skipped in
  ``--quick``): 500 devices, every endpoint advertising, a scan every
  5 s per device. Indexed vs brute-force, same identity check; the
  speedup here is the O(N) → O(local density) story at full size.
- ``crowd-300-ran-chaos`` — audited 300-device crowd under the
  ``paging-storm`` RAN chaos profile (skipped in ``--quick``): pins the
  degraded-RAN event counts, the fallback protocol's retry/drop
  accounting, the outage-aware deadline-safe fraction, and the
  replay-identity of chaotic runs.
- ``crowd-5000-sharded`` — the city-scale case (skipped in ``--quick``):
  a 5000-device advertising crowd run unsharded scalar, unsharded
  vectorized, and on the cell-sharded kernel (serial + process
  backends). Gates on vectorization being byte-identical to the scalar
  scan and on the two shard backends merging to byte-identical metrics.
- ``crowd-20000-balanced`` — the shard-planning case (skipped in
  ``--quick``): a 20000-device hotspot crowd on the sharded kernel at
  ``shards=4``, column bands vs load-balanced tiles. Reports per-plan
  device skew, per-shard work and barrier waits, and two speedups: wall
  (what this box saw) and **critical path** (sum over windows of the
  slowest shard's work — the wall time a one-core-per-shard machine
  would see; core-count independent, so CI gates on it). The tile
  plan's byte-identity across backends is pinned by the determinism
  guard at small scale, not re-paid at this size.

Timing discipline: every timed run repeats ``repeats`` times and keeps
the **minimum** wall time per mode — the standard way to strip scheduler
noise from a deterministic workload (the minimum is the run with the
least interference; the workload itself never varies).
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.metrics import RunMetrics
from repro.mobility.space import Arena
from repro.scenarios import (
    NetworkContext,
    run_crowd_scenario,
    run_relay_scenario,
)
from repro.sim.engine import Simulator
from repro.workload.apps import STANDARD_APP

#: Bump when the case set or a case's parameters change incompatibly —
#: reports with different schemas must not be speedup-compared.
BENCH_SCHEMA = 1

#: The acceptance target the storm case demonstrates.
STORM_TARGET_SPEEDUP = 5.0

#: The case CI's regression gate compares between report and baseline.
GATE_CASE = "crowd-200"

#: Allowed relative bands-vs-tiles delivery difference on the balanced
#: case. Shard borders restrict D2D matching, so a few horizon-edge
#: beats legitimately ride the direct uplink under one plan and a relay
#: buffer under the other; anything beyond half a percent means the
#: partition changed simulation outcomes for real.
_DELIVERY_TOLERANCE = 0.005

#: Per-case speedup-ratio gates for :func:`compare_reports`. A case is
#: gated only when it appears in *both* the current report and the
#: baseline, so partial (``--only``) runs gate exactly what they ran.
GATE_RATIOS: Dict[str, str] = {
    GATE_CASE: "speedup",
    "crowd-500-storm": "speedup",
    "crowd-5000-sharded": "speedup_sharded",
    "crowd-20000-balanced": "speedup_tiles_critical",
}


@dataclasses.dataclass(frozen=True)
class CaseResult:
    """One bench case's outcome."""

    name: str
    wall_s: float
    detail: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"wall_s": self.wall_s, **self.detail}


# ----------------------------------------------------------------------
# timing helpers
# ----------------------------------------------------------------------
def _best_of(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Minimum wall time over ``repeats`` runs, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _identical(a: RunMetrics, b: RunMetrics) -> bool:
    """Whether two runs produced byte-identical simulation output."""
    return a.to_comparable_dict() == b.to_comparable_dict()


# ----------------------------------------------------------------------
# cases
# ----------------------------------------------------------------------
def bench_kernel(events: int = 200_000) -> CaseResult:
    """Event-kernel throughput: push, cancel a third, drain."""

    def run() -> int:
        sim = Simulator(seed=0)
        fired = [0]

        def bump() -> None:
            fired[0] += 1

        handles = []
        for i in range(events):
            # deterministic scatter (no RNG): prime-stride heap churn
            handles.append(sim.schedule((i * 7919) % events / 1000.0, bump))
        for handle in handles[::3]:
            handle.cancel()
        sim.run_all(max_events=events + 1)
        return fired[0]

    wall, fired = _best_of(run, repeats=1)
    return CaseResult(
        name="kernel",
        wall_s=wall,
        detail={
            "events_scheduled": events,
            "events_fired": fired,
            "events_per_s": fired / wall if wall > 0 else 0.0,
        },
    )


def bench_pair(repeats: int) -> CaseResult:
    """The paper's bench rig, end to end (framework + energy + RRC)."""
    wall, result = _best_of(
        lambda: run_relay_scenario(n_ues=8, periods=5, seed=0), repeats
    )
    return CaseResult(
        name="pair",
        wall_s=wall,
        detail={
            "events_fired": result.context.sim.events_fired,
            "total_l3": result.total_l3(),
        },
    )


def _storm_pre_run(scan_period_s: float):
    """Every device advertises and scans periodically — discovery-heavy."""

    def pre_run(context: NetworkContext, devices: Dict[str, Any]) -> None:
        medium, sim = context.medium, context.sim
        assert medium is not None
        for device_id in devices:
            endpoint = medium.endpoint(device_id)
            endpoint.advertising = True
            endpoint.advertisement.setdefault("storm", 1)

            def tick(did: str = device_id) -> None:
                if medium.endpoint(did).powered_on:
                    medium.discover(did, lambda peers: None)

            sim.every(scan_period_s, tick, name=f"storm-{device_id}")

    return pre_run


def bench_crowd_storm(
    name: str,
    n_devices: int,
    arena_m: float,
    hotspots: int,
    duration_s: float,
    scan_period_s: float,
    repeats: int,
) -> CaseResult:
    """Discovery-heavy crowd, spatial index vs brute force.

    Both modes must produce identical :class:`RunMetrics` (minus the
    ``perf`` observability block) — the determinism guard run as a bench.
    """

    def run(brute: bool):
        return run_crowd_scenario(
            n_devices=n_devices,
            relay_fraction=0.2,
            duration_s=duration_s,
            arena=Arena(arena_m, arena_m),
            hotspots=hotspots,
            seed=0,
            brute_force=brute,
            pre_run=_storm_pre_run(scan_period_s),
        )

    indexed_wall, indexed = _best_of(lambda: run(False), repeats)
    brute_wall, brute = _best_of(lambda: run(True), repeats)
    identical = _identical(indexed.metrics, brute.metrics)
    speedup = brute_wall / indexed_wall if indexed_wall > 0 else 0.0
    perf = indexed.metrics.perf or {}
    brute_perf = brute.metrics.perf or {}
    return CaseResult(
        name=name,
        wall_s=indexed_wall,
        detail={
            "n_devices": n_devices,
            "indexed_wall_s": indexed_wall,
            "brute_wall_s": brute_wall,
            "speedup": speedup,
            "identical_metrics": identical,
            "scans": perf.get("scans", 0),
            "mean_candidates_indexed": perf.get("mean_candidates_per_scan", 0.0),
            "mean_candidates_brute": brute_perf.get(
                "mean_candidates_per_scan", 0.0
            ),
        },
    )


def bench_channel_crowd(
    name: str,
    n_devices: int,
    duration_s: float,
    repeats: int,
) -> CaseResult:
    """Interference-aware 500-device storm: capacity under RB contention.

    A dense crowd on a fast heartbeat runs with ``channel="sinr"`` so
    concurrent transfers contend for the shared resource blocks. The run
    executes twice with identical inputs and the two
    :class:`RunMetrics` — channel aggregates included — must match
    exactly (the replay-from-``(scenario, seed)`` contract extended to
    channel mode). The detail records the rate-vs-density buckets and
    whether the mean granted rate degrades from the interference-free
    bucket to the contended ones.
    """
    app = dataclasses.replace(STANDARD_APP, heartbeat_period_s=45.0)

    def run():
        return run_crowd_scenario(
            n_devices=n_devices,
            relay_fraction=0.2,
            duration_s=duration_s,
            arena=Arena(250.0, 250.0),
            hotspots=12,
            seed=0,
            app=app,
            channel="sinr",
        )

    wall, first = _best_of(run, repeats)
    replay = run()
    identical = _identical(first.metrics, replay.metrics)
    stats = first.metrics.channel or {}
    density = stats.get("density", {})
    solo = density.get("0", {}).get("mean_rate_bps")
    contended = [
        bucket["mean_rate_bps"]
        for k, bucket in density.items()
        if k != "0"
    ]
    degrades = (
        solo is not None
        and bool(contended)
        and all(rate < solo for rate in contended)
    )
    return CaseResult(
        name=name,
        wall_s=wall,
        detail={
            "n_devices": n_devices,
            "identical_metrics": identical,
            "transfers": stats.get("transfers", 0),
            "mean_sinr_db": stats.get("mean_sinr_db"),
            "mean_rate_bps": stats.get("mean_rate_bps"),
            "rb_utilization": stats.get("rb_utilization"),
            "rb_peak_live": stats.get("rb_peak_live"),
            "density": density,
            "rate_degrades_with_density": degrades,
        },
    )


def bench_channel_selection(
    name: str,
    n_devices: int,
    duration_s: float,
    repeats: int,
    shadowing_sigma_db: float = 8.0,
) -> CaseResult:
    """Channel-aware selection under heavy shadowing: rate beats distance.

    The 500-device SINR crowd reruns at high shadowing sigma once per
    selection policy. Distance-only selection ranks by RSSI-estimated
    distance, which shadowing corrupts; the ``rate`` policy ranks by the
    channel model's deterministic per-link estimate. The detail pins the
    per-policy mean granted rate and the relative gain, the audited
    delivery invariants for both runs, and the replay-identity check
    (two identical ``rate`` runs must produce byte-identical metrics —
    the ``(scenario, seed)`` contract extended to channel-aware
    selection).
    """
    app = dataclasses.replace(STANDARD_APP, heartbeat_period_s=45.0)

    def run(policy: str):
        return run_crowd_scenario(
            n_devices=n_devices,
            relay_fraction=0.2,
            duration_s=duration_s,
            arena=Arena(250.0, 250.0),
            hotspots=12,
            seed=0,
            app=app,
            channel="sinr",
            shadowing_sigma_db=shadowing_sigma_db,
            selection_policy=policy,
            audit=True,
        )

    wall, rate_run = _best_of(lambda: run("rate"), repeats)
    replay = run("rate")
    identical = _identical(rate_run.metrics, replay.metrics)
    distance_run = run("distance")

    def row(result) -> Dict[str, Any]:
        stats = result.metrics.channel or {}
        report = result.audit_report
        return {
            "transfers": stats.get("transfers", 0),
            "mean_rate_bps": stats.get("mean_rate_bps"),
            "mean_sinr_db": stats.get("mean_sinr_db"),
            "on_time": result.on_time_fraction(),
            "audit_violations": len(report.violations) if report else None,
        }

    rate_row = row(rate_run)
    distance_row = row(distance_run)
    rate_bps = rate_row["mean_rate_bps"] or 0.0
    distance_bps = distance_row["mean_rate_bps"] or 0.0
    gain = rate_bps / distance_bps - 1.0 if distance_bps else None
    return CaseResult(
        name=name,
        wall_s=wall,
        detail={
            "n_devices": n_devices,
            "shadowing_sigma_db": shadowing_sigma_db,
            "identical_metrics": identical,
            "rate": rate_row,
            "distance": distance_row,
            "rate_gain_over_distance": gain,
            "rate_beats_distance": bool(gain is not None and gain > 0.0),
            "audit_clean": bool(
                rate_row["audit_violations"] == 0
                and distance_row["audit_violations"] == 0
            ),
        },
    )


def bench_ran_chaos(
    name: str,
    n_devices: int,
    duration_s: float,
    repeats: int,
    profile: str = "paging-storm",
    chaos_seed: int = 2,
) -> CaseResult:
    """Audited crowd under RAN chaos: the degraded-RAN cost, pinned.

    A 300-device crowd runs with the ``paging-storm`` profile layered on
    (brown-outs, paging-channel storms, injected RRC rejects) and the
    invariant auditor live. The run executes twice with identical inputs
    and the two :class:`RunMetrics` must match exactly — the
    replay-from-``(scenario, profile, seed)`` contract extended to the
    cellular fault domain. The detail pins the RAN event counts, the
    degraded-mode protocol's retry/detach/drop accounting, the
    outage-aware deadline-safe fraction, and audit cleanliness.
    """

    def run():
        return run_crowd_scenario(
            n_devices=n_devices,
            relay_fraction=0.2,
            duration_s=duration_s,
            arena=Arena(500.0, 500.0),
            hotspots=12,
            seed=0,
            chaos=profile,
            # seed 2, not 0: the storm processes' first exponential
            # arrivals must land inside the 300 s horizon or the case
            # pins a vacuous no-chaos run
            chaos_seed=chaos_seed,
            audit=True,
        )

    wall, first = _best_of(run, repeats)
    replay = run()
    identical = _identical(first.metrics, replay.metrics)
    faults = first.metrics.faults
    report = first.audit_report
    chaos_report = first.chaos_report
    return CaseResult(
        name=name,
        wall_s=wall,
        detail={
            "n_devices": n_devices,
            "profile": profile,
            "identical_metrics": identical,
            "chaos_events": len(chaos_report.events) if chaos_report else 0,
            "bs_outages": faults.bs_outages if faults else 0,
            "bs_brownouts": faults.bs_brownouts if faults else 0,
            "pages_injected": faults.pages_injected if faults else 0,
            "pages_failed": faults.pages_failed if faults else 0,
            "uplinks_rejected": faults.uplinks_rejected if faults else 0,
            "cellular_retries": faults.cellular_retries if faults else 0,
            "detaches": faults.detaches if faults else 0,
            "reattaches": faults.reattaches if faults else 0,
            "beats_dropped": (
                faults.beats_dropped_stale
                + faults.beats_dropped_overflow
                + faults.beats_dropped_retries
            ) if faults else 0,
            "beats_buffered_end": faults.beats_buffered_end if faults else 0,
            "deadline_safe": faults.deadline_safe_fraction if faults else None,
            "audit_violations": len(report.violations) if report else None,
            "audit_clean": bool(report is not None and report.ok),
        },
    )


def bench_sharded_crowd(
    name: str,
    n_devices: int,
    duration_s: float,
    shards: int,
    repeats: int,
) -> CaseResult:
    """City-scale storm: single-kernel scalar vs vectorized vs sharded.

    The same 5000-device advertising crowd runs four ways — unsharded
    with the numpy scan path off (the old kernel), unsharded vectorized,
    and on the cell-sharded kernel with both backends. Two identity
    checks gate the case: vectorization must be byte-identical to the
    scalar scan (it is pure acceleration), and the serial and process
    shard backends must merge to byte-identical metrics (the sharded
    kernel's determinism contract). Wall-clock headline: the sharded +
    vectorized kernel against the scalar single process. On a single
    CPU the process backend measures protocol overhead, not parallelism;
    ``cpus`` in the detail says which reading applies.
    """
    from repro.shard import run_crowd_scenario_sharded

    arena_m = 1200.0
    hotspots = 12
    spread_m = 60.0
    mobile_fraction = 0.1
    scan_period_s = 10.0
    storm = _storm_pre_run(scan_period_s)

    def run_unsharded(vectorized: bool):
        def pre_run(context: NetworkContext, devices: Dict[str, Any]) -> None:
            if not vectorized:
                context.medium.vectorized = False
            storm(context, devices)

        return run_crowd_scenario(
            n_devices=n_devices,
            relay_fraction=0.2,
            duration_s=duration_s,
            arena=Arena(arena_m, arena_m),
            hotspots=hotspots,
            hotspot_spread_m=spread_m,
            mobile_fraction=mobile_fraction,
            seed=0,
            pre_run=pre_run,
        )

    def run_sharded(backend: str):
        return run_crowd_scenario_sharded(
            n_devices=n_devices,
            relay_fraction=0.2,
            duration_s=duration_s,
            arena=Arena(arena_m, arena_m),
            hotspots=hotspots,
            hotspot_spread_m=spread_m,
            mobile_fraction=mobile_fraction,
            seed=0,
            shards=shards,
            sync_window_s=scan_period_s,
            storm_scan_period_s=scan_period_s,
            backend=backend,
        )

    scalar_wall, scalar = _best_of(lambda: run_unsharded(False), repeats)
    vector_wall, vector = _best_of(lambda: run_unsharded(True), repeats)
    serial_wall, serial = _best_of(lambda: run_sharded("serial"), repeats)
    process_wall, process = _best_of(lambda: run_sharded("process"), repeats)

    vector_identical = _identical(scalar.metrics, vector.metrics)
    backend_identical = (
        serial.metrics.to_comparable_dict()
        == process.metrics.to_comparable_dict()
    )
    best_sharded = min(serial_wall, process_wall)
    perf = serial.metrics.perf or {}
    return CaseResult(
        name=name,
        wall_s=serial_wall,
        detail={
            "n_devices": n_devices,
            "shards": shards,
            "cpus": os.cpu_count(),
            "scalar_wall_s": scalar_wall,
            "vectorized_wall_s": vector_wall,
            "sharded_serial_wall_s": serial_wall,
            "sharded_process_wall_s": process_wall,
            "speedup_vectorized": (
                scalar_wall / vector_wall if vector_wall > 0 else 0.0
            ),
            "speedup_sharded": (
                scalar_wall / best_sharded if best_sharded > 0 else 0.0
            ),
            "identical_metrics": vector_identical and backend_identical,
            "vector_identical": vector_identical,
            "backend_identical": backend_identical,
            "devices_per_shard": serial.devices_per_shard,
            "windows": serial.windows,
            "handovers": serial.handovers,
            "ghost_registrations": serial.ghost_registrations,
            "scans": perf.get("scans", 0),
            "vectorized_scans": perf.get("vectorized_scans", 0),
        },
    )


def bench_balanced_crowd(
    name: str,
    n_devices: int,
    duration_s: float,
    shards: int,
    repeats: int,
) -> CaseResult:
    """Shard planning: column bands vs load-balanced tiles at crowd scale.

    The same hotspot crowd runs on the sharded kernel twice, once per
    partition plan. The headline number is the **critical-path speedup**
    — per window, the slowest shard sets the sync barrier, so the sum of
    per-window maxima is the wall time a one-core-per-shard machine
    needs; that ratio measures what the planner controls (load skew) and
    holds on any host, unlike the wall ratio on a box with fewer cores
    than shards. ``cpus`` in the detail says which reading applies to
    the wall numbers. Byte-identity of the tile plan (serial vs process,
    replay) is pinned by the determinism guard at small scale; this case
    additionally cross-checks that both plans deliver near-identical
    heartbeat counts (``delivery_close``). Exact equality is *not* the
    invariant: shard borders restrict D2D matching, so a handful of
    beats near the run horizon ride the direct uplink under one plan and
    sit in a relay buffer under the other — a documented horizon-edge
    effect bounded by ``_DELIVERY_TOLERANCE``, not a partition bug.
    """
    from repro.shard import run_crowd_scenario_sharded

    def run(plan: str):
        return run_crowd_scenario_sharded(
            n_devices=n_devices,
            relay_fraction=0.2,
            duration_s=duration_s,
            arena=Arena(2400.0, 2400.0),
            hotspots=12,
            hotspot_spread_m=60.0,
            mobile_fraction=0.1,
            # seed 2, not 0: the 12-hotspot draw must actually land
            # unevenly across the column bands or the case demonstrates
            # nothing (seed 0 spreads the hotspots almost uniformly)
            seed=2,
            shards=shards,
            cells_x=10,
            cells_y=4,
            sync_window_s=10.0,
            storm_scan_period_s=10.0,
            shard_plan=plan,
        )

    bands_wall, bands = _best_of(lambda: run("bands"), repeats)
    tiles_wall, tiles = _best_of(lambda: run("tiles"), repeats)
    bands_delivery = bands.metrics.delivery
    tiles_delivery = tiles.metrics.delivery
    delivery_rel_diff = max(
        abs(bands_delivery.received - tiles_delivery.received)
        / max(1, bands_delivery.received),
        abs(bands_delivery.on_time - tiles_delivery.on_time)
        / max(1, bands_delivery.on_time),
    )
    tiles_perf = tiles.metrics.perf or {}
    return CaseResult(
        name=name,
        wall_s=tiles_wall,
        detail={
            "n_devices": n_devices,
            "shards": shards,
            "cpus": os.cpu_count(),
            "bands_wall_s": bands_wall,
            "tiles_wall_s": tiles_wall,
            "bands_critical_path_s": bands.critical_path_s,
            "tiles_critical_path_s": tiles.critical_path_s,
            "bands_total_work_s": bands.total_work_s,
            "tiles_total_work_s": tiles.total_work_s,
            "speedup_tiles_wall": (
                bands_wall / tiles_wall if tiles_wall > 0 else 0.0
            ),
            "speedup_tiles_critical": (
                bands.critical_path_s / tiles.critical_path_s
                if tiles.critical_path_s > 0 else 0.0
            ),
            "bands_devices_per_shard": bands.devices_per_shard,
            "tiles_devices_per_shard": tiles.devices_per_shard,
            "bands_device_skew": bands.device_skew,
            "tiles_device_skew": tiles.device_skew,
            "bands_shard_load": bands.shard_load,
            "tiles_shard_load": tiles.shard_load,
            "bands_received": bands_delivery.received,
            "bands_on_time": bands_delivery.on_time,
            "tiles_received": tiles_delivery.received,
            "tiles_on_time": tiles_delivery.on_time,
            "delivery_rel_diff": delivery_rel_diff,
            "delivery_close": delivery_rel_diff <= _DELIVERY_TOLERANCE,
            "timer_discover_s": tiles_perf.get("timer_discover_s"),
            "timer_transfer_s": tiles_perf.get("timer_transfer_s"),
            "timer_energy_s": tiles_perf.get("timer_energy_s"),
            "timer_shard_sync_s": tiles_perf.get("timer_shard-sync_s"),
        },
    )


# ----------------------------------------------------------------------
# suite
# ----------------------------------------------------------------------
def run_suite(
    quick: bool = False,
    repeats: Optional[int] = None,
    only: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the pinned suite; ``quick`` drops the 500-device cases.

    ``only`` selects cases by name, comma-separated (any case, even one
    ``quick`` would drop) — the CI smoke jobs use it to run e.g.
    ``crowd-5000-sharded,crowd-20000-balanced`` without paying for the
    whole suite.
    """
    if repeats is None:
        repeats = 2 if quick else 3
    builders: List[tuple] = [
        ("kernel", False,
         lambda: bench_kernel(events=50_000 if quick else 200_000)),
        ("pair", False, lambda: bench_pair(repeats=repeats)),
        (GATE_CASE, False, lambda: bench_crowd_storm(
            GATE_CASE,
            n_devices=200,
            arena_m=2000.0,
            hotspots=50,
            duration_s=180.0,
            scan_period_s=5.0,
            repeats=repeats,
        )),
        ("crowd-500-storm", True, lambda: bench_crowd_storm(
            "crowd-500-storm",
            n_devices=500,
            arena_m=3000.0,
            hotspots=120,
            duration_s=240.0,
            scan_period_s=5.0,
            repeats=repeats,
        )),
        ("crowd-500-channel", True, lambda: bench_channel_crowd(
            "crowd-500-channel",
            n_devices=500,
            duration_s=240.0,
            repeats=repeats,
        )),
        ("crowd-500-selection", True, lambda: bench_channel_selection(
            "crowd-500-selection",
            n_devices=500,
            duration_s=240.0,
            repeats=repeats,
        )),
        ("crowd-300-ran-chaos", True, lambda: bench_ran_chaos(
            "crowd-300-ran-chaos",
            n_devices=300,
            duration_s=300.0,
            repeats=repeats,
        )),
        # repeats pinned to 1: the four 5000-device legs make this the
        # most expensive case in the suite, and its gates are identity
        # checks rather than timing noise
        ("crowd-5000-sharded", True, lambda: bench_sharded_crowd(
            "crowd-5000-sharded",
            n_devices=5000,
            duration_s=90.0,
            shards=2,
            repeats=1,
        )),
        # repeats pinned to 1 like the 5000-device case: two 20000-device
        # legs, and the gate is a ratio of two runs on the same box
        ("crowd-20000-balanced", True, lambda: bench_balanced_crowd(
            "crowd-20000-balanced",
            n_devices=20_000,
            duration_s=60.0,
            shards=4,
            repeats=1,
        )),
    ]
    if only is not None:
        known = [name for name, __, __build in builders]
        wanted = [part.strip() for part in only.split(",") if part.strip()]
        unknown = [part for part in wanted if part not in known]
        if unknown:
            raise ValueError(
                f"unknown bench case(s) {unknown}; known: {known}"
            )
        selected = [b for b in builders if b[0] in wanted]
    else:
        selected = [b for b in builders if not (quick and b[1])]
    cases: List[CaseResult] = [build() for __, __skip, build in selected]
    return {
        "schema": BENCH_SCHEMA,
        "rev": current_rev(),
        "python": sys.version.split()[0],
        "quick": quick,
        "only": only,
        "generated_unix": time.time(),
        "cases": {case.name: case.to_dict() for case in cases},
    }


def current_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def write_report(report: Dict[str, Any], out_dir: str = "benchmarks") -> str:
    """Write ``BENCH_<rev>.json`` into ``out_dir``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{report['rev']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# regression gate
# ----------------------------------------------------------------------
def compare_reports(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
) -> List[str]:
    """Regression check of ``current`` against a committed ``baseline``.

    Returns human-readable failure strings (empty = pass). Gates on the
    :data:`GATE_RATIOS` **speedup ratios**, not raw seconds: a ratio
    holds across machines of different absolute speed, so a committed
    baseline from one box meaningfully gates CI runners. A ratio is
    gated only for cases present in both reports (partial ``--only``
    runs gate what they ran), except :data:`GATE_CASE`, which must be in
    any full report and stays mandatory whenever the current report
    contains it. Also fails on any case whose determinism identity check
    (``identical_metrics``) or delivery cross-check (``delivery_close``)
    failed, regardless of baseline.
    """
    failures: List[str] = []
    if current.get("schema") != baseline.get("schema"):
        return [
            f"schema mismatch: current {current.get('schema')} vs "
            f"baseline {baseline.get('schema')} — regenerate the baseline"
        ]
    current_cases = current.get("cases", {})
    baseline_cases = baseline.get("cases", {})
    for name, case in current_cases.items():
        if case.get("identical_metrics") is False:
            failures.append(
                f"{name}: runs that must match diverged — "
                "determinism contract broken"
            )
        if case.get("delivery_close") is False:
            failures.append(
                f"{name}: partition plans delivered different heartbeat "
                "counts (beyond the horizon-edge tolerance) — plan "
                "choice changed simulation outcomes"
            )
    if GATE_CASE not in current_cases and not current.get("only"):
        # a full suite run must contain the mandatory gate case; only a
        # declared partial (``--only``) report may omit it
        failures.append(
            f"{GATE_CASE}: speedup missing from current report"
        )
    for name, ratio_key in GATE_RATIOS.items():
        if name not in current_cases or name not in baseline_cases:
            continue
        gate_now = current_cases[name].get(ratio_key)
        gate_base = baseline_cases[name].get(ratio_key)
        if gate_now is None or gate_base is None:
            failures.append(
                f"{name}: {ratio_key} missing from "
                f"{'current' if gate_now is None else 'baseline'} report"
            )
        elif gate_now < gate_base * (1.0 - tolerance):
            failures.append(
                f"{name}: {ratio_key} regressed {gate_base:.2f}x -> "
                f"{gate_now:.2f}x (more than {tolerance:.0%} below baseline)"
            )
    return failures
