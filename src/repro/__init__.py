"""repro — D2D heartbeat relaying framework (ICDCS 2017 reproduction).

Reproduction of "Reducing Cellular Signaling Traffic for Heartbeat
Messages via Energy-Efficient D2D Forwarding" (Jin, Liu, Yi, Chen —
ICDCS 2017): relays collect IM heartbeats from nearby UEs over Wi-Fi
Direct and uplink them in one aggregated cellular transmission, cutting
RRC signaling (the "signaling storm") and device energy.

Quickstart::

    from repro import run_relay_scenario, saved_percent

    d2d = run_relay_scenario(n_ues=1, periods=7, mode="d2d")
    base = run_relay_scenario(n_ues=1, periods=7, mode="original")
    print("system energy saved:",
          saved_percent(base.system_energy_uah(), d2d.system_energy_uah()))
    print("signaling reduction:",
          saved_percent(base.total_l3(), d2d.total_l3()))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.sim import Simulator
from repro.sim.rng import spawn
from repro.device import Role, Smartphone
from repro.energy import Battery, EnergyModel, EnergyPhase, PowerMonitor
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile, STANDARD_HEARTBEAT_BYTES
from repro.cellular import (
    BaseStation,
    CellularModem,
    LTE_PROFILE,
    RrcProfile,
    RrcState,
    SignalingLedger,
    WCDMA_PROFILE,
)
from repro.d2d import BLUETOOTH, D2DMedium, D2DTechnology, LTE_DIRECT, WIFI_DIRECT
from repro.mobility import Arena, RandomWaypointMobility, StaticMobility, place_crowd
from repro.workload import (
    APP_REGISTRY,
    AppProfile,
    HeartbeatMessage,
    IMServer,
    PeriodicMessage,
    STANDARD_APP,
    WECHAT,
)
from repro.core import (
    FrameworkConfig,
    HeartbeatRelayFramework,
    MatchConfig,
    MessageScheduler,
    RelayAgent,
    RewardLedger,
    RewardPolicy,
    SchedulerConfig,
    UEAgent,
    breakeven_distance_m,
)
from repro.core.security import IntegrityError, SealedBeat, SecureChannel, ServerKeyRing
from repro.baseline import (
    FAST_DORMANCY_PROFILE,
    FastDormancySystem,
    OriginalSystem,
    PiggybackSystem,
)
from repro.scenarios import (
    NetworkContext,
    RUNNER_REGISTRY,
    ScenarioResult,
    build_network,
    crowd_metrics_runner,
    relay_savings_runner,
    run_crowd_scenario,
    run_relay_scenario,
)
from repro.metrics import (
    RunMetrics,
    SweepPointTiming,
    SweepTelemetry,
    collect_metrics,
)
from repro.sweep import (
    SweepCache,
    SweepError,
    SweepFailure,
    SweepPoint,
    SweepResult,
    grid_sweep,
    sweep_status,
)
from repro.experiments import (
    REGISTRY as EXPERIMENT_REGISTRY,
    run_experiment,
    sensitivity_grid,
)
from repro.viz import render_timeline
from repro.faults import (
    CHAOS_PROFILES,
    ChaosEngine,
    ChaosProfile,
    FaultPlan,
    InjectedFault,
    InvariantAuditor,
    run_differential,
    run_differential_suite,
)
from repro.plotting import LineChart, line_chart
from repro.analysis import (
    linear_fit,
    saved_fraction,
    saved_percent,
    signaling_reduction,
    wasted_to_saved_ratio,
)

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Role",
    "Smartphone",
    "Battery",
    "EnergyModel",
    "EnergyPhase",
    "PowerMonitor",
    "DEFAULT_PROFILE",
    "EnergyProfile",
    "STANDARD_HEARTBEAT_BYTES",
    "BaseStation",
    "CellularModem",
    "LTE_PROFILE",
    "RrcProfile",
    "RrcState",
    "SignalingLedger",
    "WCDMA_PROFILE",
    "BLUETOOTH",
    "D2DMedium",
    "D2DTechnology",
    "LTE_DIRECT",
    "WIFI_DIRECT",
    "Arena",
    "RandomWaypointMobility",
    "StaticMobility",
    "place_crowd",
    "APP_REGISTRY",
    "AppProfile",
    "HeartbeatMessage",
    "IMServer",
    "PeriodicMessage",
    "STANDARD_APP",
    "WECHAT",
    "FrameworkConfig",
    "HeartbeatRelayFramework",
    "MatchConfig",
    "MessageScheduler",
    "RelayAgent",
    "RewardLedger",
    "RewardPolicy",
    "SchedulerConfig",
    "UEAgent",
    "breakeven_distance_m",
    "IntegrityError",
    "SealedBeat",
    "SecureChannel",
    "ServerKeyRing",
    "OriginalSystem",
    "PiggybackSystem",
    "FastDormancySystem",
    "FAST_DORMANCY_PROFILE",
    "NetworkContext",
    "RUNNER_REGISTRY",
    "ScenarioResult",
    "build_network",
    "crowd_metrics_runner",
    "relay_savings_runner",
    "run_crowd_scenario",
    "run_relay_scenario",
    "RunMetrics",
    "SweepPointTiming",
    "SweepTelemetry",
    "collect_metrics",
    "SweepCache",
    "SweepError",
    "SweepFailure",
    "SweepPoint",
    "SweepResult",
    "grid_sweep",
    "sweep_status",
    "spawn",
    "EXPERIMENT_REGISTRY",
    "run_experiment",
    "sensitivity_grid",
    "render_timeline",
    "FaultPlan",
    "InjectedFault",
    "CHAOS_PROFILES",
    "ChaosEngine",
    "ChaosProfile",
    "InvariantAuditor",
    "run_differential",
    "run_differential_suite",
    "LineChart",
    "line_chart",
    "linear_fit",
    "saved_fraction",
    "saved_percent",
    "signaling_reduction",
    "wasted_to_saved_ratio",
    "__version__",
]
