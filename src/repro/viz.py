"""ASCII timeline rendering of a simulation run.

Turns each device's energy-charge log into a one-line lane where every
column is a time bucket and the glyph is the dominant activity in it —
a poor man's Monsoon + packet capture, handy in examples and debugging::

    relay-0 |S·T~~~~~........r...r..........S·T~~~~~.....|
    ue-0    |DDDCCf..a.......................f..a........|

Requires ``device.energy.keep_log = True`` before the run (the scenarios
expose ``keep_energy_log=True`` for this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.device import Smartphone
from repro.energy.model import EnergyPhase

#: Phase → (glyph, precedence). Higher precedence wins a shared bucket.
PHASE_GLYPHS: Dict[EnergyPhase, Tuple[str, int]] = {
    EnergyPhase.CELLULAR_SETUP: ("S", 9),
    EnergyPhase.CELLULAR_TX: ("T", 8),
    EnergyPhase.D2D_FORWARD: ("f", 7),
    EnergyPhase.D2D_RECEIVE: ("r", 7),
    EnergyPhase.D2D_DISCOVERY: ("D", 6),
    EnergyPhase.D2D_CONNECTION: ("C", 6),
    EnergyPhase.D2D_ACK: ("a", 5),
    EnergyPhase.CELLULAR_TAIL: ("~", 4),
    EnergyPhase.IDLE: (".", 1),
    EnergyPhase.OTHER: ("?", 1),
}

LEGEND = (
    "S=RRC setup  T=cellular tx  ~=tail  D=discovery  C=connect  "
    "f=d2d send  r=d2d recv  a=ack  .=idle"
)


def render_lane(
    log: Sequence[Tuple[float, EnergyPhase, float]],
    horizon_s: float,
    width: int = 60,
) -> str:
    """One device's lane from its energy log."""
    if horizon_s <= 0:
        raise ValueError(f"horizon must be positive, got {horizon_s}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    cells: List[Tuple[str, int]] = [(".", 0)] * width
    for time_s, phase, __ in log:
        if not 0.0 <= time_s <= horizon_s:
            continue
        index = min(width - 1, int(time_s / horizon_s * width))
        glyph, precedence = PHASE_GLYPHS.get(phase, ("?", 1))
        if precedence > cells[index][1]:
            cells[index] = (glyph, precedence)
    return "".join(glyph for glyph, __ in cells)


def render_timeline(
    devices: Iterable[Smartphone],
    horizon_s: float,
    width: int = 60,
    include_legend: bool = True,
) -> str:
    """Multi-lane timeline for a set of devices (sorted by id)."""
    ordered = sorted(devices, key=lambda d: d.device_id)
    if not ordered:
        return LEGEND if include_legend else ""
    name_width = max(len(d.device_id) for d in ordered)
    lines: List[str] = []
    for device in ordered:
        lane = render_lane(device.energy.log(), horizon_s, width)
        lines.append(f"{device.device_id.ljust(name_width)} |{lane}|")
    if include_legend:
        lines.append(LEGEND)
    return "\n".join(lines)


def activity_summary(
    device: Smartphone, horizon_s: float, buckets: int = 6
) -> List[Tuple[float, float]]:
    """(bucket start, µAh in bucket) — coarse energy-over-time series."""
    if buckets <= 0:
        raise ValueError(f"buckets must be positive, got {buckets}")
    totals = [0.0] * buckets
    for time_s, __, uah in device.energy.log():
        if 0.0 <= time_s <= horizon_s:
            index = min(buckets - 1, int(time_s / horizon_s * buckets))
            totals[index] += uah
    bucket_span = horizon_s / buckets
    return [(i * bucket_span, totals[i]) for i in range(buckets)]
