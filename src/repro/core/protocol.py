"""On-the-air protocol between UE and relay.

Three message types flow over an established D2D connection:

- :class:`BeatTransfer` (UE → relay): one heartbeat to be forwarded.
- :class:`DeliveryAck` (relay → UE): the aggregated uplink carrying the
  listed beats reached the network — the paper's feedback mechanism
  ("Once the matched relay transmit[s] the collected heartbeat messages
  successfully, the proposed framework will notify the connected UE").
- :class:`RejectNotice` (relay → UE): the relay refused a beat (capacity
  reached, or collection closed for this period) and the UE should fall
  back to cellular immediately instead of waiting for an ack that will
  never come.

The forwarded data stays opaque to the relay (the paper's security
argument: beats are already end-to-end encrypted by the IM protocol); the
relay only reads the envelope fields it needs for scheduling.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.workload.messages import PeriodicMessage

#: Framing overhead added to each D2D transfer (envelope + integrity tag).
D2D_HEADER_BYTES = 24


@dataclasses.dataclass(frozen=True)
class BeatTransfer:
    """UE → relay: forward this heartbeat."""

    message: PeriodicMessage
    sent_at_s: float

    @property
    def wire_bytes(self) -> int:
        """Bytes on the D2D link including framing."""
        return self.message.size_bytes + D2D_HEADER_BYTES


@dataclasses.dataclass(frozen=True)
class DeliveryAck:
    """Relay → UE: these beats reached the network at ``delivered_at_s``."""

    beat_seqs: Tuple[int, ...]
    delivered_at_s: float

    @property
    def wire_bytes(self) -> int:
        return D2D_HEADER_BYTES + 4 * len(self.beat_seqs)


@dataclasses.dataclass(frozen=True)
class RejectNotice:
    """Relay → UE: beat refused; reason is advisory."""

    beat_seq: int
    reason: str

    @property
    def wire_bytes(self) -> int:
        return D2D_HEADER_BYTES
