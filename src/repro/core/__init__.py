"""The paper's contribution: the D2D heartbeat relaying framework.

Components mirror the prototype architecture of the paper's Fig. 2 —
Message Monitor, D2D Detector, Message Scheduler — plus the relay/UE role
agents, the matching and mode-selection policies, the feedback/fallback
protocol, and the incentive ledger.
"""

from repro.core.protocol import BeatTransfer, DeliveryAck, RejectNotice, D2D_HEADER_BYTES
from repro.core.scheduler import CollectedBeat, MessageScheduler, SchedulerConfig
from repro.core.matching import MatchConfig, RelayMatcher, RelayCandidate
from repro.core.modes import TransmissionMode, d2d_session_beneficial, breakeven_distance_m
from repro.core.monitor import MessageMonitor
from repro.core.detector import D2DDetector
from repro.core.feedback import FeedbackTracker, PendingForward
from repro.core.incentives import RewardPolicy, RewardLedger
from repro.core.security import IntegrityError, SealedBeat, SecureChannel, ServerKeyRing
from repro.core.operator import (
    Participant,
    coverage,
    greedy_relay_selection,
    proximity_graph,
    random_relay_selection,
)
from repro.core.adaptive import AdaptiveCapacityConfig, AdaptiveCapacityPolicy
from repro.core.dashboard import RelayDashboard, RelayDashboardSnapshot
from repro.core.relay import RelayAgent
from repro.core.ue import UEAgent
from repro.core.framework import FrameworkConfig, HeartbeatRelayFramework

__all__ = [
    "BeatTransfer",
    "DeliveryAck",
    "RejectNotice",
    "D2D_HEADER_BYTES",
    "CollectedBeat",
    "MessageScheduler",
    "SchedulerConfig",
    "MatchConfig",
    "RelayMatcher",
    "RelayCandidate",
    "TransmissionMode",
    "d2d_session_beneficial",
    "breakeven_distance_m",
    "MessageMonitor",
    "D2DDetector",
    "FeedbackTracker",
    "PendingForward",
    "RewardPolicy",
    "RewardLedger",
    "IntegrityError",
    "SealedBeat",
    "SecureChannel",
    "ServerKeyRing",
    "Participant",
    "coverage",
    "greedy_relay_selection",
    "proximity_graph",
    "random_relay_selection",
    "AdaptiveCapacityConfig",
    "AdaptiveCapacityPolicy",
    "RelayDashboard",
    "RelayDashboardSnapshot",
    "RelayAgent",
    "UEAgent",
    "FrameworkConfig",
    "HeartbeatRelayFramework",
]
