"""Degraded-mode cellular sender: retry, backoff, reattach, buffer.

The paper treats the cellular uplink as the always-available fallback
when D2D forwarding fails. Once the RAN itself is a fault domain
(:class:`repro.cellular.basestation.RanState`), every cellular send needs
a survival protocol. :class:`CellularFallbackSender` wraps
``device.modem.send`` with exactly that:

- **Bounded retry with exponential backoff + jitter** for transient
  rejections (brown-out congestion, injected RRC rejects). The
  *pre-jitter* base delays are strictly non-decreasing within one retry
  episode — the monotonicity invariant the auditor checks — and jitter
  is a bounded multiplicative perturbation drawn lazily from a private
  seeded stream, so healthy runs consume zero draws and stay
  byte-identical.
- **An attach/reattach state machine** for hard outages: on a
  ``"ran-down"`` rejection the sender detaches, buffers the beat, and
  probes the cell's broadcast channel on its own exponential-backoff
  schedule until the cell accepts signaling again.
- **A bounded store-and-forward buffer** with explicit drop accounting:
  every heartbeat that cannot be sent is either buffered, or dropped
  with a recorded cause (``"buffer-overflow"``, ``"stale"``,
  ``"retries-exhausted"``). Nothing is lost silently — the new
  delivery-safety contract for a dead RAN.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, List, Optional

from repro.workload.messages import PeriodicMessage

#: Drop causes the sender can record.
DROP_BUFFER_OVERFLOW = "buffer-overflow"
DROP_STALE = "stale"
DROP_RETRIES_EXHAUSTED = "retries-exhausted"


class AttachState(str, enum.Enum):
    """Sender's view of its attachment to the serving cell."""

    ATTACHED = "attached"
    DETACHED = "detached"


@dataclasses.dataclass(frozen=True)
class FallbackConfig:
    """Tuning for the degraded-mode protocol."""

    #: First retry delay after a transient rejection.
    base_backoff_s: float = 2.0
    #: Multiplier between consecutive retry delays.
    backoff_factor: float = 2.0
    #: Ceiling on any backoff or probe delay (pre-jitter).
    max_backoff_s: float = 60.0
    #: Jitter bound as a fraction of the base delay (multiplicative,
    #: symmetric: actual = base * (1 ± jitter_fraction)).
    jitter_fraction: float = 0.1
    #: Send attempts per beat before dropping with "retries-exhausted".
    max_attempts: int = 6
    #: Store-and-forward buffer capacity (beats).
    buffer_capacity: int = 64
    #: First reattach probe delay after detaching.
    reattach_base_s: float = 5.0
    #: Buffered beats older than deadline + grace drop as "stale" at
    #: drain time instead of being sent pointlessly late.
    stale_grace_s: float = 600.0

    def __post_init__(self) -> None:
        if self.base_backoff_s <= 0 or self.reattach_base_s <= 0:
            raise ValueError(f"backoff bases must be positive: {self}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1: {self}")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError(f"max_backoff_s below base_backoff_s: {self}")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError(f"jitter_fraction must be in [0, 1): {self}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self}")
        if self.buffer_capacity < 1:
            raise ValueError(f"buffer_capacity must be >= 1: {self}")
        if self.stale_grace_s < 0:
            raise ValueError(f"stale_grace_s must be >= 0: {self}")


DEFAULT_FALLBACK_CONFIG = FallbackConfig()


@dataclasses.dataclass(frozen=True)
class DropRecord:
    """One accounted heartbeat drop."""

    seq: int
    app: str
    origin: str
    cause: str
    time_s: float


@dataclasses.dataclass
class ReattachEpisode:
    """One detach → reattach cycle (open while ``reattached_at_s`` is None)."""

    detached_at_s: float
    reattached_at_s: Optional[float] = None


class CellularFallbackSender:
    """Per-device degraded-mode wrapper around ``modem.send``.

    On a healthy RAN this is a zero-overhead passthrough: no RNG draws,
    no extra events, identical modem calls — so baselines replay
    byte-identically whether or not the fault domain exists.
    """

    def __init__(self, device, config: FallbackConfig = DEFAULT_FALLBACK_CONFIG) -> None:
        self.device = device
        self.sim = device.sim
        self.config = config
        self.state = AttachState.ATTACHED
        self._buffer: List[PeriodicMessage] = []
        #: seq → beat the sender still owns: a retry timer outstanding, or
        #: admitted to the modem but not yet confirmed delivered. A beat in
        #: here is accounted (in-flight), never silently lost at the horizon.
        self._outstanding: Dict[int, PeriodicMessage] = {}
        self._probe_attempt = 0
        self._rng = None  # lazily created: baselines must not touch it
        self.episodes: List[ReattachEpisode] = []
        self.dropped: List[DropRecord] = []
        # auditor hooks
        self.on_drop: Optional[Callable[[PeriodicMessage, str], None]] = None
        #: (kind, episode_key, base_delay_s, actual_delay_s); kind is
        #: "retry" (key: beat seq) or "probe" (key: detach episode index).
        self.on_backoff: Optional[Callable[[str, int, float, float], None]] = None
        #: fired when a backoff episode resets (send admitted / reattach).
        self.on_backoff_reset: Optional[Callable[[str, int], None]] = None
        # statistics
        self.sends_ok = 0
        self.rejections = 0
        self.retries = 0
        self.detaches = 0
        self.reattaches = 0
        self.buffered_peak = 0
        self.dropped_stale = 0
        self.dropped_overflow = 0
        self.dropped_retries = 0

    # ------------------------------------------------------------------
    @property
    def buffered_count(self) -> int:
        """Beats currently held in the store-and-forward buffer."""
        return len(self._buffer)

    def buffered_seqs(self) -> List[int]:
        return [m.seq for m in self._buffer]

    def pending_seqs(self) -> List[int]:
        """Every beat the sender still owns: buffered, retrying, in flight."""
        return sorted({m.seq for m in self._buffer} | set(self._outstanding))

    @property
    def attached(self) -> bool:
        return self.state is AttachState.ATTACHED

    # ------------------------------------------------------------------
    def send(self, message: PeriodicMessage) -> None:
        """Send one beat over cellular, surviving a degraded RAN."""
        if not self.device.alive:
            return
        if self.state is AttachState.DETACHED:
            self._buffer_beat(message)
            return
        self._attempt(message, 1)

    # ------------------------------------------------------------------
    def _jitter(self) -> float:
        if self.config.jitter_fraction == 0.0:
            return 0.0
        if self._rng is None:
            self._rng = self.sim.rng.get(
                f"cellular-fallback:{self.device.device_id}"
            )
        return self._rng.uniform(
            -self.config.jitter_fraction, self.config.jitter_fraction
        )

    def _backoff_delay(self, kind: str, key: int, base_s: float, attempt: int) -> float:
        base = min(
            base_s * self.config.backoff_factor ** max(0, attempt - 1),
            self.config.max_backoff_s,
        )
        actual = base * (1.0 + self._jitter())
        if self.on_backoff is not None:
            self.on_backoff(kind, key, base, actual)
        return actual

    def _reset_backoff(self, kind: str, key: int) -> None:
        if self.on_backoff_reset is not None:
            self.on_backoff_reset(kind, key)

    # ------------------------------------------------------------------
    def _attempt(self, message: PeriodicMessage, attempt: int) -> None:
        if not self.device.alive:
            return
        if self.state is AttachState.DETACHED:
            # a retry timer can fire after an unrelated "ran-down"
            # rejection already detached us — park the beat instead
            self._buffer_beat(message)
            return
        self._outstanding[message.seq] = message
        result = self.device.modem.send(
            message.size_bytes,
            payload=message,
            on_delivered=lambda r: self._outstanding.pop(message.seq, None),
            on_rejected=lambda r: self._on_rejected(message, attempt, r),
        )
        if not result.rejected:
            self.sends_ok += 1
            if attempt > 1:
                self._reset_backoff("retry", message.seq)

    def _on_rejected(self, message: PeriodicMessage, attempt: int, result) -> None:
        self.rejections += 1
        if result.reject_cause == "ran-down":
            self._detach(message)
            return
        # transient: brown-out congestion or injected RRC reject
        if attempt >= self.config.max_attempts:
            self._drop(message, DROP_RETRIES_EXHAUSTED)
            self._reset_backoff("retry", message.seq)
            return
        self.retries += 1
        delay = self._backoff_delay(
            "retry", message.seq, self.config.base_backoff_s, attempt
        )
        self.sim.schedule(
            delay, self._attempt, message, attempt + 1, name="cellular_retry"
        )

    # ------------------------------------------------------------------
    def _detach(self, message: Optional[PeriodicMessage]) -> None:
        if message is not None:
            self._buffer_beat(message)
        if self.state is AttachState.DETACHED:
            return
        self.state = AttachState.DETACHED
        self.detaches += 1
        self.episodes.append(ReattachEpisode(detached_at_s=self.sim.now))
        self._probe_attempt = 1
        delay = self._backoff_delay(
            "probe", len(self.episodes), self.config.reattach_base_s, 1
        )
        self.sim.schedule(delay, self._probe, name="reattach_probe")

    def _probe(self) -> None:
        if self.state is not AttachState.DETACHED:
            return
        basestation = self.device.modem.basestation
        if basestation is None or basestation.accepts_signaling():
            self._reattach()
            return
        self._probe_attempt += 1
        delay = self._backoff_delay(
            "probe",
            len(self.episodes),
            self.config.reattach_base_s,
            self._probe_attempt,
        )
        self.sim.schedule(delay, self._probe, name="reattach_probe")

    def _reattach(self) -> None:
        self.state = AttachState.ATTACHED
        self.reattaches += 1
        if self.episodes and self.episodes[-1].reattached_at_s is None:
            self.episodes[-1].reattached_at_s = self.sim.now
        self._probe_attempt = 0
        self._reset_backoff("probe", len(self.episodes))
        self._drain()

    def _drain(self) -> None:
        pending, self._buffer = self._buffer, []
        now = self.sim.now
        for message in pending:
            if now > message.deadline_s + self.config.stale_grace_s:
                self._drop(message, DROP_STALE)
                continue
            if self.state is AttachState.DETACHED:
                # the cell died again mid-drain (synchronous rejection)
                self._buffer_beat(message)
                continue
            self._attempt(message, 1)

    # ------------------------------------------------------------------
    def _buffer_beat(self, message: PeriodicMessage) -> None:
        self._outstanding.pop(message.seq, None)
        if any(m.seq == message.seq for m in self._buffer):
            return
        while len(self._buffer) >= self.config.buffer_capacity:
            self._drop(self._buffer.pop(0), DROP_BUFFER_OVERFLOW)
        self._buffer.append(message)
        self.buffered_peak = max(self.buffered_peak, len(self._buffer))

    def _drop(self, message: PeriodicMessage, cause: str) -> None:
        self._outstanding.pop(message.seq, None)
        if cause == DROP_STALE:
            self.dropped_stale += 1
        elif cause == DROP_BUFFER_OVERFLOW:
            self.dropped_overflow += 1
        elif cause == DROP_RETRIES_EXHAUSTED:
            self.dropped_retries += 1
        self.dropped.append(
            DropRecord(
                seq=message.seq,
                app=message.app,
                origin=message.origin_device,
                cause=cause,
                time_s=self.sim.now,
            )
        )
        if self.on_drop is not None:
            self.on_drop(message, cause)
