"""D2D-vs-cellular mode selection.

The paper's second challenge: "improper D2D pairs might cause more energy
consumption than the traditional cellular approach", so UEs need "a
mechanism ... to determine when to use relay to forward heartbeat messages
and when to send the message directly via cellular network" (Sec. I).

The decision compares the closed-form session costs from the calibrated
energy profile: a D2D session amortizes its discovery + connection
overhead over the beats it is expected to carry, and per-beat forwarding
energy grows with distance (Fig. 12). Short expected sessions or distant
relays therefore lose to cellular — exactly the "short-duration D2D
connection" inefficiency the prejudgment mechanism avoids.
"""

from __future__ import annotations

import enum

from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile, STANDARD_HEARTBEAT_BYTES


class TransmissionMode(str, enum.Enum):
    """How a UE delivers one heartbeat."""

    D2D = "d2d"
    CELLULAR = "cellular"


def d2d_session_cost_uah(
    profile: EnergyProfile,
    expected_beats: int,
    distance_m: float,
    size_bytes: int = STANDARD_HEARTBEAT_BYTES,
    tech_tx_scale: float = 1.0,
    tech_overhead_scale: float = 1.0,
    airtime_scale: float = 1.0,
) -> float:
    """UE-side cost of a D2D session carrying ``expected_beats`` beats.

    ``airtime_scale`` rescales the *time-dependent base* of the per-beat
    forward charge (predicted transfer duration over the calibrated
    ``d2d_transfer_s``) — the same split the channel-mode billing in
    :meth:`repro.d2d.base.D2DConnection.send` applies, so a channel-aware
    prejudgment predicts the energy that run would actually bill. The
    per-byte slope is airtime-independent by construction.
    """
    if expected_beats < 0:
        raise ValueError(f"expected_beats must be non-negative: {expected_beats}")
    if airtime_scale < 0:
        raise ValueError(f"airtime_scale must be non-negative: {airtime_scale}")
    overhead = (profile.ue_discovery_uah + profile.ue_connection_uah) * tech_overhead_scale
    full = profile.ue_forward_cost_uah(size_bytes, distance_m)
    if airtime_scale == 1.0:
        per_beat = full * tech_tx_scale
    else:
        base = profile.ue_forward_cost_uah(0, distance_m)
        per_beat = (base * airtime_scale + (full - base)) * tech_tx_scale
    return overhead + expected_beats * per_beat


def cellular_session_cost_uah(
    profile: EnergyProfile,
    expected_beats: int,
    size_bytes: int = STANDARD_HEARTBEAT_BYTES,
) -> float:
    """UE-side cost of sending the same beats directly over cellular."""
    if expected_beats < 0:
        raise ValueError(f"expected_beats must be non-negative: {expected_beats}")
    return expected_beats * profile.cellular_heartbeat_uah(size_bytes)


def d2d_session_beneficial(
    profile: EnergyProfile,
    expected_beats: int,
    distance_m: float,
    size_bytes: int = STANDARD_HEARTBEAT_BYTES,
    margin: float = 1.0,
    tech_tx_scale: float = 1.0,
    tech_overhead_scale: float = 1.0,
    airtime_scale: float = 1.0,
) -> bool:
    """Whether the UE saves energy by using D2D for this session.

    ``margin`` < 1.0 demands the D2D cost beat cellular by a factor (used
    to be conservative when the session-length estimate is shaky).
    ``airtime_scale`` feeds a channel-predicted transfer duration into
    the per-beat cost (see :func:`d2d_session_cost_uah`).
    """
    if expected_beats == 0:
        return False
    d2d = d2d_session_cost_uah(
        profile, expected_beats, distance_m, size_bytes, tech_tx_scale,
        tech_overhead_scale, airtime_scale,
    )
    cellular = cellular_session_cost_uah(profile, expected_beats, size_bytes)
    return d2d <= cellular * margin


def breakeven_distance_m(
    profile: EnergyProfile = DEFAULT_PROFILE,
    expected_beats: int = 1,
    size_bytes: int = STANDARD_HEARTBEAT_BYTES,
    precision_m: float = 0.01,
    max_distance_m: float = 200.0,
) -> float:
    """Distance beyond which D2D stops saving UE energy (Fig. 12's crossover).

    Found by bisection on the monotone distance factor. Returns
    ``max_distance_m`` if D2D wins everywhere in range, ``0.0`` if it never
    wins.
    """
    if not d2d_session_beneficial(profile, expected_beats, 0.0, size_bytes):
        return 0.0
    if d2d_session_beneficial(profile, expected_beats, max_distance_m, size_bytes):
        return max_distance_m
    lo, hi = 0.0, max_distance_m
    while hi - lo > precision_m:
        mid = (lo + hi) / 2.0
        if d2d_session_beneficial(profile, expected_beats, mid, size_bytes):
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
