"""Framework wiring: builds the full system onto a set of devices.

:class:`HeartbeatRelayFramework` is the public entry point a downstream
user touches: give it devices with roles and an app profile, and it
instantiates the right agent on each (relay agents on relays, UE agents on
UEs, a plain direct-cellular sender on standalone baseline phones), shares
one incentive ledger, and exposes the per-device agents and aggregate
statistics.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

from repro.core.fallback import CellularFallbackSender
from repro.core.incentives import RewardLedger, RewardPolicy
from repro.core.matching import MatchConfig
from repro.core.monitor import MessageMonitor
from repro.core.relay import RelayAgent
from repro.core.scheduler import SchedulerConfig
from repro.core.ue import UEAgent
from repro.device import Role, Smartphone
from repro.workload.apps import AppProfile, STANDARD_APP
from repro.workload.messages import PeriodicMessage


@dataclasses.dataclass(frozen=True)
class FrameworkConfig:
    """All framework tunables in one place."""

    scheduler: SchedulerConfig = SchedulerConfig()
    #: Additional IM apps every device runs besides the framework's primary
    #: app; their beats ride the same relaying pipeline (a phone running
    #: WeChat + QQ + WhatsApp at once).
    extra_apps: tuple = ()
    matching: MatchConfig = MatchConfig()
    rewards: RewardPolicy = RewardPolicy()
    cellular_resend_guard_s: float = 4.0
    search_cooldown_s: float = 60.0
    #: Phase offset (fraction of period) for relay generators; 0 aligns the
    #: relay's period with simulation start, as in the paper's bench setup.
    relay_phase_fraction: Optional[float] = 0.0
    #: Phase offset for UE generators; ``None`` → random per device.
    ue_phase_fraction: Optional[float] = None


class _StandaloneSender:
    """Original-system behaviour: every beat goes straight to cellular."""

    def __init__(self, device: Smartphone, app: AppProfile,
                 phase_fraction: Optional[float],
                 extra_apps: tuple = ()) -> None:
        self.device = device
        self.cellular = CellularFallbackSender(device)
        self.monitor = MessageMonitor(device.sim, device.device_id, handler=self._send)
        self.monitor.register_app(app, phase_fraction=phase_fraction)
        for extra in extra_apps:
            self.monitor.register_app(extra, phase_fraction=phase_fraction)
        self.cellular_sends = 0

    def _send(self, message: PeriodicMessage) -> None:
        if not self.device.alive:
            return
        self.cellular_sends += 1
        self.cellular.send(message)

    def shutdown(self) -> None:
        self.monitor.stop()


class HeartbeatRelayFramework:
    """The deployed framework over a population of devices."""

    def __init__(
        self,
        devices: Iterable[Smartphone],
        app: AppProfile = STANDARD_APP,
        config: FrameworkConfig = FrameworkConfig(),
    ) -> None:
        self.app = app
        self.config = config
        self.rewards = RewardLedger(config.rewards)
        self.relays: Dict[str, RelayAgent] = {}
        self.ues: Dict[str, UEAgent] = {}
        self.standalones: Dict[str, _StandaloneSender] = {}
        self.devices: Dict[str, Smartphone] = {}
        for device in devices:
            self.add_device(device)

    # ------------------------------------------------------------------
    def add_device(
        self, device: Smartphone, phase_fraction: Optional[float] = None
    ) -> None:
        """Attach the role-appropriate agent to one device.

        ``phase_fraction`` overrides the config's per-role default heartbeat
        phase for this device (scenarios use it to spread UE beats evenly).
        """
        if device.device_id in self.devices:
            raise ValueError(f"duplicate device {device.device_id}")
        self.devices[device.device_id] = device
        if device.role == Role.RELAY:
            phase = (
                phase_fraction
                if phase_fraction is not None
                else self.config.relay_phase_fraction
            )
            self.relays[device.device_id] = RelayAgent(
                device,
                self.app,
                scheduler_config=self.config.scheduler,
                rewards=self.rewards,
                start_phase_fraction=phase,
                extra_apps=list(self.config.extra_apps),
            )
        elif device.role == Role.UE:
            phase = (
                phase_fraction
                if phase_fraction is not None
                else self.config.ue_phase_fraction
            )
            self.ues[device.device_id] = UEAgent(
                device,
                self.app,
                match_config=self.config.matching,
                cellular_resend_guard_s=self.config.cellular_resend_guard_s,
                search_cooldown_s=self.config.search_cooldown_s,
                start_phase_fraction=phase,
                extra_apps=list(self.config.extra_apps),
            )
        else:
            phase = (
                phase_fraction
                if phase_fraction is not None
                else self.config.ue_phase_fraction
            )
            self.standalones[device.device_id] = _StandaloneSender(
                device, self.app, phase, extra_apps=self.config.extra_apps
            )

    def shutdown(self) -> None:
        """Stop every agent (end of experiment)."""
        for agent in self.relays.values():
            agent.shutdown()
        for agent in self.ues.values():
            agent.shutdown()
        for sender in self.standalones.values():
            sender.shutdown()

    # ------------------------------------------------------------------
    # aggregate statistics
    # ------------------------------------------------------------------
    def total_beats_forwarded(self) -> int:
        return sum(agent.beats_forwarded for agent in self.ues.values())

    def total_cellular_fallbacks(self) -> int:
        return sum(agent.cellular_sends for agent in self.ues.values())

    def total_beats_collected(self) -> int:
        return sum(agent.beats_collected for agent in self.relays.values())

    def total_aggregated_uplinks(self) -> int:
        return sum(agent.aggregated_uplinks for agent in self.relays.values())

    def forwarding_ratio(self) -> float:
        """Fraction of UE beats that travelled via D2D (vs. cellular)."""
        forwarded = self.total_beats_forwarded()
        fallbacks = self.total_cellular_fallbacks()
        total = forwarded + fallbacks
        return 0.0 if total == 0 else forwarded / total

    def ue_agents(self) -> List[UEAgent]:
        return list(self.ues.values())

    def relay_agents(self) -> List[RelayAgent]:
        return list(self.relays.values())
