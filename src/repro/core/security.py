"""End-to-end sealing of forwarded heartbeats (paper Sec. III-A).

The paper's security argument for relaying: "the forwarded data has
already been encrypted via the protocols offered by IM apps before it
sends to relay ... even if the relay obtains the forwarded messages, it
would not get the encrypted data in it" (MQTT + SSL is its example).

This module models that property concretely: a :class:`SecureChannel` is
the shared secret between one device and the IM server. The UE seals each
heartbeat body before handing it to the framework; the relay only ever
sees the opaque :class:`SealedBeat` envelope (origin, seq, ciphertext,
tag); the server opens and verifies it. Tampering anywhere on the path —
including by a malicious relay — fails the integrity check.

The construction is a BLAKE2b keystream XOR for confidentiality plus an
HMAC-SHA256 tag over the envelope, with the beat's unique sequence number
as the nonce. It is a faithful *model* of the lightweight MQTT/SSL
protection the paper cites, sized for simulation — not a vetted AEAD for
production use.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
from typing import Dict, Tuple


class IntegrityError(ValueError):
    """The sealed beat failed authentication (tampered or wrong key)."""


@dataclasses.dataclass(frozen=True)
class SealedBeat:
    """The opaque envelope a relay carries. Nothing inside is readable."""

    origin_device: str
    seq: int
    ciphertext: bytes
    tag: bytes

    @property
    def wire_bytes(self) -> int:
        return len(self.ciphertext) + len(self.tag) + 16

    def tampered(self, new_ciphertext: bytes) -> "SealedBeat":
        """What a malicious relay could produce (used by tests)."""
        return dataclasses.replace(self, ciphertext=new_ciphertext)


def _keystream(key: bytes, seq: int, length: int) -> bytes:
    """Deterministic keystream: BLAKE2b(key, counter‖seq) blocks."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.blake2b(
            counter.to_bytes(8, "big") + seq.to_bytes(8, "big"),
            key=key,
            digest_size=64,
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


class SecureChannel:
    """Shared-secret channel between one device and the IM server."""

    def __init__(self, device_id: str, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("key must be at least 128 bits")
        self.device_id = device_id
        self._enc_key = hashlib.blake2b(key, person=b"enc", digest_size=32).digest()
        self._mac_key = hashlib.blake2b(key, person=b"mac", digest_size=32).digest()

    # ------------------------------------------------------------------
    def seal(self, seq: int, body: bytes) -> SealedBeat:
        """Encrypt-then-MAC one heartbeat body under this channel."""
        stream = _keystream(self._enc_key, seq, len(body))
        ciphertext = bytes(a ^ b for a, b in zip(body, stream))
        tag = self._tag(seq, ciphertext)
        return SealedBeat(
            origin_device=self.device_id, seq=seq, ciphertext=ciphertext, tag=tag
        )

    def open(self, sealed: SealedBeat) -> bytes:
        """Verify and decrypt; raises :class:`IntegrityError` on tampering."""
        if sealed.origin_device != self.device_id:
            raise IntegrityError(
                f"channel for {self.device_id!r} cannot open a beat from "
                f"{sealed.origin_device!r}"
            )
        expected = self._tag(sealed.seq, sealed.ciphertext)
        if not hmac.compare_digest(expected, sealed.tag):
            raise IntegrityError("authentication tag mismatch")
        stream = _keystream(self._enc_key, sealed.seq, len(sealed.ciphertext))
        return bytes(a ^ b for a, b in zip(sealed.ciphertext, stream))

    def _tag(self, seq: int, ciphertext: bytes) -> bytes:
        envelope = (
            self.device_id.encode("utf-8") + b"\x00" + seq.to_bytes(8, "big") + ciphertext
        )
        return hmac.new(self._mac_key, envelope, hashlib.sha256).digest()


class ServerKeyRing:
    """Server-side registry: device id → its secure channel.

    In the real system keys come from the IM account handshake; here they
    are provisioned explicitly, which is all the simulation needs.
    """

    def __init__(self) -> None:
        self._channels: Dict[str, SecureChannel] = {}

    def provision(self, device_id: str, key: bytes) -> Tuple[SecureChannel, SecureChannel]:
        """Create the device-side and server-side channel pair."""
        if device_id in self._channels:
            raise ValueError(f"device {device_id!r} already provisioned")
        device_side = SecureChannel(device_id, key)
        server_side = SecureChannel(device_id, key)
        self._channels[device_id] = server_side
        return device_side, server_side

    def open(self, sealed: SealedBeat) -> bytes:
        """Open a sealed beat with the origin device's channel."""
        channel = self._channels.get(sealed.origin_device)
        if channel is None:
            raise IntegrityError(
                f"no key provisioned for {sealed.origin_device!r}"
            )
        return channel.open(sealed)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._channels
