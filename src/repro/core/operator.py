"""Operator-side relay selection (paper Sec. I / Sec. III-A).

"Mobile operators could select relays among the participating smartphone
users to collect the heartbeat messages from nearby UE(s)." Which
participants should the operator appoint? Every appointed relay earns
rewards (costs the operator) and covers the participants within D2D
range, so the operator wants a small relay set whose coverage is large —
a dominating-set problem on the proximity graph.

This module builds that graph from participant positions and offers:

- :func:`greedy_relay_selection` — the classic greedy dominating-set
  heuristic (ln(n)-approximate), optionally weighted by battery level so
  healthy phones get appointed first;
- :func:`random_relay_selection` — the naive baseline the ablation bench
  compares against;
- :func:`coverage` — what fraction of participants can reach a relay.

Positions come from coarse operator-side localization (cell + timing
advance in practice); the selection only needs "who is near whom".
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.mobility.space import Position, distance_between


@dataclasses.dataclass(frozen=True)
class Participant:
    """One opted-in phone as the operator sees it."""

    device_id: str
    position: Position
    battery_level: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.battery_level <= 1.0:
            raise ValueError(f"battery level out of [0,1]: {self.battery_level}")


def proximity_graph(
    participants: Sequence[Participant], range_m: float
) -> Dict[str, Set[str]]:
    """Adjacency: who is within D2D ``range_m`` of whom (symmetric)."""
    if range_m <= 0:
        raise ValueError(f"range must be positive, got {range_m}")
    adjacency: Dict[str, Set[str]] = {p.device_id: set() for p in participants}
    for i, a in enumerate(participants):
        for b in participants[i + 1 :]:
            if distance_between(a.position, b.position) <= range_m:
                adjacency[a.device_id].add(b.device_id)
                adjacency[b.device_id].add(a.device_id)
    return adjacency


def coverage(
    relays: Sequence[str], adjacency: Mapping[str, Set[str]]
) -> float:
    """Fraction of participants that are a relay or adjacent to one."""
    if not adjacency:
        return 1.0
    relay_set = set(relays)
    covered = set(relay_set)
    for relay in relay_set:
        covered |= adjacency.get(relay, set())
    return len(covered & set(adjacency)) / len(adjacency)


def greedy_relay_selection(
    participants: Sequence[Participant],
    range_m: float,
    max_relays: Optional[int] = None,
    min_battery_level: float = 0.2,
    battery_weight: float = 0.25,
) -> List[str]:
    """Greedy dominating-set relay appointment.

    Repeatedly appoints the participant that newly covers the most
    uncovered peers, breaking near-ties toward higher battery (a phone
    about to die makes a poor relay — the paper's capacity discussion).
    Stops when everyone is covered or ``max_relays`` is reached.
    Participants below ``min_battery_level`` are never appointed.
    """
    adjacency = proximity_graph(participants, range_m)
    by_id = {p.device_id: p for p in participants}
    eligible = {
        p.device_id for p in participants if p.battery_level >= min_battery_level
    }
    uncovered = set(adjacency)
    relays: List[str] = []
    limit = len(participants) if max_relays is None else max_relays
    while uncovered and len(relays) < limit:
        best_id: Optional[str] = None
        best_score = -1.0
        for candidate in sorted(eligible - set(relays)):
            gain = len(
                ({candidate} | adjacency[candidate]) & uncovered
            )
            if gain == 0:
                continue
            score = gain + battery_weight * by_id[candidate].battery_level
            if score > best_score:
                best_score = score
                best_id = candidate
        if best_id is None:
            break  # remaining uncovered nodes have no eligible coverer
        relays.append(best_id)
        uncovered -= {best_id} | adjacency[best_id]
    return relays


def random_relay_selection(
    participants: Sequence[Participant],
    n_relays: int,
    rng: random.Random,
    min_battery_level: float = 0.0,
) -> List[str]:
    """The naive baseline: appoint ``n_relays`` uniformly at random."""
    if n_relays < 0:
        raise ValueError(f"n_relays must be non-negative, got {n_relays}")
    eligible = [
        p.device_id for p in participants if p.battery_level >= min_battery_level
    ]
    n = min(n_relays, len(eligible))
    return rng.sample(eligible, n)


def selection_report(
    relays: Sequence[str],
    participants: Sequence[Participant],
    range_m: float,
) -> Tuple[float, float]:
    """(coverage fraction, mean UEs per relay) for a candidate selection."""
    adjacency = proximity_graph(participants, range_m)
    cov = coverage(relays, adjacency)
    if not relays:
        return cov, 0.0
    covered_ues = set()
    for relay in relays:
        covered_ues |= adjacency.get(relay, set())
    covered_ues -= set(relays)
    return cov, len(covered_ues) / len(relays)
