"""Message Scheduler — the paper's Algorithm 1.

The relay delays its own heartbeat and sends it together with the beats
forwarded by connected UEs in **one** cellular transmission. Within one
relay heartbeat period ``[0, T]`` (paper Fig. 3) the scheduler keeps the
collected beats pending until the first binding constraint:

- ``k >= M`` — the relay's collection capacity is full;
- ``t - t_k >= T_k`` — some collected beat is about to exceed its
  expiration budget (we send a guard interval early so the cellular uplink
  itself still completes in time);
- ``t >= T`` — the relay's own next heartbeat is due, capping the delay it
  inflicts on itself.

This is Nagle's algorithm re-cut for heartbeats: buffer small messages and
flush on a deadline, except the "full buffer" condition is the relay
capacity and the deadline is the earliest per-message expiration rather
than an ACK.

After a flush the scheduler stops accepting until the next period begins
("the relay won't collect forwarded heartbeat messages from UE(s) until
the next heartbeat period").
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.workload.messages import PeriodicMessage


@dataclasses.dataclass(frozen=True)
class SchedulerConfig:
    """Tunables of Algorithm 1.

    ``capacity`` is the paper's ``M`` ("we offer a default value based on
    the experiments and the users could adjust the value"); ``uplink_guard_s``
    is subtracted from every deadline so the aggregated cellular uplink
    (RRC promotion + transmission + core latency) lands in time AND its
    delivery ack reaches the forwarding UEs before their own fallback
    timers (which fire ``cellular_resend_guard_s`` ≈ 4 s before the
    deadline) — so the guard must exceed the UE guard plus the uplink +
    ack round-trip (≈ 2.1 s).
    """

    capacity: int = 10
    uplink_guard_s: float = 7.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.uplink_guard_s < 0:
            raise ValueError(f"guard must be >= 0, got {self.uplink_guard_s}")


@dataclasses.dataclass(frozen=True)
class CollectedBeat:
    """A forwarded beat held by the scheduler, with its arrival time t_k."""

    message: PeriodicMessage
    arrived_at_s: float
    from_device: str

    def send_by_s(self, guard_s: float) -> float:
        """Latest time the aggregated send may start for this beat."""
        return self.message.deadline_s - guard_s


@dataclasses.dataclass(frozen=True)
class FlushRecord:
    """Statistics of one aggregated send."""

    time_s: float
    reason: str
    own_message: Optional[PeriodicMessage]
    collected: int
    total_bytes: int


class MessageScheduler:
    """Algorithm 1 driver for one relay.

    ``on_flush(own_message, collected_beats, reason)`` performs the actual
    aggregated uplink; the scheduler only decides *when*.
    """

    def __init__(
        self,
        sim: Simulator,
        relay_period_s: float,
        on_flush: Callable[[Optional[PeriodicMessage], List[CollectedBeat], str], None],
        config: SchedulerConfig = SchedulerConfig(),
    ) -> None:
        if relay_period_s <= 0:
            raise ValueError(f"relay period must be positive, got {relay_period_s}")
        self.sim = sim
        self.relay_period_s = relay_period_s
        self.on_flush = on_flush
        self.config = config
        self._own_message: Optional[PeriodicMessage] = None
        self._collected: List[CollectedBeat] = []
        self._period_end_s: Optional[float] = None
        self._accepting = False
        self._timer: Optional[Event] = None
        # statistics
        self.flushes: List[FlushRecord] = []
        self.beats_accepted = 0
        self.beats_rejected = 0
        #: re-arm requests coalesced into the already-armed timer (the
        #: accepted beat's send-by was not the new binding constraint)
        self.rearms_skipped = 0

    # ------------------------------------------------------------------
    # period lifecycle
    # ------------------------------------------------------------------
    def begin_period(self, own_message: PeriodicMessage) -> None:
        """The relay's own heartbeat fired: open a new collection period.

        If the previous period somehow has unsent beats (should not happen —
        the ``t >= T`` timer fires first), they are flushed defensively so no
        beat is ever silently dropped.
        """
        if self._collected or self._own_message is not None:
            self._flush("period rollover")
        self._own_message = own_message
        # The relay's own beat must also reach the server before its own
        # expiry, so the period cap is the tighter of T and the beat's
        # guarded deadline. The deadline is absolute (`created_at_s +
        # expiry_s`, like `CollectedBeat.send_by_s`): any gap between the
        # beat's creation and this call has already consumed budget, so
        # re-anchoring `expiry_s` at `sim.now` would overstate the
        # allowance and flush after the real deadline.
        self._period_end_s = min(
            self.sim.now + self.relay_period_s,
            max(self.sim.now,
                own_message.deadline_s - self.config.uplink_guard_s),
        )
        self._accepting = True
        self._arm_timer()

    @property
    def accepting(self) -> bool:
        """Whether forwarded beats are currently admitted."""
        return self._accepting

    @property
    def pending_count(self) -> int:
        """Collected beats currently held (the algorithm's ``k``)."""
        return len(self._collected)

    @property
    def capacity_remaining(self) -> int:
        """How many more beats this period can admit."""
        if not self._accepting:
            return 0
        return self.config.capacity - len(self._collected)

    # ------------------------------------------------------------------
    # Algorithm 1: "when forwarded heartbeat arrives"
    # ------------------------------------------------------------------
    def offer(self, beat: CollectedBeat) -> bool:
        """Admit a forwarded beat; returns False if it must be rejected.

        Rejection reasons: collection closed for this period, capacity
        full, or the beat is already too stale for the aggregated uplink to
        meet its deadline.
        """
        now = self.sim.now
        if not self._accepting:
            self.beats_rejected += 1
            return False
        if len(self._collected) >= self.config.capacity:
            # k == M: the algorithm sends now; the arriving beat that found
            # the buffer full is rejected (the UE falls back).
            self.beats_rejected += 1
            self._flush("capacity")
            return False
        if beat.send_by_s(self.config.uplink_guard_s) < now:
            self.beats_rejected += 1
            return False
        self._collected.append(beat)
        self.beats_accepted += 1
        if len(self._collected) >= self.config.capacity:
            self._flush("capacity")
        else:
            self._arm_timer()
        return True

    def flush_now(self, reason: str = "forced") -> None:
        """Externally force the aggregated send (e.g. relay shutting down)."""
        if self._own_message is not None or self._collected:
            self._flush(reason)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _next_deadline(self) -> Optional[float]:
        """Earliest binding time: min(period end, per-beat send-by times)."""
        candidates: List[float] = []
        if self._period_end_s is not None:
            candidates.append(self._period_end_s)
        guard = self.config.uplink_guard_s
        candidates.extend(b.send_by_s(guard) for b in self._collected)
        return min(candidates) if candidates else None

    def _arm_timer(self) -> None:
        deadline = self._next_deadline()
        if deadline is None:
            self.sim.cancel(self._timer)
            self._timer = None
            return
        fire_at = max(self.sim.now, deadline)
        timer = self._timer
        if timer is not None and not timer.cancelled and timer.time == fire_at:
            # Same binding deadline → the armed wakeup already fires at the
            # right instant. Keeping it (instead of cancel + re-push) spares
            # the event kernel one dead event per collected beat; the kept
            # event's earlier sequence number is irrelevant because the
            # flush callback is identical either way.
            self.rearms_skipped += 1
            return
        self.sim.cancel(timer)
        self._timer = self.sim.schedule(
            fire_at - self.sim.now, self._on_timer, name="scheduler_flush"
        )

    def _on_timer(self) -> None:
        self._timer = None
        if self._own_message is None and not self._collected:
            return
        now = self.sim.now
        guard = self.config.uplink_guard_s
        beat_bound = any(b.send_by_s(guard) <= now for b in self._collected)
        reason = "expiration" if beat_bound else "period"
        self._flush(reason)

    def _flush(self, reason: str) -> None:
        self.sim.cancel(self._timer)
        self._timer = None
        own, collected = self._own_message, self._collected
        self._own_message = None
        self._collected = []
        self._accepting = False
        total_bytes = sum(b.message.size_bytes for b in collected)
        if own is not None:
            total_bytes += own.size_bytes
        self.flushes.append(
            FlushRecord(
                time_s=self.sim.now,
                reason=reason,
                own_message=own,
                collected=len(collected),
                total_bytes=total_bytes,
            )
        )
        self.on_flush(own, collected, reason)
