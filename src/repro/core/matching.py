"""Relay matching and the prejudgment mechanism (paper Sec. III-C).

"In the D2D discovery phase, we attempt to make a prejudgment before
establishing D2D connection, which aims to reduce the chances of
short-duration D2D connection. ... we set two parameters, i.e., distance
between the UE and the relay involved, [and] capacity of the relay. ...
the proposed system tries to match the available relay with the shortest
distance."

The matcher therefore:

1. keeps only peers advertising the relay role with capacity remaining;
2. estimates pair distance from discovery RSSI;
3. predicts the session duration from distance and relative speed (time
   until the pair drifts out of range);
4. runs the energy prejudgment: the predicted beats carried during that
   session must make D2D cheaper than cellular for the UE;
5. ranks survivors by distance (shortest first) and returns the best.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

from repro.core.modes import d2d_session_beneficial
from repro.d2d.base import D2DTechnology, PeerInfo
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile


@dataclasses.dataclass(frozen=True)
class MatchConfig:
    """Matching policy knobs."""

    #: Never pair beyond this distance even if technically in range —
    #: distant pairs burn TX energy (Fig. 12) and break quickly.
    max_pair_distance_m: float = 20.0
    #: Energy margin for the prejudgment (< 1.0 is conservative).
    energy_margin: float = 1.0
    #: Assumed *net* relative drift (m/s) when velocity data is
    #: unavailable. Pedestrians in a crowd random-walk, so sustained
    #: separation is far slower than instantaneous walking speed.
    default_relative_speed_m_per_s: float = 0.1
    #: Cap on the predicted session length (battery/behaviour churn makes
    #: longer predictions meaningless).
    max_predicted_session_s: float = 3600.0
    #: Disable prejudgment entirely (ablation A2).
    prejudgment_enabled: bool = True
    #: Break distance near-ties toward the relay with the higher advertised
    #: GO intent (= the emptier collection buffer) — the load-balancing
    #: effect of Sec. IV-C's decaying groupOwnerIntend.
    prefer_fresh_relays: bool = True
    #: Distances within this of each other count as a near-tie.
    distance_tie_m: float = 1.0


@dataclasses.dataclass(frozen=True)
class RelayCandidate:
    """A relay that survived filtering, with its prejudgment inputs."""

    peer: PeerInfo
    distance_m: float
    capacity_remaining: int
    predicted_session_s: float
    predicted_beats: int


class RelayMatcher:
    """Ranks discovered peers and applies the prejudgment."""

    def __init__(
        self,
        technology: D2DTechnology,
        profile: EnergyProfile = DEFAULT_PROFILE,
        config: MatchConfig = MatchConfig(),
    ) -> None:
        self.technology = technology
        self.profile = profile
        self.config = config
        # statistics
        self.candidates_seen = 0
        self.rejected_role = 0
        self.rejected_capacity = 0
        self.rejected_distance = 0
        self.rejected_prejudgment = 0

    # ------------------------------------------------------------------
    def predict_session_s(
        self, distance_m: float, relative_speed_m_per_s: Optional[float] = None
    ) -> float:
        """Predicted time until the pair drifts out of usable range."""
        speed = (
            self.config.default_relative_speed_m_per_s
            if relative_speed_m_per_s is None
            else max(relative_speed_m_per_s, 0.0)
        )
        usable_range = min(
            self.technology.max_range_m, self.config.max_pair_distance_m * 2.0
        )
        if speed <= 1e-9:
            return self.config.max_predicted_session_s
        remaining = max(0.0, usable_range - distance_m)
        return min(remaining / speed, self.config.max_predicted_session_s)

    def evaluate(
        self,
        peer: PeerInfo,
        beat_period_s: float,
        beat_bytes: int,
        relative_speed_m_per_s: Optional[float] = None,
    ) -> Optional[RelayCandidate]:
        """Apply all filters to one peer; ``None`` if it must be skipped."""
        self.candidates_seen += 1
        advertisement = peer.advertisement
        if advertisement.get("role") != "relay":
            self.rejected_role += 1
            return None
        capacity = int(advertisement.get("capacity_remaining", 0))
        if capacity <= 0:
            self.rejected_capacity += 1
            return None
        distance = peer.estimated_distance_m
        if distance > self.config.max_pair_distance_m:
            self.rejected_distance += 1
            return None
        session_s = self.predict_session_s(distance, relative_speed_m_per_s)
        predicted_beats = min(capacity, max(0, int(session_s / beat_period_s)))
        if self.config.prejudgment_enabled:
            if predicted_beats == 0 or not d2d_session_beneficial(
                self.profile,
                predicted_beats,
                distance,
                beat_bytes,
                margin=self.config.energy_margin,
                tech_tx_scale=self.technology.tx_scale,
                tech_overhead_scale=(
                    self.technology.discovery_scale + self.technology.connection_scale
                )
                / 2.0,
            ):
                self.rejected_prejudgment += 1
                return None
        return RelayCandidate(
            peer=peer,
            distance_m=distance,
            capacity_remaining=capacity,
            predicted_session_s=session_s,
            predicted_beats=max(predicted_beats, 1),
        )

    def select(
        self,
        peers: Sequence[PeerInfo],
        beat_period_s: float,
        beat_bytes: int,
        relative_speed_m_per_s: Optional[float] = None,
    ) -> Optional[RelayCandidate]:
        """Best relay among ``peers``: shortest distance, with near-ties
        broken toward the freshest (highest GO intent) relay, or ``None``.
        """
        candidates: List[RelayCandidate] = []
        for peer in peers:
            candidate = self.evaluate(
                peer, beat_period_s, beat_bytes, relative_speed_m_per_s
            )
            if candidate is not None:
                candidates.append(candidate)
        if not candidates:
            return None
        if self.config.prefer_fresh_relays:
            tie = self.config.distance_tie_m

            def key(candidate: RelayCandidate):
                bucket = round(candidate.distance_m / tie) if tie > 0 else (
                    candidate.distance_m
                )
                intent = int(candidate.peer.advertisement.get("go_intent", 0))
                return (bucket, -intent, candidate.distance_m,
                        candidate.peer.device_id)
        else:
            def key(candidate: RelayCandidate):
                return (candidate.distance_m, candidate.peer.device_id)

        candidates.sort(key=key)
        return candidates[0]


def relative_speed(
    velocity_a: Tuple[float, float], velocity_b: Tuple[float, float]
) -> float:
    """Magnitude of the relative velocity between two devices (m/s)."""
    return math.hypot(velocity_a[0] - velocity_b[0], velocity_a[1] - velocity_b[1])
