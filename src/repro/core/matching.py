"""Relay matching and the prejudgment mechanism (paper Sec. III-C).

"In the D2D discovery phase, we attempt to make a prejudgment before
establishing D2D connection, which aims to reduce the chances of
short-duration D2D connection. ... we set two parameters, i.e., distance
between the UE and the relay involved, [and] capacity of the relay. ...
the proposed system tries to match the available relay with the shortest
distance."

The matcher therefore:

1. keeps only peers advertising the relay role with capacity remaining;
2. estimates pair distance from discovery RSSI;
3. predicts the session duration from distance and relative speed — the
   true UE↔candidate relative speed when velocities are wired through
   (a co-moving pair drifts apart slowly no matter how fast both walk);
4. runs the energy prejudgment: the predicted beats carried during that
   session must make D2D cheaper than cellular for the UE — with the
   per-beat forward cost derived from the channel-predicted airtime
   when a channel model is attached and a channel-aware policy is on;
5. ranks survivors by the configured ``selection_policy`` and returns
   the best:

   - ``"distance"`` — shortest RSSI-estimated distance (the paper's
     rule); candidates within ``distance_tie_m`` of the minimum count
     as tied and the tie breaks toward the highest advertised GO intent.
   - ``"rate"`` — highest channel-predicted rate, then distance.
   - ``"hybrid"`` — candidates within ``rate_tie_fraction`` of the best
     predicted rate form the head group; the shortest distance inside
     it wins (distance near-ties still break by GO intent).

   ``rate``/``hybrid`` silently degrade to ``distance`` when no channel
   model is attached (fixed-cost mode has no per-link rates to rank by).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

from repro.core.modes import d2d_session_beneficial
from repro.d2d.base import D2DMedium, D2DTechnology, PeerInfo
from repro.energy.profiles import DEFAULT_PROFILE, EnergyProfile
from repro.mobility.space import Position

#: The ``MatchConfig.selection_policy`` alphabet.
SELECTION_POLICIES = ("distance", "rate", "hybrid")


@dataclasses.dataclass(frozen=True)
class MatchConfig:
    """Matching policy knobs."""

    #: Never pair beyond this distance even if technically in range —
    #: distant pairs burn TX energy (Fig. 12) and break quickly.
    max_pair_distance_m: float = 20.0
    #: Energy margin for the prejudgment (< 1.0 is conservative).
    energy_margin: float = 1.0
    #: Assumed *net* relative drift (m/s) when velocity data is
    #: unavailable. Pedestrians in a crowd random-walk, so sustained
    #: separation is far slower than instantaneous walking speed.
    default_relative_speed_m_per_s: float = 0.1
    #: Cap on the predicted session length (battery/behaviour churn makes
    #: longer predictions meaningless).
    max_predicted_session_s: float = 3600.0
    #: Disable prejudgment entirely (ablation A2).
    prejudgment_enabled: bool = True
    #: Break distance near-ties toward the relay with the higher advertised
    #: GO intent (= the emptier collection buffer) — the load-balancing
    #: effect of Sec. IV-C's decaying groupOwnerIntend.
    prefer_fresh_relays: bool = True
    #: Distances within this of the *minimum* distance count as a near-tie.
    distance_tie_m: float = 1.0
    #: How survivors are ranked: ``"distance"`` (the paper's shortest-
    #: distance rule), ``"rate"`` (highest channel-predicted rate) or
    #: ``"hybrid"`` (rate near-tie group, then shortest distance). The
    #: channel-aware policies also switch the prejudgment to rate-derived
    #: airtime; both need a channel model attached to the medium and
    #: degrade to ``"distance"`` without one.
    selection_policy: str = "distance"
    #: ``hybrid``: predicted rates within this fraction of the best count
    #: as tied, and distance decides inside the group.
    rate_tie_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.selection_policy not in SELECTION_POLICIES:
            raise ValueError(
                f"unknown selection_policy {self.selection_policy!r}; "
                f"known: {list(SELECTION_POLICIES)}"
            )
        if not 0.0 <= self.rate_tie_fraction < 1.0:
            raise ValueError(
                f"rate_tie_fraction must be in [0,1), got {self.rate_tie_fraction}"
            )


@dataclasses.dataclass(frozen=True)
class RelayCandidate:
    """A relay that survived filtering, with its prejudgment inputs."""

    peer: PeerInfo
    distance_m: float
    capacity_remaining: int
    predicted_session_s: float
    predicted_beats: int
    #: Channel-predicted contended rate / per-beat airtime for this link;
    #: ``None`` when no channel model informed the evaluation.
    predicted_rate_bps: Optional[float] = None
    predicted_airtime_s: Optional[float] = None


class RelayMatcher:
    """Ranks discovered peers and applies the prejudgment."""

    def __init__(
        self,
        technology: D2DTechnology,
        profile: EnergyProfile = DEFAULT_PROFILE,
        config: MatchConfig = MatchConfig(),
        medium: Optional[D2DMedium] = None,
    ) -> None:
        self.technology = technology
        self.profile = profile
        self.config = config
        #: The medium supplies per-candidate mobility (true relative
        #: speeds) and the channel handle (per-link rate estimates);
        #: without it the matcher falls back to the config's scalar
        #: defaults and distance-only ranking.
        self.medium = medium
        # statistics
        self.candidates_seen = 0
        self.rejected_role = 0
        self.rejected_capacity = 0
        self.rejected_distance = 0
        self.rejected_prejudgment = 0

    # ------------------------------------------------------------------
    @property
    def channel(self):
        """The attached channel model, or ``None`` in fixed-cost mode."""
        return self.medium.channel if self.medium is not None else None

    def _peer_endpoint(self, device_id: str):
        if self.medium is None:
            return None
        try:
            return self.medium.endpoint(device_id)
        except KeyError:
            return None

    def _relative_speed(
        self,
        peer: PeerInfo,
        relative_speed_m_per_s: Optional[float],
        own_velocity: Optional[Tuple[float, float]],
        now: Optional[float],
    ) -> Optional[float]:
        """True UE↔candidate relative speed when velocities are known.

        Falls back to the caller's scalar (legacy/standalone use), then
        to the config default inside :meth:`predict_session_s`.
        """
        if own_velocity is not None and now is not None:
            endpoint = self._peer_endpoint(peer.device_id)
            if endpoint is not None:
                return relative_speed(own_velocity, endpoint.mobility.velocity(now))
        return relative_speed_m_per_s

    def _estimate_link(
        self,
        peer: PeerInfo,
        beat_bytes: int,
        own_position: Optional[Position],
        now: Optional[float],
    ):
        """Channel prediction for this pair, or ``None`` when the policy
        is distance-only or the geometry/channel is unavailable."""
        if self.config.selection_policy == "distance":
            return None
        channel = self.channel
        if channel is None or own_position is None or now is None:
            return None
        endpoint = self._peer_endpoint(peer.device_id)
        if endpoint is None:
            return None
        return channel.estimate_link(
            own_position, endpoint.position(now), beat_bytes, now=now
        )

    # ------------------------------------------------------------------
    def predict_session_s(
        self, distance_m: float, relative_speed_m_per_s: Optional[float] = None
    ) -> float:
        """Predicted time until the pair drifts out of usable range."""
        speed = (
            self.config.default_relative_speed_m_per_s
            if relative_speed_m_per_s is None
            else max(relative_speed_m_per_s, 0.0)
        )
        usable_range = min(
            self.technology.max_range_m, self.config.max_pair_distance_m * 2.0
        )
        if speed <= 1e-9:
            return self.config.max_predicted_session_s
        remaining = max(0.0, usable_range - distance_m)
        return min(remaining / speed, self.config.max_predicted_session_s)

    def evaluate(
        self,
        peer: PeerInfo,
        beat_period_s: float,
        beat_bytes: int,
        relative_speed_m_per_s: Optional[float] = None,
        now: Optional[float] = None,
        own_position: Optional[Position] = None,
        own_velocity: Optional[Tuple[float, float]] = None,
    ) -> Optional[RelayCandidate]:
        """Apply all filters to one peer; ``None`` if it must be skipped.

        ``now``/``own_position``/``own_velocity`` are the caller's live
        kinematic context: with them the matcher computes the true
        per-candidate relative speed and (for channel-aware policies)
        queries the channel model for this link's predicted rate.
        Without them it behaves like the standalone matcher of old —
        scalar relative speed, fixed-airtime prejudgment.
        """
        self.candidates_seen += 1
        advertisement = peer.advertisement
        if advertisement.get("role") != "relay":
            self.rejected_role += 1
            return None
        capacity = int(advertisement.get("capacity_remaining", 0))
        if capacity <= 0:
            self.rejected_capacity += 1
            return None
        distance = peer.estimated_distance_m
        if distance > self.config.max_pair_distance_m:
            self.rejected_distance += 1
            return None
        speed = self._relative_speed(
            peer, relative_speed_m_per_s, own_velocity, now
        )
        session_s = self.predict_session_s(distance, speed)
        predicted_beats = min(capacity, max(0, int(session_s / beat_period_s)))
        estimate = self._estimate_link(peer, beat_bytes, own_position, now)
        airtime_scale = 1.0
        if estimate is not None and self.profile.d2d_transfer_s > 0:
            airtime_scale = estimate.duration_s / self.profile.d2d_transfer_s
        if self.config.prejudgment_enabled:
            if predicted_beats == 0 or not d2d_session_beneficial(
                self.profile,
                predicted_beats,
                distance,
                beat_bytes,
                margin=self.config.energy_margin,
                tech_tx_scale=self.technology.tx_scale,
                tech_overhead_scale=(
                    self.technology.discovery_scale + self.technology.connection_scale
                )
                / 2.0,
                airtime_scale=airtime_scale,
            ):
                self.rejected_prejudgment += 1
                return None
        return RelayCandidate(
            peer=peer,
            distance_m=distance,
            capacity_remaining=capacity,
            predicted_session_s=session_s,
            predicted_beats=max(predicted_beats, 1),
            predicted_rate_bps=estimate.rate_bps if estimate else None,
            predicted_airtime_s=estimate.airtime_s if estimate else None,
        )

    def select(
        self,
        peers: Sequence[PeerInfo],
        beat_period_s: float,
        beat_bytes: int,
        relative_speed_m_per_s: Optional[float] = None,
        now: Optional[float] = None,
        own_position: Optional[Position] = None,
        own_velocity: Optional[Tuple[float, float]] = None,
    ) -> Optional[RelayCandidate]:
        """Best relay among ``peers`` under the configured policy, or
        ``None`` when every peer is filtered out.
        """
        candidates: List[RelayCandidate] = []
        for peer in peers:
            candidate = self.evaluate(
                peer, beat_period_s, beat_bytes, relative_speed_m_per_s,
                now=now, own_position=own_position, own_velocity=own_velocity,
            )
            if candidate is not None:
                candidates.append(candidate)
        if not candidates:
            return None

        policy = self.config.selection_policy
        have_rates = all(c.predicted_rate_bps is not None for c in candidates)
        if policy == "rate" and have_rates:
            candidates.sort(
                key=lambda c: (-c.predicted_rate_bps, c.distance_m,
                               c.peer.device_id)
            )
            return candidates[0]
        if policy == "hybrid" and have_rates:
            # rate near-tie group first, shortest distance inside it
            best_rate = max(c.predicted_rate_bps for c in candidates)
            threshold = best_rate * (1.0 - self.config.rate_tie_fraction)
            candidates = [
                c for c in candidates if c.predicted_rate_bps >= threshold
            ]
        return self._best_by_distance(candidates)

    def _best_by_distance(
        self, candidates: List[RelayCandidate]
    ) -> RelayCandidate:
        """Shortest distance; candidates within ``distance_tie_m`` of the
        minimum are tied and the highest GO intent wins among them."""
        d_min = min(c.distance_m for c in candidates)
        if self.config.prefer_fresh_relays:
            tie = self.config.distance_tie_m

            def key(candidate: RelayCandidate):
                in_group = candidate.distance_m - d_min <= tie
                intent = (
                    int(candidate.peer.advertisement.get("go_intent", 0))
                    if in_group
                    else 0
                )
                return (not in_group, -intent, candidate.distance_m,
                        candidate.peer.device_id)
        else:
            def key(candidate: RelayCandidate):
                return (candidate.distance_m, candidate.peer.device_id)

        return min(candidates, key=key)


def relative_speed(
    velocity_a: Tuple[float, float], velocity_b: Tuple[float, float]
) -> float:
    """Magnitude of the relative velocity between two devices (m/s)."""
    return math.hypot(velocity_a[0] - velocity_b[0], velocity_a[1] - velocity_b[1])
