"""Relay owner's dashboard (the data behind the paper's Fig. 4 UI).

The prototype's interface "provides the information about the amount of
collected heartbeat messages and the reward from mobile network
operator" and lets the owner adjust participation. This module gathers
exactly that view from the live objects — a pure read-model, so a real
UI (or a test) can render it without poking framework internals.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.incentives import RewardLedger
from repro.core.relay import RelayAgent


@dataclasses.dataclass(frozen=True)
class RelayDashboardSnapshot:
    """Everything the Fig. 4 screen shows, at one instant."""

    device_id: str
    time_s: float
    advertising: bool
    resigned: bool
    connected_ues: int
    capacity: int
    capacity_remaining: int
    beats_collected_total: int
    beats_pending: int
    aggregated_uplinks: int
    credits_earned: float
    free_data_mb_earned: float
    battery_level: Optional[float]
    go_intent: int

    def summary_lines(self) -> List[str]:
        """Human-readable rendering (what the UI labels would say)."""
        battery = (
            f"{self.battery_level:.0%}" if self.battery_level is not None
            else "n/a"
        )
        status = (
            "resigned" if self.resigned
            else ("collecting" if self.advertising else "paused")
        )
        return [
            f"Relay {self.device_id} — {status}",
            f"connected UEs: {self.connected_ues}   "
            f"capacity: {self.capacity_remaining}/{self.capacity}",
            f"heartbeats collected: {self.beats_collected_total} "
            f"({self.beats_pending} pending, "
            f"{self.aggregated_uplinks} uplinks)",
            f"rewards: {self.free_data_mb_earned:.0f} MB free data, "
            f"{self.credits_earned:.2f} credits",
            f"battery: {battery}   GO intent: {self.go_intent}",
        ]


class RelayDashboard:
    """Live read-model over one relay agent (+ optional reward ledger)."""

    def __init__(
        self, agent: RelayAgent, rewards: Optional[RewardLedger] = None
    ) -> None:
        self.agent = agent
        self.rewards = rewards if rewards is not None else agent.rewards
        self.history: List[RelayDashboardSnapshot] = []

    def snapshot(self) -> RelayDashboardSnapshot:
        """Capture the current state (also appended to :attr:`history`)."""
        agent = self.agent
        device = agent.device
        account = (
            self.rewards.account(device.device_id)
            if self.rewards is not None
            else None
        )
        snap = RelayDashboardSnapshot(
            device_id=device.device_id,
            time_s=agent.sim.now,
            advertising=bool(device.d2d and device.d2d.advertising),
            resigned=agent.resigned,
            connected_ues=agent.connected_ue_count(),
            capacity=agent.scheduler.config.capacity,
            capacity_remaining=agent.scheduler.capacity_remaining,
            beats_collected_total=agent.beats_collected,
            beats_pending=agent.scheduler.pending_count,
            aggregated_uplinks=agent.aggregated_uplinks,
            credits_earned=account.credits if account else 0.0,
            free_data_mb_earned=account.free_data_mb if account else 0.0,
            battery_level=device.battery.level if device.battery else None,
            go_intent=agent.go_intent,
        )
        self.history.append(snap)
        return snap

    def collected_series(self) -> List[int]:
        """Collected-beat totals across the captured history."""
        return [snap.beats_collected_total for snap in self.history]

    def watch(self, period_s: float) -> None:
        """Auto-snapshot every ``period_s`` (drives the history)."""
        self.agent.sim.every(period_s, self.snapshot, name="dashboard")
