"""Feedback / fallback protocol — the UE side (paper Sec. III-A).

"Once the matched relay transmit[s] the collected heartbeat messages
successfully, the proposed framework will notify the connected UE through
feedback information. In case that the UE does not receive the feedback
information after a certain interval, it will send the heartbeat messages
via cellular network."

The tracker keeps every forwarded-but-unacked beat with a fallback timer
set early enough that a cellular resend still meets the beat's deadline.
Whatever kills the ack — relay battery death, D2D link break, a lost ack
frame — the beat is re-sent in time, so delivery never regresses relative
to the original system.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.workload.messages import PeriodicMessage


@dataclasses.dataclass
class PendingForward:
    """One forwarded beat awaiting its delivery ack."""

    message: PeriodicMessage
    forwarded_at_s: float
    fallback_at_s: float
    timer: Optional[Event] = None
    acked: bool = False
    fallback_fired: bool = False


class FeedbackTracker:
    """Per-UE registry of unacked forwards with fallback timers.

    ``on_fallback(message)`` must deliver the beat via cellular; it fires at
    ``deadline - cellular_resend_guard_s`` unless an ack arrives first.
    """

    def __init__(
        self,
        sim: Simulator,
        on_fallback: Callable[[PeriodicMessage], None],
        cellular_resend_guard_s: float = 4.0,
        min_wait_s: float = 1.0,
    ) -> None:
        if cellular_resend_guard_s < 0:
            raise ValueError(f"guard must be >= 0, got {cellular_resend_guard_s}")
        if min_wait_s < 0:
            raise ValueError(f"min wait must be >= 0, got {min_wait_s}")
        self.sim = sim
        self.on_fallback = on_fallback
        self.cellular_resend_guard_s = cellular_resend_guard_s
        self.min_wait_s = min_wait_s
        self._pending: Dict[int, PendingForward] = {}
        #: seqs whose fallback already fired — distinguishes a *late* ack
        #: (slow relay; the beat went out twice) from a protocol duplicate.
        self._fallback_seqs: set = set()
        # statistics
        self.forwards_tracked = 0
        self.acks_received = 0
        self.fallbacks_fired = 0
        self.duplicate_acks = 0
        self.late_acks = 0

    # ------------------------------------------------------------------
    def track(self, message: PeriodicMessage) -> PendingForward:
        """Register a just-forwarded beat and arm its fallback timer."""
        if message.seq in self._pending:
            raise ValueError(f"beat seq {message.seq} already tracked")
        now = self.sim.now
        fallback_at = max(
            now + self.min_wait_s, message.deadline_s - self.cellular_resend_guard_s
        )
        pending = PendingForward(
            message=message, forwarded_at_s=now, fallback_at_s=fallback_at
        )
        pending.timer = self.sim.schedule_at(
            fallback_at, self._fire_fallback, message.seq, name="feedback_fallback"
        )
        self._pending[message.seq] = pending
        self.forwards_tracked += 1
        return pending

    def ack(self, beat_seqs: Iterable[int]) -> int:
        """Process a delivery ack; returns how many pendings it cleared."""
        cleared = 0
        for seq in beat_seqs:
            pending = self._pending.pop(seq, None)
            if pending is None:
                if seq in self._fallback_seqs:
                    self._fallback_seqs.discard(seq)
                    self.late_acks += 1
                else:
                    self.duplicate_acks += 1
                continue
            pending.acked = True
            self.sim.cancel(pending.timer)
            pending.timer = None
            self.acks_received += 1
            cleared += 1
        return cleared

    def fail_now(self, beat_seq: int) -> bool:
        """Trigger the fallback immediately (relay sent a reject notice)."""
        pending = self._pending.get(beat_seq)
        if pending is None:
            return False
        self.sim.cancel(pending.timer)
        pending.timer = None
        self._fire_fallback(beat_seq)
        return True

    def fail_all_now(self) -> int:
        """Fallback every pending beat (D2D connection broke)."""
        count = 0
        for seq in list(self._pending):
            if self.fail_now(seq):
                count += 1
        return count

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def pending_messages(self) -> List[PeriodicMessage]:
        return [p.message for p in self._pending.values()]

    def is_pending(self, beat_seq: int) -> bool:
        return beat_seq in self._pending

    # ------------------------------------------------------------------
    def _fire_fallback(self, beat_seq: int) -> None:
        pending = self._pending.pop(beat_seq, None)
        if pending is None or pending.acked:
            return
        pending.fallback_fired = True
        pending.timer = None
        self.fallbacks_fired += 1
        self._fallback_seqs.add(beat_seq)
        self.on_fallback(pending.message)
