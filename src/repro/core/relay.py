"""Relay role agent.

A relay advertises itself over D2D, collects :class:`BeatTransfer`s from
connected UEs into the Message Scheduler (Algorithm 1), flushes them —
together with its own delayed heartbeat — in a single aggregated cellular
uplink, and acks each UE once the uplink is confirmed delivered (driving
the UE-side feedback mechanism). Collections earn rewards through the
incentive ledger, and the Wi-Fi Direct group-owner intent decays as the
collection buffer fills (Sec. IV-C).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cellular.modem import UplinkResult
from repro.core.fallback import CellularFallbackSender, FallbackConfig
from repro.core.incentives import RewardLedger
from repro.core.monitor import MessageMonitor
from repro.core.protocol import BeatTransfer, DeliveryAck, RejectNotice, D2D_HEADER_BYTES
from repro.core.scheduler import CollectedBeat, MessageScheduler, SchedulerConfig
from repro.d2d.base import D2DConnection
from repro.d2d.wifi_direct import GroupOwnerNegotiator
from repro.device import Smartphone
from repro.workload.apps import AppProfile
from repro.workload.messages import PeriodicMessage


class RelayAgent:
    """The relay side of the framework on one device."""

    def __init__(
        self,
        device: Smartphone,
        app: AppProfile,
        scheduler_config: SchedulerConfig = SchedulerConfig(),
        rewards: Optional[RewardLedger] = None,
        start_phase_fraction: Optional[float] = 0.0,
        extra_apps: Optional[List[AppProfile]] = None,
        fallback_config: Optional[FallbackConfig] = None,
    ) -> None:
        if device.d2d is None:
            raise ValueError(f"relay {device.device_id} has no D2D endpoint")
        self.device = device
        self.sim = device.sim
        self.app = app
        self.rewards = rewards
        self.cellular = CellularFallbackSender(
            device, config=fallback_config or FallbackConfig()
        )
        self.scheduler = MessageScheduler(
            self.sim,
            relay_period_s=app.heartbeat_period_s,
            on_flush=self._flush,
            config=scheduler_config,
        )
        self.negotiator = GroupOwnerNegotiator(
            is_relay=True, capacity=scheduler_config.capacity
        )
        self.monitor = MessageMonitor(
            self.sim, device.device_id, handler=self._on_own_beat
        )
        self.monitor.register_app(app, phase_fraction=start_phase_fraction)
        # Beats of secondary apps ride the same aggregated uplinks: the
        # primary app's period defines the collection window, everything
        # else is scheduled like a (self-originated) collected beat.
        for extra in extra_apps or []:
            self.monitor.register_app(extra, phase_fraction=start_phase_fraction)
        self.own_extra_beats = 0
        self.own_extra_fallbacks = 0
        #: beat seq → the UE device that forwarded it (for acks)
        self._beat_sources: Dict[int, str] = {}
        device.d2d.on_message = self._on_d2d_message
        device.d2d.on_disconnect = self._on_disconnect
        self._update_advertisement()
        device.d2d.advertising = True
        self.resigned = False
        # statistics
        self.beats_collected = 0
        self.beats_rejected = 0
        self.aggregated_uplinks = 0
        self.acks_sent = 0

    # ------------------------------------------------------------------
    @property
    def go_intent(self) -> int:
        """Current Wi-Fi Direct group-owner intent (15 when fresh)."""
        return self.negotiator.intent

    def connected_ue_count(self) -> int:
        if self.device.d2d_medium is None:
            return 0
        return len(self.device.d2d_medium.connections_of(self.device.device_id))

    def shutdown(self) -> None:
        """Flush pending beats, stop advertising and stop beating."""
        self.scheduler.flush_now("shutdown")
        self.monitor.stop()
        if self.device.d2d is not None:
            self.device.d2d.advertising = False

    def revive(self) -> None:
        """Resume volunteering after the device powered back on.

        The scheduler and beat sources were flushed/dropped at death; all
        that is needed is to refresh and re-enable the advertisement so
        UEs can re-match. No-op while dead or after :meth:`resign`.
        """
        if self.resigned or self.device.d2d is None or not self.device.alive:
            return
        self._update_advertisement()
        self.device.d2d.advertising = True

    def resign(self, grace_s: float = 10.0) -> None:
        """Stop relaying but keep living (the battery-preservation exit).

        The phone stops advertising and collecting, flushes what it holds,
        and after a grace window — long enough for in-flight delivery acks
        to reach the UEs — closes its D2D connections so UEs re-match
        elsewhere. Its OWN heartbeats continue via direct cellular: the
        owner still wants to stay online, they just stop volunteering.
        """
        if self.resigned:
            return
        self.resigned = True
        if self.device.d2d is not None:
            self.device.d2d.advertising = False
        self.scheduler.flush_now("resign")

        def close_connections() -> None:
            if self.device.d2d_medium is None:
                return
            for connection in self.device.d2d_medium.connections_of(
                self.device.device_id
            ):
                connection.close("relay resigned")

        self.sim.schedule(grace_s, close_connections, name="relay_resign")

    # ------------------------------------------------------------------
    # own heartbeat → new collection period
    # ------------------------------------------------------------------
    def _on_own_beat(self, message: PeriodicMessage) -> None:
        if not self.device.alive:
            return
        if self.resigned:
            # standalone behaviour: every own beat goes straight out
            self.cellular.send(message)
            return
        if message.app == self.app.name:
            self.scheduler.begin_period(message)
            self.negotiator.reset_period()
        else:
            # a secondary app's beat: aggregate it like a collected beat,
            # falling back to an immediate own uplink if the window is shut
            self.own_extra_beats += 1
            beat = CollectedBeat(
                message=message,
                arrived_at_s=self.sim.now,
                from_device=self.device.device_id,
            )
            if not self.scheduler.offer(beat):
                self.own_extra_fallbacks += 1
                self.cellular.send(message)
        self._update_advertisement()

    # ------------------------------------------------------------------
    # D2D inbound
    # ------------------------------------------------------------------
    def _on_d2d_message(
        self, connection: D2DConnection, sender_id: str, payload, size_bytes: int
    ) -> None:
        if not isinstance(payload, BeatTransfer):
            return  # acks/rejects are relay→UE only; ignore foreign traffic
        if not self.device.alive:
            return
        beat = CollectedBeat(
            message=payload.message,
            arrived_at_s=self.sim.now,
            from_device=sender_id,
        )
        if self.scheduler.offer(beat):
            self.beats_collected += 1
            self._beat_sources[payload.message.seq] = sender_id
            self.negotiator.note_collected()
            self._update_advertisement()
        else:
            self.beats_rejected += 1
            connection.send(
                self.device.device_id,
                RejectNotice(payload.message.seq, "not accepting").wire_bytes,
                RejectNotice(payload.message.seq, "not accepting"),
                control=True,
            )

    def _on_disconnect(self, connection: D2DConnection, reason: str) -> None:
        # Collected beats from the departed UE stay scheduled — they will be
        # delivered; only the ack will be undeliverable (the UE's fallback
        # timer covers that, at worst causing a duplicate delivery).
        pass

    # ------------------------------------------------------------------
    # aggregated uplink
    # ------------------------------------------------------------------
    def _flush(
        self,
        own: Optional[PeriodicMessage],
        collected: List[CollectedBeat],
        reason: str,
    ) -> None:
        messages: List[PeriodicMessage] = [b.message for b in collected]
        if own is not None:
            messages.insert(0, own)
        if not messages:
            return
        if not self.device.alive:
            return  # UEs' fallback timers will recover the collected beats
        total_bytes = sum(m.size_bytes for m in messages) + D2D_HEADER_BYTES
        self.aggregated_uplinks += 1
        collected_snapshot = list(collected)

        def on_delivered(result: UplinkResult) -> None:
            self._ack_sources(collected_snapshot, result.delivered_at_s)
            # rewards accrue only for OTHER devices' beats — the relay's own
            # secondary-app beats ride the uplink but earn nothing
            foreign = [
                b for b in collected_snapshot
                if b.from_device != self.device.device_id
            ]
            if self.rewards is not None and foreign:
                self.rewards.credit_collection(
                    self.sim.now, self.device.device_id, len(foreign)
                )
                # each collected beat would have been its own RRC cycle
                cycle = self.device.modem.rrc.profile.messages_per_cycle
                self.rewards.note_signaling_avoided(len(foreign) * cycle)

        def on_rejected(result: UplinkResult) -> None:
            # The RAN refused the aggregated uplink: nothing was delivered,
            # so no acks and no credits. The relay's OWN beats re-route
            # through its degraded-mode sender; foreign collected beats are
            # recovered by their source UEs' fallback timers.
            for message in messages:
                if message.origin_device == self.device.device_id:
                    self.cellular.send(message)

        self.device.modem.send(
            total_bytes,
            payload=messages,
            on_delivered=on_delivered,
            on_rejected=on_rejected,
        )
        self._update_advertisement()

    def _ack_sources(self, collected: List[CollectedBeat], delivered_at_s: float) -> None:
        """Send one DeliveryAck per source UE over its live connection."""
        if self.device.d2d_medium is None:
            return
        by_source: Dict[str, List[int]] = {}
        for beat in collected:
            by_source.setdefault(beat.from_device, []).append(beat.message.seq)
        connections = {
            conn.peer_of(self.device.device_id).device_id: conn
            for conn in self.device.d2d_medium.connections_of(self.device.device_id)
        }
        for source, seqs in by_source.items():
            for seq in seqs:
                self._beat_sources.pop(seq, None)
            connection = connections.get(source)
            if connection is None or not connection.alive:
                continue  # UE fallback timer will handle it
            ack = DeliveryAck(tuple(seqs), delivered_at_s)
            if connection.send(
                self.device.device_id, ack.wire_bytes, ack, control=True
            ):
                self.acks_sent += 1

    # ------------------------------------------------------------------
    def _update_advertisement(self) -> None:
        if self.device.d2d is None:
            return
        # Advertise buffer headroom rather than the gated capacity: between
        # a flush and the next period the scheduler is closed, but a UE
        # pairing now will be served from the next period onwards.
        headroom = max(
            0, self.scheduler.config.capacity - self.scheduler.pending_count
        )
        self.device.d2d.advertisement.update(
            {
                "role": "relay",
                "capacity_remaining": headroom,
                "period_s": self.app.heartbeat_period_s,
                "go_intent": self.negotiator.intent,
                "battery_level": (
                    self.device.battery.level if self.device.battery else 1.0
                ),
            }
        )
