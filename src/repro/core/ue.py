"""UE role agent.

The UE side of the framework on one device. For every heartbeat the
Message Monitor intercepts, the agent:

1. forwards it over the live D2D connection to its matched relay, tracking
   the ack with a fallback timer (feedback mechanism); or
2. if not connected, starts discovery → matching (with prejudgment) →
   connection, buffering the beat while the setup completes — each
   buffered beat has its own deadline timer so a stalled setup can never
   make it late; or
3. falls back to a direct cellular transmission whenever D2D cannot help
   (no relay found, prejudgment failed, relay rejected, link broke, or no
   ack arrived in time).

Delivery therefore never regresses relative to the original system; D2D is
purely an energy/signaling optimization.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.core.detector import D2DDetector
from repro.core.fallback import CellularFallbackSender, FallbackConfig
from repro.core.feedback import FeedbackTracker
from repro.core.matching import MatchConfig, RelayCandidate, RelayMatcher
from repro.core.monitor import MessageMonitor
from repro.core.protocol import BeatTransfer, DeliveryAck, RejectNotice
from repro.d2d.base import D2DConnection, PeerInfo
from repro.device import Smartphone
from repro.sim.events import Event
from repro.workload.apps import AppProfile
from repro.workload.messages import PeriodicMessage


class UEState(str, enum.Enum):
    """Connection lifecycle of the UE agent."""

    IDLE = "idle"
    SEARCHING = "searching"
    CONNECTING = "connecting"
    CONNECTED = "connected"


class UEAgent:
    """The UE side of the framework on one device."""

    def __init__(
        self,
        device: Smartphone,
        app: AppProfile,
        match_config: MatchConfig = MatchConfig(),
        cellular_resend_guard_s: float = 4.0,
        search_cooldown_s: float = 60.0,
        start_phase_fraction: Optional[float] = None,
        extra_apps: Optional[List[AppProfile]] = None,
        fallback_config: Optional[FallbackConfig] = None,
    ) -> None:
        if device.d2d is None or device.d2d_medium is None:
            raise ValueError(f"UE {device.device_id} has no D2D endpoint")
        self.device = device
        self.sim = device.sim
        self.app = app
        self.search_cooldown_s = search_cooldown_s
        self.cellular = CellularFallbackSender(
            device, config=fallback_config or FallbackConfig()
        )
        self.monitor = MessageMonitor(self.sim, device.device_id, handler=self.on_beat)
        self.monitor.register_app(app, phase_fraction=start_phase_fraction)
        # every additional app's beats flow through the same pipeline; the
        # primary app (shortest period is the sensible pick) drives the
        # matching economics
        for extra in extra_apps or []:
            self.monitor.register_app(extra, phase_fraction=start_phase_fraction)
        self.detector = D2DDetector(self.sim, device.device_id, device.d2d_medium)
        self.matcher = RelayMatcher(
            device.d2d_medium.technology, device.profile, match_config,
            medium=device.d2d_medium,
        )
        self.feedback = FeedbackTracker(
            self.sim,
            on_fallback=self._send_cellular,
            cellular_resend_guard_s=cellular_resend_guard_s,
        )
        device.d2d.on_message = self._on_d2d_message
        device.d2d.on_disconnect = self._on_disconnect
        self.state = UEState.IDLE
        self.connection: Optional[D2DConnection] = None
        self.relay_id: Optional[str] = None
        self._buffer: List[PeriodicMessage] = []
        self._buffer_timers: Dict[int, Event] = {}
        self._last_failed_search_s: Optional[float] = None
        #: relay that just disappeared — its cached advertisement is stale,
        #: don't immediately re-pair with it from the cache
        self._avoid_relay_id: Optional[str] = None
        # statistics
        self.beats_seen = 0
        self.beats_forwarded = 0
        self.cellular_sends = 0
        self.searches = 0
        self.matches = 0
        self.cache_failovers = 0

    # ------------------------------------------------------------------
    # beat entry point (Message Monitor handler)
    # ------------------------------------------------------------------
    def on_beat(self, message: PeriodicMessage) -> None:
        if not self.device.alive:
            return
        self.beats_seen += 1
        if self.state == UEState.CONNECTED:
            if self._connection_alive():
                self._forward(message)
                return
            # The link died without `on_disconnect` firing (e.g. the peer
            # vanished silently). Run the full disconnect cleanup before
            # falling back, so the dead connection, the stale relay id,
            # and any pending feedback timers can't leak into the next
            # search/connect cycle.
            self._handle_link_loss("stale-link")
        if self.state in (UEState.SEARCHING, UEState.CONNECTING):
            self._buffer_beat(message)
            return
        # IDLE: try to find a relay unless we recently failed to
        if self._search_on_cooldown():
            self._send_cellular(message)
            return
        self._buffer_beat(message)
        self._start_search()

    # ------------------------------------------------------------------
    # discovery → match → connect
    # ------------------------------------------------------------------
    def _search_on_cooldown(self) -> bool:
        if self._last_failed_search_s is None:
            return False
        return self.sim.now - self._last_failed_search_s < self.search_cooldown_s

    def _start_search(self) -> None:
        # failover fast path: a fresh-enough previous scan may already hold
        # a viable alternative relay — pairing from the cache skips the
        # discovery latency and its energy
        cached = self.detector.cached_peers()
        if cached:
            candidates = [
                peer for peer in cached if peer.device_id != self._avoid_relay_id
            ]
            choice = self._match(candidates)
            if choice is not None:
                self.cache_failovers += 1
                self._connect_to(choice)
                return
        self.state = UEState.SEARCHING
        self.searches += 1
        if not self.detector.discover(self._on_peers):
            # A scan is already in flight (e.g. a periodic rescan): ride
            # its result instead of dangling in SEARCHING with no callback
            # registered — that left the UE stuck forever, every later
            # beat limping out via its deadline timer.
            if not self.detector.join_scan(self._on_peers):
                self._search_failed()

    def _match(self, peers: List[PeerInfo]) -> Optional[RelayCandidate]:
        """Run the matcher with this UE's live kinematic context.

        Passing the UE's own velocity (not its scalar speed — that made
        the session prediction reject co-moving pairs) lets the matcher
        compute the true relative speed per candidate; position and time
        let channel-aware policies query per-link rate estimates.
        """
        now = self.sim.now
        return self.matcher.select(
            peers,
            beat_period_s=self.app.heartbeat_period_s,
            beat_bytes=self.app.heartbeat_bytes,
            now=now,
            own_position=self.device.mobility.position(now),
            own_velocity=self.device.mobility.velocity(now),
        )

    def _on_peers(self, peers: List[PeerInfo]) -> None:
        if not self.device.alive:
            return
        candidate = self._match(peers)
        if candidate is None:
            self._search_failed()
            return
        self._connect_to(candidate)

    def _connect_to(self, candidate: RelayCandidate) -> None:
        self.state = UEState.CONNECTING
        assert self.device.d2d_medium is not None

        def on_connected(connection: Optional[D2DConnection]) -> None:
            if not self.device.alive:
                return
            if connection is None:
                self._search_failed()
                return
            self.state = UEState.CONNECTED
            self.connection = connection
            self.relay_id = candidate.peer.device_id
            self.matches += 1
            self._last_failed_search_s = None
            self._avoid_relay_id = None
            self._drain_buffer()

        self.device.d2d_medium.connect(
            self.device.device_id, candidate.peer.device_id, on_connected
        )

    def _search_failed(self) -> None:
        self.state = UEState.IDLE
        self._last_failed_search_s = self.sim.now
        for message in self._take_buffer():
            self._send_cellular(message)

    # ------------------------------------------------------------------
    # buffering while setup is in flight
    # ------------------------------------------------------------------
    def _buffer_beat(self, message: PeriodicMessage) -> None:
        self._buffer.append(message)
        deadline = max(
            self.sim.now,
            message.deadline_s - self.feedback.cellular_resend_guard_s,
        )
        self._buffer_timers[message.seq] = self.sim.schedule_at(
            deadline, self._buffer_deadline, message.seq, name="ue_buffer_deadline"
        )

    def _buffer_deadline(self, seq: int) -> None:
        """A buffered beat ran out of slack before setup completed."""
        self._buffer_timers.pop(seq, None)
        for i, message in enumerate(self._buffer):
            if message.seq == seq:
                del self._buffer[i]
                self._send_cellular(message)
                return

    def _take_buffer(self) -> List[PeriodicMessage]:
        messages, self._buffer = self._buffer, []
        for timer in self._buffer_timers.values():
            self.sim.cancel(timer)
        self._buffer_timers.clear()
        return messages

    def _drain_buffer(self) -> None:
        for message in self._take_buffer():
            self._forward(message)

    # ------------------------------------------------------------------
    # forwarding and fallback
    # ------------------------------------------------------------------
    def _connection_alive(self) -> bool:
        return self.connection is not None and self.connection.alive

    def _forward(self, message: PeriodicMessage) -> None:
        if not self._connection_alive():
            # The link died mid-drain: an earlier send in this same batch
            # can break the connection synchronously (gate down, peer
            # gone), which runs the full link-loss cleanup. Later beats in
            # the batch must go out directly instead of crashing here.
            self._send_cellular(message)
            return
        assert self.connection is not None
        transfer = BeatTransfer(message=message, sent_at_s=self.sim.now)
        self.feedback.track(message)
        self.beats_forwarded += 1

        def on_result(delivered: bool) -> None:
            if not delivered and self.feedback.is_pending(message.seq):
                self.feedback.fail_now(message.seq)

        self.connection.send(
            self.device.device_id, transfer.wire_bytes, transfer, on_result=on_result
        )

    def _send_cellular(self, message: PeriodicMessage) -> None:
        if not self.device.alive:
            return
        self.cellular_sends += 1
        self.cellular.send(message)

    # ------------------------------------------------------------------
    # D2D inbound (acks / rejects) and disconnects
    # ------------------------------------------------------------------
    def _on_d2d_message(
        self, connection: D2DConnection, sender_id: str, payload, size_bytes: int
    ) -> None:
        if isinstance(payload, DeliveryAck):
            self.feedback.ack(payload.beat_seqs)
        elif isinstance(payload, RejectNotice):
            self.feedback.fail_now(payload.beat_seq)

    def _on_disconnect(self, connection: D2DConnection, reason: str) -> None:
        if connection is not self.connection:
            return
        self._handle_link_loss(reason)

    def _handle_link_loss(self, reason: str) -> None:
        """Tear down all state tied to the current (dead) connection."""
        del reason  # kept for symmetry with the D2D callback signature
        self._avoid_relay_id = self.relay_id
        self.connection = None
        self.relay_id = None
        self.state = UEState.IDLE
        # acks can no longer arrive on this link: recover every unacked beat
        # now rather than waiting for its deadline timer (delivery-safe; at
        # worst the relay already sent it and the server sees a duplicate).
        self.feedback.fail_all_now()
        for message in self._take_buffer():
            self._send_cellular(message)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop emitting new beats (end of experiment).

        The D2D connection is deliberately left open and the feedback
        tracker live: in-flight beats still get acked (or fall back) during
        the drain window, so shutdown never manufactures duplicates.
        """
        self.monitor.stop()
        self.detector.stop_periodic()
