"""Battery-adaptive relay capacity (paper Sec. III-C).

"As for capacity of the relay, it refers to the maximum number of
collected heartbeat messages, which is set by users. The users, as
relays, could adjust the value according [to] their situations in
reality, such as their battery usage."

:class:`AdaptiveCapacityPolicy` automates that adjustment: the advertised
capacity scales with the battery's state of charge, and the relay resigns
(stops advertising) entirely below a floor so it never strands UEs on a
dying relay mid-period. The policy is evaluated once per heartbeat period
(capacity is a per-period quantity in Algorithm 1).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.core.relay import RelayAgent
from repro.sim.engine import PeriodicProcess, Simulator


@dataclasses.dataclass(frozen=True)
class AdaptiveCapacityConfig:
    """Capacity-vs-battery schedule."""

    #: Capacity advertised at full charge.
    max_capacity: int = 10
    #: Below this state of charge the relay resigns (stops advertising).
    resign_level: float = 0.15
    #: At or above this level the full capacity is offered.
    full_level: float = 0.8

    def __post_init__(self) -> None:
        if self.max_capacity < 1:
            raise ValueError(f"max_capacity must be >= 1: {self.max_capacity}")
        if not 0.0 <= self.resign_level < self.full_level <= 1.0:
            raise ValueError(
                f"need 0 <= resign_level < full_level <= 1, got "
                f"{self.resign_level}, {self.full_level}"
            )

    def capacity_for(self, battery_level: float) -> int:
        """Capacity to offer at ``battery_level`` (0 → resign)."""
        if battery_level < self.resign_level:
            return 0
        if battery_level >= self.full_level:
            return self.max_capacity
        span = self.full_level - self.resign_level
        fraction = (battery_level - self.resign_level) / span
        return max(1, int(math.ceil(self.max_capacity * fraction)))


class AdaptiveCapacityPolicy:
    """Periodically retunes one relay's capacity from its battery."""

    def __init__(
        self,
        agent: RelayAgent,
        config: AdaptiveCapacityConfig = AdaptiveCapacityConfig(),
    ) -> None:
        if agent.device.battery is None:
            raise ValueError(
                f"relay {agent.device.device_id} has no battery to adapt to"
            )
        self.agent = agent
        self.config = config
        self.resigned = False
        self.adjustments = 0
        self._process: Optional[PeriodicProcess] = None

    def start(self) -> "AdaptiveCapacityPolicy":
        """Begin evaluating once per relay heartbeat period."""
        if self._process is not None:
            raise RuntimeError("policy already started")
        sim: Simulator = self.agent.sim
        self._process = sim.every(
            self.agent.app.heartbeat_period_s, self.evaluate,
            start_after=0.0, name="adaptive_capacity",
        )
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # ------------------------------------------------------------------
    def evaluate(self) -> int:
        """Apply the schedule once; returns the capacity now in force."""
        battery = self.agent.device.battery
        assert battery is not None
        capacity = self.config.capacity_for(battery.level)
        if capacity == 0:
            if not self.resigned:
                self.resigned = True
                self.agent.resign()
            return 0
        scheduler = self.agent.scheduler
        if capacity != scheduler.config.capacity:
            self.adjustments += 1
            scheduler.config = dataclasses.replace(
                scheduler.config, capacity=capacity
            )
            self.agent.negotiator.capacity = capacity
            self.agent._update_advertisement()
        return capacity
