"""Incentive accounting (paper Sec. III-A).

Relays spend their own energy and data connectivity for the operator's
benefit, so "mobile operators could offer some rewards, such as offering
some free cellular data, or reducing the cost for their service" — the
paper's analogy is Karma Go, which pays its owner "$1 in credits or 100 MB
of free data" per guest. The :class:`RewardLedger` implements that
micro-payment bookkeeping: credits and free data accrue per collected
heartbeat, and the operator can compare the payout against the signaling
it avoided.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple


@dataclasses.dataclass(frozen=True)
class RewardPolicy:
    """Operator-side reward rates."""

    credits_per_beat: float = 0.01
    free_data_mb_per_beat: float = 1.0
    #: What one layer-3 message of avoided signaling is worth to the
    #: operator (used for the cost/benefit report).
    value_per_l3_message: float = 0.005

    def __post_init__(self) -> None:
        if self.credits_per_beat < 0 or self.free_data_mb_per_beat < 0:
            raise ValueError(f"reward rates must be non-negative: {self}")


@dataclasses.dataclass
class RelayAccount:
    """Accrued rewards of one relay."""

    device_id: str
    beats_collected: int = 0
    credits: float = 0.0
    free_data_mb: float = 0.0


class RewardLedger:
    """Append-only reward bookkeeping shared by operator and relays."""

    def __init__(self, policy: RewardPolicy = RewardPolicy()) -> None:
        self.policy = policy
        self._accounts: Dict[str, RelayAccount] = {}
        self._events: List[Tuple[float, str, int]] = []
        self.l3_messages_avoided = 0

    # ------------------------------------------------------------------
    def credit_collection(self, time_s: float, relay_id: str, beats: int) -> RelayAccount:
        """Reward ``relay_id`` for ``beats`` collected-and-delivered beats."""
        if beats < 0:
            raise ValueError(f"beats must be non-negative, got {beats}")
        account = self._accounts.setdefault(relay_id, RelayAccount(relay_id))
        account.beats_collected += beats
        account.credits += beats * self.policy.credits_per_beat
        account.free_data_mb += beats * self.policy.free_data_mb_per_beat
        if beats:
            self._events.append((time_s, relay_id, beats))
        return account

    def note_signaling_avoided(self, l3_messages: int) -> None:
        """Record signaling the aggregation saved (for the operator report)."""
        if l3_messages < 0:
            raise ValueError(f"l3_messages must be non-negative, got {l3_messages}")
        self.l3_messages_avoided += l3_messages

    # ------------------------------------------------------------------
    def account(self, relay_id: str) -> RelayAccount:
        """The account for one relay (zeroed if it never collected)."""
        return self._accounts.get(relay_id, RelayAccount(relay_id))

    def accounts(self) -> List[RelayAccount]:
        return sorted(self._accounts.values(), key=lambda a: a.device_id)

    @property
    def total_beats(self) -> int:
        return sum(a.beats_collected for a in self._accounts.values())

    @property
    def total_credits(self) -> float:
        return sum(a.credits for a in self._accounts.values())

    @property
    def total_free_data_mb(self) -> float:
        return sum(a.free_data_mb for a in self._accounts.values())

    def operator_net_value(self) -> float:
        """Signaling value avoided minus credits paid out.

        Positive means the incentive scheme is profitable for the operator —
        the paper's "win-win" claim, quantified.
        """
        return (
            self.l3_messages_avoided * self.policy.value_per_l3_message
            - self.total_credits
        )

    def events(self) -> List[Tuple[float, str, int]]:
        """(time, relay, beats) collection events, in order."""
        return list(self._events)
