"""Message Monitor (paper Fig. 2, Sec. IV-B).

On Android, heartbeat traffic cannot be observed across apps without
cooperation, so the paper "design[s] a set of APIs for app developers to
integrate the proposed D2D based framework into their existing apps". The
:class:`MessageMonitor` is that API surface in the simulation: apps
register their profile, the monitor owns the per-app heartbeat generators,
validates every outgoing message against the relayability constraints, and
hands relayable messages to whatever role handler (UE agent, relay agent,
or baseline sender) is plugged in.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.workload.apps import AppProfile
from repro.workload.generator import HeartbeatGenerator
from repro.workload.messages import NotRelayableError, PeriodicMessage, validate_relayable

#: Role handler signature: receives each intercepted message.
MessageHandler = Callable[[PeriodicMessage], None]


class MessageMonitor:
    """Per-device message interception point."""

    def __init__(
        self,
        sim: Simulator,
        device_id: str,
        handler: Optional[MessageHandler] = None,
        rng: Optional[random.Random] = None,
        jitter_s: float = 0.0,
    ) -> None:
        self.sim = sim
        self.device_id = device_id
        self.handler = handler
        self.rng = rng
        self.jitter_s = jitter_s
        self.generators: Dict[str, HeartbeatGenerator] = {}
        # statistics
        self.intercepted = 0
        self.rejected_not_relayable = 0
        self.bytes_seen = 0
        self._not_relayable: List[PeriodicMessage] = []

    # ------------------------------------------------------------------
    def register_app(
        self,
        app: AppProfile,
        phase_fraction: Optional[float] = None,
        start: bool = True,
    ) -> HeartbeatGenerator:
        """App-developer API: integrate one app's heartbeats.

        Creates (and by default starts) the heartbeat generator whose beats
        flow through :meth:`intercept`.
        """
        if app.name in self.generators:
            raise ValueError(f"app {app.name!r} already registered on {self.device_id}")
        generator = HeartbeatGenerator(
            self.sim,
            self.device_id,
            app,
            on_beat=self.intercept,
            rng=self.rng,
            phase_fraction=phase_fraction,
            jitter_s=self.jitter_s,
        )
        self.generators[app.name] = generator
        if start:
            generator.start()
        return generator

    def submit(self, message: PeriodicMessage) -> None:
        """App-developer API: hand an already-built periodic message over.

        This is the entry point for the paper's extension to non-heartbeat
        periodic messages (advertisements, diagnostics).
        """
        self.intercept(message)

    # ------------------------------------------------------------------
    def intercept(self, message: PeriodicMessage) -> None:
        """Validate and route one outgoing message."""
        self.intercepted += 1
        self.bytes_seen += message.size_bytes
        try:
            validate_relayable(message)
        except NotRelayableError:
            self.rejected_not_relayable += 1
            self._not_relayable.append(message)
            return
        if self.handler is not None:
            self.handler(message)

    def stop(self) -> None:
        """Stop every registered generator (device power-off)."""
        for generator in self.generators.values():
            generator.stop()

    def not_relayable(self) -> List[PeriodicMessage]:
        """Messages refused by the relayability constraints (for audits)."""
        return list(self._not_relayable)
