"""D2D Detector (paper Fig. 2, Sec. IV-C).

Orchestrates discovery on top of the D2D medium for one device: one-shot
scans, optional periodic rescans (a disconnected UE keeps looking for a
relay), and a cache of the most recent scan results with their age, so the
matcher can decide whether a fresh scan is worth its energy.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.d2d.base import D2DMedium, PeerInfo
from repro.sim.engine import PeriodicProcess, Simulator


class D2DDetector:
    """Discovery orchestration for one device."""

    def __init__(
        self,
        sim: Simulator,
        device_id: str,
        medium: D2DMedium,
        cache_ttl_s: float = 30.0,
    ) -> None:
        if cache_ttl_s <= 0:
            raise ValueError(f"cache TTL must be positive, got {cache_ttl_s}")
        self.sim = sim
        self.device_id = device_id
        self.medium = medium
        self.cache_ttl_s = cache_ttl_s
        self._last_peers: List[PeerInfo] = []
        self._last_scan_s: Optional[float] = None
        self._scan_in_progress = False
        self._waiters: List[Callable[[List[PeerInfo]], None]] = []
        self._periodic: Optional[PeriodicProcess] = None
        self.scans = 0
        self.scan_joins = 0

    # ------------------------------------------------------------------
    def discover(self, on_complete: Callable[[List[PeerInfo]], None]) -> bool:
        """Start one scan; ``False`` if one is already in flight.

        On ``False`` the callback was *not* registered — callers that
        still need the result must :meth:`join_scan` the in-flight scan
        (or fall back), otherwise they wait forever on a completion that
        will never be delivered to them.
        """
        if self._scan_in_progress:
            return False
        self._scan_in_progress = True
        self.scans += 1
        self._waiters = [on_complete]

        def finish(peers: List[PeerInfo]) -> None:
            self._scan_in_progress = False
            self._last_peers = peers
            self._last_scan_s = self.sim.now
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                waiter(peers)

        self.medium.discover(self.device_id, finish)
        return True

    def join_scan(self, on_complete: Callable[[List[PeerInfo]], None]) -> bool:
        """Attach a callback to the scan already in flight.

        Returns ``False`` when no scan is running (nothing to join). One
        physical scan then serves every waiter — the radio work and its
        energy are spent once, and no caller is left dangling because a
        rescan happened to be in the air when it asked.
        """
        if not self._scan_in_progress:
            return False
        self._waiters.append(on_complete)
        self.scan_joins += 1
        return True

    @property
    def scan_in_progress(self) -> bool:
        """Whether a scan is currently in flight."""
        return self._scan_in_progress

    def cached_peers(self) -> Optional[List[PeerInfo]]:
        """The last scan's results if still fresh, else ``None``."""
        if self._last_scan_s is None:
            return None
        if self.sim.now - self._last_scan_s > self.cache_ttl_s:
            return None
        self.medium.perf.scan_cache_served += 1
        return list(self._last_peers)

    # ------------------------------------------------------------------
    def start_periodic(
        self, period_s: float, on_peers: Callable[[List[PeerInfo]], None]
    ) -> None:
        """Rescan every ``period_s`` seconds until stopped."""
        if self._periodic is not None:
            raise RuntimeError("periodic discovery already running")

        def tick() -> None:
            self.discover(on_peers)

        self._periodic = self.sim.every(period_s, tick, name="d2d_periodic_scan")

    def stop_periodic(self) -> None:
        if self._periodic is not None:
            self._periodic.stop()
            self._periodic = None

    @property
    def periodic_running(self) -> bool:
        return self._periodic is not None and not self._periodic.stopped
