"""Derived quantities the paper's figures plot.

All functions are pure arithmetic over run metrics, so they are trivially
testable and reused by every bench:

- saved-energy percentages (Figs. 8, 9, 12),
- the wasted/saved energy ratio (Fig. 11),
- signaling reduction factors (Fig. 15, the ">50%" headline),
- linear-fit helper for the Table IV "approximately linear" claim.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def saved_fraction(baseline: float, actual: float) -> float:
    """Fraction of ``baseline`` saved by ``actual`` (negative if worse)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 1.0 - actual / baseline


def saved_percent(baseline: float, actual: float) -> float:
    """:func:`saved_fraction` in percent."""
    return 100.0 * saved_fraction(baseline, actual)


def wasted_to_saved_ratio(
    relay_d2d: float, relay_baseline: float, ue_d2d: float, ue_baseline: float
) -> float:
    """Fig. 11's statistic: relay's extra energy over the UEs' savings.

    "the ratio of the wasted energy caused by the relay and the energy
    saved by the UE drops from around 97% to around 5%" as connection time
    and UE count grow.
    """
    wasted = relay_d2d - relay_baseline
    saved = ue_baseline - ue_d2d
    if saved <= 0:
        return float("inf")
    return max(wasted, 0.0) / saved


def signaling_reduction(original_l3: int, d2d_l3: int) -> float:
    """Fractional layer-3 reduction of the D2D system vs. the original."""
    if original_l3 <= 0:
        raise ValueError(f"original count must be positive, got {original_l3}")
    return 1.0 - d2d_l3 / original_l3


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares fit ``y = a*x + b``; returns ``(a, b, r_squared)``.

    Used to verify Table IV's "approximate linear relationship between the
    energy consumption of receiving data and the number of connected UEs".
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit a line")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("xs are all identical; cannot fit")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    if ss_tot == 0:
        r_squared = 1.0
    else:
        ss_res = sum(
            (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
        )
        r_squared = 1.0 - ss_res / ss_tot
    return slope, intercept, r_squared


def crossover_index(series_a: Sequence[float], series_b: Sequence[float]) -> int:
    """First index where ``series_a`` exceeds ``series_b``; -1 if never.

    Used to locate crossovers like Fig. 12's "UE might consume more energy
    than original system when the communication distance [is] beyond a
    certain value".
    """
    if len(series_a) != len(series_b):
        raise ValueError("series must have the same length")
    for i, (a, b) in enumerate(zip(series_a, series_b)):
        if a > b:
            return i
    return -1


def monotone_nondecreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """Whether ``values`` never drops by more than ``tolerance``."""
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def cumulative(values: Sequence[float]) -> List[float]:
    """Running sum of ``values``."""
    out: List[float] = []
    total = 0.0
    for v in values:
        total += v
        out.append(total)
    return out


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) with linear interpolation.

    Used for delivery-delay tails (p50/p95/p99) in the latency reports.
    """
    if not values:
        raise ValueError("need at least one value")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0,100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def replicate(experiment, seeds: Sequence[int]) -> List[float]:
    """Run ``experiment(seed)`` for each seed and collect the scalars.

    The standard pattern for seed-robustness checks on the stochastic
    (crowd/mobility) experiments; the deterministic pair benches don't
    need it.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    return [float(experiment(seed)) for seed in seeds]


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """(mean, half-width) of the Student-t confidence interval.

    With a single sample the half-width is reported as 0 (no spread
    information), matching how the benches print single-run results.
    """
    if not values:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    standard_error = (variance / n) ** 0.5
    try:
        from scipy import stats

        t_crit = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    except ImportError:  # pragma: no cover - scipy is an optional assist
        t_crit = 2.0  # coarse fallback ≈ 95 % for moderate n
    return mean, t_crit * standard_error
