"""Static SVG line charts for the reproduced figures.

Pure-python SVG generation (matplotlib is unavailable offline), following
a validated data-viz method:

- multi-series **line** form (all the paper's figures are
  change-over-a-swept-parameter);
- categorical series colors assigned in **fixed slot order**, never
  cycled, from a palette whose adjacent-pair CVD separation was validated
  (worst adjacent ΔE 24.2 on the light surface);
- two slots sit below 3:1 contrast on the surface, so the *relief rule*
  applies: every series gets a **visible direct label** at its line end,
  and the benches print the full data table alongside;
- thin marks (2 px lines, 8 px markers), recessive 1 px grid, one y-axis,
  text in ink colors (never the series color), a legend whenever there
  are ≥ 2 series, and native per-point ``<title>`` tooltips.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

#: Validated categorical palette, light mode, fixed slot order.
SERIES_COLORS: Tuple[str, ...] = (
    "#2a78d6",  # blue
    "#1baf7a",  # aqua   (relief: direct labels required)
    "#eda100",  # yellow (relief: direct labels required)
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
    "#e87ba4",  # magenta
    "#eb6834",  # orange
)
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e4e3df"
AXIS = "#b5b4ae"

#: More than this many series must be folded, not colored (never cycle).
MAX_SERIES = len(SERIES_COLORS)


@dataclasses.dataclass(frozen=True)
class Series:
    """One named line."""

    name: str
    xs: Sequence[float]
    ys: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError(
                f"series {self.name!r}: {len(self.xs)} xs vs {len(self.ys)} ys"
            )
        if not self.xs:
            raise ValueError(f"series {self.name!r} is empty")


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(n - 1, 1)
    magnitude = 10 ** int(f"{raw_step:e}".split("e")[1])
    for multiplier in (1, 2, 2.5, 5, 10):
        step = multiplier * magnitude
        if step >= raw_step:
            break
    start = step * int(lo / step)
    if start > lo:
        start -= step
    ticks = []
    value = start
    while value <= hi + step * 0.5:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:g}"


class LineChart:
    """Builder for one SVG line chart."""

    def __init__(
        self,
        title: str,
        x_label: str,
        y_label: str,
        width: int = 640,
        height: int = 400,
    ) -> None:
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self.series: List[Series] = []

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> "LineChart":
        if len(self.series) >= MAX_SERIES:
            raise ValueError(
                f"at most {MAX_SERIES} series: fold extras into 'Other' or "
                "use small multiples — hues are never cycled"
            )
        self.series.append(Series(name, list(xs), list(ys)))
        return self

    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        if not self.series:
            raise ValueError("chart has no series")
        margin_left, margin_right = 64, 120  # right margin hosts direct labels
        margin_top, margin_bottom = 48, 56
        plot_w = self.width - margin_left - margin_right
        plot_h = self.height - margin_top - margin_bottom

        all_x = [x for s in self.series for x in s.xs]
        all_y = [y for s in self.series for y in s.ys]
        x_ticks = _nice_ticks(min(all_x), max(all_x))
        y_ticks = _nice_ticks(min(min(all_y), 0.0), max(all_y))
        x_lo, x_hi = x_ticks[0], x_ticks[-1]
        y_lo, y_hi = y_ticks[0], y_ticks[-1]

        def sx(x: float) -> float:
            return margin_left + (x - x_lo) / (x_hi - x_lo) * plot_w

        def sy(y: float) -> float:
            return margin_top + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

        parts: List[str] = []
        parts.append(
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="system-ui, sans-serif">'
        )
        parts.append(
            f'<rect width="{self.width}" height="{self.height}" fill="{SURFACE}"/>'
        )
        parts.append(
            f'<text x="{margin_left}" y="26" font-size="15" font-weight="600" '
            f'fill="{TEXT_PRIMARY}">{escape(self.title)}</text>'
        )

        # recessive grid + y ticks
        for tick in y_ticks:
            y = sy(tick)
            parts.append(
                f'<line x1="{margin_left}" y1="{y:.1f}" '
                f'x2="{margin_left + plot_w}" y2="{y:.1f}" '
                f'stroke="{GRID}" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{margin_left - 8}" y="{y + 4:.1f}" font-size="11" '
                f'text-anchor="end" fill="{TEXT_SECONDARY}">'
                f"{_format_tick(tick)}</text>"
            )
        # x axis ticks
        for tick in x_ticks:
            x = sx(tick)
            parts.append(
                f'<text x="{x:.1f}" y="{margin_top + plot_h + 18}" '
                f'font-size="11" text-anchor="middle" '
                f'fill="{TEXT_SECONDARY}">{_format_tick(tick)}</text>'
            )
        # single baseline axis (one y-axis, always)
        parts.append(
            f'<line x1="{margin_left}" y1="{sy(y_lo):.1f}" '
            f'x2="{margin_left + plot_w}" y2="{sy(y_lo):.1f}" '
            f'stroke="{AXIS}" stroke-width="1"/>'
        )
        # axis titles, in ink
        parts.append(
            f'<text x="{margin_left + plot_w / 2:.1f}" '
            f'y="{self.height - 14}" font-size="12" text-anchor="middle" '
            f'fill="{TEXT_SECONDARY}">{escape(self.x_label)}</text>'
        )
        parts.append(
            f'<text x="18" y="{margin_top + plot_h / 2:.1f}" font-size="12" '
            f'text-anchor="middle" fill="{TEXT_SECONDARY}" '
            f'transform="rotate(-90 18 {margin_top + plot_h / 2:.1f})">'
            f"{escape(self.y_label)}</text>"
        )

        # series: 2px lines, 8px markers with native tooltips, direct labels
        for slot, series in enumerate(self.series):
            color = SERIES_COLORS[slot]
            points = " ".join(
                f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(series.xs, series.ys)
            )
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{color}" '
                f'stroke-width="2" stroke-linejoin="round"/>'
            )
            for x, y in zip(series.xs, series.ys):
                parts.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" '
                    f'fill="{color}" stroke="{SURFACE}" stroke-width="2">'
                    f"<title>{escape(series.name)}: x={_format_tick(x)}, "
                    f"y={y:g}</title></circle>"
                )
            # direct label at the line end (the relief rule), in ink
            end_x, end_y = series.xs[-1], series.ys[-1]
            parts.append(
                f'<text x="{sx(end_x) + 10:.1f}" y="{sy(end_y) + 4:.1f}" '
                f'font-size="11" fill="{TEXT_PRIMARY}">'
                f"{escape(series.name)}</text>"
            )

        # legend for >= 2 series (swatch + ink text)
        if len(self.series) >= 2:
            legend_y = margin_top - 14
            x_cursor = float(margin_left)
            for slot, series in enumerate(self.series):
                color = SERIES_COLORS[slot]
                parts.append(
                    f'<rect x="{x_cursor:.1f}" y="{legend_y - 8}" width="10" '
                    f'height="10" rx="2" fill="{color}"/>'
                )
                parts.append(
                    f'<text x="{x_cursor + 14:.1f}" y="{legend_y + 1}" '
                    f'font-size="11" fill="{TEXT_SECONDARY}">'
                    f"{escape(series.name)}</text>"
                )
                x_cursor += 14 + 7 * len(series.name) + 16

        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_svg())


def line_chart(
    title: str,
    x_label: str,
    y_label: str,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 640,
    height: int = 400,
) -> LineChart:
    """Convenience: one shared x-vector, a dict of named y-vectors."""
    chart = LineChart(title, x_label, y_label, width=width, height=height)
    for name, ys in series.items():
        chart.add_series(name, xs, ys)
    return chart
