"""Baselines the paper compares against.

- :class:`OriginalSystem` — the unmodified system (the paper's baseline).
- :class:`PiggybackSystem` — delay heartbeats and ride foreground data
  transmissions (related work [2]).
- :class:`FastDormancySystem` — release RRC immediately after every
  transmission: saves tail energy, aggravates signaling (related work [26]).
"""

from repro.baseline.original import OriginalSystem
from repro.baseline.piggyback import PiggybackSystem
from repro.baseline.fast_dormancy import (
    FAST_DORMANCY_PROFILE,
    FastDormancySystem,
)
from repro.baseline.traffic_driver import MixedTrafficDevice

__all__ = [
    "OriginalSystem",
    "PiggybackSystem",
    "FastDormancySystem",
    "FAST_DORMANCY_PROFILE",
    "MixedTrafficDevice",
]
